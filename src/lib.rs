//! # Ajanta-RS
//!
//! A from-scratch Rust reproduction of Tripathi & Karnik, *"Protected
//! Resource Access for Mobile Agent-based Distributed Computing"*
//! (ICPP 1998) — the proxy-based access-control design of the Ajanta
//! mobile-agent system, together with every substrate it needs to run:
//! a verified mobile-code VM, a simulated open network with
//! attack injection, credentials and certificates, agent servers, and
//! the baseline designs the paper compares against.
//!
//! This facade re-exports the workspace crates under short names and
//! hosts the runnable examples and cross-crate integration tests.
//!
//! ## Quickstart
//!
//! ```
//! use ajanta::runtime::{World, ReportStatus};
//! use ajanta::core::Rights;
//! use ajanta::vm::{assemble, AgentImage};
//!
//! // Two agent servers on a simulated network, with a CA and directory.
//! let mut world = World::new(2);
//! let mut owner = world.owner("alice");
//!
//! // A tiny agent, written in AgentScript assembly.
//! let module = assemble(r#"
//!     module hello
//!     func run(arg: bytes) -> int
//!       push 42
//!       ret
//! "#).unwrap();
//! let image = AgentImage { globals: vec![], module, entry: "run".into() };
//!
//! // Signed credentials: who the agent is, who it acts for, what it may do.
//! let agent = owner.next_agent_name("hello");
//! let home = world.server(0).name().clone();
//! let creds = owner.credentials(agent, home, Rights::all(), u64::MAX);
//!
//! // Launch it at server 1 and collect the report at home.
//! world.server(0).launch(world.server(1).name().clone(), creds, image);
//! let reports = world.server(0).wait_reports(1, std::time::Duration::from_secs(10));
//! assert_eq!(reports[0].status, ReportStatus::Completed("42".into()));
//! world.shutdown();
//! ```
//!
//! See `examples/` for full scenarios and DESIGN.md for the architecture.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ajanta_baselines as baselines;
pub use ajanta_core as core;
pub use ajanta_crypto as crypto;
pub use ajanta_naming as naming;
pub use ajanta_net as net;
pub use ajanta_runtime as runtime;
pub use ajanta_vm as vm;
pub use ajanta_wire as wire;
pub use ajanta_workloads as workloads;
