//! Distributed information retrieval: the same task executed as chatty
//! RPC, bulk RPC, remote evaluation, and a touring mobile agent — the
//! trade-off the paper's introduction (citing Harrison et al.) claims
//! motivates agents. Prints the X9 accounting table for one scenario.
//!
//! ```text
//! cargo run --example distributed_compute
//! ```

use ajanta::net::LinkModel;
use ajanta::workloads::records::RecordSpec;
use ajanta_bench::x9_paradigms::{run, Scenario};

fn main() {
    let scenario = Scenario {
        spec: RecordSpec {
            count: 200,
            record_len: 128,
            selectivity: 0.05,
            seed: 0xDA7A,
        },
        n_servers: 3,
        link: LinkModel::wan(),
    };
    println!(
        "task: find hot records across {} servers × {} records ({}% hot), 40 ms WAN\n",
        scenario.n_servers,
        scenario.spec.count,
        scenario.spec.selectivity * 100.0
    );

    let rows = run(&scenario);
    println!(
        "{:<18} {:>14} {:>10} {:>14} {:>8}",
        "paradigm", "bytes on wire", "messages", "virtual time", "matches"
    );
    for r in &rows {
        println!(
            "{:<18} {:>14} {:>10} {:>11.2} ms {:>8}",
            r.paradigm, r.bytes, r.messages, r.virtual_ms, r.matches
        );
    }

    let agent = rows.iter().find(|r| r.paradigm == "mobile agent").unwrap();
    let bulk = rows.iter().find(|r| r.paradigm == "rpc-bulk").unwrap();
    let chatty = rows
        .iter()
        .find(|r| r.paradigm == "rpc-per-record")
        .unwrap();
    println!(
        "\nat 5% selectivity the agent moves {:.1}× fewer bytes than bulk RPC \
         and finishes {:.1}× sooner than per-record RPC.",
        bulk.bytes as f64 / agent.bytes as f64,
        chatty.virtual_ms / agent.virtual_ms
    );
    println!("(sweep selectivity and links with: cargo run -p ajanta-bench --bin report -- x9)");
}
