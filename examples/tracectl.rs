//! `tracectl` — reconstruct causal tour traces from merged journals.
//!
//! Every agent server journals its half of each tour as spans carrying
//! `(TraceId, SpanId, parent)` that travelled **in the wire frames**.
//! This tool merges per-server JSONL journal exports, rebuilds one
//! causal tree per tour, renders the trees, and flags anomalies:
//! orphan spans (a parent missing from the merge — an incomplete or
//! truncated export), hops that needed more than N retries, and
//! accesses that postdate a revocation of the same resource.
//!
//! ```text
//! # offline: merge previously exported journals
//! cargo run --example tracectl -- server0.jsonl server1.jsonl ...
//!
//! # demo: run a lossy 4-agent tour in-process, then analyse it
//! cargo run --example tracectl
//! ```

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ajanta::core::trace::{parse_jsonl, render_tree, scan_anomalies, TraceForest};
use ajanta::core::{BoundedBuffer, Counter, Guarded, HistoPath, ProxyPolicy, Rights, SpanKind};
use ajanta::naming::Urn;
use ajanta::net::{fmt_ns, LinkFault};
use ajanta::runtime::itinerary::Itinerary;
use ajanta::runtime::{RetryPolicy, World};
use ajanta::vm::{assemble, AgentImage, Value};

/// Retry count above which a hop is reported as a retry storm.
const RETRY_THRESHOLD: usize = 3;

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    let jsonl = if files.is_empty() {
        println!("no journal files given; running the in-process demo tour\n");
        demo_jsonl()
    } else {
        let mut merged = String::new();
        for f in &files {
            match std::fs::read_to_string(f) {
                Ok(s) => merged.push_str(&s),
                Err(e) => {
                    eprintln!("tracectl: cannot read {f}: {e}");
                    std::process::exit(2);
                }
            }
        }
        merged
    };

    let records = match parse_jsonl(&jsonl) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tracectl: {e}");
            std::process::exit(2);
        }
    };
    let forest = TraceForest::build(records);
    println!(
        "{} trace(s), {} span(s), {} orphan(s), {} revocation(s)\n",
        forest.traces.len(),
        forest.span_count(),
        forest.orphan_count(),
        forest.revokes.len()
    );

    for (trace, tree) in &forest.traces {
        print!("{}", render_tree(*trace, tree));
        // Per-trace rollup: how long each phase of the tour cost.
        let mut retries = 0usize;
        let mut transfer_ns = 0u64;
        for s in &tree.spans {
            match s.kind {
                SpanKind::Retry => retries += 1,
                SpanKind::Transfer => transfer_ns += s.dur_ns,
                _ => {}
            }
        }
        println!(
            "  = {} spans, {} retries, {} cumulative transfer RTT\n",
            tree.spans.len(),
            retries,
            fmt_ns(transfer_ns)
        );
    }

    let anomalies = scan_anomalies(&forest, RETRY_THRESHOLD);
    if anomalies.is_empty() {
        println!("no anomalies (retry threshold {RETRY_THRESHOLD})");
    } else {
        println!("{} anomalie(s):", anomalies.len());
        for a in &anomalies {
            println!("  {a}");
        }
    }
}

/// The demo tourist: binds the local buffer, puts one item, moves on.
const TOURIST: &str = r#"
    module tracetour
    import env.go_tour (bytes, bytes) -> int
    import env.itin_tail (bytes) -> bytes
    import env.get_resource (bytes) -> int
    import env.invoke (int, bytes, bytes) -> bytes
    import env.args_b (bytes) -> bytes
    global itin: bytes
    global hops: int
    data entry = "run"
    data rname = "ajn://tour.org/resource/jobs"
    data mput = "put"
    data item = "trace-probe"

    func run(arg: bytes) -> int
      locals full: bytes, h: int
      gload hops
      push 1
      add
      gstore hops
      pushd rname
      hostcall env.get_resource
      store h
      load h
      pushd mput
      pushd item
      hostcall env.args_b
      hostcall env.invoke
      drop
      gload itin
      blen
      jz done
      gload itin
      store full
      gload itin
      hostcall env.itin_tail
      gstore itin
      load full
      pushd entry
      hostcall env.go_tour
      drop
      push 0
      ret
    done:
      gload hops
      ret
"#;

/// Runs a 4-agent, 3-stop tour over a 15%-lossy link and returns the
/// merged JSONL export — the same bytes a deployment would ship to this
/// tool from each server's journal endpoint.
fn demo_jsonl() -> String {
    const AGENTS: usize = 4;
    const STOPS: usize = 3;
    let mut world = World::builder(STOPS + 1)
        .retry(RetryPolicy {
            max_attempts: 12,
            ack_grace: Duration::from_millis(10),
            ..RetryPolicy::default()
        })
        .journal_capacity(1 << 14)
        .build();
    world
        .net
        .set_adversary(Some(Arc::new(LinkFault::new(0x7ace, 0.15))));

    for i in 1..=STOPS {
        let buf = BoundedBuffer::new(
            Urn::resource("tour.org", ["jobs"]).unwrap(),
            Urn::owner("tour.org", ["admin"]).unwrap(),
            2 * AGENTS,
        );
        world
            .server(i)
            .register_resource(Guarded::new(buf, ProxyPolicy::default()))
            .expect("resource registers");
    }

    let module = assemble(TOURIST).expect("tourist assembles");
    let tour = Itinerary::new((1..=STOPS).map(|i| world.server(i).name().clone()));
    let (_, rest) = tour.clone().next_stop();
    let mut owner = world.owner("traveler");
    let home = world.server(0).name().clone();
    let mut launched = HashSet::new();
    for _ in 0..AGENTS {
        let agent = owner.next_agent_name("tracer");
        launched.insert(agent.clone());
        let creds = owner.credentials(agent, home.clone(), Rights::all(), u64::MAX);
        let image = AgentImage {
            module: module.clone(),
            globals: vec![Value::Bytes(rest.encode()), Value::Int(0)],
            entry: "run".into(),
        };
        world.server(0).launch_tour(&tour, creds, image);
    }

    // Wait for every tour to finish, then for the trace to quiesce (a
    // transfer's span is journaled when the leg resolves, so in-flight
    // acks must drain before the export is complete).
    let deadline = Instant::now() + Duration::from_secs(60);
    let reports = world
        .server(0)
        .wait_reports(AGENTS, Duration::from_secs(60));
    println!("{} report(s) home", reports.len());
    loop {
        let pending: usize = world.servers.iter().map(|s| s.pending_send_count()).sum();
        let spans: u64 = world
            .servers
            .iter()
            .map(|s| s.journal().counter(Counter::SpansRecorded))
            .sum();
        std::thread::sleep(Duration::from_millis(10));
        let pending_after: usize = world.servers.iter().map(|s| s.pending_send_count()).sum();
        let spans_after: u64 = world
            .servers
            .iter()
            .map(|s| s.journal().counter(Counter::SpansRecorded))
            .sum();
        if (pending == 0 && pending_after == 0 && spans == spans_after)
            || Instant::now() >= deadline
        {
            break;
        }
    }

    // While the world is still up, show the tour-wide latency tails the
    // merged histograms give (the per-server snapshots only see their
    // own half of each leg).
    println!("\nmerged latency histograms (virtual ns unless noted):");
    for path in [
        HistoPath::ProxyCheck,
        HistoPath::Bind,
        HistoPath::TransferRtt,
        HistoPath::RetryBackoff,
        HistoPath::HopLatency,
    ] {
        let s = world.merged_histos(path);
        println!(
            "  {:<24} n={:<5} p50={:<10} p99={:<10} max={}",
            path.name(),
            s.count,
            fmt_ns(s.quantile(0.50)),
            fmt_ns(s.quantile(0.99)),
            fmt_ns(s.max)
        );
    }
    println!();

    let jsonl = world.export_traces();
    world.shutdown();
    jsonl
}
