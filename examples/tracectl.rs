//! `tracectl` — DEPRECATED: folded into `ajantactl trace`.
//!
//! The merge/render/anomaly logic this example used to carry now lives
//! in the `ajantactl` control-plane CLI:
//!
//! ```text
//! cargo run --bin ajantactl -- trace server0.jsonl server1.jsonl ...
//! cargo run --bin ajantactl -- --ctl uds:/tmp/ajanta.ctl trace
//! ```
//!
//! This shim forwards its arguments to `ajantactl trace` when the
//! binary is built next to it, so existing invocations keep working.

use std::process::Command;

fn main() {
    eprintln!("tracectl is deprecated; use `ajantactl trace` (forwarding)\n");
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Examples land in target/<profile>/examples/, bins one level up.
    let ajantactl = std::env::current_exe()
        .ok()
        .and_then(|p| Some(p.parent()?.parent()?.join("ajantactl")))
        .filter(|p| p.exists());
    let Some(bin) = ajantactl else {
        eprintln!(
            "tracectl: ajantactl binary not found; run\n  cargo run --bin ajantactl -- trace {}",
            args.join(" ")
        );
        std::process::exit(2);
    };
    let status = Command::new(bin)
        .arg("trace")
        .args(&args)
        .status()
        .expect("spawning ajantactl");
    std::process::exit(status.code().unwrap_or(1));
}
