//! The shopping scenario from the paper's introduction: a
//! price-comparison agent tours vendor servers, scans each catalog
//! through a proxy, keeps the best quote in its mobile state, and brings
//! the answer home.
//!
//! ```text
//! cargo run --example shopping
//! ```

use std::time::Duration;

use ajanta::baselines::RecordStore;
use ajanta::core::{Guarded, ProxyPolicy, Rights};
use ajanta::naming::Urn;
use ajanta::runtime::itinerary::Itinerary;
use ajanta::runtime::{ReportStatus, World};
use ajanta::workloads::catalog::{best_quote, vendor_catalog};
use ajanta::workloads::shopper_agent;

const ITEM: &str = "modem56k";

fn main() {
    // Four vendors plus the shopper's home server.
    let vendors = ["acme", "bulkmart", "cyberdeals", "dataden"];
    let mut world = World::new(vendors.len() + 1);

    // Every vendor registers its catalog under the same
    // location-independent name — like a well-known service.
    let catalog_name = Urn::resource("market.org", ["catalog"]).unwrap();
    let mut all_records: Vec<u8> = Vec::new();
    for (i, vendor) in vendors.iter().enumerate() {
        let records = vendor_catalog(vendor, 50, 0x5E11);
        for r in &records {
            all_records.extend_from_slice(r);
            all_records.push(b'\n');
        }
        let store = RecordStore::new(
            catalog_name.clone(),
            Urn::owner("market.org", [*vendor]).unwrap(),
            records,
        );
        world
            .server(i + 1)
            .register_resource(Guarded::new(store, ProxyPolicy::default()))
            .expect("catalog registers");
        println!("vendor {vendor:>10} at {}", world.server(i + 1).name());
    }

    // The ground truth, computed locally for comparison.
    let truth = best_quote(&all_records, ITEM).expect("every vendor stocks the item");
    println!(
        "\nground truth: {} from {} at {} cents",
        truth.item, truth.vendor, truth.price
    );

    // The shopper: visits vendor 1 first, carries the rest as itinerary.
    let stops: Vec<Urn> = (2..=vendors.len())
        .map(|i| world.server(i).name().clone())
        .collect();
    let image = shopper_agent(&catalog_name, ITEM, &Itinerary::new(stops));
    println!("shopper code+state: {} bytes", image.encoded_len());

    let mut buyer = world.owner("buyer");
    let agent = buyer.next_agent_name("shopper");
    let home = world.server(0).name().clone();
    // Delegate exactly catalog access, nothing else.
    let creds = buyer.credentials(agent, home, Rights::on_resource(catalog_name), u64::MAX);

    world
        .server(0)
        .launch(world.server(1).name().clone(), creds, image);

    let reports = world.server(0).wait_reports(1, Duration::from_secs(15));
    match &reports[0].status {
        ReportStatus::Completed(winner) => {
            println!("\nagent's answer: {winner}");
            let agrees = winner.contains(&format!("vendor={}", truth.vendor))
                && winner.contains(&format!("price={}", truth.price));
            println!(
                "matches ground truth: {}",
                if agrees { "yes" } else { "NO" }
            );
            assert!(agrees, "the shopper must find the true best quote");
        }
        other => panic!("shopper failed: {other:?}"),
    }
    println!(
        "network totals: {} messages, {} bytes",
        world.net.stats().messages_delivered,
        world.net.stats().bytes_delivered
    );
    world.shutdown();
}
