//! The threat model, live: malicious agents and network attackers being
//! stopped by the mechanisms the paper prescribes — credentials,
//! byte-code verification, name-space separation, quotas, proxies, and
//! the sealed transfer protocol.
//!
//! ```text
//! cargo run --example attack_demo
//! ```

use std::sync::Arc;
use std::time::Duration;

use ajanta::core::{BoundedBuffer, Guarded, ProxyPolicy, Rights};
use ajanta::naming::Urn;
use ajanta::net::{Eavesdropper, Tamperer};
use ajanta::runtime::{ReportStatus, World};
use ajanta::vm::{assemble, AgentImage, ModuleBuilder, Op, Ty, Value};

fn wait_events(world: &World, server: usize, n: usize) {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while world.server(server).security_events().len() < n && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn main() {
    let mut world = World::builder(2)
        .vm_limits(ajanta::vm::Limits {
            fuel: 200_000,
            ..Default::default()
        })
        .build();
    let buffer = BoundedBuffer::new(
        Urn::resource("site1.org", ["jobs"]).unwrap(),
        Urn::owner("site1.org", ["admin"]).unwrap(),
        4,
    );
    world
        .server(1)
        .register_resource(Guarded::new(Arc::clone(&buffer), ProxyPolicy::default()))
        .unwrap();
    let mut mallory = world.owner("mallory");
    let home = world.server(0).name().clone();
    let dest = world.server(1).name().clone();

    println!("=== attack 1: forged credentials (privilege escalation) ===");
    {
        // Mallory edits her signed credentials to claim Rights::all().
        let agent = mallory.next_agent_name("escalator");
        let mut creds = mallory.credentials(agent, home.clone(), Rights::none(), u64::MAX);
        creds.delegated = Rights::all(); // tamper after signing
        let image = AgentImage {
            globals: vec![],
            module: assemble("module m\nfunc run(arg: bytes) -> int\n  push 1\n  ret").unwrap(),
            entry: "run".into(),
        };
        world.server(0).launch(dest.clone(), creds, image);
        wait_events(&world, 1, 1);
        let events = world.server(1).security_events();
        println!(
            "  server 1 events: {:?}\n",
            events.last().map(|e| (e.kind, &e.detail))
        );
    }

    println!("=== attack 2: unverifiable byte-code ===");
    {
        let agent = mallory.next_agent_name("corrupt");
        let creds = mallory.credentials(agent, home.clone(), Rights::all(), u64::MAX);
        // Type-confused code: bytes + int addition.
        let mut b = ModuleBuilder::new("corrupt");
        let d = b.str_data("boom");
        b.function(
            "run",
            [Ty::Bytes],
            [],
            Ty::Int,
            vec![Op::PushD(d), Op::PushI(1), Op::Add, Op::Ret],
        );
        let image = AgentImage {
            globals: vec![],
            module: b.build(),
            entry: "run".into(),
        };
        world.server(0).launch(dest.clone(), creds, image);
        let n = world.server(0).wait_reports(1, Duration::from_secs(5));
        println!("  home report: {:?}\n", n.last().map(|r| &r.status));
    }

    println!("=== attack 3: denial of service (runaway loop) ===");
    {
        let agent = mallory.next_agent_name("spinner");
        let creds = mallory.credentials(agent, home.clone(), Rights::all(), u64::MAX);
        let image = AgentImage {
            globals: vec![],
            module: assemble("module spin\nfunc run(arg: bytes) -> int\nloop:\n  jump loop")
                .unwrap(),
            entry: "run".into(),
        };
        world.server(0).launch(dest.clone(), creds, image);
        let reports = world.server(0).wait_reports(2, Duration::from_secs(10));
        println!("  home report: {:?}", reports.last().map(|r| &r.status));
        println!(
            "  server 1 still alive, {} residents\n",
            world.server(1).resident_agents()
        );
    }

    println!("=== attack 4: stolen capability (proxy confinement) ===");
    {
        // Demonstrated at the library level: a proxy leaked across
        // protection domains refuses to serve the thief.
        use ajanta::core::{AccessError, AccessProtocol, DomainId, Requester};
        let guarded = Guarded::new(Arc::clone(&buffer), ProxyPolicy::default());
        let rightful = Requester {
            agent: Urn::agent("users.org", ["good"]).unwrap(),
            owner: Urn::owner("users.org", ["good"]).unwrap(),
            domain: DomainId(7),
            rights: Rights::all(),
        };
        let proxy = guarded.get_proxy(&rightful, 0).unwrap();
        proxy
            .invoke(DomainId(7), "put", &[Value::str("legit")], 0)
            .unwrap();
        let stolen = proxy.clone(); // handed to another agent
        let outcome = stolen.invoke(DomainId(8), "get", &[], 0);
        println!("  thief's call: {:?}\n", outcome.unwrap_err());
        assert!(matches!(
            stolen.invoke(DomainId(8), "get", &[], 0),
            Err(AccessError::NotHolder { .. })
        ));
    }

    println!("=== attack 5: wire tampering ===");
    {
        world
            .net
            .set_adversary(Some(Arc::new(Tamperer::new(0xBAD, 1.0))));
        let agent = mallory.next_agent_name("innocent");
        let creds = mallory.credentials(agent, home.clone(), Rights::all(), u64::MAX);
        let image = AgentImage {
            globals: vec![],
            module: assemble("module ok\nfunc run(arg: bytes) -> int\n  push 1\n  ret").unwrap(),
            entry: "run".into(),
        };
        let before = world.server(1).security_events().len();
        world.server(0).launch(dest.clone(), creds, image);
        wait_events(&world, 1, before + 1);
        let events = world.server(1).security_events();
        println!(
            "  server 1 events: {:?}\n",
            events.last().map(|e| (e.kind, &e.detail))
        );
        world.net.set_adversary(None);
    }

    println!("=== attack 6: eavesdropping (confidentiality) ===");
    {
        let eve = Arc::new(Eavesdropper::new());
        world.net.set_adversary(Some(eve.clone()));
        let secret = b"VISA 4111-1111-1111-1111";
        let mut b = ModuleBuilder::new("courier");
        b.global(Ty::Bytes);
        b.function(
            "run",
            [Ty::Bytes],
            [],
            Ty::Int,
            vec![Op::GLoad(0), Op::BLen, Op::Ret],
        );
        let module = b.build();
        let image = AgentImage {
            globals: vec![Value::Bytes(secret.to_vec())],
            module,
            entry: "run".into(),
        };
        let agent = mallory.next_agent_name("courier");
        let creds = mallory.credentials(agent, home.clone(), Rights::all(), u64::MAX);
        world.server(0).launch(dest.clone(), creds, image);
        let want = world.server(0).reports().len() + 1;
        let reports = world.server(0).wait_reports(want, Duration::from_secs(10));
        let completed = matches!(
            reports.last().map(|r| &r.status),
            Some(ReportStatus::Completed(_))
        );
        println!(
            "  agent delivered: {completed}; frames captured: {}; secret visible on the wire: {}",
            eve.frame_count(),
            if eve.saw_plaintext(secret) {
                "YES (leak!)"
            } else {
                "no"
            }
        );
        assert!(!eve.saw_plaintext(secret));
        world.net.set_adversary(None);
    }

    world.shutdown();
    println!("\nall six attacks handled as the paper prescribes.");
}
