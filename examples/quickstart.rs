//! Quickstart: launch one agent across the simulated network, let it use
//! a protected buffer resource through a dynamically created proxy, and
//! collect its report at home — paper Fig. 1 and Fig. 6 end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;
use std::time::Duration;

use ajanta::core::{BoundedBuffer, Buffer, Guarded, ProxyPolicy, Resource, Rights};
use ajanta::naming::Urn;
use ajanta::runtime::World;
use ajanta::vm::{assemble, AgentImage};

fn main() {
    // A world: CA, certificate directory, simulated LAN, two agent
    // servers with their own keys, monitors, registries and policies.
    let mut world = World::new(2);
    println!("servers up:");
    for s in &world.servers {
        println!("  {}", s.name());
    }

    // Server 1 publishes a bounded buffer — the paper's running example —
    // wrapped in the standard access protocol.
    let buffer = BoundedBuffer::new(
        Urn::resource("site1.org", ["jobs"]).unwrap(),
        Urn::owner("site1.org", ["admin"]).unwrap(),
        16,
    );
    world
        .server(1)
        .register_resource(Guarded::new(Arc::clone(&buffer), ProxyPolicy::default()))
        .expect("resource registers");
    println!("\nregistered resource: {}", buffer.name());

    // Alice writes an agent in AgentScript. It binds the buffer by its
    // global name (receiving a proxy), deposits a job, and reports the
    // buffer size.
    let agent_src = r#"
        module depositor
        import env.log (bytes) -> int
        import env.here () -> bytes
        import env.get_resource (bytes) -> int
        import env.invoke (int, bytes, bytes) -> bytes
        import env.args0 () -> bytes
        import env.args_b (bytes) -> bytes
        import env.res_int (bytes) -> int
        data rname = "ajn://site1.org/resource/jobs"
        data mput = "put"
        data msize = "size"
        data job = "job: index the catalog"
        data arrived = "arrived at "

        func run(arg: bytes) -> int
          locals h: int
          pushd arrived
          hostcall env.here
          bconcat
          hostcall env.log
          drop
          pushd rname
          hostcall env.get_resource
          store h
          load h
          pushd mput
          pushd job
          hostcall env.args_b
          hostcall env.invoke
          drop
          load h
          pushd msize
          hostcall env.args0
          hostcall env.invoke
          hostcall env.res_int
          ret
    "#;
    let module = assemble(agent_src).expect("agent assembles");
    let image = AgentImage {
        globals: module.initial_globals(),
        module,
        entry: "run".into(),
    };

    // Credentials: tamper-evident, signed by Alice, delegating only
    // access to the jobs buffer (least privilege).
    let mut alice = world.owner("alice");
    let agent_name = alice.next_agent_name("depositor");
    let home = world.server(0).name().clone();
    let rights = Rights::on_resource(Urn::resource("site1.org", ["jobs"]).unwrap());
    let creds = alice.credentials(agent_name.clone(), home, rights, u64::MAX);
    println!("\nlaunching {agent_name}");

    // Launch toward server 1; the image travels in a sealed datagram.
    world
        .server(0)
        .launch(world.server(1).name().clone(), creds, image);

    // The completion report arrives back at the home server.
    let reports = world.server(0).wait_reports(1, Duration::from_secs(10));
    println!("\nreport: {:?}", reports[0].status);
    println!("server 1 log:");
    for (agent, line) in world.server(1).logs() {
        println!("  [{}] {}", agent.leaf(), line);
    }
    println!("\nbuffer size observed server-side: {}", buffer.size());

    // Transport-level accounting, including the wire data plane's
    // coalescing counters. The simulation issues no stream writes, so
    // frames/write stays 0/0 here; run a world over `TransportMode::Tcp`
    // or `Uds` (see X18 in EXPERIMENTS.md) and the same two counters
    // show how many frames each socket write carried.
    let net = world.net.stats();
    println!("\ntransport stats:");
    println!(
        "  delivered {} / dropped {} / injected {}",
        net.messages_delivered, net.messages_dropped, net.messages_injected
    );
    println!(
        "  bytes sent {} / delivered {}",
        net.bytes_sent, net.bytes_delivered
    );
    println!(
        "  coalescing: {} frames over {} writes",
        net.frames_coalesced, net.write_syscalls
    );

    // Everything the server did on the agent's behalf left a typed trace
    // in its telemetry journal: the Prometheus-style metrics snapshot
    // gives counters plus latency-histogram quantiles, the tail of the
    // journal the actual events.
    let journal = world.server(1).journal();
    println!("\nserver 1 telemetry snapshot:");
    for line in journal.metrics_snapshot().lines() {
        if !line.ends_with(" 0") && !line.starts_with('#') {
            println!("  {line}");
        }
    }
    // The cooperative scheduler's own telemetry, from the same snapshot:
    // slices run, yields, steals, and the slice-duration / ready-dwell
    // histograms the worker pool feeds per admitting server.
    println!("\nscheduler (fuel-sliced worker pool):");
    for line in journal.metrics_snapshot().lines() {
        if line.starts_with("ajanta_slices")
            || line.starts_with("ajanta_agent_yields")
            || line.starts_with("ajanta_sched_steals")
            || line.starts_with("ajanta_slice_ns")
            || line.starts_with("ajanta_ready_dwell_ns")
        {
            println!("  {line}");
        }
    }
    println!("last journal events:");
    for record in journal.recent(6) {
        println!(
            "  #{:<3} t={:<12} {:?}",
            record.seq, record.at, record.event
        );
    }
    world.shutdown();
    println!("done.");
}
