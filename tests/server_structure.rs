//! X1 — the Ajanta server structure of paper Fig. 1, exercised as a
//! whole: agent environment, domain database, resource registry, agent
//! transfer, proxies, and the host monitor all cooperating.

use std::sync::Arc;
use std::time::Duration;

use ajanta::core::{BoundedBuffer, Guarded, ProxyPolicy, Rights, UsageLimits};
use ajanta::naming::Urn;
use ajanta::runtime::{ReportStatus, World};
use ajanta::vm::{assemble, AgentImage, Value};

/// An agent that exercises every Fig. 1 component in one visit:
/// environment primitives (log/time/here), registry binding (proxy),
/// resource use, and departure.
const FULL_TOUR: &str = r#"
    module fulltour
    import env.log (bytes) -> int
    import env.here () -> bytes
    import env.time () -> int
    import env.self_name () -> bytes
    import env.get_resource (bytes) -> int
    import env.invoke (int, bytes, bytes) -> bytes
    import env.args_b (bytes) -> bytes
    import env.args0 () -> bytes
    import env.res_int (bytes) -> int
    data rname = "ajn://site1.org/resource/jobs"
    data mput = "put"
    data msize = "size"
    data item = "payload"

    func run(arg: bytes) -> int
      locals h: int
      hostcall env.self_name
      hostcall env.log
      drop
      hostcall env.here
      hostcall env.log
      drop
      hostcall env.time
      itoa
      hostcall env.log
      drop
      pushd rname
      hostcall env.get_resource
      store h
      load h
      pushd mput
      pushd item
      hostcall env.args_b
      hostcall env.invoke
      drop
      load h
      pushd msize
      hostcall env.args0
      hostcall env.invoke
      hostcall env.res_int
      ret
"#;

#[test]
fn figure_1_components_cooperate() {
    let mut world = World::builder(2)
        .agent_limits(UsageLimits {
            max_bindings: 4,
            ..Default::default()
        })
        .build();

    // Resource registry (Fig. 1 right side).
    let buffer = BoundedBuffer::new(
        Urn::resource("site1.org", ["jobs"]).unwrap(),
        Urn::owner("site1.org", ["admin"]).unwrap(),
        8,
    );
    world
        .server(1)
        .register_resource(Guarded::new(Arc::clone(&buffer), ProxyPolicy::default()))
        .unwrap();
    assert_eq!(world.server(1).resources().len(), 1);

    // Credentials + agent transfer (Fig. 1 bottom).
    let mut owner = world.owner("alice");
    let agent = owner.next_agent_name("fulltour");
    let home = world.server(0).name().clone();
    let creds = owner.credentials(agent.clone(), home, Rights::all(), u64::MAX);
    let module = assemble(FULL_TOUR).unwrap();
    let image = AgentImage {
        globals: module.initial_globals(),
        module,
        entry: "run".into(),
    };
    world
        .server(0)
        .launch(world.server(1).name().clone(), creds, image);

    // Completion report through the home site.
    let reports = world.server(0).wait_reports(1, Duration::from_secs(10));
    assert_eq!(reports[0].status, ReportStatus::Completed("1".into()));

    // Agent environment primitives all ran (three log lines).
    let logs = world.server(1).logs();
    assert_eq!(logs.len(), 3);
    assert_eq!(logs[0].1, agent.to_string());
    assert!(logs[1].1.starts_with("ajn://site1.org/server"));
    // Virtual timestamp parses.
    logs[2].1.parse::<u64>().unwrap();

    // Domain database: admitted exactly one agent; empty after departure.
    assert_eq!(world.server(1).stats().agents_hosted, 1);
    assert_eq!(world.server(1).resident_agents(), 0);

    // The reference monitor audited system operations (thread creation,
    // registry mutation).
    assert!(world.server(1).audit_len() >= 2);

    // The host operating system's resources (the buffer) saw the effect.
    use ajanta::core::Buffer;
    assert_eq!(buffer.size(), 1);

    world.shutdown();
}

#[test]
fn status_queries_reflect_live_agents() {
    // An agent blocks in a bounded recv loop while we query the domain DB
    // through the handle.
    let mut world = World::new(2);
    let src = r#"
        module lingerer
        import env.recv () -> bytes
        global tries: int

        func run(arg: bytes) -> int
        loop:
          hostcall env.recv
          blen
          jz again
          push 1
          ret
        again:
          gload tries
          push 1
          add
          gstore tries
          gload tries
          push 300000
          lt
          jz giveup
          jump loop
        giveup:
          push 0
          ret
    "#;
    let mut owner = world.owner("watcher");
    let agent = owner.next_agent_name("lingerer");
    let home = world.server(0).name().clone();
    let creds = owner.credentials(agent, home, Rights::all(), u64::MAX);
    let module = assemble(src).unwrap();
    world.server(0).launch(
        world.server(1).name().clone(),
        creds,
        AgentImage {
            globals: vec![Value::Int(0)],
            module,
            entry: "run".into(),
        },
    );

    // While resident, the count is visible.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut seen_resident = false;
    while std::time::Instant::now() < deadline {
        if world.server(1).resident_agents() == 1 {
            seen_resident = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(seen_resident, "the agent never showed up in the domain DB");

    // Let it finish (it gives up on its own) and verify eviction.
    let reports = world.server(0).wait_reports(1, Duration::from_secs(30));
    assert_eq!(reports.len(), 1);
    assert_eq!(world.server(1).resident_agents(), 0);
    world.shutdown();
}
