//! X2 — the code figures (Figs. 2–5, 7) reproduced faithfully: the
//! resource class hierarchy, the hand-written typed `BufferProxy`, the
//! generated proxies, and the access-protocol upcall — all from outside
//! the defining crate, as an application developer would use them.

use std::sync::Arc;

use ajanta::core::{
    declare_resource_proxy, AccessError, AccessProtocol, BoundedBuffer, Buffer, BufferProxy,
    DomainId, Guarded, Meter, MethodSpec, ProxyControl, ProxyPolicy, Requester, Resource,
    ResourceError, ResourceProxy, Rights,
};
use ajanta::naming::Urn;
use ajanta::vm::{Ty, Value};

fn buffer() -> Arc<BoundedBuffer> {
    BoundedBuffer::new(
        Urn::resource("acme.com", ["buffer"]).unwrap(),
        Urn::owner("acme.com", ["admin"]).unwrap(),
        4,
    )
}

fn requester(domain: DomainId, rights: Rights) -> Requester {
    Requester {
        agent: Urn::agent("umn.edu", ["a", "1"]).unwrap(),
        owner: Urn::owner("umn.edu", ["alice"]).unwrap(),
        domain,
        rights,
    }
}

/// Fig. 4: the Buffer interface extends the generic Resource interface.
#[test]
fn figure_2_hierarchy_holds() {
    let b = buffer();
    // As a Buffer (application interface).
    Buffer::put(&*b, Value::Int(1)).unwrap();
    assert_eq!(b.size(), 1);
    // As a Resource (generic interface): naming, ownership, discovery.
    assert_eq!(Resource::name(&*b).leaf(), "buffer");
    assert_eq!(Resource::owner(&*b).leaf(), "admin");
    let methods: Vec<String> = b.methods().into_iter().map(|m| m.name).collect();
    assert_eq!(methods, ["get", "put", "size"]);
    // As an AccessProtocol (Fig. 7): getProxy returns a typed-checked,
    // restricted proxy.
    let rq = requester(DomainId(1), Rights::all());
    let proxy = Arc::clone(&b).get_proxy(&rq, 0).unwrap();
    assert_eq!(
        proxy.invoke(DomainId(1), "get", &[], 0).unwrap(),
        Value::Int(1)
    );
}

/// Fig. 5: the hand-written `BufferProxy` — `private Buffer ref` plus the
/// `isEnabled` check on each method, raising a security exception.
#[test]
fn figure_5_typed_proxy_semantics() {
    let b = buffer();
    let control = ProxyControl::new_named(
        DomainId(3),
        [],
        Resource::method_table(&*b),
        ["get", "put"],
        None,
        Meter::counting(1),
    );
    let proxy = BufferProxy::new(Arc::clone(&b), control);

    proxy.put(Value::str("x"), 0).unwrap();
    assert_eq!(proxy.get(0).unwrap(), Value::str("x"));
    // "size" is disabled → the security exception of Fig. 5.
    assert_eq!(
        proxy.size(0),
        Err(AccessError::MethodDisabled("size".into()))
    );
    // Accounting accumulated through the same control block.
    assert_eq!(proxy.control().meter().reading().total, 2);
}

// The paper's "simple lexical processing tool": generate a typed proxy.
declare_resource_proxy! {
    /// Generated typed proxy over the buffer's dynamic interface.
    pub struct GenBufferProxy {
        fn get() -> "get";
        fn put(item: bytes) -> "put";
        fn size() -> "size";
    }
}

#[test]
fn generated_proxy_from_outside_the_crate() {
    let b = buffer();
    let g = Guarded::new(Arc::clone(&b), ProxyPolicy::default());
    let rq = requester(
        DomainId(9),
        Rights::none()
            .grant_method(Urn::resource("acme.com", ["buffer"]).unwrap(), "put")
            .grant_method(Urn::resource("acme.com", ["buffer"]).unwrap(), "size"),
    );
    let p = GenBufferProxy::new(g.get_proxy(&rq, 0).unwrap());
    p.put(0, Value::str("job")).unwrap();
    assert_eq!(p.size(0).unwrap(), Value::Int(1));
    // get was not granted.
    assert!(matches!(p.get(0), Err(AccessError::MethodDisabled(_))));
}

/// An application-defined resource built from scratch against the public
/// API — the extension story of Fig. 3 ("All application-defined resource
/// classes must implement the Resource interface").
struct Thermometer {
    name: Urn,
    owner: Urn,
    reading: parking_lot::Mutex<i64>,
}

impl Resource for Thermometer {
    fn name(&self) -> &Urn {
        &self.name
    }
    fn owner(&self) -> &Urn {
        &self.owner
    }
    fn methods(&self) -> Vec<MethodSpec> {
        vec![
            MethodSpec::new("read", [], Ty::Int),
            MethodSpec::new("calibrate", [Ty::Int], Ty::Int),
        ]
    }
    fn invoke(&self, method: &str, args: &[Value]) -> Result<Value, ResourceError> {
        self.check_args(method, args)?;
        match method {
            "read" => Ok(Value::Int(*self.reading.lock())),
            "calibrate" => {
                let mut r = self.reading.lock();
                *r += args[0].as_int().expect("checked");
                Ok(Value::Int(*r))
            }
            other => Err(ResourceError::NoSuchMethod(other.into())),
        }
    }
}

#[test]
fn application_defined_resource_gets_proxies_for_free() {
    let t = Arc::new(Thermometer {
        name: Urn::resource("lab.org", ["thermo"]).unwrap(),
        owner: Urn::owner("lab.org", ["pi"]).unwrap(),
        reading: parking_lot::Mutex::new(20),
    });
    let g = Guarded::new(t, ProxyPolicy::default());
    // Operators may calibrate; guests may only read.
    let operator = requester(DomainId(1), Rights::all());
    let guest = requester(
        DomainId(2),
        Rights::none().grant_method(Urn::resource("lab.org", ["thermo"]).unwrap(), "read"),
    );
    let op_proxy: ResourceProxy = Arc::clone(&g).get_proxy(&operator, 0).unwrap();
    let guest_proxy: ResourceProxy = g.get_proxy(&guest, 0).unwrap();

    op_proxy
        .invoke(DomainId(1), "calibrate", &[Value::Int(2)], 0)
        .unwrap();
    assert_eq!(
        guest_proxy.invoke(DomainId(2), "read", &[], 0).unwrap(),
        Value::Int(22)
    );
    assert!(matches!(
        guest_proxy.invoke(DomainId(2), "calibrate", &[Value::Int(1)], 0),
        Err(AccessError::MethodDisabled(_))
    ));
}
