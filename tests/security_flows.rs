//! Cross-crate security flows: delegation chains through live servers,
//! runtime policy changes, per-owner differentiation, and the secure
//! session channel under attack.

use std::sync::Arc;
use std::time::Duration;

use ajanta::baselines::RecordStore;
use ajanta::core::{Guarded, PrincipalPattern, ProxyPolicy, Rights, SecurityPolicy};
use ajanta::naming::Urn;
use ajanta::runtime::{ReportStatus, World};
use ajanta::vm::{assemble, AgentImage};

fn store_resource() -> Arc<Guarded<RecordStore>> {
    let store = RecordStore::new(
        Urn::resource("site1.org", ["db"]).unwrap(),
        Urn::owner("site1.org", ["admin"]).unwrap(),
        vec![b"r1".to_vec(), b"r2".to_vec()],
    );
    Guarded::new(store, ProxyPolicy::default())
}

const COUNTER: &str = r#"
    module counteruser
    import env.get_resource (bytes) -> int
    import env.invoke (int, bytes, bytes) -> bytes
    import env.args0 () -> bytes
    import env.res_int (bytes) -> int
    data rname = "ajn://site1.org/resource/db"
    data mcount = "count"

    func run(arg: bytes) -> int
      pushd rname
      hostcall env.get_resource
      pushd mcount
      hostcall env.args0
      hostcall env.invoke
      hostcall env.res_int
      ret
"#;

fn counter_image() -> AgentImage {
    let module = assemble(COUNTER).unwrap();
    AgentImage {
        globals: module.initial_globals(),
        module,
        entry: "run".into(),
    }
}

#[test]
fn per_owner_policies_differentiate_agents() {
    // Server policy: only alice's principals reach the store.
    let alice_owner = Urn::owner("users.org", ["alice"]).unwrap();
    let alice_for_policy = alice_owner.clone();
    let mut world = World::builder(2)
        .policy(move |i, _| {
            if i == 1 {
                SecurityPolicy::new().allow(
                    PrincipalPattern::Exact(alice_for_policy.clone()),
                    Rights::all(),
                )
            } else {
                SecurityPolicy::new().allow(PrincipalPattern::Anyone, Rights::all())
            }
        })
        .build();
    world.server(1).register_resource(store_resource()).unwrap();

    let home = world.server(0).name().clone();
    let dest = world.server(1).name().clone();

    let mut alice = world.owner("alice");
    assert_eq!(*alice.name(), alice_owner);
    let a = alice.next_agent_name("reader");
    let creds = alice.credentials(a, home.clone(), Rights::all(), u64::MAX);
    world.server(0).launch(dest.clone(), creds, counter_image());

    let mut bob = world.owner("bob");
    let b = bob.next_agent_name("reader");
    let creds = bob.credentials(b, home, Rights::all(), u64::MAX);
    world.server(0).launch(dest, creds, counter_image());

    let reports = world.server(0).wait_reports(2, Duration::from_secs(10));
    let mut completed = 0;
    let mut denied = 0;
    for r in &reports {
        match &r.status {
            ReportStatus::Completed(v) => {
                assert_eq!(v, "2");
                completed += 1;
            }
            ReportStatus::Failed(msg) => {
                assert!(msg.contains("security exception"), "{msg}");
                denied += 1;
            }
            other => panic!("unexpected: {other:?}"),
        }
    }
    assert_eq!((completed, denied), (1, 1));
    world.shutdown();
}

#[test]
fn runtime_policy_change_affects_future_bindings() {
    // Section 5.1: "security policies of such resources can be
    // dynamically modified by their owners."
    let mut world = World::new(2);
    world.server(1).register_resource(store_resource()).unwrap();
    let home = world.server(0).name().clone();
    let dest = world.server(1).name().clone();
    let mut owner = world.owner("carol");

    // First agent succeeds under the permissive default policy.
    let a1 = owner.next_agent_name("reader");
    let creds = owner.credentials(a1, home.clone(), Rights::all(), u64::MAX);
    world.server(0).launch(dest.clone(), creds, counter_image());
    let reports = world.server(0).wait_reports(1, Duration::from_secs(10));
    assert_eq!(reports[0].status, ReportStatus::Completed("2".into()));

    // The administrator tightens the policy at runtime.
    world.server(1).with_policy(|p| {
        *p = SecurityPolicy::new(); // deny everything
    });

    let a2 = owner.next_agent_name("reader");
    let creds = owner.credentials(a2, home, Rights::all(), u64::MAX);
    world.server(0).launch(dest, creds, counter_image());
    let reports = world.server(0).wait_reports(2, Duration::from_secs(10));
    match &reports[1].status {
        ReportStatus::Failed(msg) => assert!(msg.contains("security exception"), "{msg}"),
        other => panic!("expected denial after policy change, got {other:?}"),
    }
    world.shutdown();
}

#[test]
fn delegation_chain_restricts_through_endorsements() {
    // The "subcontract" of Section 5.2: a forwarding principal endorses
    // an agent's credentials with a restriction; every later verifier
    // (using the same world roots) sees only the narrowed rights, and
    // tampering with the endorsement is detected.
    let mut world = World::new(1);
    let mut owner = world.owner("dave");
    let agent = owner.next_agent_name("sub");
    let home = world.server(0).name().clone();
    let rname = Urn::resource("site1.org", ["db"]).unwrap();
    let creds = owner.credentials(agent, home, Rights::on_resource(rname.clone()), u64::MAX);
    let effective = creds.verify(&world.roots, 0).unwrap();
    assert!(effective.permits(&rname, "scan"));
    assert!(effective.permits(&rname, "count"));

    // The forwarding principal (CA-certified, like a server) restricts
    // the agent to `count`.
    let mut forwarder = world.owner("forwarding-server");
    let restricted = forwarder.endorse(&creds, Rights::none().grant_method(rname.clone(), "count"));
    let effective = restricted.verify(&world.roots, 0).unwrap();
    assert!(effective.permits(&rname, "count"));
    assert!(!effective.permits(&rname, "scan"));
    assert_eq!(
        restricted.endorsers().collect::<Vec<_>>(),
        vec![forwarder.name()]
    );

    // Widening the restriction after signing is detected.
    let mut tampered = restricted;
    tampered.endorsements[0].restriction = Rights::all();
    assert!(tampered.verify(&world.roots, 0).is_err());
    world.shutdown();
}

#[test]
fn secure_channel_sessions_over_the_simnet() {
    use ajanta::crypto::cert::Certificate;
    use ajanta::crypto::{DetRng, KeyPair, RootOfTrust};
    use ajanta::net::secure::ChannelIdentity;
    use ajanta::net::{LinkModel, SecureChannel, SimNet};

    let mut rng = DetRng::new(0x5EC);
    let net = SimNet::new(LinkModel::default(), 1);
    let ca = KeyPair::generate(&mut rng);
    let mut roots = RootOfTrust::new();
    roots.trust("ca", ca.public);
    let mk = |name: &Urn, serial: u64, rng: &mut DetRng| {
        let keys = KeyPair::generate(rng);
        let cert = Certificate::issue(
            name.to_string(),
            keys.public,
            "ca",
            &ca,
            u64::MAX,
            serial,
            rng,
        );
        ChannelIdentity {
            name: name.clone(),
            keys,
            chain: vec![cert],
        }
    };
    let a_name = Urn::server("a.org", ["a"]).unwrap();
    let b_name = Urn::server("b.org", ["b"]).unwrap();
    let a_id = mk(&a_name, 1, &mut rng);
    let b_id = mk(&b_name, 2, &mut rng);

    let a_ep = net.attach(a_name.clone()).unwrap();
    let b_ep = net.attach(b_name.clone()).unwrap();

    // Handshake over the simulated network.
    let (hello, pending) = SecureChannel::initiate(&a_id, &b_name, &mut rng);
    a_ep.send(&b_name, hello).unwrap();
    let d = b_ep.recv().unwrap();
    let (ack, mut chan_b) =
        SecureChannel::respond(&b_id, &roots, &d.payload, net.clock().now(), &mut rng).unwrap();
    b_ep.send(&a_name, ack).unwrap();
    let d = a_ep.recv().unwrap();
    let mut chan_a = pending
        .finish(&roots, &d.payload, net.clock().now())
        .unwrap();

    // Framed traffic both ways.
    for i in 0..5u32 {
        let frame = chan_a.seal(format!("ping {i}").as_bytes());
        a_ep.send(&b_name, frame).unwrap();
        let d = b_ep.recv().unwrap();
        let msg = chan_b.open(&d.payload).unwrap();
        assert_eq!(msg, format!("ping {i}").as_bytes());

        let frame = chan_b.seal(format!("pong {i}").as_bytes());
        b_ep.send(&a_name, frame).unwrap();
        let d = a_ep.recv().unwrap();
        assert_eq!(
            chan_a.open(&d.payload).unwrap(),
            format!("pong {i}").as_bytes()
        );
    }

    // A replayed frame is rejected by sequence tracking.
    let frame = chan_a.seal(b"pay once");
    a_ep.send(&b_name, frame.clone()).unwrap();
    let d = b_ep.recv().unwrap();
    chan_b.open(&d.payload).unwrap();
    a_ep.send(&b_name, frame).unwrap();
    let d = b_ep.recv().unwrap();
    assert!(matches!(
        chan_b.open(&d.payload),
        Err(ajanta::net::ChannelError::Replay { .. })
    ));
}
