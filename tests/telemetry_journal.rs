//! The telemetry journal's concurrency and bounding contract:
//!
//! * below capacity, concurrent appenders lose nothing;
//! * sequence numbers are unique and records collate in monotone order;
//! * past capacity, memory stays bounded and every eviction is counted
//!   exactly — in the journal's own drop counter and in the server's
//!   end-to-end configuration.

use std::sync::Arc;
use std::time::Duration;

use ajanta::core::telemetry::{Counter, Event, Journal, RejectKind};
use ajanta::core::Rights;
use ajanta::runtime::World;
use ajanta::vm::{assemble, AgentImage};

fn reject(n: u64) -> Event {
    Event::Rejected {
        kind: RejectKind::BadDatagram,
        detail: format!("synthetic #{n}"),
    }
}

/// Spawns `threads` appenders pushing `per_thread` events each.
fn hammer(journal: &Arc<Journal>, threads: u64, per_thread: u64) {
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let journal = Arc::clone(journal);
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    journal.append(reject(t * per_thread + i));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn concurrent_appends_lose_nothing_below_capacity() {
    let journal = Arc::new(Journal::with_capacity(8192));
    hammer(&journal, 8, 500);

    assert_eq!(journal.len(), 4000, "no event may be lost below capacity");
    assert_eq!(journal.dropped(), 0);
    assert_eq!(journal.counter(Counter::EventsAppended), 4000);
    assert_eq!(journal.counter(Counter::Rejections), 4000);

    // Sequence numbers are dense 0..4000 and the snapshot collates them
    // in strictly increasing order.
    let seqs: Vec<u64> = journal.snapshot().iter().map(|r| r.seq).collect();
    assert_eq!(seqs, (0..4000).collect::<Vec<_>>());
}

#[test]
fn concurrent_drop_accounting_is_exact_past_capacity() {
    let journal = Arc::new(Journal::with_capacity(128));
    hammer(&journal, 8, 1000);

    // Memory stays bounded at the configured capacity...
    assert_eq!(journal.capacity(), 128);
    assert_eq!(journal.len(), 128);
    // ...every eviction is counted, nothing double- or under-counted...
    assert_eq!(journal.dropped(), 8000 - 128);
    assert_eq!(journal.counter(Counter::EventsDropped), 8000 - 128);
    assert_eq!(journal.counter(Counter::EventsAppended), 8000);
    // ...and the retained records still carry unique, monotone seqs.
    let seqs: Vec<u64> = journal.snapshot().iter().map(|r| r.seq).collect();
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "non-monotone: {seqs:?}"
    );
}

#[test]
fn single_threaded_eviction_keeps_the_newest_records() {
    let journal = Journal::with_capacity(32);
    for i in 0..500u64 {
        journal.append_at(i, reject(i));
    }
    assert_eq!(journal.len(), 32);
    assert_eq!(journal.dropped(), 500 - 32);
    // Round-robin sharding means single-threaded eviction is exact FIFO:
    // precisely the newest 32 survive.
    let seqs: Vec<u64> = journal.snapshot().iter().map(|r| r.seq).collect();
    assert_eq!(seqs, (468..500).collect::<Vec<_>>());
}

/// A tiny agent that logs `lines` lines, then returns.
fn chatty_agent(lines: usize) -> AgentImage {
    let mut src = String::from(
        "module chatty\n import env.log (bytes) -> int\n data line = \"tick\"\n func run(arg: bytes) -> int\n",
    );
    for _ in 0..lines {
        src.push_str("  pushd line\n  hostcall env.log\n  drop\n");
    }
    src.push_str("  push 1\n  ret\n");
    let module = assemble(&src).unwrap();
    AgentImage {
        globals: module.initial_globals(),
        module,
        entry: "run".into(),
    }
}

#[test]
fn server_journal_is_bounded_end_to_end() {
    // A deliberately tiny journal: one chatty agent writes far more log
    // lines than the journal retains. Memory stays bounded, the counters
    // stay exact, and the server keeps working.
    let mut world = World::builder(2).journal_capacity(24).build();
    let mut owner = world.owner("chatterbox");
    let agent = owner.next_agent_name("chatty");
    let home = world.server(0).name().clone();
    let creds = owner.credentials(agent, home, Rights::all(), u64::MAX);
    world
        .server(0)
        .launch(world.server(1).name().clone(), creds, chatty_agent(200));
    let reports = world.server(0).wait_reports(1, Duration::from_secs(10));
    assert_eq!(reports.len(), 1);

    let journal = world.server(1).journal();
    assert!(
        journal.capacity() <= 24 + 7,
        "capacity rounds up per-shard only"
    );
    assert!(journal.len() <= journal.capacity());
    assert!(
        journal.dropped() > 0,
        "200 log lines must overflow 24 slots"
    );
    assert_eq!(journal.counter(Counter::LogLines), 200);
    // The bounded view still returns the most recent lines.
    assert!(!world.server(1).logs().is_empty());
    // Lifecycle events were journaled at both ends.
    assert_eq!(journal.counter(Counter::AgentsAdmitted), 1);
    let home_journal = world.server(0).journal();
    assert_eq!(home_journal.counter(Counter::AgentsDispatched), 1);
    assert_eq!(home_journal.counter(Counter::AgentsReported), 1);
    world.shutdown();
}
