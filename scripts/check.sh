#!/usr/bin/env bash
# Tier-1 verification: build, test, lint. Falls back to --offline when
# crates.io is unreachable (all external deps are vendored under vendor/,
# so offline builds are fully supported).
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE=""
if ! cargo metadata --format-version 1 >/dev/null 2>&1; then
    OFFLINE="--offline"
fi

run() {
    echo "+ $*"
    "$@"
}

run cargo fmt --all --check
run cargo build --release $OFFLINE
run cargo test -q $OFFLINE
run cargo clippy --all-targets $OFFLINE -- -D warnings

# Cross-process smoke: three ajantad server processes over Unix-domain
# sockets, a 32-agent tour at 20% injected loss, bounded by --timeout.
# --ctl also serves a control socket per process and drives a full
# `ajantactl` session against the live world (remote/local parity, a
# gap-checked journal follow, the tour's admission history, and a
# fleet-wide revocation); the session transcript and the merged causal
# trace are written for CI to upload as artifacts.
mkdir -p target/bench-artifacts
run env AJANTA_SMOKE_TRACE=target/bench-artifacts/merged-trace.jsonl \
    ./target/release/ajantad --smoke --timeout 240 \
    --ctl --ctl-transcript target/bench-artifacts/ctl-transcript.txt

# Durability smoke: the same tour, but server 1 is SIGKILLed mid-tour
# and restarted on the same socket with its admission WAL — every agent
# must still resolve with zero duplicate admissions.
run ./target/release/ajantad --smoke --kill 1 --timeout 240

# Optional bench smokes (set CHECK_BENCH=1), each with a JSON summary
# CI uploads as an artifact: X16 quick — 10k resident agents at reduced
# iterations — X18 quick — the coalesced-vs-baseline wire burst — and
# X19 quick — the hibernate/wake cycle and WAL replay throughput.
if [[ "${CHECK_BENCH:-0}" == "1" ]]; then
    echo "+ X16_JSON=target/bench-artifacts/x16_sched.json cargo run --release $OFFLINE -p ajanta-bench --bin report -- x16 quick"
    X16_JSON=target/bench-artifacts/x16_sched.json \
        cargo run --release $OFFLINE -p ajanta-bench --bin report -- x16 quick
    echo "+ X18_JSON=target/bench-artifacts/x18_wirepath.json cargo run --release $OFFLINE -p ajanta-bench --bin report -- x18 quick"
    X18_JSON=target/bench-artifacts/x18_wirepath.json \
        cargo run --release $OFFLINE -p ajanta-bench --bin report -- x18 quick
    echo "+ X19_JSON=target/bench-artifacts/x19_durability.json cargo run --release $OFFLINE -p ajanta-bench --bin report -- x19 quick"
    X19_JSON=target/bench-artifacts/x19_durability.json \
        cargo run --release $OFFLINE -p ajanta-bench --bin report -- x19 quick
fi
echo "check.sh: all green"
