#!/usr/bin/env bash
# Tier-1 verification: build, test, lint. Falls back to --offline when
# crates.io is unreachable (all external deps are vendored under vendor/,
# so offline builds are fully supported).
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE=""
if ! cargo metadata --format-version 1 >/dev/null 2>&1; then
    OFFLINE="--offline"
fi

run() {
    echo "+ $*"
    "$@"
}

run cargo fmt --all --check
run cargo build --release $OFFLINE
run cargo test -q $OFFLINE
run cargo clippy --all-targets $OFFLINE -- -D warnings
echo "check.sh: all green"
