//! X15 — the retry tail: mean vs p99 hop latency under frame loss.
//!
//! The X13f sweep showed the recovery layer keeps *resolution* at 100%
//! under loss; this experiment shows what that resolution costs in the
//! latency *distribution*. A mean hides the price almost completely —
//! the retried minority of hops pay one or more full `ack_grace`
//! doublings while the majority are untouched — so the story only
//! appears in the tail: p99 hop latency grows by orders of magnitude
//! while the mean barely moves. The numbers come from the lock-free
//! log₂ histograms every server keeps (`HistoPath::HopLatency`,
//! `TransferRtt`, `RetryBackoff`), merged across the world — exactly
//! what a deployment's metrics scrape would see.
//!
//! Virtual-time quantities: exact and seed-reproducible.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ajanta_core::{HistoPath, HistoSnapshot};
use ajanta_net::LinkFault;
use ajanta_runtime::itinerary::Itinerary;
use ajanta_runtime::{RetryPolicy, World};
use ajanta_workloads::payload_agent;

/// Latency-tail measurements for one drop probability.
#[derive(Debug, Clone)]
pub struct TailRow {
    /// Per-frame drop probability.
    pub drop_prob: f64,
    /// Merged end-to-end hop-latency histogram (virtual ns).
    pub hop: HistoSnapshot,
    /// Merged transfer-RTT histogram (virtual ns).
    pub rtt: HistoSnapshot,
    /// Merged retry-backoff histogram (virtual ns).
    pub backoff: HistoSnapshot,
}

/// One trial: `agents` agents on a `stops`-stop tour at `drop_prob`,
/// retries on; returns the world-merged histograms.
fn trial(agents: usize, stops: usize, drop_prob: f64, seed: u64) -> TailRow {
    let mut world = World::builder(stops + 1)
        .journal_capacity(1 << 16)
        .retry(RetryPolicy {
            max_attempts: 14,
            ack_grace: Duration::from_millis(10),
            ..RetryPolicy::default()
        })
        .build();
    let fault = Arc::new(LinkFault::new(seed, drop_prob));
    world.net.set_adversary(Some(fault));

    let mut owner = world.owner("fleet");
    let home = world.server(0).name().clone();
    let tour = Itinerary::new((1..=stops).map(|i| world.server(i).name().clone()));
    let (_, carried) = tour.clone().next_stop();
    for _ in 0..agents {
        let agent = owner.next_agent_name("tourist");
        let creds = owner.credentials(agent, home.clone(), ajanta_core::Rights::all(), u64::MAX);
        world
            .server(0)
            .launch_tour(&tour, creds, payload_agent(64, &carried));
    }

    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let reports = world
            .server(0)
            .wait_reports(agents, deadline.saturating_duration_since(Instant::now()));
        let distinct: HashSet<_> = reports.iter().map(|r| r.agent.clone()).collect();
        if distinct.len() >= agents || Instant::now() >= deadline {
            break;
        }
    }

    let row = TailRow {
        drop_prob,
        hop: world.merged_histos(HistoPath::HopLatency),
        rtt: world.merged_histos(HistoPath::TransferRtt),
        backoff: world.merged_histos(HistoPath::RetryBackoff),
    };
    world.shutdown();
    row
}

/// Sweeps drop probabilities (retries always on — the tail of a working
/// system, not a broken one).
pub fn run(agents: usize, stops: usize, drop_probs: &[f64]) -> Vec<TailRow> {
    drop_probs
        .iter()
        .enumerate()
        .map(|(i, &p)| trial(agents, stops, p, 0x15_00 + i as u64))
        .collect()
}

fn cell(s: &HistoSnapshot) -> [String; 3] {
    [
        crate::fmt_ns(s.mean()),
        crate::fmt_ns(s.quantile(0.99) as f64),
        crate::fmt_ns(s.max as f64),
    ]
}

/// Renders the table.
pub fn table(agents: usize, stops: usize, drop_probs: &[f64]) -> String {
    let rows = run(agents, stops, drop_probs);
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let hop = cell(&r.hop);
            let rtt = cell(&r.rtt);
            let mut v = vec![format!("{:.0}%", r.drop_prob * 100.0)];
            v.extend(hop);
            v.extend(rtt);
            v.push(r.backoff.count.to_string());
            v.push(crate::fmt_ns(r.backoff.sum as f64));
            v
        })
        .collect();
    crate::render_table(
        &format!(
            "X15 — retry tail (virtual time), {agents} agents × {stops}-stop tour, retries on"
        ),
        &[
            "drop",
            "hop mean",
            "hop p99",
            "hop max",
            "rtt mean",
            "rtt p99",
            "rtt max",
            "backoffs",
            "backoff total",
        ],
        &rendered,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_inflates_the_tail_much_more_than_the_mean() {
        let rows = run(8, 3, &[0.0, 0.25]);
        let clean = &rows[0];
        let lossy = &rows[1];

        // Both trials measured real hops (counts can differ slightly:
        // a dead-stopped leg skips its stop's admission).
        assert!(clean.hop.count > 0);
        assert!(lossy.hop.count > 0);

        // A lossy link must back off. (A clean link *mostly* doesn't,
        // but the ack grace is real time while delivery latency is
        // virtual, so a heavily loaded host can fire spurious retries —
        // don't assert zero.)
        assert!(lossy.backoff.count > 0, "25% loss must retry");

        // The tail story: under loss p99 hop latency strictly exceeds
        // the clean p99 (each retry adds ≥ one 10ms ack_grace to a
        // ~1ms hop), and the lossy distribution is visibly skewed —
        // p99 well above its own mean.
        assert!(
            lossy.hop.quantile(0.99) > clean.hop.quantile(0.99),
            "lossy p99 {} !> clean p99 {}",
            lossy.hop.quantile(0.99),
            clean.hop.quantile(0.99)
        );
        assert!(
            (lossy.hop.quantile(0.99) as f64) > 2.0 * lossy.hop.mean(),
            "retry tail should dominate the mean: p99 {} mean {}",
            lossy.hop.quantile(0.99),
            lossy.hop.mean()
        );
    }
}
