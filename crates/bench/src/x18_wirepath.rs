//! X18 — wire data plane: what batching the socket send path buys.
//!
//! A 32-sender burst pushes small frames from one [`SocketTransport`]
//! to another over a real loopback connection, twice: once with the
//! per-peer writer coalescing everything queued into one stream write
//! per wakeup (the shipped path), and once with coalescing disabled so
//! the writer drains exactly one frame per write — the one-syscall-
//! per-frame cost model the pre-batching transport paid. Same frames,
//! same sealing, same wire format; the only variable is how many
//! syscalls (and seal-buffer round trips) carry them.
//!
//! Reported per row: wall time for the burst, frames/s, the write()
//! count, and the mean frames-per-write the transport's own coalescing
//! counters observed. All numbers are wall-clock and machine-dependent;
//! the *ratio* between the coalesced and baseline rows is the result.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ajanta_crypto::cert::Certificate;
use ajanta_crypto::{DetRng, KeyPair, RootOfTrust};
use ajanta_naming::Urn;
use ajanta_net::secure::ChannelIdentity;
use ajanta_net::{NetAddr, SocketConfig, SocketTransport, Transport, TransportKind};

/// One burst measurement over one transport in one writer mode.
#[derive(Debug, Clone)]
pub struct WirePathRow {
    /// TCP loopback or Unix-domain.
    pub kind: TransportKind,
    /// Whether the writer coalesced (true) or ran the one-frame-per-
    /// write baseline (false).
    pub coalesced: bool,
    /// Concurrent sender threads.
    pub senders: usize,
    /// Frames the burst sent.
    pub frames_sent: u64,
    /// Frames the far side received before the deadline.
    pub frames_received: u64,
    /// Wall time from first send to last receive, ns.
    pub wall_ns: u64,
    /// Stream writes the sending transport issued for the burst.
    pub write_syscalls: u64,
    /// Frames those writes carried in total.
    pub frames_coalesced: u64,
}

impl WirePathRow {
    /// Received frames per wall-clock second.
    pub fn frames_per_s(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.frames_received as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// Mean frames carried per stream write.
    pub fn mean_frames_per_write(&self) -> f64 {
        if self.write_syscalls == 0 {
            return 0.0;
        }
        self.frames_coalesced as f64 / self.write_syscalls as f64
    }
}

/// Mints certified channel identities off one deterministic CA, same
/// shape as the runtime's world builder.
struct Authority {
    roots: RootOfTrust,
    ca: KeyPair,
    rng: DetRng,
    serial: u64,
}

impl Authority {
    fn new(seed: u64) -> Authority {
        let mut rng = DetRng::new(seed);
        let ca = KeyPair::generate(&mut rng);
        let mut roots = RootOfTrust::new();
        roots.trust("ca", ca.public);
        Authority {
            roots,
            ca,
            rng,
            serial: 0,
        }
    }

    fn bind(&mut self, name: &Urn, addr: &NetAddr) -> SocketTransport {
        let keys = KeyPair::generate(&mut self.rng);
        self.serial += 1;
        let cert = Certificate::issue(
            name.to_string(),
            keys.public,
            "ca",
            &self.ca,
            u64::MAX,
            self.serial,
            &mut self.rng,
        );
        let identity = ChannelIdentity {
            name: name.clone(),
            keys,
            chain: vec![cert],
        };
        let seed = self.rng.next_u64();
        SocketTransport::bind(
            addr,
            SocketConfig {
                identity,
                roots: self.roots.clone(),
                seed,
            },
        )
        .expect("bind")
    }
}

fn listen_addr(kind: TransportKind, tag: &str) -> NetAddr {
    match kind {
        TransportKind::Tcp => "tcp:127.0.0.1:0".parse().unwrap(),
        TransportKind::Uds => {
            let path =
                std::env::temp_dir().join(format!("ajanta-x18-{tag}-{}.sock", std::process::id()));
            let _ = std::fs::remove_file(&path);
            NetAddr::Uds(path)
        }
        TransportKind::Sim => unreachable!("x18 measures real sockets"),
    }
}

/// One burst: `senders` threads each fire `per_sender` sealed frames of
/// `payload_len` bytes at the far transport; the receiver drains until
/// all arrive (or a generous deadline passes — the transport is lossy
/// by contract, so the row records what actually landed).
fn trial(
    kind: TransportKind,
    coalesced: bool,
    senders: usize,
    per_sender: u64,
    payload_len: usize,
) -> WirePathRow {
    let mut auth = Authority::new(0x18_00 + kind as u64);
    let a_name = Urn::server("x18-a.test", ["s"]).unwrap();
    let b_name = Urn::server("x18-b.test", ["s"]).unwrap();
    let ta = Arc::new(auth.bind(&a_name, &listen_addr(kind, "a")));
    let tb = auth.bind(&b_name, &listen_addr(kind, "b"));
    ta.add_route(b_name.clone(), tb.local_addr());
    tb.add_route(a_name.clone(), ta.local_addr());
    ta.set_coalescing(coalesced);
    let eb = tb.attach(b_name.clone()).unwrap();

    // Warm the connection: dial + handshake happen once, outside the
    // timed region, exactly as a long-lived server pair would have them.
    ta.send_as(&a_name, &b_name, vec![0u8; payload_len])
        .unwrap();
    eb.recv_timeout(Duration::from_secs(10)).expect("warmup");
    ta.reset_stats();

    let total = senders as u64 * per_sender;
    let t0 = Instant::now();
    let handles: Vec<_> = (0..senders)
        .map(|_| {
            let ta = Arc::clone(&ta);
            let (from, to) = (a_name.clone(), b_name.clone());
            std::thread::spawn(move || {
                for _ in 0..per_sender {
                    ta.send_as(&from, &to, vec![7u8; payload_len]).unwrap();
                }
            })
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut received = 0u64;
    while received < total {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            break;
        }
        match eb.recv_timeout(left.min(Duration::from_millis(500))) {
            Ok(_) => received += 1,
            Err(_) if Instant::now() >= deadline => break,
            Err(_) => {}
        }
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    for h in handles {
        let _ = h.join();
    }
    let stats = ta.stats();
    ta.shutdown();
    tb.shutdown();

    WirePathRow {
        kind,
        coalesced,
        senders,
        frames_sent: total,
        frames_received: received,
        wall_ns,
        write_syscalls: stats.write_syscalls,
        frames_coalesced: stats.frames_coalesced,
    }
}

/// Runs the burst over TCP (and UDS where available), baseline first so
/// each coalesced row has its comparison partner.
pub fn run(senders: usize, per_sender: u64, payload_len: usize) -> Vec<WirePathRow> {
    let kinds: &[TransportKind] = if cfg!(unix) {
        &[TransportKind::Tcp, TransportKind::Uds]
    } else {
        &[TransportKind::Tcp]
    };
    let mut rows = Vec::new();
    for &kind in kinds {
        for coalesced in [false, true] {
            rows.push(trial(kind, coalesced, senders, per_sender, payload_len));
        }
    }
    rows
}

fn mode_label(coalesced: bool) -> &'static str {
    if coalesced {
        "coalesced"
    } else {
        "frame-per-write"
    }
}

/// Renders the table; the speedup column divides each coalesced row's
/// frames/s by its same-transport baseline row.
pub fn table(rows: &[WirePathRow], senders: usize, per_sender: u64, payload_len: usize) -> String {
    let baseline: std::collections::HashMap<&'static str, f64> = rows
        .iter()
        .filter(|r| !r.coalesced)
        .map(|r| (r.kind.as_str(), r.frames_per_s()))
        .collect();
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let speedup = if r.coalesced {
                match baseline.get(r.kind.as_str()) {
                    Some(b) if *b > 0.0 => format!("{:.2}x", r.frames_per_s() / b),
                    _ => "-".into(),
                }
            } else {
                "1.00x".into()
            };
            vec![
                r.kind.as_str().to_string(),
                mode_label(r.coalesced).to_string(),
                format!("{}/{}", r.frames_received, r.frames_sent),
                crate::fmt_ns(r.wall_ns as f64),
                format!("{:.0}", r.frames_per_s()),
                r.write_syscalls.to_string(),
                format!("{:.1}", r.mean_frames_per_write()),
                speedup,
            ]
        })
        .collect();
    crate::render_table(
        &format!(
            "X18 — wire data plane, {senders} senders × {per_sender} frames × \
             {payload_len} B payload (wall time; ratio is the result)"
        ),
        &[
            "transport",
            "writer mode",
            "received",
            "burst wall",
            "frames/s",
            "writes",
            "frames/write",
            "speedup",
        ],
        &rendered,
    )
}

/// Machine-readable summary for the CI artifact (`X18_JSON=<path>`).
pub fn json_summary(rows: &[WirePathRow]) -> String {
    let mut out = String::from("{\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"transport\": \"{}\", \"coalesced\": {}, \"senders\": {}, \
             \"frames_sent\": {}, \"frames_received\": {}, \"wall_ms\": {:.3}, \
             \"frames_per_s\": {:.1}, \"write_syscalls\": {}, \
             \"mean_frames_per_write\": {:.2}}}{}\n",
            r.kind.as_str(),
            r.coalesced,
            r.senders,
            r.frames_sent,
            r.frames_received,
            r.wall_ns as f64 / 1e6,
            r.frames_per_s(),
            r.write_syscalls,
            r.mean_frames_per_write(),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Small burst, both writer modes: everything lands, the counters
    /// account for every frame, and coalescing actually batches.
    #[test]
    fn burst_lands_and_counters_balance() {
        for row in run(4, 16, 64) {
            let label = format!("{} {}", row.kind.as_str(), mode_label(row.coalesced));
            assert_eq!(
                row.frames_received, row.frames_sent,
                "{label}: frames lost on loopback"
            );
            assert!(row.write_syscalls > 0, "{label}: no writes observed");
            assert_eq!(
                row.frames_coalesced, row.frames_sent,
                "{label}: coalescing counters missed frames"
            );
            if !row.coalesced {
                // Baseline drains exactly one frame per write.
                assert_eq!(
                    row.write_syscalls, row.frames_sent,
                    "{label}: baseline mode must pay one write per frame"
                );
            } else {
                assert!(
                    row.write_syscalls <= row.frames_sent,
                    "{label}: coalesced mode issued more writes than frames"
                );
            }
        }
    }

    #[test]
    fn distinct_transports_reported() {
        let rows = run(2, 4, 32);
        let kinds: HashSet<&str> = rows.iter().map(|r| r.kind.as_str()).collect();
        assert!(kinds.contains("tcp"));
        if cfg!(unix) {
            assert!(kinds.contains("uds"));
        }
        let json = json_summary(&rows);
        assert!(json.contains("\"transport\": \"tcp\""));
        assert!(json.contains("\"mean_frames_per_write\""));
    }
}
