//! X11 — the threat model exercised end-to-end (paper Section 2).
//!
//! Each attack class from the paper gets a trial: launch `n` agents
//! across an adversarial network and count what got through, what was
//! detected, and what leaked. Expected: tampering/forgery/replay are
//! detected 100%; dropping is silent loss (detectable only by timeout,
//! as the paper notes active deletion "is difficult to prevent
//! altogether"); the eavesdropper captures frames but never the agent's
//! carried secret.

use std::sync::Arc;
use std::time::Duration;

use ajanta_net::{Dropper, Eavesdropper, Forger, Replayer, Tamperer};
use ajanta_runtime::{Counter, Event, RejectKind, ReportStatus, World};
use ajanta_vm::{assemble, AgentImage, Value};

/// One attack trial's outcome.
#[derive(Debug, Clone)]
pub struct AttackRow {
    /// Attack class.
    pub attack: &'static str,
    /// Agents launched.
    pub launched: u64,
    /// Agents that completed normally.
    pub completed: u64,
    /// Rejections journaled across both servers (the `Rejections`
    /// counter — exact even past the journal's retention bound).
    pub detections: u64,
    /// Rejections classified as replay-class ([`RejectKind::Replay`])
    /// by the typed journal.
    pub replays: u64,
    /// Attack-specific note.
    pub note: String,
}

/// The carried secret the eavesdropper must never see in plaintext.
pub const SECRET: &[u8] = b"CARRIED-SECRET-4111111111111111";

fn secret_agent() -> AgentImage {
    let src = r#"
        module secretive
        global secret: bytes
        func run(arg: bytes) -> int
          gload secret
          blen
          ret
    "#;
    let module = assemble(src).unwrap();
    AgentImage {
        globals: vec![Value::Bytes(SECRET.to_vec())],
        module,
        entry: "run".into(),
    }
}

fn trial(
    attack: &'static str,
    n: u64,
    adversary: Option<Arc<dyn ajanta_net::Adversary>>,
    note_fn: impl FnOnce(&World, u64) -> String,
) -> AttackRow {
    let mut world = World::new(2);
    world.net.set_adversary(adversary);
    let mut owner = world.owner("victim");
    let home = world.server(0).name().clone();
    for _ in 0..n {
        let agent = owner.next_agent_name("secretive");
        let creds = owner.credentials(agent, home.clone(), ajanta_core::Rights::all(), u64::MAX);
        world
            .server(0)
            .launch(world.server(1).name().clone(), creds, secret_agent());
    }
    // Let everything settle: either n reports arrive or we time out
    // (expected under active attacks).
    let reports = world
        .server(0)
        .wait_reports(n as usize, Duration::from_secs(5));
    let completed = reports
        .iter()
        .filter(|r| matches!(r.status, ReportStatus::Completed(_)))
        .count() as u64;
    // Typed telemetry instead of string-matched event kinds: the
    // aggregate comes from O(1) counters, the replay classification from
    // matching journal records on their `RejectKind` variant.
    let (mut detections, mut replays) = (0u64, 0u64);
    for i in [0, 1] {
        let journal = world.server(i).journal();
        detections += journal.counter(Counter::Rejections);
        replays += journal
            .snapshot()
            .iter()
            .filter(|r| {
                matches!(
                    r.event,
                    Event::Rejected {
                        kind: RejectKind::Replay,
                        ..
                    }
                )
            })
            .count() as u64;
    }
    let note = note_fn(&world, completed);
    world.shutdown();
    AttackRow {
        attack,
        launched: n,
        completed,
        detections,
        replays,
        note,
    }
}

/// Runs all attack trials with `n` agents each.
pub fn run(n: u64) -> Vec<AttackRow> {
    let mut rows = Vec::new();

    rows.push(trial("none (control)", n, None, |_, _| {
        "all reports arrive".into()
    }));

    let eve = Arc::new(Eavesdropper::new());
    {
        let eve2 = Arc::clone(&eve);
        rows.push(trial("eavesdrop (passive)", n, Some(eve2), |_, _| {
            String::new()
        }));
        let last = rows.last_mut().expect("just pushed");
        last.note = format!(
            "{} frames captured; carried secret visible: {}",
            eve.frame_count(),
            if eve.saw_plaintext(SECRET) {
                "YES (leak!)"
            } else {
                "no"
            }
        );
    }

    let tamperer = Arc::new(Tamperer::new(0xBAD, 1.0));
    {
        let t2 = Arc::clone(&tamperer);
        rows.push(trial("tamper (active)", n, Some(t2), |_, _| String::new()));
        let last = rows.last_mut().expect("just pushed");
        last.note = format!("{} frames modified", tamperer.tampered_count());
    }

    let forger = Arc::new(Forger::new(0xF0E));
    {
        let f2 = Arc::clone(&forger);
        rows.push(trial("forge (active)", n, Some(f2), |_, _| String::new()));
        let last = rows.last_mut().expect("just pushed");
        last.note = format!(
            "{} forgeries injected; genuine traffic still delivered",
            forger.forged_count()
        );
    }

    let replayer = Arc::new(Replayer::new());
    {
        let r2 = Arc::clone(&replayer);
        rows.push(trial("replay (active)", n, Some(r2), |_, _| String::new()));
        let last = rows.last_mut().expect("just pushed");
        last.note = format!("{} replays injected", replayer.replayed_count());
    }

    let dropper = Arc::new(Dropper::new(0xD0, 1.0));
    {
        let d2 = Arc::clone(&dropper);
        rows.push(trial("drop (active deletion)", n, Some(d2), |_, _| {
            String::new()
        }));
        let last = rows.last_mut().expect("just pushed");
        last.note = format!(
            "{} messages deleted; loss is silent (timeout-detectable only)",
            dropper.dropped_count()
        );
    }

    rows
}

/// Renders the table.
pub fn table(n: u64) -> String {
    let rows = run(n);
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.attack.to_string(),
                r.launched.to_string(),
                r.completed.to_string(),
                r.detections.to_string(),
                r.replays.to_string(),
                r.note.clone(),
            ]
        })
        .collect();
    crate::render_table(
        &format!("X11 — threat model, {n} agents per trial"),
        &[
            "attack",
            "launched",
            "completed",
            "rejections",
            "replay-class",
            "notes",
        ],
        &rendered,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_completes_and_attacks_are_detected() {
        let rows = run(3);
        let by = |n: &str| rows.iter().find(|r| r.attack.starts_with(n)).unwrap();

        assert_eq!(by("none").completed, 3);
        assert_eq!(by("none").detections, 0);

        // Passive: everything completes, nothing leaks.
        let eve = by("eavesdrop");
        assert_eq!(eve.completed, 3);
        assert!(eve.note.contains("visible: no"), "{}", eve.note);

        // Tampering: nothing completes, every frame detected.
        let tamper = by("tamper");
        assert_eq!(tamper.completed, 0);
        assert!(tamper.detections >= 3);

        // Forgery: genuine agents still complete; forgeries detected.
        let forge = by("forge");
        assert_eq!(forge.completed, 3);
        assert!(forge.detections >= 3);

        // Replay: originals complete; replays rejected as events, and the
        // typed journal files them under the replay class specifically.
        let replay = by("replay");
        assert_eq!(replay.completed, 3);
        assert!(replay.detections >= 3);
        assert!(
            replay.replays >= 3,
            "replay detections should be replay-class, got {replay:?}"
        );

        // The control run journals no replay-class rejections at all.
        assert_eq!(by("none").replays, 0);

        // Dropping: silent loss.
        let drop = by("drop");
        assert_eq!(drop.completed, 0);
    }
}
