//! X9 — RPC vs REV vs mobile agents (paper Section 1; Harrison et al.).
//!
//! The claim: *"by moving processing functions close to where the
//! information is stored, [the agent paradigm] reduces communication
//! between the client and the server"*. Five contenders perform the same
//! task — find all hot records across `n_servers` record stores — and we
//! account every byte and virtual nanosecond on the wire:
//!
//! * **rpc-per-record** — fetch each record individually, filter at the
//!   client (fine-grained RPC; many round trips);
//! * **rpc-bulk** — fetch whole stores, filter at the client (one round
//!   trip per server, all data crosses);
//! * **rpc-server-filter** — server-side `scan` via RPC (the server
//!   cooperates; lower bound for client–server);
//! * **rev** — ship filter code to each server, matches come back;
//! * **agent** — one collector agent tours all servers and reports home.
//!
//! All five use the same sealed-datagram security, the same stores, the
//! same link model; byte counts and virtual times are exact.

use std::sync::Arc;

use ajanta_crypto::cert::Certificate;
use ajanta_crypto::{DetRng, KeyPair, RootOfTrust};
use ajanta_naming::Urn;
use ajanta_net::secure::ChannelIdentity;
use ajanta_net::{LinkModel, SimNet};
use ajanta_vm::Value;
use ajanta_workloads::records::{record_population, selector_for, RecordSpec};

use ajanta_baselines::{filter_program, RecordStore, RevClient, RevServer, RpcClient, RpcServer};

/// One contender's accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ParadigmRow {
    /// Contender name.
    pub paradigm: &'static str,
    /// Payload bytes that crossed the network.
    pub bytes: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Virtual completion time, ms.
    pub virtual_ms: f64,
    /// Matches found (must agree across contenders).
    pub matches: usize,
}

/// The scenario: `n_servers` stores generated from `spec` (each server
/// gets a distinct seed), linked by `link`.
pub struct Scenario {
    /// Base record population parameters.
    pub spec: RecordSpec,
    /// Number of store-holding servers.
    pub n_servers: usize,
    /// Link model between all parties.
    pub link: LinkModel,
}

fn populations(s: &Scenario) -> Vec<Vec<Vec<u8>>> {
    (0..s.n_servers)
        .map(|k| {
            record_population(&RecordSpec {
                seed: s.spec.seed + k as u64,
                ..s.spec
            })
        })
        .collect()
}

fn count_matches(blob: &[u8]) -> usize {
    if blob.is_empty() {
        return 0;
    }
    blob.split(|&b| b == b'\n').count()
}

fn client_filter(blob: &[u8], selector: &[u8]) -> usize {
    blob.split(|&b| b == b'\n')
        .filter(|line| line.windows(selector.len()).any(|w| w == selector))
        .count()
}

/// PKI boilerplate for the RPC/REV rigs.
struct Rig {
    net: SimNet,
    roots: RootOfTrust,
    server_ids: Vec<(ChannelIdentity, KeyPair)>,
    client_id: (ChannelIdentity, KeyPair),
}

fn rig(s: &Scenario, seed: u64) -> Rig {
    let mut rng = DetRng::new(seed);
    let net = SimNet::new(s.link, rng.next_u64());
    let ca = KeyPair::generate(&mut rng);
    let mut roots = RootOfTrust::new();
    roots.trust("ca", ca.public);
    let mk = |name: &Urn, serial: u64, rng: &mut DetRng| {
        let keys = KeyPair::generate(rng);
        let cert = Certificate::issue(
            name.to_string(),
            keys.public,
            "ca",
            &ca,
            u64::MAX,
            serial,
            rng,
        );
        (
            ChannelIdentity {
                name: name.clone(),
                keys: keys.clone(),
                chain: vec![cert],
            },
            keys,
        )
    };
    let server_ids: Vec<_> = (0..s.n_servers)
        .map(|k| {
            let name = Urn::server(format!("site{k}.org"), ["svc"]).unwrap();
            mk(&name, k as u64 + 1, &mut rng)
        })
        .collect();
    let client_name = Urn::server("client.org", ["c"]).unwrap();
    let client_id = mk(&client_name, 1000, &mut rng);
    Rig {
        net,
        roots,
        server_ids,
        client_id,
    }
}

fn store_for(pop: Vec<Vec<u8>>) -> Arc<RecordStore> {
    RecordStore::new(
        Urn::resource("stores.org", ["db"]).unwrap(),
        Urn::owner("stores.org", ["admin"]).unwrap(),
        pop,
    )
}

/// Runs one RPC variant; `mode` ∈ {per-record, bulk, server-filter}.
fn run_rpc(s: &Scenario, mode: &'static str) -> ParadigmRow {
    let r = rig(s, 0x99C);
    let pops = populations(s);
    let selector = selector_for();

    let servers: Vec<RpcServer> = r
        .server_ids
        .iter()
        .zip(pops)
        .enumerate()
        .map(|(k, ((id, keys), pop))| {
            RpcServer::start(
                &r.net,
                id.clone(),
                keys.clone(),
                r.roots.clone(),
                store_for(pop),
                1_000 + k as u64,
            )
        })
        .collect();
    let mut client = RpcClient::new(
        &r.net,
        r.client_id.0.clone(),
        r.client_id.1.clone(),
        r.roots.clone(),
        2_000,
    );
    r.net.reset_stats();
    let t0 = r.net.clock().now();

    let mut matches = 0usize;
    for (id, keys) in &r.server_ids {
        let key = keys.public;
        match mode {
            "per-record" => {
                let n = client
                    .call(&id.name, key, "count", vec![])
                    .unwrap()
                    .as_int()
                    .unwrap();
                for i in 0..n {
                    let rec = client
                        .call(&id.name, key, "get", vec![Value::Int(i)])
                        .unwrap();
                    let rec = rec.as_bytes().unwrap();
                    if rec.windows(selector.len()).any(|w| w == selector) {
                        matches += 1;
                    }
                }
            }
            "bulk" => {
                let blob = client
                    .call(&id.name, key, "scan", vec![Value::str("")])
                    .unwrap();
                matches += client_filter(blob.as_bytes().unwrap(), selector);
            }
            "server-filter" => {
                let blob = client
                    .call(&id.name, key, "scan", vec![Value::Bytes(selector.to_vec())])
                    .unwrap();
                matches += count_matches(blob.as_bytes().unwrap());
            }
            other => unreachable!("unknown rpc mode {other}"),
        }
    }

    let stats = r.net.stats();
    let virtual_ms = (r.net.clock().now() - t0) as f64 / 1e6;
    for server in servers {
        server.stop();
    }
    ParadigmRow {
        paradigm: match mode {
            "per-record" => "rpc-per-record",
            "bulk" => "rpc-bulk",
            _ => "rpc-server-filter",
        },
        bytes: stats.bytes_delivered,
        messages: stats.messages_delivered,
        virtual_ms,
        matches,
    }
}

fn run_rev(s: &Scenario) -> ParadigmRow {
    let r = rig(s, 0xEE7);
    let pops = populations(s);
    let selector = selector_for();
    let servers: Vec<RevServer> = r
        .server_ids
        .iter()
        .zip(pops)
        .enumerate()
        .map(|(k, ((id, keys), pop))| {
            RevServer::start(
                &r.net,
                id.clone(),
                keys.clone(),
                r.roots.clone(),
                store_for(pop),
                ajanta_vm::Limits::default(),
                3_000 + k as u64,
            )
        })
        .collect();
    let mut client = RevClient::new(
        &r.net,
        r.client_id.0.clone(),
        r.client_id.1.clone(),
        r.roots.clone(),
        4_000,
    );
    r.net.reset_stats();
    let t0 = r.net.clock().now();

    let mut matches = 0usize;
    let program = filter_program();
    for (id, keys) in &r.server_ids {
        let blob = client
            .evaluate(
                &id.name,
                keys.public,
                program.clone(),
                "filter",
                selector.to_vec(),
            )
            .unwrap();
        matches += count_matches(blob.as_bytes().unwrap());
    }

    let stats = r.net.stats();
    let virtual_ms = (r.net.clock().now() - t0) as f64 / 1e6;
    for server in servers {
        server.stop();
    }
    ParadigmRow {
        paradigm: "rev",
        bytes: stats.bytes_delivered,
        messages: stats.messages_delivered,
        virtual_ms,
        matches,
    }
}

fn run_agent(s: &Scenario) -> ParadigmRow {
    use ajanta_runtime::itinerary::Itinerary;
    use ajanta_runtime::World;
    use ajanta_workloads::collector_agent;

    // Server 0 is the client's home; servers 1..=n hold the stores.
    let mut world = World::builder(s.n_servers + 1).link(s.link).build();
    let pops = populations(s);
    for (k, pop) in pops.into_iter().enumerate() {
        let guarded =
            ajanta_core::Guarded::new(store_for(pop), ajanta_core::ProxyPolicy::default());
        world.server(k + 1).register_resource(guarded).unwrap();
    }
    let mut owner = world.owner("collector");
    let agent = owner.next_agent_name("collector");
    let home = world.server(0).name().clone();
    let creds = owner.credentials(agent, home, ajanta_core::Rights::all(), u64::MAX);

    let stops: Vec<Urn> = (2..=s.n_servers)
        .map(|k| world.server(k).name().clone())
        .collect();
    let itinerary = Itinerary::new(stops);
    let store_urn = Urn::resource("stores.org", ["db"]).unwrap();
    let image = collector_agent(&store_urn, selector_for(), &itinerary);

    world.net.reset_stats();
    let t0 = world.net.clock().now();
    world
        .server(0)
        .launch(world.server(1).name().clone(), creds, image);

    let reports = world
        .server(0)
        .wait_reports(1, std::time::Duration::from_secs(30));
    assert_eq!(reports.len(), 1, "agent never reported: {reports:?}");
    let matches = match &reports[0].status {
        ajanta_runtime::ReportStatus::Completed(text) => {
            if text.is_empty() {
                0
            } else {
                text.lines().count()
            }
        }
        other => panic!("agent failed: {other:?}"),
    };
    let stats = world.net.stats();
    let virtual_ms = (world.net.clock().now() - t0) as f64 / 1e6;
    world.shutdown();
    ParadigmRow {
        paradigm: "mobile agent",
        bytes: stats.bytes_delivered,
        messages: stats.messages_delivered,
        virtual_ms,
        matches,
    }
}

/// Runs all five contenders on one scenario.
pub fn run(s: &Scenario) -> Vec<ParadigmRow> {
    vec![
        run_rpc(s, "per-record"),
        run_rpc(s, "bulk"),
        run_rpc(s, "server-filter"),
        run_rev(s),
        run_agent(s),
    ]
}

/// Renders the table for one scenario.
pub fn table(s: &Scenario, label: &str) -> String {
    let rows = run(s);
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.paradigm.to_string(),
                crate::fmt_bytes(r.bytes),
                r.messages.to_string(),
                format!("{:.2} ms", r.virtual_ms),
                r.matches.to_string(),
            ]
        })
        .collect();
    crate::render_table(
        &format!("X9 — paradigms: {label}"),
        &[
            "paradigm",
            "bytes on wire",
            "messages",
            "virtual time",
            "matches",
        ],
        &rendered,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> Scenario {
        Scenario {
            spec: RecordSpec {
                count: 60,
                record_len: 96,
                selectivity: 0.1,
                seed: 11,
            },
            n_servers: 2,
            link: LinkModel::wan(),
        }
    }

    #[test]
    fn all_paradigms_find_the_same_matches() {
        let rows = run(&scenario());
        let expected = rows[0].matches;
        assert_eq!(expected, 12, "2 servers × 6 hot records");
        for r in &rows {
            assert_eq!(r.matches, expected, "{} disagrees", r.paradigm);
        }
    }

    #[test]
    fn shapes_match_harrisons_argument() {
        let rows = run(&scenario());
        let by = |n: &str| rows.iter().find(|r| r.paradigm == n).unwrap().clone();
        let per_record = by("rpc-per-record");
        let bulk = by("rpc-bulk");
        let rev = by("rev");
        let agent = by("mobile agent");

        // Chatty RPC uses the most messages by far.
        assert!(per_record.messages > bulk.messages * 10);
        // At low selectivity, shipping code beats shipping all the data.
        assert!(
            rev.bytes < bulk.bytes,
            "rev {} vs bulk {}",
            rev.bytes,
            bulk.bytes
        );
        assert!(
            agent.bytes < bulk.bytes,
            "agent {} vs bulk {}",
            agent.bytes,
            bulk.bytes
        );
        // Chatty RPC's round trips dominate virtual time on a WAN.
        assert!(per_record.virtual_ms > rev.virtual_ms);
        assert!(per_record.virtual_ms > agent.virtual_ms);
    }
}
