//! X10 — agent transfer cost vs. mobile-state size.
//!
//! The transfer pipeline per hop: image serialization → sealing
//! (ephemeral DH + SHA-CTR + HMAC + signature) → link transit →
//! open → credential re-verification → byte-code re-verification →
//! admission. This experiment sweeps the carried state size and also
//! micro-measures the crypto share so EXPERIMENTS.md can report how the
//! security cost amortizes as agents grow.

use std::time::Instant;

use ajanta_crypto::cert::Certificate;
use ajanta_crypto::{DetRng, KeyPair, RootOfTrust};
use ajanta_naming::Urn;
use ajanta_net::secure::ChannelIdentity;
use ajanta_net::{LinkModel, ReplayGuard, SealedDatagram};
use ajanta_runtime::itinerary::Itinerary;
use ajanta_runtime::World;
use ajanta_wire::Wire;
use ajanta_workloads::payload_agent;

/// One state size's measurements.
#[derive(Debug, Clone)]
pub struct TransferRow {
    /// Carried state bytes.
    pub state_bytes: usize,
    /// Encoded image size.
    pub image_bytes: usize,
    /// Bytes on the wire for the full round (launch + hop + report).
    pub wire_bytes: u64,
    /// Virtual end-to-end time, ms.
    pub virtual_ms: f64,
    /// Real (wall) end-to-end time, ms — includes crypto & verification.
    pub wall_ms: f64,
    /// Micro: seal+open cost for a payload of the image's size, ns.
    pub crypto_ns: f64,
}

/// Sweeps the given state sizes (one hop each).
pub fn run(sizes: &[usize]) -> Vec<TransferRow> {
    sizes
        .iter()
        .map(|&state_bytes| {
            let mut world = World::builder(2).link(LinkModel::wan()).build();
            let mut owner = world.owner("carrier");
            let agent = owner.next_agent_name("payload");
            let home = world.server(0).name().clone();
            let creds = owner.credentials(agent, home, ajanta_core::Rights::all(), u64::MAX);
            let itinerary = Itinerary::default(); // land at server 1, stop
            let image = payload_agent(state_bytes, &itinerary);
            let image_bytes = image.encoded_len();

            world.net.reset_stats();
            let t0v = world.net.clock().now();
            let t0w = Instant::now();
            world
                .server(0)
                .launch(world.server(1).name().clone(), creds, image);
            let reports = world
                .server(0)
                .wait_reports(1, std::time::Duration::from_secs(30));
            assert_eq!(reports.len(), 1);
            let wall_ms = t0w.elapsed().as_secs_f64() * 1e3;
            let virtual_ms = (world.net.clock().now() - t0v) as f64 / 1e6;
            let stats = world.net.stats();
            world.shutdown();

            TransferRow {
                state_bytes,
                image_bytes,
                wire_bytes: stats.bytes_delivered,
                virtual_ms,
                wall_ms,
                crypto_ns: crypto_cost_ns(image_bytes),
            }
        })
        .collect()
}

/// Micro: seal + open for a payload of `size` bytes.
pub fn crypto_cost_ns(size: usize) -> f64 {
    let mut rng = DetRng::new(0xC0DE);
    let ca = KeyPair::generate(&mut rng);
    let mut roots = RootOfTrust::new();
    roots.trust("ca", ca.public);
    let a_name = Urn::server("a.org", ["a"]).unwrap();
    let b_name = Urn::server("b.org", ["b"]).unwrap();
    let a_keys = KeyPair::generate(&mut rng);
    let b_keys = KeyPair::generate(&mut rng);
    let a_cert = Certificate::issue(
        a_name.to_string(),
        a_keys.public,
        "ca",
        &ca,
        u64::MAX,
        1,
        &mut rng,
    );
    let b_cert = Certificate::issue(
        b_name.to_string(),
        b_keys.public,
        "ca",
        &ca,
        u64::MAX,
        2,
        &mut rng,
    );
    let a = ChannelIdentity {
        name: a_name,
        keys: a_keys,
        chain: vec![a_cert],
    };
    let b = ChannelIdentity {
        name: b_name.clone(),
        keys: b_keys.clone(),
        chain: vec![b_cert],
    };
    let payload: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();

    let iters = 20u32;
    let start = Instant::now();
    for i in 0..iters {
        let d = SealedDatagram::seal(&a, &b_name, b_keys.public, &payload, u64::from(i), &mut rng);
        let bytes = d.to_bytes();
        let d2 = SealedDatagram::from_bytes(&bytes).unwrap();
        let mut guard = ReplayGuard::new(u64::MAX / 4);
        d2.open(&b, &b_keys, &roots, u64::from(i), &mut guard)
            .unwrap();
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

/// Renders the table.
pub fn table(sizes: &[usize]) -> String {
    let rows = run(sizes);
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                crate::fmt_bytes(r.state_bytes as u64),
                crate::fmt_bytes(r.image_bytes as u64),
                crate::fmt_bytes(r.wire_bytes),
                format!("{:.2} ms", r.virtual_ms),
                format!("{:.2} ms", r.wall_ms),
                crate::fmt_ns(r.crypto_ns),
            ]
        })
        .collect();
    crate::render_table(
        "X10 — transfer cost vs mobile-state size (one hop, WAN link)",
        &[
            "carried state",
            "image size",
            "bytes on wire",
            "virtual time",
            "wall time",
            "seal+open (crypto share)",
        ],
        &rendered,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_grows_linearly_with_state() {
        let rows = run(&[0, 50_000]);
        assert!(rows[1].image_bytes > rows[0].image_bytes + 49_000);
        assert!(rows[1].wire_bytes > rows[0].wire_bytes + 49_000);
        // Virtual time grows with serialization over the WAN's bandwidth.
        assert!(rows[1].virtual_ms > rows[0].virtual_ms);
    }

    #[test]
    fn crypto_share_shrinks_relatively() {
        // Per-byte crypto cost is roughly flat, so the crypto share of a
        // bigger transfer is not disproportionately larger.
        let small = crypto_cost_ns(1_000);
        let large = crypto_cost_ns(100_000);
        assert!(
            large < small * 300.0,
            "crypto cost blew up: {small} -> {large}"
        );
    }
}
