//! X12 — multi-agent isolation and server throughput (Section 5.3).
//!
//! N agents execute concurrently on one server, each in its own
//! protection domain and name-space. Measured: wall-clock completion,
//! throughput, and the isolation invariants (every agent sees only its
//! own state; the domain database is empty afterwards).

use std::time::{Duration, Instant};

use ajanta_runtime::{Counter, ReportStatus, World};
use ajanta_vm::{assemble, AgentImage, Value};

/// One concurrency level's measurements.
#[derive(Debug, Clone)]
pub struct IsolationRow {
    /// Concurrent agents.
    pub agents: usize,
    /// Agents the hosting server admitted, from its journal's typed
    /// `AgentsAdmitted` counter (must equal `agents`).
    pub admitted: u64,
    /// Wall time until every agent reported, ms.
    pub wall_ms: f64,
    /// VM loop-iterations completed per second across all agents
    /// (work/s). Wall time includes the fixed launch/report overhead, so
    /// agents/s would *rise* with the batch size even at flat capacity;
    /// work/s makes rows comparable.
    pub throughput: f64,
    /// Scheduler pool width the world ran on.
    pub workers: usize,
    /// Completed agents per worker-core per second — throughput
    /// normalized by the pool width, so rows stay comparable across
    /// machines (raw agents/s scales with however many cores the host
    /// happens to have).
    pub agents_per_core_s: f64,
    /// All agents computed their own-id-derived answer (no cross-talk).
    pub isolated: bool,
    /// Resident agents after completion (must be 0).
    pub residue: usize,
}

/// An agent that computes a value derived from its private seed global —
/// if name-spaces or globals leaked between agents, answers would
/// collide.
fn compute_agent(seed: i64, iters: i64) -> AgentImage {
    let src = r#"
        module compute
        global seed: int
        global iters: int

        func run(arg: bytes) -> int
          locals acc: int, i: int
          gload seed
          store acc
          gload iters
          store i
        loop:
          load i
          jz done
          load acc
          push 1103515245
          mul
          push 12345
          add
          store acc
          load i
          push 1
          sub
          store i
          jump loop
        done:
          load acc
          ret
    "#;
    let module = assemble(src).unwrap();
    AgentImage {
        globals: vec![Value::Int(seed), Value::Int(iters)],
        module,
        entry: "run".into(),
    }
}

/// The reference computation (what each agent must independently produce).
fn expected(seed: i64, iters: i64) -> i64 {
    let mut acc = seed;
    for _ in 0..iters {
        acc = acc.wrapping_mul(1103515245).wrapping_add(12345);
    }
    acc
}

/// Runs the sweep over agent counts; each agent spins `iters` iterations.
pub fn run(agent_counts: &[usize], iters: i64) -> Vec<IsolationRow> {
    agent_counts
        .iter()
        .map(|&n| {
            let mut world = World::new(2);
            let mut owner = world.owner("swarm");
            let home = world.server(0).name().clone();
            let t0 = Instant::now();
            for i in 0..n {
                let agent = owner.next_agent_name("compute");
                let creds =
                    owner.credentials(agent, home.clone(), ajanta_core::Rights::all(), u64::MAX);
                world.server(0).launch(
                    world.server(1).name().clone(),
                    creds,
                    compute_agent(i as i64 + 1, iters),
                );
            }
            let reports = world.server(0).wait_reports(n, Duration::from_secs(60));
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

            // Every agent must report exactly its own seed's answer.
            let mut answers: Vec<i64> = reports
                .iter()
                .filter_map(|r| match &r.status {
                    ReportStatus::Completed(text) => text.parse().ok(),
                    _ => None,
                })
                .collect();
            answers.sort_unstable();
            let mut want: Vec<i64> = (1..=n as i64).map(|s| expected(s, iters)).collect();
            want.sort_unstable();
            let isolated = answers == want;
            let residue = world.server(1).resident_agents();
            let admitted = world.server(1).journal().counter(Counter::AgentsAdmitted);
            let workers = world.scheduler().workers();
            world.shutdown();

            IsolationRow {
                agents: n,
                admitted,
                wall_ms,
                throughput: (n as f64 * iters as f64) / (wall_ms / 1e3),
                workers,
                agents_per_core_s: n as f64 / (wall_ms / 1e3) / workers as f64,
                isolated,
                residue,
            }
        })
        .collect()
}

/// Renders the table.
pub fn table(agent_counts: &[usize], iters: i64) -> String {
    let rows = run(agent_counts, iters);
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.agents.to_string(),
                r.admitted.to_string(),
                format!("{:.1} ms", r.wall_ms),
                format!("{:.2} Miters/s", r.throughput / 1e6),
                format!("{:.0}", r.agents_per_core_s),
                if r.isolated {
                    "yes".into()
                } else {
                    "VIOLATED".into()
                },
                r.residue.to_string(),
            ]
        })
        .collect();
    crate::render_table(
        &format!("X12 — concurrent agents on one server ({iters} loop iterations each)"),
        &[
            "agents",
            "admitted",
            "wall time",
            "work rate",
            "agents/core/s",
            "isolation held",
            "residue",
        ],
        &rendered,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolation_holds_under_concurrency() {
        let rows = run(&[1, 8, 32], 5_000);
        for r in &rows {
            assert!(r.isolated, "{} agents: isolation violated", r.agents);
            assert_eq!(r.residue, 0);
            // The journal's lifecycle counter agrees with the launch count.
            assert_eq!(r.admitted, r.agents as u64);
        }
    }
}
