//! X8 — identity-based capability confinement (Section 5.5).
//!
//! *"Even though the reference to a proxy is like a capability, we can
//! limit its propagation from one agent to another by checking whether
//! the invoker of the proxy belongs to the protection domain to which it
//! was originally granted."*
//!
//! Measures (a) what the confinement check costs on the happy path (it is
//! part of every call), and (b) that a leaked proxy is rejected for a
//! non-holder, 100% of the time.

use std::sync::Arc;
use std::time::Instant;

use ajanta_core::{AccessError, AccessProtocol, DomainId};
use ajanta_workloads::records::RecordSpec;

use crate::fixtures;

/// The experiment's outputs.
#[derive(Debug, Clone)]
pub struct ConfinementResult {
    /// Per-call cost for the legitimate holder, ns.
    pub holder_call_ns: f64,
    /// Per-call cost of a rejected stolen-proxy call, ns.
    pub thief_call_ns: f64,
    /// Stolen-capability attempts made.
    pub theft_attempts: u64,
    /// Stolen-capability attempts rejected.
    pub theft_rejected: u64,
}

/// Runs with `calls` invocations per measurement.
pub fn run(calls: u64) -> ConfinementResult {
    let spec = RecordSpec {
        count: 16,
        ..Default::default()
    };
    let m = fixtures::mechanisms(&spec);
    let rq = fixtures::requester();
    let proxy = Arc::clone(&m.guarded).get_proxy(&rq, 0).unwrap();
    let thief = DomainId(999);

    let start = Instant::now();
    for _ in 0..calls {
        proxy.invoke(rq.domain, "count", &[], 0).unwrap();
    }
    let holder_call_ns = start.elapsed().as_nanos() as f64 / calls as f64;

    // The stolen reference: same proxy object, different domain.
    let leaked = proxy.clone();
    let mut rejected = 0;
    let start = Instant::now();
    for _ in 0..calls {
        match leaked.invoke(thief, "count", &[], 0) {
            Err(AccessError::NotHolder { .. }) => rejected += 1,
            other => panic!("theft not rejected: {other:?}"),
        }
    }
    let thief_call_ns = start.elapsed().as_nanos() as f64 / calls as f64;

    ConfinementResult {
        holder_call_ns,
        thief_call_ns,
        theft_attempts: calls,
        theft_rejected: rejected,
    }
}

/// Renders the table.
pub fn table(calls: u64) -> String {
    let r = run(calls);
    crate::render_table(
        &format!("X8 — capability confinement ({calls} calls each)"),
        &["measurement", "value"],
        &[
            vec![
                "holder call (check passes)".into(),
                crate::fmt_ns(r.holder_call_ns),
            ],
            vec![
                "stolen-proxy call (rejected)".into(),
                crate::fmt_ns(r.thief_call_ns),
            ],
            vec!["theft attempts".into(), r.theft_attempts.to_string()],
            vec![
                "theft rejected".into(),
                format!(
                    "{} ({:.0}%)",
                    r.theft_rejected,
                    100.0 * r.theft_rejected as f64 / r.theft_attempts as f64
                ),
            ],
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confinement_is_total() {
        let r = run(500);
        assert_eq!(r.theft_attempts, r.theft_rejected);
        // Rejection is cheap — it happens before any resource work.
        assert!(r.thief_call_ns < r.holder_call_ns * 10.0 + 2_000.0);
    }
}
