//! Shared experiment fixtures: stores, requesters, mechanisms.

use std::sync::Arc;

use ajanta_baselines::{DualEnv, RecordStore, SecurityManagerGate, WrappedResource};
use ajanta_core::{
    DomainId, Guarded, PrincipalPattern, ProxyPolicy, Requester, Rights, SecurityPolicy,
};
use ajanta_naming::Urn;
use ajanta_workloads::records::{record_population, RecordSpec};

/// The well-known store name every fixture registers under.
pub fn store_name() -> Urn {
    Urn::resource("stores.org", ["db"]).unwrap()
}

/// A deterministic store.
pub fn store(spec: &RecordSpec) -> Arc<RecordStore> {
    RecordStore::new(
        store_name(),
        Urn::owner("stores.org", ["admin"]).unwrap(),
        record_population(spec),
    )
}

/// The canonical experiment principals.
pub fn agent_urn() -> Urn {
    Urn::agent("users.org", ["bench", "1"]).unwrap()
}

/// The owner behind [`agent_urn`].
pub fn owner_urn() -> Urn {
    Urn::owner("users.org", ["bench"]).unwrap()
}

/// A requester with full rights in domain 1.
pub fn requester() -> Requester {
    Requester {
        agent: agent_urn(),
        owner: owner_urn(),
        domain: DomainId(1),
        rights: Rights::all(),
    }
}

/// How many decoy principals populate ACLs and policies — an "open
/// server" has many known principals, and per-call identity evaluation
/// must scan past them. This is the population the paper's argument is
/// about; a one-entry ACL would make every mechanism look cheap.
pub const DECOY_PRINCIPALS: usize = 64;

/// A permissive policy naming the bench owner explicitly — rule-list and
/// group scans execute realistically (an `Anyone` rule would short-circuit
/// the cost being measured).
pub fn bench_policy() -> SecurityPolicy {
    let mut policy = SecurityPolicy::new();
    // Decoy rules so per-call policy evaluation has a realistic rule list
    // to scan.
    for i in 0..DECOY_PRINCIPALS {
        policy.add_rule(
            PrincipalPattern::Exact(Urn::owner("users.org", [format!("decoy{i}")]).unwrap()),
            Rights::on_resource(Urn::resource("stores.org", [format!("other{i}")]).unwrap()),
        );
    }
    policy.add_rule(
        PrincipalPattern::Exact(owner_urn()),
        Rights::on_resource(store_name()),
    );
    policy
}

/// All five access mechanisms over the same store.
pub struct Mechanisms {
    /// The raw, unprotected resource (floor).
    pub direct: Arc<RecordStore>,
    /// The paper's proxy path (via `Guarded::get_proxy`).
    pub guarded: Arc<Guarded<RecordStore>>,
    /// Wrapper + per-call ACL.
    pub wrapper: Arc<WrappedResource>,
    /// Central security-manager gate.
    pub gate: Arc<SecurityManagerGate>,
    /// Safe/trusted dual environment.
    pub dualenv: DualEnv,
}

/// Builds every mechanism around one store population, with the default
/// decoy-principal count.
pub fn mechanisms(spec: &RecordSpec) -> Mechanisms {
    mechanisms_with_decoys(spec, DECOY_PRINCIPALS)
}

/// Like [`mechanisms`], with an explicit principal population — the knob
/// the X4b ablation sweeps.
pub fn mechanisms_with_decoys(spec: &RecordSpec, decoys: usize) -> Mechanisms {
    let policy = || {
        let mut policy = SecurityPolicy::new();
        for i in 0..decoys {
            policy.add_rule(
                PrincipalPattern::Exact(Urn::owner("users.org", [format!("decoy{i}")]).unwrap()),
                Rights::on_resource(Urn::resource("stores.org", [format!("other{i}")]).unwrap()),
            );
        }
        policy.add_rule(
            PrincipalPattern::Exact(owner_urn()),
            Rights::on_resource(store_name()),
        );
        policy
    };
    let direct = store(spec);
    let guarded = Guarded::new(Arc::clone(&direct), ProxyPolicy::default());
    let wrapper = WrappedResource::new(direct.clone() as Arc<dyn ajanta_core::Resource>);
    for i in 0..decoys {
        wrapper.grant(
            Urn::owner("users.org", [format!("decoy{i}")]).unwrap(),
            Rights::on_resource(Urn::resource("stores.org", [format!("other{i}")]).unwrap()),
        );
    }
    wrapper.grant(owner_urn(), Rights::all());
    let gate = SecurityManagerGate::new(policy());
    gate.add_resource(direct.clone() as Arc<dyn ajanta_core::Resource>);
    let dualenv = DualEnv::start(
        policy(),
        vec![direct.clone() as Arc<dyn ajanta_core::Resource>],
    );
    Mechanisms {
        direct,
        guarded,
        wrapper,
        gate,
        dualenv,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajanta_core::AccessProtocol;
    use ajanta_vm::Value;

    #[test]
    fn all_mechanisms_agree_on_results() {
        let spec = RecordSpec {
            count: 50,
            ..Default::default()
        };
        let m = mechanisms(&spec);
        let expected = Value::Int(50);

        use ajanta_core::Resource;
        assert_eq!(m.direct.invoke("count", &[]).unwrap(), expected);

        let rq = requester();
        let proxy = Arc::clone(&m.guarded).get_proxy(&rq, 0).unwrap();
        assert_eq!(proxy.invoke(rq.domain, "count", &[], 0).unwrap(), expected);

        assert_eq!(
            m.wrapper.invoke(&owner_urn(), "count", &[]).unwrap(),
            expected
        );
        assert_eq!(
            m.gate
                .invoke(&agent_urn(), &owner_urn(), &store_name(), "count", &[])
                .unwrap(),
            expected
        );
        assert_eq!(
            m.dualenv
                .invoke(&agent_urn(), &owner_urn(), &store_name(), "count", &[])
                .unwrap(),
            expected
        );
    }
}
