//! X5 — proxy-per-agent scaling (Section 5.4's trade-off).
//!
//! *"Only one wrapper exists for each resource object. In contrast, when
//! proxies are used, a proxy instance must be created for each agent that
//! accesses the resource."* This experiment quantifies that cost: total
//! creation time and live objects for N agents under each design.

use std::sync::Arc;
use std::time::Instant;

use ajanta_core::{AccessProtocol, DomainId, Requester, Rights};
use ajanta_workloads::records::RecordSpec;

use crate::fixtures;

/// One population size's measurements.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Number of concurrently served agents.
    pub agents: usize,
    /// Total proxy-creation time for all agents, ns.
    pub proxy_total_ns: f64,
    /// Live proxy objects.
    pub proxy_objects: usize,
    /// Total wrapper ACL-entry insertion time, ns.
    pub wrapper_total_ns: f64,
    /// Live wrapper objects (always 1).
    pub wrapper_objects: usize,
}

/// Runs the sweep.
pub fn run(agent_counts: &[usize]) -> Vec<ScalingRow> {
    let spec = RecordSpec {
        count: 16,
        ..Default::default()
    };
    agent_counts
        .iter()
        .map(|&n| {
            let m = fixtures::mechanisms(&spec);

            // Proxies: one per agent.
            let start = Instant::now();
            let proxies: Vec<_> = (0..n)
                .map(|i| {
                    let rq = Requester {
                        domain: DomainId(i as u64 + 1),
                        ..fixtures::requester()
                    };
                    Arc::clone(&m.guarded).get_proxy(&rq, 0).unwrap()
                })
                .collect();
            let proxy_total_ns = start.elapsed().as_nanos() as f64;

            // Wrapper: one shared object; one ACL entry per agent's owner.
            let start = Instant::now();
            for i in 0..n {
                let principal = ajanta_naming::Urn::owner("users.org", [format!("u{i}")]).unwrap();
                m.wrapper.grant(principal, Rights::all());
            }
            let wrapper_total_ns = start.elapsed().as_nanos() as f64;

            ScalingRow {
                agents: n,
                proxy_total_ns,
                proxy_objects: proxies.len(),
                wrapper_total_ns,
                wrapper_objects: 1,
            }
        })
        .collect()
}

/// Renders the table.
pub fn table(agent_counts: &[usize]) -> String {
    let rows = run(agent_counts);
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.agents.to_string(),
                crate::fmt_ns(r.proxy_total_ns),
                crate::fmt_ns(r.proxy_total_ns / r.agents.max(1) as f64),
                r.proxy_objects.to_string(),
                crate::fmt_ns(r.wrapper_total_ns),
                r.wrapper_objects.to_string(),
            ]
        })
        .collect();
    crate::render_table(
        "X5 — proxy-per-agent scaling vs one shared wrapper",
        &[
            "agents",
            "proxies: total create",
            "proxies: per agent",
            "proxy objects",
            "wrapper: total ACL setup",
            "wrapper objects",
        ],
        &rendered,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_counts_match_design() {
        let rows = run(&[1, 10, 100]);
        for r in &rows {
            assert_eq!(r.proxy_objects, r.agents);
            assert_eq!(r.wrapper_objects, 1);
        }
        // Proxy creation scales roughly linearly (no quadratic blowup):
        // 100 agents should cost well under 100× the 10-agent *per agent*
        // figure.
        let per_10 = rows[1].proxy_total_ns / 10.0;
        let per_100 = rows[2].proxy_total_ns / 100.0;
        assert!(
            per_100 < per_10 * 20.0,
            "per-agent cost exploded: {per_10} -> {per_100}"
        );
    }
}
