//! X14 — credential operations (Section 5.2).
//!
//! Construction, verification (including certificate-chain validation),
//! endorsement (the forwarding "subcontract"), and verification of an
//! endorsed chain.

use std::time::Instant;

use ajanta_core::{Credentials, CredentialsBuilder, Rights};
use ajanta_crypto::cert::Certificate;
use ajanta_crypto::{DetRng, KeyPair, RootOfTrust};
use ajanta_naming::Urn;

/// One operation's cost.
#[derive(Debug, Clone)]
pub struct CredentialRow {
    /// Operation.
    pub op: &'static str,
    /// Mean cost, ns.
    pub ns: f64,
}

struct Fixture {
    roots: RootOfTrust,
    owner_keys: KeyPair,
    owner: Urn,
    chain: Vec<Certificate>,
    server: Urn,
    server_keys: KeyPair,
    server_chain: Vec<Certificate>,
    rng: DetRng,
}

fn fixture() -> Fixture {
    let mut rng = DetRng::new(0x14);
    let ca = KeyPair::generate(&mut rng);
    let mut roots = RootOfTrust::new();
    roots.trust("ca", ca.public);
    let owner = Urn::owner("users.org", ["alice"]).unwrap();
    let owner_keys = KeyPair::generate(&mut rng);
    let cert = Certificate::issue(
        owner.to_string(),
        owner_keys.public,
        "ca",
        &ca,
        u64::MAX,
        1,
        &mut rng,
    );
    let server = Urn::server("site.org", ["s"]).unwrap();
    let server_keys = KeyPair::generate(&mut rng);
    let server_cert = Certificate::issue(
        server.to_string(),
        server_keys.public,
        "ca",
        &ca,
        u64::MAX,
        2,
        &mut rng,
    );
    Fixture {
        roots,
        owner_keys,
        owner,
        chain: vec![cert],
        server,
        server_keys,
        server_chain: vec![server_cert],
        rng,
    }
}

fn mint(fx: &mut Fixture, i: u64) -> Credentials {
    CredentialsBuilder::new(
        Urn::agent("users.org", ["bench", &format!("{i}")]).unwrap(),
        fx.owner.clone(),
    )
    .owner_chain(fx.chain.clone())
    .delegate(Rights::on_subtree(
        Urn::resource("stores.org", ["catalog"]).unwrap(),
    ))
    .expires_at(u64::MAX)
    .sign(&fx.owner_keys, &mut fx.rng)
}

/// Measures each operation `iters` times.
pub fn run(iters: u64) -> Vec<CredentialRow> {
    let mut fx = fixture();

    let start = Instant::now();
    for i in 0..iters {
        std::hint::black_box(mint(&mut fx, i));
    }
    let mint_ns = start.elapsed().as_nanos() as f64 / iters as f64;

    let creds = mint(&mut fx, u64::MAX);
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(creds.verify(&fx.roots, 0).unwrap());
    }
    let verify_ns = start.elapsed().as_nanos() as f64 / iters as f64;

    let restriction = Rights::none().grant_method(
        Urn::resource("stores.org", ["catalog", "books"]).unwrap(),
        "query",
    );
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(creds.endorse(
            &fx.server,
            &fx.server_keys,
            fx.server_chain.clone(),
            restriction.clone(),
            &mut fx.rng,
        ));
    }
    let endorse_ns = start.elapsed().as_nanos() as f64 / iters as f64;

    let endorsed = creds.endorse(
        &fx.server,
        &fx.server_keys,
        fx.server_chain.clone(),
        restriction,
        &mut fx.rng,
    );
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(endorsed.verify(&fx.roots, 0).unwrap());
    }
    let verify_endorsed_ns = start.elapsed().as_nanos() as f64 / iters as f64;

    vec![
        CredentialRow {
            op: "mint (sign)",
            ns: mint_ns,
        },
        CredentialRow {
            op: "verify (chain + signature)",
            ns: verify_ns,
        },
        CredentialRow {
            op: "endorse (forwarding restriction)",
            ns: endorse_ns,
        },
        CredentialRow {
            op: "verify with one endorsement",
            ns: verify_endorsed_ns,
        },
    ]
}

/// Renders the table.
pub fn table(iters: u64) -> String {
    let rows = run(iters);
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.op.to_string(), crate::fmt_ns(r.ns)])
        .collect();
    crate::render_table(
        &format!("X14 — credential operations ({iters} iterations)"),
        &["operation", "mean cost"],
        &rendered,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endorsed_verification_costs_more() {
        let rows = run(100);
        let verify = rows[1].ns;
        let verify_endorsed = rows[3].ns;
        assert!(verify_endorsed > verify, "{verify_endorsed} vs {verify}");
    }
}
