//! Regenerates every experiment table from DESIGN.md's index.
//!
//! ```text
//! cargo run --release -p ajanta-bench --bin report            # everything
//! cargo run --release -p ajanta-bench --bin report -- x4 x9   # a subset
//! cargo run --release -p ajanta-bench --bin report -- quick   # small sizes
//! ```

use ajanta_bench as bench;
use ajanta_net::LinkModel;
use ajanta_workloads::records::RecordSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "quick");
    let wants =
        |tag: &str| args.is_empty() || args.iter().any(|a| a == tag) || (args.len() == 1 && quick);

    // Scale factors: `quick` keeps CI fast; default sizes are what
    // EXPERIMENTS.md records.
    let calls: u64 = if quick { 2_000 } else { 20_000 };
    let iters: u64 = if quick { 200 } else { 2_000 };

    if wants("x3") {
        print!("{}", bench::x3_binding::table(iters));
        println!();
    }
    if wants("x4") {
        print!("{}", bench::x4_access::table(calls));
        println!();
    }
    if wants("x4b") {
        let pops: &[usize] = if quick {
            &[4, 64, 512]
        } else {
            &[4, 16, 64, 256, 1024]
        };
        print!("{}", bench::x4b_ablation::table(pops, calls / 2));
        println!();
    }
    if wants("x5") {
        let counts: &[usize] = if quick {
            &[1, 10, 100]
        } else {
            &[1, 10, 100, 1_000, 10_000]
        };
        print!("{}", bench::x5_scaling::table(counts));
        println!();
    }
    if wants("x6") {
        print!("{}", bench::x6_accounting::table(calls));
        println!();
    }
    if wants("x7") {
        print!("{}", bench::x7_revocation::table(iters.min(500)));
        println!();
    }
    if wants("x8") {
        print!("{}", bench::x8_confinement::table(calls));
        println!();
    }
    if wants("x9") {
        let spec = RecordSpec {
            count: if quick { 100 } else { 400 },
            record_len: 128,
            selectivity: 0.05,
            seed: 0xDA7A,
        };
        // Sweep selectivity on a WAN.
        for selectivity in [0.01, 0.05, 0.25, 1.0] {
            let s = bench::x9_paradigms::Scenario {
                spec: RecordSpec {
                    selectivity,
                    ..spec
                },
                n_servers: 3,
                link: LinkModel::wan(),
            };
            print!(
                "{}",
                bench::x9_paradigms::table(
                    &s,
                    &format!(
                        "3 servers × {} records, selectivity {selectivity}, WAN",
                        s.spec.count
                    ),
                )
            );
            println!();
        }
        // Sweep the link on fixed selectivity.
        for (label, link) in [("LAN", LinkModel::default()), ("WAN", LinkModel::wan())] {
            let s = bench::x9_paradigms::Scenario {
                spec,
                n_servers: 3,
                link,
            };
            print!(
                "{}",
                bench::x9_paradigms::table(
                    &s,
                    &format!(
                        "3 servers × {} records, selectivity 0.05, {label}",
                        spec.count
                    ),
                )
            );
            println!();
        }
    }
    if wants("x10") {
        let sizes: &[usize] = if quick {
            &[0, 10_000]
        } else {
            &[0, 1_000, 10_000, 100_000, 1_000_000]
        };
        print!("{}", bench::x10_transfer::table(sizes));
        println!();
    }
    if wants("x11") {
        print!("{}", bench::x11_attacks::table(if quick { 3 } else { 10 }));
        println!();
    }
    if wants("x12") {
        let counts: &[usize] = if quick { &[1, 8] } else { &[1, 4, 16, 64, 256] };
        print!(
            "{}",
            bench::x12_isolation::table(counts, if quick { 5_000 } else { 50_000 })
        );
        println!();
    }
    if wants("x13f") {
        let (agents, drops): (usize, &[f64]) = if quick {
            (8, &[0.0, 0.2])
        } else {
            (32, &[0.0, 0.05, 0.1, 0.2, 0.3])
        };
        print!("{}", bench::x13_recovery::table(agents, 5, drops));
        println!();
    }
    if wants("x14") {
        print!("{}", bench::x14_credentials::table(iters));
        println!();
    }
    if wants("x15") {
        let (agents, drops): (usize, &[f64]) = if quick {
            (8, &[0.0, 0.2])
        } else {
            (32, &[0.0, 0.05, 0.1, 0.2, 0.3])
        };
        print!("{}", bench::x15_tail::table(agents, 5, drops));
        println!();
    }
    if wants("x16") {
        // Scheduler capacity: resident-count sweep on a fixed pool, then
        // worker scaling on a fixed batch. `quick` is the CI smoke
        // (CHECK_BENCH=1 in scripts/check.sh): 10k agents, short loops.
        let (counts, iters): (&[usize], i64) = if quick {
            (&[1_000, 10_000], 500)
        } else {
            (&[1_000, 10_000, 100_000], 2_000)
        };
        let pool = 4;
        let resident = bench::x16_sched::resident_sweep(counts, pool, iters);
        let worker_counts: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
        let batch = if quick { 2_000 } else { 10_000 };
        let workers = bench::x16_sched::worker_sweep(worker_counts, batch, iters);
        print!("{}", bench::x16_sched::resident_table(&resident, iters));
        println!();
        print!("{}", bench::x16_sched::worker_table(&workers, iters));
        println!();
        // CI artifact: X16_JSON=<path> writes a machine-readable summary.
        if let Ok(path) = std::env::var("X16_JSON") {
            let json = bench::x16_sched::json_summary(&resident, &workers);
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("x16: failed to write {path}: {e}");
            } else {
                eprintln!("x16: JSON summary written to {path}");
            }
        }
    }
    if wants("x17") {
        let (agents, stops) = if quick { (8, 3) } else { (32, 5) };
        print!("{}", bench::x17_transport::table(agents, stops));
        println!();
    }
    if wants("x18") {
        // Wire data plane: 32-sender burst, coalesced vs one-frame-per-
        // write baseline. `quick` is the CI smoke.
        let (senders, per_sender) = if quick { (8, 64) } else { (32, 256) };
        let rows = bench::x18_wirepath::run(senders, per_sender, 64);
        print!(
            "{}",
            bench::x18_wirepath::table(&rows, senders, per_sender, 64)
        );
        println!();
        // CI artifact: X18_JSON=<path> writes a machine-readable summary.
        if let Ok(path) = std::env::var("X18_JSON") {
            let json = bench::x18_wirepath::json_summary(&rows);
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("x18: failed to write {path}: {e}");
            } else {
                eprintln!("x18: JSON summary written to {path}");
            }
        }
    }
    if wants("x19") {
        // Durability: hibernate/wake cycle cost and memory trade, plus
        // WAL replay throughput at restart.
        let (cycles, records) = if quick { (64, 256) } else { (512, 4_096) };
        let (rows, replay) = bench::x19_durability::run(cycles, records);
        print!("{}", bench::x19_durability::table(&rows, &replay));
        println!();
        // CI artifact: X19_JSON=<path> writes a machine-readable summary.
        if let Ok(path) = std::env::var("X19_JSON") {
            let json = bench::x19_durability::json_summary(&rows, &replay);
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("x19: failed to write {path}: {e}");
            } else {
                eprintln!("x19: JSON summary written to {path}");
            }
        }
    }
}
