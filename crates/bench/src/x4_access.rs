//! X4 — per-invocation cost of the access-control mechanisms
//! (paper Section 5.4's comparison).
//!
//! Claim under test: once a proxy is issued, each call costs little more
//! than a direct call; wrappers re-evaluate an ACL per call; the central
//! security manager re-evaluates the whole policy per call; the dual
//! environment pays a real protection-domain crossing per call. The
//! proxy's one-time `get_proxy` cost amortizes after a small number of
//! calls.

use std::sync::Arc;
use std::time::Instant;

use ajanta_core::AccessProtocol;
use ajanta_workloads::records::RecordSpec;

use crate::fixtures::{self, Mechanisms};

/// One mechanism's measured costs.
#[derive(Debug, Clone)]
pub struct AccessRow {
    /// Mechanism name.
    pub mechanism: &'static str,
    /// One-time setup cost (policy consult + object creation), ns.
    pub setup_ns: f64,
    /// Steady-state per-invocation cost, ns.
    pub per_call_ns: f64,
    /// Calls after which this mechanism's total beats the wrapper's
    /// (f64::INFINITY when it never does; 0 when it always does).
    pub breakeven_vs_wrapper: f64,
}

/// Runs the comparison with `calls` invocations per mechanism.
pub fn run(calls: u64) -> Vec<AccessRow> {
    let spec = RecordSpec {
        count: 64,
        ..Default::default()
    };
    let m: Mechanisms = fixtures::mechanisms(&spec);
    let rq = fixtures::requester();
    let agent = fixtures::agent_urn();
    let owner = fixtures::owner_urn();
    let rname = fixtures::store_name();

    use ajanta_core::Resource;

    // Every mechanism binds "count" to its interned MethodId up front, so
    // the per-call numbers compare mechanisms — not incidental string
    // hashing the proxy pipeline no longer pays.

    // Direct (floor): no setup, raw invoke.
    let direct_per = time_per_call(calls, || {
        m.direct.invoke("count", &[]).unwrap();
    });

    // Proxy: one-time get_proxy + method binding, then checked invokes.
    let setup_start = Instant::now();
    let proxy = Arc::clone(&m.guarded).get_proxy(&rq, 0).unwrap();
    let proxy_count = proxy.method_id("count").expect("store has count");
    let proxy_setup = setup_start.elapsed().as_nanos() as f64;
    let proxy_per = time_per_call(calls, || {
        proxy.invoke_id(rq.domain, proxy_count, &[], 0).unwrap();
    });

    // Wrapper: no per-agent setup; ACL per call.
    let wrapper_count = m.wrapper.method_id("count").expect("store has count");
    let wrapper_per = time_per_call(calls, || {
        m.wrapper.invoke_id(&owner, wrapper_count, &[]).unwrap();
    });

    // Security manager: no per-agent setup; full policy per call.
    let gate = m.gate.bind(&rname).expect("store is registered");
    let gate_count = gate.method_id("count").expect("store has count");
    let gate_per = time_per_call(calls, || {
        gate.invoke_id(&agent, &owner, gate_count, &[]).unwrap();
    });

    // Dual environment: no per-agent setup; domain crossing per call.
    let dual_count = m
        .dualenv
        .method_id(&rname, "count")
        .expect("store has count");
    let dual_per = time_per_call(calls, || {
        m.dualenv
            .invoke_id(&agent, &owner, &rname, dual_count, &[])
            .unwrap();
    });

    let breakeven = |setup: f64, per: f64| -> f64 {
        if per >= wrapper_per {
            f64::INFINITY
        } else {
            setup / (wrapper_per - per)
        }
    };

    vec![
        AccessRow {
            mechanism: "direct (no protection)",
            setup_ns: 0.0,
            per_call_ns: direct_per,
            breakeven_vs_wrapper: 0.0,
        },
        AccessRow {
            mechanism: "proxy (this paper)",
            setup_ns: proxy_setup,
            per_call_ns: proxy_per,
            breakeven_vs_wrapper: breakeven(proxy_setup, proxy_per),
        },
        AccessRow {
            mechanism: "wrapper + ACL",
            setup_ns: 0.0,
            per_call_ns: wrapper_per,
            breakeven_vs_wrapper: 0.0,
        },
        AccessRow {
            mechanism: "security manager",
            setup_ns: 0.0,
            per_call_ns: gate_per,
            breakeven_vs_wrapper: f64::NAN,
        },
        AccessRow {
            mechanism: "dual environment",
            setup_ns: 0.0,
            per_call_ns: dual_per,
            breakeven_vs_wrapper: f64::NAN,
        },
    ]
}

fn time_per_call(calls: u64, mut f: impl FnMut()) -> f64 {
    // Warm up.
    for _ in 0..calls.min(1_000) / 10 + 1 {
        f();
    }
    let start = Instant::now();
    for _ in 0..calls {
        f();
    }
    start.elapsed().as_nanos() as f64 / calls as f64
}

/// Renders the table.
pub fn table(calls: u64) -> String {
    let rows = run(calls);
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mechanism.to_string(),
                crate::fmt_ns(r.setup_ns),
                crate::fmt_ns(r.per_call_ns),
                if r.breakeven_vs_wrapper.is_nan() {
                    "-".into()
                } else if r.breakeven_vs_wrapper.is_infinite() {
                    "never".into()
                } else {
                    format!("{:.0} calls", r.breakeven_vs_wrapper.ceil())
                },
            ]
        })
        .collect();
    crate::render_table(
        &format!("X4 — access mechanisms, {calls} invocations of count()"),
        &[
            "mechanism",
            "one-time setup",
            "per call",
            "beats wrapper after",
        ],
        &rendered,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_the_papers_argument() {
        // Retry a few times: shape assertions on wall-clock timings are
        // noisy while the rest of the workspace's tests share the CPUs.
        let mut last = String::new();
        for attempt in 0..4 {
            let rows = run(3_000);
            let by_name = |n: &str| {
                rows.iter()
                    .find(|r| r.mechanism.starts_with(n))
                    .unwrap()
                    .clone()
            };
            let direct = by_name("direct");
            let proxy = by_name("proxy");
            let wrapper = by_name("wrapper");
            let dual = by_name("dual");

            // Proxy per-call cheaper than the per-call-ACL wrapper; the
            // dual environment by far the most expensive; direct the
            // floor (within scheduler jitter); proxy setup nonzero.
            let ok = proxy.per_call_ns < wrapper.per_call_ns
                && dual.per_call_ns > wrapper.per_call_ns * 2.0
                && direct.per_call_ns <= proxy.per_call_ns * 1.5 + 500.0
                && proxy.setup_ns > 0.0;
            if ok {
                return;
            }
            last = format!(
                "attempt {attempt}: direct {} proxy {} wrapper {} dual {}",
                direct.per_call_ns, proxy.per_call_ns, wrapper.per_call_ns, dual.per_call_ns
            );
        }
        panic!("shape never stabilized: {last}");
    }
}
