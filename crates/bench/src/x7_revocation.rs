//! X7 — revocation and expiration (Section 5.5).
//!
//! Claims: a resource manager "can invalidate any of its currently active
//! proxies at any time"; it can "selectively revoke or add permissions
//! for specific methods"; privileges "can also be revoked based on
//! time-out". This measures the cost of each management operation and
//! verifies immediacy (the very next call fails).

use std::sync::Arc;
use std::time::Instant;

use ajanta_core::{AccessError, AccessProtocol, DomainId};
use ajanta_workloads::records::RecordSpec;

use crate::fixtures;

/// One management operation's cost.
#[derive(Debug, Clone)]
pub struct RevocationRow {
    /// Operation.
    pub op: &'static str,
    /// Mean cost, ns.
    pub ns: f64,
    /// Whether the effect was observed on the immediately following call.
    pub immediate: bool,
}

/// Measures each operation `iters` times (each on a fresh proxy).
pub fn run(iters: u64) -> Vec<RevocationRow> {
    let spec = RecordSpec {
        count: 16,
        ..Default::default()
    };
    let m = fixtures::mechanisms(&spec);
    let rq = fixtures::requester();

    let fresh_proxy = || Arc::clone(&m.guarded).get_proxy(&rq, 0).unwrap();

    // Full revocation.
    let mut revoke_total = 0u128;
    let mut revoke_immediate = true;
    for _ in 0..iters {
        let p = fresh_proxy();
        p.invoke(rq.domain, "count", &[], 0).unwrap();
        let t = Instant::now();
        p.control().revoke(DomainId::SERVER).unwrap();
        revoke_total += t.elapsed().as_nanos();
        revoke_immediate &= p.invoke(rq.domain, "count", &[], 0) == Err(AccessError::Revoked);
    }

    // Selective method disable.
    let mut disable_total = 0u128;
    let mut disable_immediate = true;
    for _ in 0..iters {
        let p = fresh_proxy();
        let t = Instant::now();
        p.control()
            .disable_method(DomainId::SERVER, "count")
            .unwrap();
        disable_total += t.elapsed().as_nanos();
        disable_immediate &= matches!(
            p.invoke(rq.domain, "count", &[], 0),
            Err(AccessError::MethodDisabled(_))
        );
        // Other methods still work (selectivity).
        disable_immediate &= p
            .invoke(rq.domain, "scan_count", &[ajanta_vm::Value::str("x")], 0)
            .is_ok();
    }

    // Method (re-)enable.
    let mut enable_total = 0u128;
    let mut enable_immediate = true;
    for _ in 0..iters {
        let p = fresh_proxy();
        p.control()
            .disable_method(DomainId::SERVER, "count")
            .unwrap();
        let t = Instant::now();
        p.control()
            .enable_method(DomainId::SERVER, "count")
            .unwrap();
        enable_total += t.elapsed().as_nanos();
        enable_immediate &= p.invoke(rq.domain, "count", &[], 0).is_ok();
    }

    // Expiry: set, then probe one tick past.
    let mut expire_total = 0u128;
    let mut expire_immediate = true;
    for _ in 0..iters {
        let p = fresh_proxy();
        let t = Instant::now();
        p.control().set_expiry(DomainId::SERVER, Some(100)).unwrap();
        expire_total += t.elapsed().as_nanos();
        expire_immediate &= p.invoke(rq.domain, "count", &[], 100).is_ok();
        expire_immediate &= matches!(
            p.invoke(rq.domain, "count", &[], 101),
            Err(AccessError::Expired { .. })
        );
    }

    let per = |total: u128| total as f64 / iters as f64;
    vec![
        RevocationRow {
            op: "revoke whole proxy",
            ns: per(revoke_total),
            immediate: revoke_immediate,
        },
        RevocationRow {
            op: "disable one method",
            ns: per(disable_total),
            immediate: disable_immediate,
        },
        RevocationRow {
            op: "re-enable one method",
            ns: per(enable_total),
            immediate: enable_immediate,
        },
        RevocationRow {
            op: "set expiry (timeout revocation)",
            ns: per(expire_total),
            immediate: expire_immediate,
        },
    ]
}

/// Renders the table.
pub fn table(iters: u64) -> String {
    let rows = run(iters);
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.op.to_string(),
                crate::fmt_ns(r.ns),
                if r.immediate {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]
        })
        .collect();
    crate::render_table(
        &format!("X7 — revocation & expiration ({iters} fresh proxies per op)"),
        &["management operation", "cost", "takes effect immediately"],
        &rendered,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_operation_is_immediate() {
        for row in run(50) {
            assert!(row.immediate, "{} was not immediate", row.op);
            assert!(row.ns > 0.0);
        }
    }
}
