//! The experiment harness: one driver per experiment in DESIGN.md's
//! index (X3–X19). Drivers return structured rows; the `report` binary
//! renders them as the tables recorded in EXPERIMENTS.md, and the
//! Criterion benches re-measure the micro-costs with statistical rigor.
//!
//! Real-time numbers (nanoseconds) are machine-dependent; **virtual**-time
//! and byte numbers are exact and reproduce bit-identically from the
//! fixed seeds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fixtures;
pub mod x10_transfer;
pub mod x11_attacks;
pub mod x12_isolation;
pub mod x13_recovery;
pub mod x14_credentials;
pub mod x15_tail;
pub mod x16_sched;
pub mod x17_transport;
pub mod x18_wirepath;
pub mod x19_durability;
pub mod x3_binding;
pub mod x4_access;
pub mod x4b_ablation;
pub mod x5_scaling;
pub mod x6_accounting;
pub mod x7_revocation;
pub mod x8_confinement;
pub mod x9_paradigms;

/// Renders rows as an aligned plain-text table.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("| ");
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:w$} | ", cell, w = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&fmt_row(&sep, &widths));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats nanoseconds human-readably.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Formats a byte count human-readably.
pub fn fmt_bytes(b: u64) -> String {
    if b < 1_024 {
        format!("{b} B")
    } else if b < 1_048_576 {
        format!("{:.1} KiB", b as f64 / 1024.0)
    } else {
        format!("{:.2} MiB", b as f64 / 1_048_576.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            "Demo",
            &["mechanism", "ns/call"],
            &[
                vec!["proxy".into(), "42".into()],
                vec!["wrapper-with-long-name".into(), "1234".into()],
            ],
        );
        assert!(t.contains("## Demo"));
        assert!(t.contains("mechanism"));
        let lines: Vec<&str> = t.lines().collect();
        // Header, separator, two rows (+title).
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.000 s");
        assert_eq!(fmt_bytes(100), "100 B");
        assert_eq!(fmt_bytes(2_048), "2.0 KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.00 MiB");
    }
}
