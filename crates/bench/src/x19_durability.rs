//! X19 — durability: what hibernation buys and what WAL replay costs.
//!
//! Two measurements:
//!
//! 1. **Hibernate/wake cycle.** A warm interpreter suspended mid-run
//!    (call stack parked, a churned byte accumulator in its globals) is
//!    exported → [`WarmState`] → [`AgentBundle`] → [`BundleStore::put`]
//!    (the hibernate path), then `take` → decode → `import_state` (the
//!    wake path) — the exact serialization round trip the runtime's
//!    hibernation performs, against both the in-memory and on-disk
//!    stores. Reported per store: mean ns each way and the memory
//!    trade — the warm agent's resident footprint (interpreter heap
//!    estimate plus the image and credentials the server keeps for a
//!    resident agent) versus the single serialized buffer a hibernated
//!    agent holds instead.
//! 2. **WAL replay.** A log of `records` unresolved admissions is
//!    replayed and recovered the way a restarted server does at boot;
//!    reported as records/s.
//!
//! Latency numbers are wall-clock and machine-dependent; the byte
//! numbers are exact and seed-stable.

use std::sync::Arc;
use std::time::Instant;

use ajanta_core::credentials::CredentialsBuilder;
use ajanta_core::telemetry::{SpanContext, SpanId, TraceId};
use ajanta_core::{Credentials, Rights};
use ajanta_crypto::cert::Certificate;
use ajanta_crypto::{DetRng, KeyPair};
use ajanta_naming::Urn;
use ajanta_runtime::wal::{AdmissionWal, WalRecord};
use ajanta_runtime::{AgentBundle, BundleStore, WarmState};
use ajanta_vm::{assemble, verify, AgentImage, Interpreter, Limits, NoHost, SliceOutcome, Value};
use ajanta_wire::Wire;

/// An agent that churns a byte accumulator: each loop pass concatenates
/// a 16-byte chunk, so a mid-run suspension carries real mobile state.
const CHURN: &str = r#"
    module churn
    data chunk = "0123456789abcdef"
    global acc: bytes

    func main(arg: bytes) -> int
      locals i: int
      push 0
      store i
    loop:
      gload acc
      pushd chunk
      bconcat
      gstore acc
      load i
      push 1
      add
      store i
      load i
      push 512
      lt
      jz done
      jump loop
    done:
      push 0
      ret
"#;

/// One hibernate/wake measurement against one bundle store.
#[derive(Debug, Clone)]
pub struct CycleRow {
    /// "in-memory" or "on-disk".
    pub store: &'static str,
    /// Hibernate/wake round trips measured.
    pub cycles: u64,
    /// What a warm resident agent holds: interpreter heap estimate plus
    /// the encoded image and credentials the server keeps for it.
    pub warm_bytes: u64,
    /// What the hibernated agent holds instead: its serialized bundle.
    pub bundle_bytes: u64,
    /// Mean ns to serialize + store (the hibernate path).
    pub hibernate_ns: f64,
    /// Mean ns to take + decode + `import_state` (the wake path).
    pub wake_ns: f64,
}

/// The WAL replay measurement.
#[derive(Debug, Clone)]
pub struct ReplayRow {
    /// Admission records in the log.
    pub records: u64,
    /// Wall ns for replay + recovery.
    pub wall_ns: u64,
    /// Unresolved bundles recovery handed back for re-admission.
    pub readmitted: u64,
}

impl ReplayRow {
    /// Records recovered per wall-clock second.
    pub fn records_per_s(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.records as f64 / (self.wall_ns as f64 / 1e9)
    }
}

/// Mints one signed credential set off a deterministic CA, same shape
/// as the runtime's world builder.
fn credentials(agent: &Urn, seed: u64) -> Credentials {
    let mut rng = DetRng::new(seed);
    let ca = KeyPair::generate(&mut rng);
    let keys = KeyPair::generate(&mut rng);
    let owner = Urn::owner("x19.test", ["bench"]).unwrap();
    let cert = Certificate::issue(
        owner.to_string(),
        keys.public,
        "ca",
        &ca,
        u64::MAX,
        1,
        &mut rng,
    );
    CredentialsBuilder::new(agent.clone(), owner)
        .owner_chain(vec![cert])
        .delegate(Rights::all())
        .sign(&keys, &mut rng)
}

/// Builds the warm fixture: a suspended mid-churn interpreter and the
/// bundle that hibernating it produces. Returns the bundle, the warm
/// resident byte estimate, and the verified module wakes resume on.
fn warm_fixture() -> (AgentBundle, u64, Arc<ajanta_vm::VerifiedModule>) {
    let module = assemble(CHURN).expect("churn assembles");
    let image = AgentImage {
        module: module.clone(),
        globals: vec![Value::Bytes(vec![])],
        entry: "main".into(),
    };
    image.validate().expect("churn image is consistent");
    let verified = Arc::new(verify(module).expect("churn verifies"));

    let limits = Limits::default();
    let mut interp = Interpreter::new(Arc::clone(&verified), limits);
    interp.start("main", vec![Value::Bytes(vec![])]);
    // Run most of the churn, then park mid-loop: the suspension carries
    // a multi-KiB accumulator plus live locals, like a real idle agent
    // that did work before going quiet.
    for _ in 0..40 {
        match interp.run_slice(100, &mut NoHost) {
            SliceOutcome::Yielded => {}
            SliceOutcome::Done(_) => panic!("churn finished before suspension"),
        }
    }

    let agent = Urn::agent("x19.test", ["bench", "0"]).unwrap();
    let credentials = credentials(&agent, 0x19);
    let warm_bytes =
        (interp.approx_mem_bytes() + image.to_bytes().len() + credentials.to_bytes().len()) as u64;
    let bundle = AgentBundle {
        agent,
        hop: 3,
        credentials,
        image,
        arg: Vec::new(),
        ctx: SpanContext::root(TraceId(0x19), SpanId(1)),
        warm: Some(WarmState {
            interp: interp.export_state(),
            rng_state: 0x5eed,
            children: 1,
            last_sender: Vec::new(),
        }),
    };
    (bundle, warm_bytes, verified)
}

/// Measures `cycles` hibernate/wake round trips against `store`.
fn cycle_trial(store: &BundleStore, label: &'static str, cycles: u64) -> CycleRow {
    let (bundle, warm_bytes, verified) = warm_fixture();
    let limits = Limits::default();
    let mut bundle_bytes = 0u64;
    let mut hibernate_ns = 0u64;
    let mut wake_ns = 0u64;
    let mut sink = 0usize;
    for _ in 0..cycles {
        let t0 = Instant::now();
        bundle_bytes = store.put(&bundle).expect("store accepts bundle") as u64;
        hibernate_ns += t0.elapsed().as_nanos() as u64;

        let t1 = Instant::now();
        let woken = store.take(&bundle.agent).expect("bundle comes back");
        let warm = woken.warm.expect("fixture is warm");
        let resumed = Interpreter::import_state(Arc::clone(&verified), limits, warm.interp)
            .expect("snapshot re-validates");
        wake_ns += t1.elapsed().as_nanos() as u64;
        sink += resumed.approx_mem_bytes();
    }
    assert!(sink > 0, "woken interpreters have resident state");
    CycleRow {
        store: label,
        cycles,
        warm_bytes,
        bundle_bytes,
        hibernate_ns: hibernate_ns as f64 / cycles.max(1) as f64,
        wake_ns: wake_ns as f64 / cycles.max(1) as f64,
    }
}

/// Replays a WAL of `records` unresolved admissions, timing what a
/// restarted server pays at boot.
fn replay_trial(records: u64) -> ReplayRow {
    let (bundle, _, _) = warm_fixture();
    let path = std::env::temp_dir().join(format!("ajanta-x19-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let wal = AdmissionWal::open(&path).expect("wal opens");
    for hop in 0..records {
        let mut b = bundle.clone();
        b.hop = hop;
        wal.append(&WalRecord::Admit(Box::new(b))).expect("appends");
    }
    drop(wal);

    let t0 = Instant::now();
    let replayed = AdmissionWal::replay(&path).expect("replays");
    let recovery = AdmissionWal::recover(replayed);
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let _ = std::fs::remove_file(&path);
    ReplayRow {
        records,
        wall_ns,
        readmitted: recovery.unresolved.len() as u64,
    }
}

/// Runs the full experiment: both bundle stores, then the WAL replay.
pub fn run(cycles: u64, wal_records: u64) -> (Vec<CycleRow>, ReplayRow) {
    let spill = std::env::temp_dir().join(format!("ajanta-x19-spill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spill);
    let rows = vec![
        cycle_trial(&BundleStore::in_memory(), "in-memory", cycles),
        cycle_trial(
            &BundleStore::on_disk(spill.clone()).expect("spill dir"),
            "on-disk",
            cycles,
        ),
    ];
    let _ = std::fs::remove_dir_all(&spill);
    (rows, replay_trial(wal_records))
}

/// Renders both tables; the ratio column is the memory the hibernated
/// agent holds as a fraction of its warm resident footprint.
pub fn table(rows: &[CycleRow], replay: &ReplayRow) -> String {
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let ratio = if r.warm_bytes > 0 {
                format!(
                    "{:.0}%",
                    100.0 * r.bundle_bytes as f64 / r.warm_bytes as f64
                )
            } else {
                "-".into()
            };
            vec![
                r.store.to_string(),
                crate::fmt_bytes(r.warm_bytes),
                crate::fmt_bytes(r.bundle_bytes),
                ratio,
                crate::fmt_ns(r.hibernate_ns),
                crate::fmt_ns(r.wake_ns),
            ]
        })
        .collect();
    let mut out = crate::render_table(
        &format!(
            "X19 — durability: hibernate/wake cycle, {} round trips \
             (bytes exact; latency wall-clock)",
            rows.first().map_or(0, |r| r.cycles)
        ),
        &[
            "bundle store",
            "warm resident",
            "hibernated",
            "ratio",
            "hibernate",
            "wake",
        ],
        &rendered,
    );
    out.push('\n');
    out.push_str(&crate::render_table(
        "X19 — durability: WAL replay at restart",
        &["records", "replay wall", "records/s", "readmitted"],
        &[vec![
            replay.records.to_string(),
            crate::fmt_ns(replay.wall_ns as f64),
            format!("{:.0}", replay.records_per_s()),
            replay.readmitted.to_string(),
        ]],
    ));
    out
}

/// Machine-readable summary for the CI artifact (`X19_JSON=<path>`).
pub fn json_summary(rows: &[CycleRow], replay: &ReplayRow) -> String {
    let mut out = String::from("{\n  \"cycle\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"store\": \"{}\", \"cycles\": {}, \"warm_bytes\": {}, \
             \"bundle_bytes\": {}, \"hibernate_ns\": {:.0}, \"wake_ns\": {:.0}}}{}\n",
            r.store,
            r.cycles,
            r.warm_bytes,
            r.bundle_bytes,
            r.hibernate_ns,
            r.wake_ns,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"wal\": {{\"records\": {}, \"wall_ms\": {:.3}, \
         \"records_per_s\": {:.1}, \"readmitted\": {}}}\n}}\n",
        replay.records,
        replay.wall_ns as f64 / 1e6,
        replay.records_per_s(),
        replay.readmitted,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance claim: a hibernated idle agent holds strictly
    /// less memory than it did warm, on both stores, and the cycle
    /// numbers are sane.
    #[test]
    fn hibernated_agent_is_smaller_than_warm() {
        let (rows, replay) = run(8, 64);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(
                r.bundle_bytes < r.warm_bytes,
                "{}: hibernated bundle ({} B) must undercut warm residency ({} B)",
                r.store,
                r.bundle_bytes,
                r.warm_bytes
            );
            assert!(r.bundle_bytes > 0 && r.hibernate_ns > 0.0 && r.wake_ns > 0.0);
        }
        // Every logged admission was unresolved, so all replay.
        assert_eq!(replay.readmitted, replay.records);
        assert!(replay.records_per_s() > 0.0);
        let json = json_summary(&rows, &replay);
        assert!(json.contains("\"store\": \"in-memory\""));
        assert!(json.contains("\"records_per_s\""));
        let rendered = table(&rows, &replay);
        assert!(rendered.contains("X19"));
        assert!(rendered.contains("on-disk"));
    }
}
