//! X4b — ablation: per-call cost vs. principal-population size.
//!
//! The design choice under ablation: **where identity→rights evaluation
//! happens**. Proxies evaluate it once at `get_proxy`; wrappers and the
//! central security manager evaluate it per call, over a data structure
//! that grows with the number of known principals. In the paper's "open
//! environment", the principal population is unbounded — this sweep shows
//! the per-call designs degrading linearly with it while the proxy stays
//! flat.

use std::sync::Arc;
use std::time::Instant;

use ajanta_core::AccessProtocol;
use ajanta_workloads::records::RecordSpec;

use crate::fixtures;

/// One population size's per-call costs.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Decoy principals on the ACL / policy.
    pub principals: usize,
    /// Proxy per-call, ns.
    pub proxy_ns: f64,
    /// Wrapper per-call, ns.
    pub wrapper_ns: f64,
    /// Security-manager per-call, ns.
    pub gate_ns: f64,
}

/// Sweeps population sizes with `calls` invocations each.
pub fn run(populations: &[usize], calls: u64) -> Vec<AblationRow> {
    let spec = RecordSpec {
        count: 16,
        ..Default::default()
    };
    populations
        .iter()
        .map(|&n| {
            let m = fixtures::mechanisms_with_decoys(&spec, n);
            let rq = fixtures::requester();
            let agent = fixtures::agent_urn();
            let owner = fixtures::owner_urn();
            let rname = fixtures::store_name();

            // Bind-time resolution for every mechanism: the sweep varies
            // only the principal population, never string-lookup overhead.
            let proxy = Arc::clone(&m.guarded).get_proxy(&rq, 0).unwrap();
            let proxy_count = proxy.method_id("count").expect("store has count");
            let wrapper_count = m.wrapper.method_id("count").expect("store has count");
            let gate = m.gate.bind(&rname).expect("store is registered");
            let gate_count = gate.method_id("count").expect("store has count");
            let time = |mut f: Box<dyn FnMut() + '_>| -> f64 {
                for _ in 0..200 {
                    f();
                }
                let start = Instant::now();
                for _ in 0..calls {
                    f();
                }
                start.elapsed().as_nanos() as f64 / calls as f64
            };

            let proxy_ns = time(Box::new(|| {
                proxy.invoke_id(rq.domain, proxy_count, &[], 0).unwrap();
            }));
            let wrapper_ns = time(Box::new(|| {
                m.wrapper.invoke_id(&owner, wrapper_count, &[]).unwrap();
            }));
            let gate_ns = time(Box::new(|| {
                gate.invoke_id(&agent, &owner, gate_count, &[]).unwrap();
            }));

            AblationRow {
                principals: n,
                proxy_ns,
                wrapper_ns,
                gate_ns,
            }
        })
        .collect()
}

/// Renders the table.
pub fn table(populations: &[usize], calls: u64) -> String {
    let rows = run(populations, calls);
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.principals.to_string(),
                crate::fmt_ns(r.proxy_ns),
                crate::fmt_ns(r.wrapper_ns),
                crate::fmt_ns(r.gate_ns),
            ]
        })
        .collect();
    crate::render_table(
        &format!("X4b — per-call cost vs principal population ({calls} calls)"),
        &[
            "known principals",
            "proxy",
            "wrapper + ACL",
            "security manager",
        ],
        &rendered,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_call_designs_degrade_with_population() {
        // Wall-clock shape tests are noisy when the whole workspace's
        // test suites share the machine; accept the expected shape from
        // any of a few attempts rather than demanding a quiet first run.
        let mut last = String::new();
        for attempt in 0..4 {
            let rows = run(&[4, 512], 5_000);
            let small = &rows[0];
            let large = &rows[1];
            let wrapper_grows = large.wrapper_ns > small.wrapper_ns * 3.0;
            let gate_grows = large.gate_ns > small.gate_ns * 3.0;
            let proxy_flat = large.proxy_ns < small.proxy_ns * 3.0 + 500.0;
            if wrapper_grows && gate_grows && proxy_flat {
                return;
            }
            last = format!(
                "attempt {attempt}: wrapper {}->{}, gate {}->{}, proxy {}->{}",
                small.wrapper_ns,
                large.wrapper_ns,
                small.gate_ns,
                large.gate_ns,
                small.proxy_ns,
                large.proxy_ns
            );
        }
        panic!("shape never stabilized: {last}");
    }
}
