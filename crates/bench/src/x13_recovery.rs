//! X13f — fault-tolerant migration under injected frame loss.
//!
//! A fleet of touring agents crosses a link that drops each frame with
//! probability `p`, with the reliable-transfer layer on or off. Measured:
//! how many agents' fates *resolve* at the home server (a completion or
//! a `Failed(hop)` recovery report) versus strand silently, plus the
//! recovery machinery's own counters — retries, skipped hops, recovered
//! agents — straight from the typed journals.
//!
//! The headline: with retries off, loss strands agents in proportion to
//! `1 - (1-p)^legs`; with retries on, resolution stays at 100% while the
//! retry counters absorb the loss.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ajanta_net::LinkFault;
use ajanta_runtime::itinerary::Itinerary;
use ajanta_runtime::{Counter, ReportStatus, RetryPolicy, World};
use ajanta_workloads::payload_agent;

/// One (drop probability × retry mode) trial.
#[derive(Debug, Clone)]
pub struct RecoveryRow {
    /// Per-frame drop probability.
    pub drop_prob: f64,
    /// Whether the reliable-transfer layer was active.
    pub retries: bool,
    /// Agents launched on the tour.
    pub launched: u64,
    /// Agents whose fate resolved at home (any report at all).
    pub resolved: u64,
    /// Resolved as completed tours.
    pub completed: u64,
    /// Resolved as `Failed(hop)` recoveries.
    pub failed: u64,
    /// `TransfersRetried` summed over all servers.
    pub transfers_retried: u64,
    /// `HopsSkipped` summed over all servers.
    pub hops_skipped: u64,
    /// `AgentsRecovered` summed over all servers.
    pub agents_recovered: u64,
    /// Frames the adversary deleted.
    pub frames_dropped: u64,
    /// Wall-clock time for the trial, ms.
    pub wall_ms: f64,
}

/// Runs one trial: `agents` agents over a `stops`-stop tour at `drop_prob`.
fn trial(agents: usize, stops: usize, drop_prob: f64, retries: bool, seed: u64) -> RecoveryRow {
    let builder = World::builder(stops + 1).journal_capacity(1 << 16);
    let mut world = if retries {
        builder
            .retry(RetryPolicy {
                max_attempts: 12,
                ack_grace: Duration::from_millis(10),
                ..RetryPolicy::default()
            })
            .build()
    } else {
        builder.no_retry().build()
    };
    let fault = Arc::new(LinkFault::new(seed, drop_prob));
    world.net.set_adversary(Some(fault.clone()));

    let mut owner = world.owner("fleet");
    let home = world.server(0).name().clone();
    let tour = Itinerary::new((1..=stops).map(|i| world.server(i).name().clone()));
    let (_, carried) = tour.clone().next_stop();
    let t0 = Instant::now();
    for _ in 0..agents {
        let agent = owner.next_agent_name("tourist");
        let creds = owner.credentials(agent, home.clone(), ajanta_core::Rights::all(), u64::MAX);
        world
            .server(0)
            .launch_tour(&tour, creds, payload_agent(64, &carried));
    }

    // With retries every fate resolves, so wait for all agents; without,
    // stranded agents never report — bound the wait instead.
    let deadline = Instant::now()
        + if retries && drop_prob > 0.0 {
            Duration::from_secs(120)
        } else {
            Duration::from_secs(3)
        };
    let mut reports;
    loop {
        reports = world
            .server(0)
            .wait_reports(agents, deadline.saturating_duration_since(Instant::now()));
        let distinct: HashSet<_> = reports.iter().map(|r| r.agent.clone()).collect();
        if distinct.len() >= agents || Instant::now() >= deadline {
            break;
        }
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut seen = HashSet::new();
    let (mut completed, mut failed) = (0u64, 0u64);
    for r in &reports {
        if !seen.insert(r.agent.clone()) {
            continue;
        }
        match &r.status {
            ReportStatus::Completed(_) => completed += 1,
            ReportStatus::Failed(_) => failed += 1,
            _ => {}
        }
    }
    let sum = |c: Counter| -> u64 { world.servers.iter().map(|s| s.journal().counter(c)).sum() };
    let row = RecoveryRow {
        drop_prob,
        retries,
        launched: agents as u64,
        resolved: seen.len() as u64,
        completed,
        failed,
        transfers_retried: sum(Counter::TransfersRetried),
        hops_skipped: sum(Counter::HopsSkipped),
        agents_recovered: sum(Counter::AgentsRecovered),
        frames_dropped: fault.dropped_count(),
        wall_ms,
    };
    world.shutdown();
    row
}

/// Sweeps drop probabilities, with the recovery layer off then on.
pub fn run(agents: usize, stops: usize, drop_probs: &[f64]) -> Vec<RecoveryRow> {
    let mut rows = Vec::new();
    for (i, &p) in drop_probs.iter().enumerate() {
        let seed = 0x13F0 + i as u64;
        rows.push(trial(agents, stops, p, false, seed));
        rows.push(trial(agents, stops, p, true, seed));
    }
    rows
}

/// Renders the table.
pub fn table(agents: usize, stops: usize, drop_probs: &[f64]) -> String {
    let rows = run(agents, stops, drop_probs);
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}%", r.drop_prob * 100.0),
                if r.retries { "on".into() } else { "off".into() },
                r.launched.to_string(),
                format!(
                    "{} ({:.0}%)",
                    r.resolved,
                    100.0 * r.resolved as f64 / r.launched as f64
                ),
                r.completed.to_string(),
                r.failed.to_string(),
                r.transfers_retried.to_string(),
                r.hops_skipped.to_string(),
                r.agents_recovered.to_string(),
                r.frames_dropped.to_string(),
                format!("{:.0} ms", r.wall_ms),
            ]
        })
        .collect();
    crate::render_table(
        &format!("X13f — fault recovery, {agents} agents × {stops}-stop tour"),
        &[
            "drop",
            "retries",
            "launched",
            "resolved",
            "completed",
            "failed",
            "retried",
            "skipped",
            "recovered",
            "dropped",
            "wall",
        ],
        &rendered,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_restores_full_resolution_under_loss() {
        let rows = run(8, 3, &[0.0, 0.2]);
        let find = |p: f64, retries: bool| {
            rows.iter()
                .find(|r| r.drop_prob == p && r.retries == retries)
                .unwrap()
        };

        // Clean link: both modes resolve everything, nothing retries in
        // the disabled world.
        assert_eq!(find(0.0, false).resolved, 8);
        assert_eq!(find(0.0, true).resolved, 8);
        assert_eq!(find(0.0, false).transfers_retried, 0);

        // Lossy link, no retries: agents strand (8 × 4 reliable legs at
        // 20% loss — survival of the whole fleet is a 2e-5 event).
        let stranded = find(0.2, false);
        assert!(
            stranded.resolved < stranded.launched,
            "20% loss without retries should strand agents: {stranded:?}"
        );
        assert!(stranded.frames_dropped > 0);

        // Lossy link, retries: every fate resolves and the journals show
        // the machinery that did it.
        let recovered = find(0.2, true);
        assert_eq!(recovered.resolved, recovered.launched, "{recovered:?}");
        assert!(recovered.transfers_retried > 0);
    }
}
