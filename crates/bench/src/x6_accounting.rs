//! X6 — accounting overhead (Section 5.5: usage metering in proxies).
//!
//! The claim: metering "can be done either by counting the invocations of
//! each method, possibly assigning different costs to different methods,
//! or by metering the elapsed time". This measures what each mode adds to
//! a proxy call.

use std::sync::Arc;
use std::time::Instant;

use ajanta_core::{AccessProtocol, Guarded, MeterMode, ProxyPolicy};
use ajanta_workloads::records::RecordSpec;

use crate::fixtures;

/// One metering mode's cost.
#[derive(Debug, Clone)]
pub struct AccountingRow {
    /// Mode name.
    pub mode: &'static str,
    /// Per-call cost, ns.
    pub per_call_ns: f64,
    /// Total charge accumulated during the measurement (sanity signal).
    pub charge: u64,
}

/// Runs `calls` invocations under each metering mode.
pub fn run(calls: u64) -> Vec<AccountingRow> {
    let spec = RecordSpec {
        count: 16,
        ..Default::default()
    };
    let modes: [(&'static str, MeterMode); 3] = [
        ("off", MeterMode::Off),
        ("count + tariffs", MeterMode::Count),
        ("count + elapsed time", MeterMode::CountAndTime),
    ];
    modes
        .iter()
        .map(|(name, mode)| {
            let resource = Guarded::new(
                fixtures::store(&spec),
                ProxyPolicy {
                    meter_mode: *mode,
                    default_tariff: 1,
                    tariffs: vec![("count".into(), 3)],
                    ..Default::default()
                },
            );
            let rq = fixtures::requester();
            let proxy = Arc::clone(&resource).get_proxy(&rq, 0).unwrap();
            // Warm-up.
            for _ in 0..100 {
                proxy.invoke(rq.domain, "count", &[], 0).unwrap();
            }
            let start = Instant::now();
            for _ in 0..calls {
                proxy.invoke(rq.domain, "count", &[], 0).unwrap();
            }
            let per_call_ns = start.elapsed().as_nanos() as f64 / calls as f64;
            let charge = proxy.control().meter().reading().charge;
            AccountingRow {
                mode: name,
                per_call_ns,
                charge,
            }
        })
        .collect()
}

/// Renders the table.
pub fn table(calls: u64) -> String {
    let rows = run(calls);
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mode.to_string(),
                crate::fmt_ns(r.per_call_ns),
                r.charge.to_string(),
            ]
        })
        .collect();
    crate::render_table(
        &format!("X6 — metering overhead per proxy call ({calls} calls)"),
        &["metering mode", "per call", "charge accumulated"],
        &rendered,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_only_when_metering() {
        let rows = run(1_000);
        assert_eq!(rows[0].charge, 0); // off
                                       // count mode: warm-up (100) + calls (1000), tariff 3 each.
        assert_eq!(rows[1].charge, 3 * 1_100);
        assert_eq!(rows[2].charge, 3 * 1_100);
    }

    #[test]
    fn metering_cost_is_modest() {
        let rows = run(5_000);
        // Counting should cost no more than ~20× the unmetered call —
        // the point is that it's in the same order of magnitude, not a
        // domain-crossing.
        assert!(rows[1].per_call_ns < rows[0].per_call_ns * 20.0 + 2_000.0);
    }
}
