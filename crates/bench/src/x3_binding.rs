//! X3 — the six-step dynamic binding protocol of Fig. 6, with a per-step
//! latency breakdown.

use std::sync::Arc;
use std::time::Instant;

use ajanta_core::{DomainId, Guarded, HostMonitor, ProxyPolicy, ResourceRegistry};
use ajanta_workloads::records::RecordSpec;

use crate::fixtures;

/// Per-step measured latency.
#[derive(Debug, Clone)]
pub struct BindingRow {
    /// Protocol step (numbered as in Fig. 6).
    pub step: &'static str,
    /// Mean latency, ns.
    pub ns: f64,
}

/// Measures each step `iters` times.
pub fn run(iters: u64) -> Vec<BindingRow> {
    let spec = RecordSpec {
        count: 16,
        ..Default::default()
    };
    let monitor = HostMonitor::new();
    let server = ajanta_naming::Urn::server("stores.org", ["s"]).unwrap();

    // Step 1: registration.
    let reg_ns = {
        let start = Instant::now();
        let mut registries = Vec::with_capacity(iters as usize);
        for _ in 0..iters {
            let registry = ResourceRegistry::new();
            let resource = Guarded::new(fixtures::store(&spec), ProxyPolicy::default());
            registry
                .register(&monitor, DomainId::SERVER, &server, resource)
                .unwrap();
            registries.push(registry);
        }
        start.elapsed().as_nanos() as f64 / iters as f64
    };

    // Steps 2–5 together are `bind`; isolate lookup (step 3) and the
    // get_proxy upcall (steps 4–5) separately.
    let registry = ResourceRegistry::new();
    let resource = Guarded::new(fixtures::store(&spec), ProxyPolicy::default());
    registry
        .register(
            &monitor,
            DomainId::SERVER,
            &server,
            Arc::clone(&resource) as _,
        )
        .unwrap();
    let rq = fixtures::requester();
    let name = fixtures::store_name();

    let bind_ns = {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(registry.bind(&rq, &name, 0).unwrap());
        }
        start.elapsed().as_nanos() as f64 / iters as f64
    };

    let upcall_ns = {
        use ajanta_core::AccessProtocol;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(Arc::clone(&resource).get_proxy(&rq, 0).unwrap());
        }
        start.elapsed().as_nanos() as f64 / iters as f64
    };

    // Step 6: one proxy invocation.
    let proxy = registry.bind(&rq, &name, 0).unwrap();
    let invoke_ns = {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(proxy.invoke(rq.domain, "count", &[], 0).unwrap());
        }
        start.elapsed().as_nanos() as f64 / iters as f64
    };

    vec![
        BindingRow {
            step: "1  register resource (monitor + ownership + insert)",
            ns: reg_ns,
        },
        BindingRow {
            step: "2-5  bind = lookup + getProxy upcall + return",
            ns: bind_ns,
        },
        BindingRow {
            step: "4-5  getProxy upcall alone",
            ns: upcall_ns,
        },
        BindingRow {
            step: "6  one invocation through the proxy",
            ns: invoke_ns,
        },
    ]
}

/// Renders the table.
pub fn table(iters: u64) -> String {
    let rows = run(iters);
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.step.to_string(), crate::fmt_ns(r.ns)])
        .collect();
    crate::render_table(
        &format!("X3 — Fig. 6 binding protocol breakdown ({iters} iterations)"),
        &["step", "mean latency"],
        &rendered,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_dominates_invocation() {
        let rows = run(500);
        let bind = rows[1].ns;
        let invoke = rows[3].ns;
        // The one-time bind is more expensive than a steady-state call —
        // that asymmetry is the whole point of proxies.
        assert!(bind > invoke, "bind {bind} vs invoke {invoke}");
    }
}
