//! X16 — cooperative scheduler capacity: resident agents and worker
//! scaling.
//!
//! Before the fuel-sliced scheduler, every executing agent held an OS
//! thread, so "agents resident on one server" was bounded by thread
//! limits long before memory. Now a parked agent is a heap object —
//! cold until its first slice, a suspended interpreter after — and the
//! world runs on a fixed pool. Two sweeps quantify that:
//!
//! * **Resident sweep** (`resident_sweep`): launch N agents at one
//!   server (1k → 100k) and record wall time, throughput normalized per
//!   worker core (**agents/core/s**), peak ready-queue depth, OS thread
//!   count at peak, and — on Linux — RSS growth per agent. The
//!   flat-memory assertion lives here: per-agent memory must stay
//!   bounded (an idle agent costs its image, not a stack), and the OS
//!   thread count must track `workers + servers`, not the agent count.
//! * **Worker sweep** (`worker_sweep`): fixed agent batch, varying pool
//!   width; reports agents/core/s and the p99 ready-queue dwell from
//!   the merged [`HistoPath::ReadyDwell`] histograms — the scheduling
//!   tail X15 covers for the network.
//!
//! Real-time numbers are machine-dependent; the structural assertions
//! (residency, threads, memory slope) are what the in-tree test pins.

use std::time::{Duration, Instant};

use ajanta_core::Rights;
use ajanta_runtime::{HistoPath, World};
use ajanta_vm::{assemble, AgentImage, Value};

/// One resident-count measurement.
#[derive(Debug, Clone)]
pub struct ResidentRow {
    /// Agents launched at the single hosting server.
    pub agents: usize,
    /// Scheduler pool width.
    pub workers: usize,
    /// Wall time until every agent reported, ms.
    pub wall_ms: f64,
    /// Completed agents per worker-core per second.
    pub agents_per_core_s: f64,
    /// Peak ready-queue depth observed (sampled during the run).
    pub peak_ready: usize,
    /// OS threads in this process at peak (`/proc/self/status`; 0 when
    /// unavailable).
    pub threads: usize,
    /// RSS growth divided by agent count (`/proc/self/statm`; 0 when
    /// unavailable). The flat-memory-per-idle-agent figure.
    pub bytes_per_agent: f64,
    /// Resident agents left after completion (must be 0).
    pub residue: usize,
}

/// One pool-width measurement.
#[derive(Debug, Clone)]
pub struct WorkerRow {
    /// Scheduler pool width.
    pub workers: usize,
    /// Agents launched.
    pub agents: usize,
    /// Wall time until every agent reported, ms.
    pub wall_ms: f64,
    /// Completed agents per worker-core per second.
    pub agents_per_core_s: f64,
    /// p99 ready-queue dwell (real ns) across the world's servers.
    pub p99_dwell_ns: u64,
}

/// A minimal self-contained agent: burn `iters` loop iterations, return
/// the count. Cheap enough that admission outpaces execution, so the
/// ready queue actually fills with parked agents.
fn spin_agent(iters: i64) -> AgentImage {
    let src = r#"
        module spin
        global iters: int

        func run(arg: bytes) -> int
          locals i: int
          gload iters
          store i
        loop:
          load i
          jz done
          load i
          push 1
          sub
          store i
          jump loop
        done:
          gload iters
          ret
    "#;
    let module = assemble(src).unwrap();
    AgentImage {
        globals: vec![Value::Int(iters)],
        module,
        entry: "run".into(),
    }
}

/// Current resident-set size in bytes, Linux only.
fn rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident_pages * 4096)
}

/// OS thread count of this process, Linux only.
fn os_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("Threads:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

/// Launches `n` spin agents from server 0 toward server 1 of `world`,
/// waits for all reports, and samples scheduler depth/threads at peak.
/// Returns (wall_ms, peak_ready, peak_threads, rss_delta_bytes, residue).
fn run_batch(world: &mut World, n: usize, iters: i64) -> (f64, usize, usize, u64, usize) {
    let mut owner = world.owner("sched");
    let home = world.server(0).name().clone();
    let dest = world.server(1).name().clone();
    let rss0 = rss_bytes().unwrap_or(0);
    let t0 = Instant::now();
    let mut peak_ready = 0usize;
    let mut peak_rss = rss0;
    for i in 0..n {
        let agent = owner.next_agent_name("spin");
        let creds = owner.credentials(agent, home.clone(), Rights::all(), u64::MAX);
        world
            .server(0)
            .launch(dest.clone(), creds, spin_agent(iters));
        // Sample occasionally; the launch loop runs concurrently with
        // execution, so this sees the queue near its fullest.
        if i % 256 == 0 {
            peak_ready = peak_ready.max(world.scheduler().depths().ready);
            peak_rss = peak_rss.max(rss_bytes().unwrap_or(0));
        }
    }
    peak_ready = peak_ready.max(world.scheduler().depths().ready);
    peak_rss = peak_rss.max(rss_bytes().unwrap_or(0));
    let threads = os_threads().unwrap_or(0);
    let reports = world.server(0).wait_reports(n, Duration::from_secs(300));
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(reports.len(), n, "not all agents reported");
    let residue = world.server(1).resident_agents();
    (
        wall_ms,
        peak_ready,
        threads,
        peak_rss.saturating_sub(rss0),
        residue,
    )
}

/// Sweeps the resident-agent count on a fixed-width pool.
pub fn resident_sweep(counts: &[usize], workers: usize, iters: i64) -> Vec<ResidentRow> {
    counts
        .iter()
        .map(|&n| {
            let mut world = World::builder(2).workers(workers).no_retry().build();
            let (wall_ms, peak_ready, threads, rss_delta, residue) =
                run_batch(&mut world, n, iters);
            world.shutdown();
            ResidentRow {
                agents: n,
                workers,
                wall_ms,
                agents_per_core_s: n as f64 / (wall_ms / 1e3) / workers as f64,
                peak_ready,
                threads,
                bytes_per_agent: rss_delta as f64 / n as f64,
                residue,
            }
        })
        .collect()
}

/// Sweeps the pool width on a fixed agent batch.
pub fn worker_sweep(worker_counts: &[usize], agents: usize, iters: i64) -> Vec<WorkerRow> {
    worker_counts
        .iter()
        .map(|&w| {
            let mut world = World::builder(2).workers(w).no_retry().build();
            let (wall_ms, _, _, _, residue) = run_batch(&mut world, agents, iters);
            let p99_dwell_ns = world.merged_histos(HistoPath::ReadyDwell).quantile(0.99);
            world.shutdown();
            assert_eq!(residue, 0, "residue after worker sweep");
            WorkerRow {
                workers: w,
                agents,
                wall_ms,
                agents_per_core_s: agents as f64 / (wall_ms / 1e3) / w as f64,
                p99_dwell_ns,
            }
        })
        .collect()
}

/// Renders the resident-count table from measured rows.
pub fn resident_table(rows: &[ResidentRow], iters: i64) -> String {
    let workers = rows.first().map(|r| r.workers).unwrap_or(0);
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.agents.to_string(),
                format!("{:.1} ms", r.wall_ms),
                format!("{:.0}", r.agents_per_core_s),
                r.peak_ready.to_string(),
                if r.threads == 0 {
                    "n/a".into()
                } else {
                    r.threads.to_string()
                },
                if r.bytes_per_agent == 0.0 {
                    "n/a".into()
                } else {
                    crate::fmt_bytes(r.bytes_per_agent as u64)
                },
                r.residue.to_string(),
            ]
        })
        .collect();
    crate::render_table(
        &format!("X16 — resident agents on {workers} workers ({iters} loop iterations each)"),
        &[
            "agents",
            "wall time",
            "agents/core/s",
            "peak ready",
            "OS threads",
            "mem/agent",
            "residue",
        ],
        &rendered,
    )
}

/// Renders the worker-scaling table from measured rows.
pub fn worker_table(rows: &[WorkerRow], iters: i64) -> String {
    let agents = rows.first().map(|r| r.agents).unwrap_or(0);
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workers.to_string(),
                format!("{:.1} ms", r.wall_ms),
                format!("{:.0}", r.agents_per_core_s),
                crate::fmt_ns(r.p99_dwell_ns as f64),
            ]
        })
        .collect();
    crate::render_table(
        &format!("X16 — worker scaling ({agents} agents, {iters} loop iterations each)"),
        &["workers", "wall time", "agents/core/s", "p99 ready dwell"],
        &rendered,
    )
}

/// JSON summary of both sweeps, for the CI artifact. Hand-rolled: the
/// repo vendors no serde.
pub fn json_summary(resident: &[ResidentRow], workers: &[WorkerRow]) -> String {
    let mut out = String::from("{\n  \"resident\": [\n");
    for (i, r) in resident.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"agents\": {}, \"workers\": {}, \"wall_ms\": {:.3}, \
             \"agents_per_core_s\": {:.1}, \"peak_ready\": {}, \"threads\": {}, \
             \"bytes_per_agent\": {:.1}, \"residue\": {}}}{}\n",
            r.agents,
            r.workers,
            r.wall_ms,
            r.agents_per_core_s,
            r.peak_ready,
            r.threads,
            r.bytes_per_agent,
            r.residue,
            if i + 1 < resident.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"workers\": [\n");
    for (i, r) in workers.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"agents\": {}, \"wall_ms\": {:.3}, \
             \"agents_per_core_s\": {:.1}, \"p99_dwell_ns\": {}}}{}\n",
            r.workers,
            r.agents,
            r.wall_ms,
            r.agents_per_core_s,
            r.p99_dwell_ns,
            if i + 1 < workers.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resident_agents_stay_cheap() {
        let rows = resident_sweep(&[256, 1024, 4096], 2, 200);
        for r in &rows {
            assert_eq!(r.residue, 0, "{} agents left residue", r.agents);
            // OS threads are bounded by pool + servers + bookkeeping —
            // never by the agent count.
            if r.threads > 0 {
                assert!(
                    r.threads < 64,
                    "{} agents grew the process to {} threads",
                    r.agents,
                    r.threads
                );
            }
        }
        // Flat memory per idle agent: the largest batch must not cost
        // (amortized) more than a loose per-agent ceiling — an OS thread
        // stack alone would blow this by an order of magnitude.
        if let Some(last) = rows.last() {
            if last.bytes_per_agent > 0.0 {
                assert!(
                    last.bytes_per_agent < 64.0 * 1024.0,
                    "{} bytes per resident agent",
                    last.bytes_per_agent
                );
            }
        }
    }

    #[test]
    fn worker_sweep_reports_dwell() {
        let rows = worker_sweep(&[1, 2], 64, 200);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.agents_per_core_s > 0.0);
        }
        let json = json_summary(&[], &rows);
        assert!(json.contains("\"p99_dwell_ns\""));
    }
}
