//! X17 — transport comparison: hop latency over the simulation vs real
//! sockets on the same machine.
//!
//! The same seeded tour runs over three transports behind the seam:
//! the in-process [`SimNet`](ajanta_net::SimNet), TCP on localhost, and
//! Unix-domain sockets. The simulation reports *virtual* nanoseconds
//! from its link model — exact and machine-independent; the socket
//! rows report *wall-clock* nanoseconds for the identical protocol work
//! (seal, frame, handshake-cached socket write, open, admit), so the
//! two columns answer different questions: the sim row is the modeled
//! cost, the socket rows are what this hardware actually pays. Lossless
//! links: this experiment measures the transport floor, not the retry
//! tail (X15 covers that).

use std::collections::HashSet;
use std::time::{Duration, Instant};

use ajanta_core::{HistoPath, HistoSnapshot};
use ajanta_runtime::itinerary::Itinerary;
use ajanta_runtime::{RetryPolicy, TransportMode, World};
use ajanta_workloads::payload_agent;

/// Hop-latency measurements for one transport.
#[derive(Debug, Clone)]
pub struct TransportRow {
    /// Which transport the world ran over.
    pub mode: TransportMode,
    /// Merged end-to-end hop-latency histogram (virtual ns for sim,
    /// wall ns for sockets).
    pub hop: HistoSnapshot,
    /// Merged transfer-RTT histogram (same units as `hop`).
    pub rtt: HistoSnapshot,
    /// Distinct agents that reported home.
    pub reported: usize,
    /// Wall-clock time for the whole tour, ns.
    pub wall_ns: u64,
}

/// One trial: `agents` agents on a `stops`-stop lossless tour over
/// `mode`; returns the world-merged histograms.
fn trial(agents: usize, stops: usize, mode: TransportMode, seed: u64) -> TransportRow {
    let mut world = World::builder(stops + 1)
        .seed(seed)
        .transport(mode)
        .journal_capacity(1 << 16)
        // Wall-clock ack grace large enough that a loaded host never
        // fires a spurious retry into the latency numbers.
        .retry(RetryPolicy {
            ack_grace: Duration::from_millis(500),
            ..RetryPolicy::default()
        })
        .build();

    let mut owner = world.owner("fleet");
    let home = world.server(0).name().clone();
    let tour = Itinerary::new((1..=stops).map(|i| world.server(i).name().clone()));
    let (_, carried) = tour.clone().next_stop();
    let t0 = Instant::now();
    for _ in 0..agents {
        let agent = owner.next_agent_name("tourist");
        let creds = owner.credentials(agent, home.clone(), ajanta_core::Rights::all(), u64::MAX);
        world
            .server(0)
            .launch_tour(&tour, creds, payload_agent(64, &carried));
    }

    let deadline = Instant::now() + Duration::from_secs(120);
    let reported = loop {
        let reports = world
            .server(0)
            .wait_reports(agents, deadline.saturating_duration_since(Instant::now()));
        let distinct: HashSet<_> = reports.iter().map(|r| r.agent.clone()).collect();
        if distinct.len() >= agents || Instant::now() >= deadline {
            break distinct.len();
        }
    };
    let wall_ns = t0.elapsed().as_nanos() as u64;

    let row = TransportRow {
        mode,
        hop: world.merged_histos(HistoPath::HopLatency),
        rtt: world.merged_histos(HistoPath::TransferRtt),
        reported,
        wall_ns,
    };
    world.shutdown();
    row
}

/// Runs the tour over every transport mode.
pub fn run(agents: usize, stops: usize) -> Vec<TransportRow> {
    let modes: &[TransportMode] = if cfg!(unix) {
        &[TransportMode::Sim, TransportMode::Tcp, TransportMode::Uds]
    } else {
        &[TransportMode::Sim, TransportMode::Tcp]
    };
    modes
        .iter()
        .map(|&mode| trial(agents, stops, mode, 0x17_00))
        .collect()
}

fn label(mode: TransportMode) -> &'static str {
    match mode {
        TransportMode::Sim => "sim (virtual ns)",
        TransportMode::Tcp => "tcp loopback",
        TransportMode::Uds => "uds",
    }
}

/// Renders the table.
pub fn table(agents: usize, stops: usize) -> String {
    let rows = run(agents, stops);
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                label(r.mode).to_string(),
                format!("{}/{agents}", r.reported),
                crate::fmt_ns(r.hop.mean()),
                crate::fmt_ns(r.hop.quantile(0.50) as f64),
                crate::fmt_ns(r.hop.quantile(0.99) as f64),
                crate::fmt_ns(r.hop.max as f64),
                crate::fmt_ns(r.rtt.mean()),
                crate::fmt_ns(r.rtt.quantile(0.99) as f64),
                crate::fmt_ns(r.wall_ns as f64),
            ]
        })
        .collect();
    crate::render_table(
        &format!(
            "X17 — transport comparison, {agents} agents × {stops}-stop tour, lossless \
             (sim row: virtual time; socket rows: wall time)"
        ),
        &[
            "transport",
            "reported",
            "hop mean",
            "hop p50",
            "hop p99",
            "hop max",
            "rtt mean",
            "rtt p99",
            "tour wall",
        ],
        &rendered,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_transport_resolves_the_tour_and_measures_hops() {
        for row in run(4, 2) {
            assert_eq!(row.reported, 4, "{}: agents lost", label(row.mode));
            assert!(row.hop.count > 0, "{}: no hops measured", label(row.mode));
            assert!(row.rtt.count > 0, "{}: no rtts measured", label(row.mode));
            assert!(
                row.hop.quantile(0.99) >= row.hop.quantile(0.50),
                "{}: quantiles out of order",
                label(row.mode)
            );
        }
    }
}
