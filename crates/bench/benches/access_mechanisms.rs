//! X4 — per-invocation cost of each access-control mechanism.

use std::sync::Arc;

use ajanta_bench::fixtures;
use ajanta_core::AccessProtocol;
use ajanta_workloads::records::RecordSpec;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let spec = RecordSpec {
        count: 64,
        ..Default::default()
    };
    let m = fixtures::mechanisms(&spec);
    let rq = fixtures::requester();
    let agent = fixtures::agent_urn();
    let owner = fixtures::owner_urn();
    let rname = fixtures::store_name();

    let mut g = c.benchmark_group("x4_access");

    // Method names are interned to MethodIds at bind time for every
    // mechanism; per-iteration work is the mechanism's intrinsic cost.
    use ajanta_core::Resource;
    g.bench_function("direct", |b| {
        b.iter(|| m.direct.invoke("count", &[]).unwrap())
    });

    let proxy = Arc::clone(&m.guarded).get_proxy(&rq, 0).unwrap();
    let proxy_count = proxy.method_id("count").unwrap();
    g.bench_function("proxy_invoke", |b| {
        b.iter(|| proxy.invoke_id(rq.domain, proxy_count, &[], 0).unwrap())
    });
    g.bench_function("proxy_invoke_by_name", |b| {
        b.iter(|| proxy.invoke(rq.domain, "count", &[], 0).unwrap())
    });
    g.bench_function("proxy_get_proxy_setup", |b| {
        b.iter(|| Arc::clone(&m.guarded).get_proxy(&rq, 0).unwrap())
    });

    let wrapper_count = m.wrapper.method_id("count").unwrap();
    g.bench_function("wrapper_acl", |b| {
        b.iter(|| m.wrapper.invoke_id(&owner, wrapper_count, &[]).unwrap())
    });

    let gate = m.gate.bind(&rname).unwrap();
    let gate_count = gate.method_id("count").unwrap();
    g.bench_function("security_manager", |b| {
        b.iter(|| gate.invoke_id(&agent, &owner, gate_count, &[]).unwrap())
    });

    let dual_count = m.dualenv.method_id(&rname, "count").unwrap();
    g.bench_function("dual_environment", |b| {
        b.iter(|| {
            m.dualenv
                .invoke_id(&agent, &owner, &rname, dual_count, &[])
                .unwrap()
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
