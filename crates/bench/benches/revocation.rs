//! X7 — revocation and expiry management operations.

use std::sync::Arc;

use ajanta_bench::fixtures;
use ajanta_core::{AccessProtocol, DomainId};
use ajanta_workloads::records::RecordSpec;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let spec = RecordSpec {
        count: 16,
        ..Default::default()
    };
    let m = fixtures::mechanisms(&spec);
    let rq = fixtures::requester();
    let mut g = c.benchmark_group("x7_revocation");

    g.bench_function("revoke_fresh_proxy", |b| {
        b.iter_with_setup(
            || Arc::clone(&m.guarded).get_proxy(&rq, 0).unwrap(),
            |p| p.control().revoke(DomainId::SERVER).unwrap(),
        )
    });
    g.bench_function("disable_method", |b| {
        b.iter_with_setup(
            || Arc::clone(&m.guarded).get_proxy(&rq, 0).unwrap(),
            |p| {
                p.control()
                    .disable_method(DomainId::SERVER, "count")
                    .unwrap()
            },
        )
    });
    g.bench_function("set_expiry", |b| {
        b.iter_with_setup(
            || Arc::clone(&m.guarded).get_proxy(&rq, 0).unwrap(),
            |p| p.control().set_expiry(DomainId::SERVER, Some(100)).unwrap(),
        )
    });
    let revoked = Arc::clone(&m.guarded).get_proxy(&rq, 0).unwrap();
    revoked.control().revoke(DomainId::SERVER).unwrap();
    g.bench_function("rejected_call_on_revoked", |b| {
        b.iter(|| revoked.invoke(rq.domain, "count", &[], 0).unwrap_err())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
