//! X12 — concurrent agents on one server.

use ajanta_bench::x12_isolation::run;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("x12_isolation");
    g.sample_size(10);
    for n in [4usize, 16] {
        g.bench_with_input(BenchmarkId::new("swarm", n), &n, |b, &n| {
            b.iter(|| run(&[n], 2_000))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
