//! X8 — identity-based capability confinement.

use std::sync::Arc;

use ajanta_bench::fixtures;
use ajanta_core::{AccessProtocol, DomainId};
use ajanta_workloads::records::RecordSpec;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let spec = RecordSpec {
        count: 16,
        ..Default::default()
    };
    let m = fixtures::mechanisms(&spec);
    let rq = fixtures::requester();
    let proxy = Arc::clone(&m.guarded).get_proxy(&rq, 0).unwrap();
    let thief = DomainId(999);

    let mut g = c.benchmark_group("x8_confinement");
    g.bench_function("holder_call", |b| {
        b.iter(|| proxy.invoke(rq.domain, "count", &[], 0).unwrap())
    });
    g.bench_function("stolen_proxy_rejected", |b| {
        b.iter(|| proxy.invoke(thief, "count", &[], 0).unwrap_err())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
