//! X6 — metering overhead per proxy call.

use std::sync::Arc;

use ajanta_bench::fixtures;
use ajanta_core::{AccessProtocol, Guarded, MeterMode, ProxyPolicy};
use ajanta_workloads::records::RecordSpec;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let spec = RecordSpec {
        count: 16,
        ..Default::default()
    };
    let mut g = c.benchmark_group("x6_accounting");
    for (name, mode) in [
        ("meter_off", MeterMode::Off),
        ("meter_count", MeterMode::Count),
        ("meter_timed", MeterMode::CountAndTime),
    ] {
        let resource = Guarded::new(
            fixtures::store(&spec),
            ProxyPolicy {
                meter_mode: mode,
                default_tariff: 1,
                ..Default::default()
            },
        );
        let rq = fixtures::requester();
        let proxy = Arc::clone(&resource).get_proxy(&rq, 0).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| proxy.invoke(rq.domain, "count", &[], 0).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
