//! X5 — proxy creation scaling vs the shared wrapper.

use std::sync::Arc;

use ajanta_bench::fixtures;
use ajanta_core::{AccessProtocol, DomainId, Requester, Rights};
use ajanta_workloads::records::RecordSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let spec = RecordSpec {
        count: 16,
        ..Default::default()
    };
    let mut g = c.benchmark_group("x5_proxy_scaling");
    for n in [10usize, 100, 1000] {
        g.bench_with_input(BenchmarkId::new("create_n_proxies", n), &n, |b, &n| {
            let m = fixtures::mechanisms(&spec);
            b.iter(|| {
                (0..n)
                    .map(|i| {
                        let rq = Requester {
                            domain: DomainId(i as u64 + 1),
                            ..fixtures::requester()
                        };
                        Arc::clone(&m.guarded).get_proxy(&rq, 0).unwrap()
                    })
                    .collect::<Vec<_>>()
            })
        });
        g.bench_with_input(BenchmarkId::new("grant_n_acl_entries", n), &n, |b, &n| {
            b.iter(|| {
                let m = fixtures::mechanisms(&spec);
                for i in 0..n {
                    let p = ajanta_naming::Urn::owner("users.org", [format!("u{i}")]).unwrap();
                    m.wrapper.grant(p, Rights::all());
                }
                m.wrapper.acl_len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
