//! X9 — paradigms end to end (small sizes; the report binary runs the
//! full sweep).

use ajanta_bench::x9_paradigms::{run, Scenario};
use ajanta_net::LinkModel;
use ajanta_workloads::records::RecordSpec;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("x9_paradigms");
    g.sample_size(10);
    g.bench_function("all_paradigms_2servers_60recs", |b| {
        b.iter(|| {
            run(&Scenario {
                spec: RecordSpec {
                    count: 60,
                    record_len: 96,
                    selectivity: 0.1,
                    seed: 11,
                },
                n_servers: 2,
                link: LinkModel::local(),
            })
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
