//! X10 — sealed-datagram crypto share of agent transfer.

use ajanta_bench::x10_transfer;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("x10_transfer");
    g.sample_size(10);
    for size in [1_000usize, 10_000, 100_000] {
        g.bench_with_input(BenchmarkId::new("seal_open", size), &size, |b, &size| {
            b.iter(|| x10_transfer::crypto_cost_ns(size))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
