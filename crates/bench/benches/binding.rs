//! X3 — the Fig. 6 dynamic binding protocol, step by step.

use std::sync::Arc;

use ajanta_bench::fixtures;
use ajanta_core::{AccessProtocol, DomainId, Guarded, HostMonitor, ProxyPolicy, ResourceRegistry};
use ajanta_workloads::records::RecordSpec;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let spec = RecordSpec {
        count: 16,
        ..Default::default()
    };
    let monitor = HostMonitor::new();
    let server = ajanta_naming::Urn::server("stores.org", ["s"]).unwrap();
    let rq = fixtures::requester();
    let name = fixtures::store_name();

    let mut g = c.benchmark_group("x3_binding");

    g.bench_function("step1_register", |b| {
        b.iter(|| {
            let registry = ResourceRegistry::new();
            let resource = Guarded::new(fixtures::store(&spec), ProxyPolicy::default());
            registry
                .register(&monitor, DomainId::SERVER, &server, resource)
                .unwrap();
            registry
        })
    });

    let registry = ResourceRegistry::new();
    let resource = Guarded::new(fixtures::store(&spec), ProxyPolicy::default());
    registry
        .register(
            &monitor,
            DomainId::SERVER,
            &server,
            Arc::clone(&resource) as _,
        )
        .unwrap();

    g.bench_function("steps2to5_bind", |b| {
        b.iter(|| registry.bind(&rq, &name, 0).unwrap())
    });
    g.bench_function("steps4to5_get_proxy_upcall", |b| {
        b.iter(|| Arc::clone(&resource).get_proxy(&rq, 0).unwrap())
    });

    let proxy = registry.bind(&rq, &name, 0).unwrap();
    g.bench_function("step6_invoke", |b| {
        b.iter(|| proxy.invoke(rq.domain, "count", &[], 0).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
