//! X14 — credential mint / verify / endorse costs.

use ajanta_bench::x14_credentials;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    // The driver already isolates each operation; here we wrap the whole
    // batch so criterion tracks regressions of the pipeline.
    let mut g = c.benchmark_group("x14_credentials");
    g.sample_size(10);
    g.bench_function("mint_verify_endorse_batch", |b| {
        b.iter(|| x14_credentials::run(20))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
