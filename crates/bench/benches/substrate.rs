//! Substrate micro-benchmarks: hash, MAC, signatures, VM dispatch, wire
//! codec — the building blocks every experiment cost decomposes into.

use ajanta_crypto::{sha256, DetRng, HmacSha256, KeyPair};
use ajanta_vm::{verify, Interpreter, Limits, ModuleBuilder, NoHost, Op, Ty};
use ajanta_wire::Wire;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate");

    for size in [64usize, 4096, 65536] {
        let data = vec![0xABu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| sha256(d))
        });
        g.bench_with_input(BenchmarkId::new("hmac", size), &data, |b, d| {
            b.iter(|| HmacSha256::mac(b"key", d))
        });
    }
    g.throughput(Throughput::Elements(1));

    let mut rng = DetRng::new(1);
    let kp = KeyPair::generate(&mut rng);
    let sig = kp.sign(b"msg", &mut rng);
    g.bench_function("sign", |b| b.iter(|| kp.sign(b"msg", &mut rng)));
    g.bench_function("verify", |b| {
        b.iter(|| ajanta_crypto::sig::verify(&kp.public, b"msg", &sig).unwrap())
    });

    // VM: a tight arithmetic loop, instructions per second.
    let mut mb = ModuleBuilder::new("loop");
    mb.function(
        "run",
        [Ty::Int],
        [Ty::Int],
        Ty::Int,
        vec![
            Op::Load(0),
            Op::Store(1),
            Op::Load(1),
            Op::JumpIfZero(9),
            Op::Load(1),
            Op::PushI(1),
            Op::Sub,
            Op::Store(1),
            Op::Jump(2),
            Op::PushI(0),
            Op::Ret,
        ],
    );
    let vm = std::sync::Arc::new(verify(mb.build()).unwrap());
    g.bench_function("vm_loop_1000_iters", |b| {
        b.iter(|| {
            let mut i = Interpreter::new(std::sync::Arc::clone(&vm), Limits::default());
            i.run("run", vec![ajanta_vm::Value::Int(1000)], &mut NoHost)
        })
    });

    // Wire codec round-trip of a module.
    let module = vm.module().clone();
    g.bench_function("wire_module_roundtrip", |b| {
        b.iter(|| {
            let bytes = module.to_bytes();
            ajanta_vm::Module::from_bytes(&bytes).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
