//! Property tests for the VM: the verifier's guarantee ("verified code
//! never type-traps"), codec totality, and fuel monotonicity.

use ajanta_vm::{
    verify, ExecOutcome, Interpreter, Limits, Module, ModuleBuilder, NoHost, Op, TrapKind, Ty,
    Value,
};
use ajanta_wire::Wire;
use proptest::prelude::*;
use std::sync::Arc;

/// Strategy over arbitrary (mostly invalid) instruction streams.
fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<i64>().prop_map(Op::PushI),
        (0u32..4).prop_map(Op::PushD),
        Just(Op::Dup),
        Just(Op::Drop),
        Just(Op::Swap),
        Just(Op::Add),
        Just(Op::Sub),
        Just(Op::Mul),
        Just(Op::Div),
        Just(Op::Rem),
        Just(Op::Neg),
        Just(Op::Eq),
        Just(Op::Lt),
        Just(Op::Not),
        Just(Op::BConcat),
        Just(Op::BLen),
        Just(Op::BIndex),
        Just(Op::BSlice),
        Just(Op::BEq),
        Just(Op::IToA),
        Just(Op::AToI),
        (0u16..4).prop_map(Op::Load),
        (0u16..4).prop_map(Op::Store),
        (0u16..2).prop_map(Op::GLoad),
        (0u16..2).prop_map(Op::GStore),
        (0u32..24).prop_map(Op::Jump),
        (0u32..24).prop_map(Op::JumpIfZero),
        Just(Op::Ret),
        Just(Op::Halt),
        Just(Op::Nop),
    ]
}

fn arb_module() -> impl Strategy<Value = Module> {
    proptest::collection::vec(arb_op(), 1..24).prop_map(|code| {
        let mut b = ModuleBuilder::new("fuzz");
        b.data(b"alpha".to_vec());
        b.data(b"beta".to_vec());
        b.data(b"".to_vec());
        b.data(b"0123456789".to_vec());
        b.global(Ty::Int);
        b.global(Ty::Bytes);
        b.function(
            "main",
            [],
            [Ty::Int, Ty::Int, Ty::Bytes, Ty::Bytes],
            Ty::Int,
            code,
        );
        b.build()
    })
}

proptest! {
    /// THE verifier guarantee: whatever the verifier accepts runs without
    /// hitting any condition the verifier promises to exclude. With
    /// `NoHost`, acceptable outcomes are Finished / arithmetic-range traps
    /// / fuel exhaustion — never a panic, and never a type confusion
    /// (which would panic inside the interpreter's `unreachable!`).
    #[test]
    fn verified_code_never_type_traps(m in arb_module()) {
        if let Ok(vm) = verify(m) {
            let mut interp = Interpreter::new(Arc::new(vm), Limits {
                fuel: 10_000,
                ..Limits::default()
            });
            let out = interp.run("main", vec![], &mut NoHost);
            match out {
                ExecOutcome::Finished(_) | ExecOutcome::OutOfFuel => {}
                ExecOutcome::Trapped { kind, .. } => {
                    prop_assert!(matches!(
                        kind,
                        TrapKind::DivideByZero
                            | TrapKind::BytesOutOfRange
                            | TrapKind::MalformedNumber
                            | TrapKind::AllocBudgetExceeded
                            | TrapKind::CallDepthExceeded
                    ), "unexpected trap {kind:?}");
                }
                ExecOutcome::HostStopped { .. } => prop_assert!(false, "NoHost cannot stop"),
            }
        }
    }

    /// Module encoding round-trips for arbitrary (even unverifiable) code.
    #[test]
    fn module_wire_roundtrip(m in arb_module()) {
        let bytes = m.to_bytes();
        prop_assert_eq!(Module::from_bytes(&bytes).unwrap(), m);
    }

    /// Decoding arbitrary garbage never panics.
    #[test]
    fn module_decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Module::from_bytes(&bytes);
        let _ = ajanta_vm::AgentImage::from_bytes(&bytes);
    }

    /// Fuel use is deterministic: the same program costs the same twice.
    #[test]
    fn fuel_is_deterministic(m in arb_module()) {
        if let Ok(vm) = verify(m) {
            let vm = Arc::new(vm);
            let limits = Limits { fuel: 10_000, ..Limits::default() };
            let mut i1 = Interpreter::new(Arc::clone(&vm), limits);
            let mut i2 = Interpreter::new(Arc::clone(&vm), limits);
            let o1 = i1.run("main", vec![], &mut NoHost);
            let o2 = i2.run("main", vec![], &mut NoHost);
            prop_assert_eq!(o1, o2);
            prop_assert_eq!(i1.fuel_used(), i2.fuel_used());
        }
    }

    /// Execution outcome (and final globals) are pure functions of
    /// (module, entry args, limits): determinism is what makes migration
    /// replay-debuggable.
    #[test]
    fn execution_is_deterministic(m in arb_module(), seed in any::<i64>()) {
        if let Ok(vm) = verify(m) {
            let vm = Arc::new(vm);
            let run = |vm| {
                let mut i = Interpreter::new(vm, Limits { fuel: 10_000, ..Limits::default() });
                let out = i.run("main", vec![], &mut NoHost);
                (out, i.globals().to_vec())
            };
            let (o1, g1) = run(Arc::clone(&vm));
            let (o2, g2) = run(Arc::clone(&vm));
            prop_assert_eq!(o1, o2);
            prop_assert_eq!(g1, g2);
            let _ = seed; // reserved: entry args not exercised by arb bodies
        }
    }

    /// Slice/resume equivalence (the cooperative-scheduling contract): a
    /// run chained through `run_slice` with any slice size produces the
    /// identical outcome, fuel bill, and final globals as a single-shot
    /// `run()`. This is what lets the runtime's worker pool suspend an
    /// agent mid-program without observable effect.
    #[test]
    fn sliced_run_matches_single_shot(m in arb_module(), slice in 1u64..97) {
        if let Ok(vm) = verify(m) {
            let vm = Arc::new(vm);
            let limits = Limits { fuel: 10_000, ..Limits::default() };

            let mut single = Interpreter::new(Arc::clone(&vm), limits);
            let o1 = single.run("main", vec![], &mut NoHost);

            let mut sliced = Interpreter::new(Arc::clone(&vm), limits);
            sliced.start("main", vec![]);
            let o2 = loop {
                match sliced.run_slice(slice, &mut NoHost) {
                    ajanta_vm::SliceOutcome::Yielded => {
                        prop_assert!(sliced.in_progress());
                    }
                    ajanta_vm::SliceOutcome::Done(out) => break out,
                }
            };
            prop_assert!(!sliced.in_progress());
            prop_assert_eq!(o1, o2);
            prop_assert_eq!(single.fuel_used(), sliced.fuel_used());
            prop_assert_eq!(single.globals(), sliced.globals());
        }
    }

    /// Value wire round-trip.
    #[test]
    fn value_wire_roundtrip(i in any::<i64>(), b in proptest::collection::vec(any::<u8>(), 0..256)) {
        let vi = Value::Int(i);
        let vb = Value::Bytes(b);
        prop_assert_eq!(Value::from_bytes(&vi.to_bytes()).unwrap(), vi);
        prop_assert_eq!(Value::from_bytes(&vb.to_bytes()).unwrap(), vb);
    }
}
