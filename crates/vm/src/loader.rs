//! Per-agent name-spaces: the class-loader analogue.
//!
//! In the Java model (paper Section 3.2), *"a class is fully identified by
//! the combination of its name and the class loader instance that installed
//! it"*, and giving each applet/agent its own loader prevents *"accidental
//! or deliberate name-clashes across applications that can cause security
//! breaches"*. [`Namespace`] reproduces that discipline for AgentScript
//! modules:
//!
//! * each agent gets its own `Namespace`;
//! * **system modules** (installed by the server before any agent code
//!   loads) can never be shadowed or replaced — the impostor-class attack
//!   of Section 5.3 fails at load time;
//! * module names are bind-once even for agent modules, so later code
//!   cannot swap implementations under earlier code;
//! * every module is (re-)verified on the way in. Verification status is
//!   never taken on faith from the network.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::module::Module;
use crate::verifier::{verify, VerifiedModule, VerifyError};

/// Why a module failed to load into a namespace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// The name is already bound to a **system** module — the attempted
    /// impostor installation the paper warns about.
    ShadowsSystemModule(String),
    /// The name is already bound by this agent; bindings are immutable.
    AlreadyLoaded(String),
    /// Byte-code verification failed.
    Rejected(VerifyError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::ShadowsSystemModule(n) => {
                write!(f, "module {n:?} would shadow a system module")
            }
            LoadError::AlreadyLoaded(n) => write!(f, "module {n:?} is already loaded"),
            LoadError::Rejected(e) => write!(f, "verification rejected module: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<VerifyError> for LoadError {
    fn from(e: VerifyError) -> Self {
        LoadError::Rejected(e)
    }
}

/// Provenance of a loaded module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Origin {
    /// Installed by the server from its local, trusted code base —
    /// the analogue of classes on the local classpath.
    System,
    /// Carried in by the agent over the network.
    Agent,
}

/// One agent's (or the server's) module name-space.
#[derive(Debug, Clone, Default)]
pub struct Namespace {
    modules: BTreeMap<String, (Origin, Arc<VerifiedModule>)>,
}

impl Namespace {
    /// An empty namespace.
    pub fn new() -> Self {
        Self::default()
    }

    /// A namespace pre-populated with the server's system modules. Shares
    /// the (already verified) system module objects — cheap per-agent.
    pub fn with_system(system: &[Arc<VerifiedModule>]) -> Result<Self, LoadError> {
        let mut ns = Namespace::new();
        for m in system {
            let name = m.module().name.clone();
            if ns.modules.contains_key(&name) {
                return Err(LoadError::AlreadyLoaded(name));
            }
            ns.modules.insert(name, (Origin::System, Arc::clone(m)));
        }
        Ok(ns)
    }

    /// Loads an untrusted module brought by the agent: verifies it and
    /// binds it, refusing to shadow anything.
    pub fn load(&mut self, module: Module) -> Result<Arc<VerifiedModule>, LoadError> {
        match self.modules.get(&module.name) {
            Some((Origin::System, _)) => {
                return Err(LoadError::ShadowsSystemModule(module.name));
            }
            Some((Origin::Agent, _)) => {
                return Err(LoadError::AlreadyLoaded(module.name));
            }
            None => {}
        }
        let name = module.name.clone();
        let verified = Arc::new(verify(module)?);
        self.modules
            .insert(name, (Origin::Agent, Arc::clone(&verified)));
        Ok(verified)
    }

    /// Resolves a module by name **within this namespace only** — there is
    /// no global fallback, which is exactly the isolation property.
    pub fn resolve(&self, name: &str) -> Option<&Arc<VerifiedModule>> {
        self.modules.get(name).map(|(_, m)| m)
    }

    /// The provenance of a bound name.
    pub fn origin(&self, name: &str) -> Option<Origin> {
        self.modules.get(name).map(|(o, _)| *o)
    }

    /// Number of bound modules.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// True when nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// Iterates bound names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.modules.keys().map(|s| s.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Op;
    use crate::module::ModuleBuilder;
    use crate::value::Ty;

    fn module(name: &str, ret: i64) -> Module {
        let mut b = ModuleBuilder::new(name);
        b.function("main", [], [], Ty::Int, vec![Op::PushI(ret), Op::Ret]);
        b.build()
    }

    fn system_set() -> Vec<Arc<VerifiedModule>> {
        vec![Arc::new(verify(module("sys.io", 1)).unwrap())]
    }

    #[test]
    fn loads_and_resolves() {
        let mut ns = Namespace::new();
        ns.load(module("shopper", 7)).unwrap();
        assert!(ns.resolve("shopper").is_some());
        assert!(ns.resolve("other").is_none());
        assert_eq!(ns.origin("shopper"), Some(Origin::Agent));
        assert_eq!(ns.len(), 1);
    }

    #[test]
    fn impostor_system_module_rejected() {
        let mut ns = Namespace::with_system(&system_set()).unwrap();
        let err = ns.load(module("sys.io", 666)).unwrap_err();
        assert_eq!(err, LoadError::ShadowsSystemModule("sys.io".into()));
        // The system module is untouched.
        assert_eq!(ns.origin("sys.io"), Some(Origin::System));
        let kept = ns.resolve("sys.io").unwrap();
        assert_eq!(kept.module().functions[0].code[0], Op::PushI(1));
    }

    #[test]
    fn rebinding_agent_module_rejected() {
        let mut ns = Namespace::new();
        ns.load(module("util", 1)).unwrap();
        let err = ns.load(module("util", 2)).unwrap_err();
        assert_eq!(err, LoadError::AlreadyLoaded("util".into()));
        let kept = ns.resolve("util").unwrap();
        assert_eq!(kept.module().functions[0].code[0], Op::PushI(1));
    }

    #[test]
    fn unverifiable_module_rejected() {
        let mut b = ModuleBuilder::new("evil");
        b.function("main", [], [], Ty::Int, vec![Op::Add, Op::Ret]);
        let mut ns = Namespace::new();
        assert!(matches!(
            ns.load(b.build()),
            Err(LoadError::Rejected(VerifyError::StackUnderflow { .. }))
        ));
        assert!(ns.is_empty());
    }

    #[test]
    fn namespaces_are_isolated() {
        // Two agents load different code under the same name; neither sees
        // the other's module.
        let mut ns_a = Namespace::new();
        let mut ns_b = Namespace::new();
        ns_a.load(module("util", 1)).unwrap();
        ns_b.load(module("util", 2)).unwrap();
        let a = ns_a.resolve("util").unwrap();
        let b = ns_b.resolve("util").unwrap();
        assert_eq!(a.module().functions[0].code[0], Op::PushI(1));
        assert_eq!(b.module().functions[0].code[0], Op::PushI(2));
    }

    #[test]
    fn system_modules_shared_not_copied() {
        let sys = system_set();
        let ns1 = Namespace::with_system(&sys).unwrap();
        let ns2 = Namespace::with_system(&sys).unwrap();
        assert!(Arc::ptr_eq(
            ns1.resolve("sys.io").unwrap(),
            ns2.resolve("sys.io").unwrap()
        ));
    }

    #[test]
    fn duplicate_system_modules_rejected() {
        let sys = vec![
            Arc::new(verify(module("sys.io", 1)).unwrap()),
            Arc::new(verify(module("sys.io", 2)).unwrap()),
        ];
        assert_eq!(
            Namespace::with_system(&sys).unwrap_err(),
            LoadError::AlreadyLoaded("sys.io".into())
        );
    }

    #[test]
    fn names_iterates_sorted() {
        let mut ns = Namespace::new();
        ns.load(module("zeta", 0)).unwrap();
        ns.load(module("alpha", 0)).unwrap();
        let names: Vec<&str> = ns.names().collect();
        assert_eq!(names, ["alpha", "zeta"]);
    }
}
