//! Serialization: code and mobile state as canonical bytes.
//!
//! An [`AgentImage`] is what actually travels between agent servers: the
//! agent's main module (code), its global values (mobile state), and the
//! entry function to resume at. `ajanta-runtime` wraps the image in signed,
//! MAC-framed transfer messages; the canonical encoding from `ajanta-wire`
//! guarantees the signature covers exactly one possible byte string.

use ajanta_wire::{decode_seq, encode_seq, Decoder, Encoder, Wire, WireError};

use crate::isa::Op;
use crate::module::{Function, HostImport, Module};
use crate::value::{Ty, Value};

impl Wire for Ty {
    fn encode(&self, e: &mut Encoder) {
        e.put_u8(match self {
            Ty::Int => 0,
            Ty::Bytes => 1,
        });
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        match d.get_u8()? {
            0 => Ok(Ty::Int),
            1 => Ok(Ty::Bytes),
            tag => Err(WireError::BadTag { ty: "Ty", tag }),
        }
    }
}

impl Wire for Value {
    fn encode(&self, e: &mut Encoder) {
        match self {
            Value::Int(i) => {
                e.put_u8(0);
                e.put_varint_signed(*i);
            }
            Value::Bytes(b) => {
                e.put_u8(1);
                e.put_bytes(b);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        match d.get_u8()? {
            0 => Ok(Value::Int(d.get_varint_signed()?)),
            1 => Ok(Value::Bytes(d.get_bytes()?)),
            tag => Err(WireError::BadTag { ty: "Value", tag }),
        }
    }
}

/// Opcode tags. Kept explicit (not derived from discriminants) so the wire
/// format is stable under enum reordering.
mod optag {
    pub const PUSH_I: u8 = 0;
    pub const PUSH_D: u8 = 1;
    pub const DUP: u8 = 2;
    pub const DROP: u8 = 3;
    pub const SWAP: u8 = 4;
    pub const ADD: u8 = 5;
    pub const SUB: u8 = 6;
    pub const MUL: u8 = 7;
    pub const DIV: u8 = 8;
    pub const REM: u8 = 9;
    pub const NEG: u8 = 10;
    pub const EQ: u8 = 11;
    pub const NE: u8 = 12;
    pub const LT: u8 = 13;
    pub const LE: u8 = 14;
    pub const GT: u8 = 15;
    pub const GE: u8 = 16;
    pub const AND: u8 = 17;
    pub const OR: u8 = 18;
    pub const NOT: u8 = 19;
    pub const BCONCAT: u8 = 20;
    pub const BLEN: u8 = 21;
    pub const BINDEX: u8 = 22;
    pub const BSLICE: u8 = 23;
    pub const BEQ: u8 = 24;
    pub const ITOA: u8 = 25;
    pub const ATOI: u8 = 26;
    pub const LOAD: u8 = 27;
    pub const STORE: u8 = 28;
    pub const GLOAD: u8 = 29;
    pub const GSTORE: u8 = 30;
    pub const JUMP: u8 = 31;
    pub const JZ: u8 = 32;
    pub const CALL: u8 = 33;
    pub const RET: u8 = 34;
    pub const HALT: u8 = 35;
    pub const HOSTCALL: u8 = 36;
    pub const NOP: u8 = 37;
}

impl Wire for Op {
    fn encode(&self, e: &mut Encoder) {
        use optag::*;
        match *self {
            Op::PushI(i) => {
                e.put_u8(PUSH_I);
                e.put_varint_signed(i);
            }
            Op::PushD(d) => {
                e.put_u8(PUSH_D);
                e.put_varint(u64::from(d));
            }
            Op::Dup => e.put_u8(DUP),
            Op::Drop => e.put_u8(DROP),
            Op::Swap => e.put_u8(SWAP),
            Op::Add => e.put_u8(ADD),
            Op::Sub => e.put_u8(SUB),
            Op::Mul => e.put_u8(MUL),
            Op::Div => e.put_u8(DIV),
            Op::Rem => e.put_u8(REM),
            Op::Neg => e.put_u8(NEG),
            Op::Eq => e.put_u8(EQ),
            Op::Ne => e.put_u8(NE),
            Op::Lt => e.put_u8(LT),
            Op::Le => e.put_u8(LE),
            Op::Gt => e.put_u8(GT),
            Op::Ge => e.put_u8(GE),
            Op::And => e.put_u8(AND),
            Op::Or => e.put_u8(OR),
            Op::Not => e.put_u8(NOT),
            Op::BConcat => e.put_u8(BCONCAT),
            Op::BLen => e.put_u8(BLEN),
            Op::BIndex => e.put_u8(BINDEX),
            Op::BSlice => e.put_u8(BSLICE),
            Op::BEq => e.put_u8(BEQ),
            Op::IToA => e.put_u8(ITOA),
            Op::AToI => e.put_u8(ATOI),
            Op::Load(n) => {
                e.put_u8(LOAD);
                e.put_varint(u64::from(n));
            }
            Op::Store(n) => {
                e.put_u8(STORE);
                e.put_varint(u64::from(n));
            }
            Op::GLoad(n) => {
                e.put_u8(GLOAD);
                e.put_varint(u64::from(n));
            }
            Op::GStore(n) => {
                e.put_u8(GSTORE);
                e.put_varint(u64::from(n));
            }
            Op::Jump(t) => {
                e.put_u8(JUMP);
                e.put_varint(u64::from(t));
            }
            Op::JumpIfZero(t) => {
                e.put_u8(JZ);
                e.put_varint(u64::from(t));
            }
            Op::Call(f) => {
                e.put_u8(CALL);
                e.put_varint(u64::from(f));
            }
            Op::Ret => e.put_u8(RET),
            Op::Halt => e.put_u8(HALT),
            Op::HostCall(i) => {
                e.put_u8(HOSTCALL);
                e.put_varint(u64::from(i));
            }
            Op::Nop => e.put_u8(NOP),
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        use optag::*;
        let tag = d.get_u8()?;
        let u32_of = |d: &mut Decoder<'_>| -> Result<u32, WireError> {
            u32::try_from(d.get_varint()?).map_err(|_| WireError::Invalid("operand too large"))
        };
        let u16_of = |d: &mut Decoder<'_>| -> Result<u16, WireError> {
            u16::try_from(d.get_varint()?).map_err(|_| WireError::Invalid("operand too large"))
        };
        Ok(match tag {
            PUSH_I => Op::PushI(d.get_varint_signed()?),
            PUSH_D => Op::PushD(u32_of(d)?),
            DUP => Op::Dup,
            DROP => Op::Drop,
            SWAP => Op::Swap,
            ADD => Op::Add,
            SUB => Op::Sub,
            MUL => Op::Mul,
            DIV => Op::Div,
            REM => Op::Rem,
            NEG => Op::Neg,
            EQ => Op::Eq,
            NE => Op::Ne,
            LT => Op::Lt,
            LE => Op::Le,
            GT => Op::Gt,
            GE => Op::Ge,
            AND => Op::And,
            OR => Op::Or,
            NOT => Op::Not,
            BCONCAT => Op::BConcat,
            BLEN => Op::BLen,
            BINDEX => Op::BIndex,
            BSLICE => Op::BSlice,
            BEQ => Op::BEq,
            ITOA => Op::IToA,
            ATOI => Op::AToI,
            LOAD => Op::Load(u16_of(d)?),
            STORE => Op::Store(u16_of(d)?),
            GLOAD => Op::GLoad(u16_of(d)?),
            GSTORE => Op::GStore(u16_of(d)?),
            JUMP => Op::Jump(u32_of(d)?),
            JZ => Op::JumpIfZero(u32_of(d)?),
            CALL => Op::Call(u32_of(d)?),
            RET => Op::Ret,
            HALT => Op::Halt,
            HOSTCALL => Op::HostCall(u32_of(d)?),
            NOP => Op::Nop,
            tag => return Err(WireError::BadTag { ty: "Op", tag }),
        })
    }
}

impl Wire for Function {
    fn encode(&self, e: &mut Encoder) {
        e.put_str(&self.name);
        encode_seq(&self.params, e);
        encode_seq(&self.locals, e);
        self.ret.encode(e);
        encode_seq(&self.code, e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Function {
            name: d.get_str()?,
            params: decode_seq(d)?,
            locals: decode_seq(d)?,
            ret: Ty::decode(d)?,
            code: decode_seq(d)?,
        })
    }
}

impl Wire for HostImport {
    fn encode(&self, e: &mut Encoder) {
        e.put_str(&self.name);
        encode_seq(&self.params, e);
        self.ret.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(HostImport {
            name: d.get_str()?,
            params: decode_seq(d)?,
            ret: Ty::decode(d)?,
        })
    }
}

impl Wire for Module {
    fn encode(&self, e: &mut Encoder) {
        e.put_str(&self.name);
        encode_seq(&self.imports, e);
        encode_seq(&self.functions, e);
        encode_seq(&self.globals, e);
        encode_seq(&self.data, e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Module {
            name: d.get_str()?,
            imports: decode_seq(d)?,
            functions: decode_seq(d)?,
            globals: decode_seq(d)?,
            data: decode_seq(d)?,
        })
    }
}

/// The unit of agent mobility: code + mobile state + resume point.
///
/// **Received images are untrusted input**: the receiving server re-runs
/// the byte-code verifier (via [`crate::verifier::verify`]) and re-checks
/// the globals' types before execution — never trust the sender's claim
/// that code was verified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgentImage {
    /// The agent's code.
    pub module: Module,
    /// Global values captured at departure (must match `module.globals`).
    pub globals: Vec<Value>,
    /// Entry function to invoke on arrival.
    pub entry: String,
}

impl AgentImage {
    /// Validates internal consistency: globals match declarations and the
    /// entry function exists with the conventional signature
    /// `(bytes) -> int` or `(bytes) -> bytes` (the return value is carried
    /// home in the agent's completion report either way).
    pub fn validate(&self) -> Result<(), WireError> {
        if self.globals.len() != self.module.globals.len() {
            return Err(WireError::Invalid("global count mismatch"));
        }
        for (v, &t) in self.globals.iter().zip(&self.module.globals) {
            if v.ty() != t {
                return Err(WireError::Invalid("global type mismatch"));
            }
        }
        let idx = self
            .module
            .function_index(&self.entry)
            .ok_or(WireError::Invalid("entry function missing"))?;
        let f = &self.module.functions[idx as usize];
        if f.params.as_slice() != [Ty::Bytes] {
            return Err(WireError::Invalid("entry must take exactly (bytes)"));
        }
        Ok(())
    }

    /// Total encoded size — the "agent size" axis in transfer experiments.
    pub fn encoded_len(&self) -> usize {
        self.to_bytes().len()
    }
}

impl Wire for AgentImage {
    fn encode(&self, e: &mut Encoder) {
        self.module.encode(e);
        encode_seq(&self.globals, e);
        e.put_str(&self.entry);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        let img = AgentImage {
            module: Module::decode(d)?,
            globals: decode_seq(d)?,
            entry: d.get_str()?,
        };
        img.validate()?;
        Ok(img)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::ModuleBuilder;

    fn sample_module() -> Module {
        let mut b = ModuleBuilder::new("tour");
        let g = b.global(Ty::Int);
        let gb = b.global(Ty::Bytes);
        let greeting = b.str_data("hello");
        b.import("env.log", [Ty::Bytes], Ty::Int);
        b.function(
            "run",
            [Ty::Bytes],
            [Ty::Int],
            Ty::Int,
            vec![
                Op::GLoad(g),
                Op::PushI(1),
                Op::Add,
                Op::GStore(g),
                Op::PushD(greeting),
                Op::GStore(gb),
                Op::PushI(0),
                Op::Ret,
            ],
        );
        b.build()
    }

    fn sample_image() -> AgentImage {
        let module = sample_module();
        let globals = module.initial_globals();
        AgentImage {
            module,
            globals,
            entry: "run".into(),
        }
    }

    #[test]
    fn every_op_roundtrips() {
        let ops = vec![
            Op::PushI(i64::MIN),
            Op::PushI(i64::MAX),
            Op::PushD(u32::MAX),
            Op::Dup,
            Op::Drop,
            Op::Swap,
            Op::Add,
            Op::Sub,
            Op::Mul,
            Op::Div,
            Op::Rem,
            Op::Neg,
            Op::Eq,
            Op::Ne,
            Op::Lt,
            Op::Le,
            Op::Gt,
            Op::Ge,
            Op::And,
            Op::Or,
            Op::Not,
            Op::BConcat,
            Op::BLen,
            Op::BIndex,
            Op::BSlice,
            Op::BEq,
            Op::IToA,
            Op::AToI,
            Op::Load(u16::MAX),
            Op::Store(0),
            Op::GLoad(1),
            Op::GStore(2),
            Op::Jump(12345),
            Op::JumpIfZero(0),
            Op::Call(7),
            Op::Ret,
            Op::Halt,
            Op::HostCall(3),
            Op::Nop,
        ];
        for op in ops {
            let bytes = op.to_bytes();
            assert_eq!(Op::from_bytes(&bytes).unwrap(), op, "{op:?}");
        }
    }

    #[test]
    fn module_roundtrips() {
        let m = sample_module();
        assert_eq!(Module::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn image_roundtrips_and_validates() {
        let img = sample_image();
        let back = AgentImage::from_bytes(&img.to_bytes()).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn image_with_mutated_state_roundtrips() {
        let mut img = sample_image();
        img.globals[0] = Value::Int(41);
        img.globals[1] = Value::str("carried data");
        let back = AgentImage::from_bytes(&img.to_bytes()).unwrap();
        assert_eq!(back.globals[0], Value::Int(41));
    }

    #[test]
    fn validation_rejects_global_mismatches() {
        let mut img = sample_image();
        img.globals.pop();
        assert!(img.validate().is_err());

        let mut img = sample_image();
        img.globals.swap(0, 1);
        assert!(img.validate().is_err());
    }

    #[test]
    fn validation_rejects_missing_or_misshapen_entry() {
        let mut img = sample_image();
        img.entry = "ghost".into();
        assert!(img.validate().is_err());

        let mut img = sample_image();
        img.module.functions[0].params = vec![Ty::Int];
        img.entry = "run".into();
        assert!(img.validate().is_err());
    }

    #[test]
    fn decode_runs_validation() {
        let mut img = sample_image();
        img.entry = "ghost".into();
        // Encode bypasses validation; decode must reject.
        let bytes = img.to_bytes();
        assert!(AgentImage::from_bytes(&bytes).is_err());
    }

    #[test]
    fn bad_op_tag_rejected() {
        assert!(matches!(
            Op::from_bytes(&[200]),
            Err(WireError::BadTag { ty: "Op", tag: 200 })
        ));
    }

    #[test]
    fn encoded_len_tracks_state_size() {
        let small = sample_image();
        let mut large = sample_image();
        large.globals[1] = Value::Bytes(vec![7u8; 10_000]);
        assert!(large.encoded_len() > small.encoded_len() + 9_000);
    }

    #[test]
    fn ty_tags_strict() {
        assert!(matches!(
            Ty::from_bytes(&[9]),
            Err(WireError::BadTag { ty: "Ty", tag: 9 })
        ));
    }

    #[test]
    fn value_tags_strict() {
        assert!(matches!(
            Value::from_bytes(&[7]),
            Err(WireError::BadTag {
                ty: "Value",
                tag: 7
            })
        ));
    }
}
