//! Runtime values and the two-point type lattice.

use serde::{Deserialize, Serialize};

/// Static type of a value. The verifier tracks these through every
/// instruction; keeping the lattice tiny (two ground types) keeps the
/// verifier decidable by simple equality at join points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ty {
    /// 64-bit signed integer.
    Int,
    /// Immutable byte string (also used for UTF-8 text).
    Bytes,
}

impl std::fmt::Display for Ty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ty::Int => f.write_str("int"),
            Ty::Bytes => f.write_str("bytes"),
        }
    }
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// Immutable byte string.
    Bytes(Vec<u8>),
}

impl Value {
    /// The value's type.
    pub fn ty(&self) -> Ty {
        match self {
            Value::Int(_) => Ty::Int,
            Value::Bytes(_) => Ty::Bytes,
        }
    }

    /// The zero/empty value of a type — initial content of locals and
    /// globals.
    pub fn default_of(ty: Ty) -> Value {
        match ty {
            Ty::Int => Value::Int(0),
            Ty::Bytes => Value::Bytes(Vec::new()),
        }
    }

    /// Extracts an integer; `None` for bytes.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Bytes(_) => None,
        }
    }

    /// Extracts the byte string; `None` for ints.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Int(_) => None,
            Value::Bytes(b) => Some(b),
        }
    }

    /// Convenience constructor from UTF-8 text.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Bytes(s.as_ref().as_bytes().to_vec())
    }

    /// Renders bytes as UTF-8 (lossy) for diagnostics; ints as decimal.
    pub fn display_lossy(&self) -> String {
        match self {
            Value::Int(i) => i.to_string(),
            Value::Bytes(b) => String::from_utf8_lossy(b).into_owned(),
        }
    }

    /// Approximate memory footprint in bytes, used by per-agent memory
    /// quotas.
    pub fn heap_size(&self) -> usize {
        match self {
            Value::Int(_) => 8,
            Value::Bytes(b) => 24 + b.len(),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Self {
        Value::Bytes(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn types_match_constructors() {
        assert_eq!(Value::Int(5).ty(), Ty::Int);
        assert_eq!(Value::Bytes(vec![1]).ty(), Ty::Bytes);
        assert_eq!(Value::str("x").ty(), Ty::Bytes);
    }

    #[test]
    fn defaults_are_zero_like() {
        assert_eq!(Value::default_of(Ty::Int), Value::Int(0));
        assert_eq!(Value::default_of(Ty::Bytes), Value::Bytes(vec![]));
    }

    #[test]
    fn extractors_are_type_safe() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_bytes(), None);
        assert_eq!(Value::str("ab").as_bytes(), Some(b"ab".as_slice()));
        assert_eq!(Value::str("ab").as_int(), None);
    }

    #[test]
    fn display_lossy_renders_both() {
        assert_eq!(Value::Int(-7).display_lossy(), "-7");
        assert_eq!(Value::str("héllo").display_lossy(), "héllo");
        assert_eq!(Value::Bytes(vec![0xff, 0xfe]).display_lossy().len(), 6); // two replacement chars
    }

    #[test]
    fn heap_size_scales_with_bytes() {
        assert_eq!(Value::Int(0).heap_size(), 8);
        assert!(Value::Bytes(vec![0; 100]).heap_size() > Value::Bytes(vec![]).heap_size());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(4i64), Value::Int(4));
        assert_eq!(Value::from(vec![9u8]), Value::Bytes(vec![9]));
        assert_eq!(Value::from("hi"), Value::str("hi"));
    }
}
