//! The fuel-metered AgentScript interpreter.
//!
//! The interpreter only executes [`VerifiedModule`]s, so no type or bounds
//! check here can fail for *verified* reasons — runtime traps are limited
//! to genuinely dynamic conditions (division by zero, byte-index range,
//! malformed `atoi` input, call-depth and quota exhaustion, and host-call
//! denials). Quota exhaustion is the paper's denial-of-service containment
//! (Section 2: "inordinate consumption of a host's resources").

use std::sync::Arc;

use crate::module::HostImport;
use crate::value::Value;
use crate::verifier::VerifiedModule;
use crate::Op;

/// Resource limits a server imposes on one agent execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Instruction-fuel budget (see [`Op::fuel_cost`]).
    pub fuel: u64,
    /// Extra fuel charged per host call, on top of the opcode cost.
    pub host_call_fuel: u64,
    /// Maximum call-frame depth.
    pub max_call_depth: usize,
    /// Byte-allocation budget for byte-string results.
    pub alloc_budget: u64,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            fuel: 10_000_000,
            host_call_fuel: 50,
            max_call_depth: 128,
            alloc_budget: 64 << 20,
        }
    }
}

/// Dynamic failure of an agent program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrapKind {
    /// Integer division or remainder by zero (or `i64::MIN / -1`).
    DivideByZero,
    /// Byte index/slice out of range.
    BytesOutOfRange,
    /// `atoi` on non-numeric input.
    MalformedNumber,
    /// Call depth exceeded [`Limits::max_call_depth`].
    CallDepthExceeded,
    /// Allocation budget exceeded.
    AllocBudgetExceeded,
    /// The host denied an operation — the paper's *security exception*
    /// raised by a proxy whose method is disabled, expired, or revoked.
    SecurityException(String),
    /// A host call failed for a non-security reason.
    HostFailure(String),
}

impl std::fmt::Display for TrapKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrapKind::DivideByZero => f.write_str("divide by zero"),
            TrapKind::BytesOutOfRange => f.write_str("byte index out of range"),
            TrapKind::MalformedNumber => f.write_str("malformed number in atoi"),
            TrapKind::CallDepthExceeded => f.write_str("call depth exceeded"),
            TrapKind::AllocBudgetExceeded => f.write_str("allocation budget exceeded"),
            TrapKind::SecurityException(m) => write!(f, "security exception: {m}"),
            TrapKind::HostFailure(m) => write!(f, "host failure: {m}"),
        }
    }
}

/// How one `run` call ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecOutcome {
    /// The entry function returned (or `Halt` executed) with this value.
    Finished(Value),
    /// A dynamic trap; the program is dead at `func`/`ip`.
    Trapped {
        /// Trap reason.
        kind: TrapKind,
        /// Function index where the trap occurred.
        func: u32,
        /// Instruction index where the trap occurred.
        ip: u32,
    },
    /// The fuel budget ran out — quota violation.
    OutOfFuel,
    /// A host call asked execution to stop (e.g. the `go` migration
    /// primitive): the agent will resume elsewhere/later.
    HostStopped {
        /// Name of the import that stopped execution.
        import: String,
        /// Payload the host attached (e.g. encoded destination).
        payload: Value,
    },
}

/// How one [`Interpreter::run_slice`] call ended: either the slice's fuel
/// budget was reached with the program still runnable (cooperative yield
/// point), or the run finished with an [`ExecOutcome`].
///
/// The slicing guarantee: a run driven by `start` + any sequence of
/// `run_slice` calls is **bit-identical** to a single-shot [`Interpreter::run`]
/// — same outcome, same `fuel_used`, same globals, same host-call sequence.
/// The op that would overshoot a slice budget is refunded and re-charged on
/// resume, so no op is ever charged or executed twice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SliceOutcome {
    /// The slice's fuel budget is exhausted but the program can continue;
    /// call [`Interpreter::run_slice`] again to resume exactly where it
    /// left off.
    Yielded,
    /// The run ended; the suspended state is discarded.
    Done(ExecOutcome),
}

/// How the host answers a host call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostResponse {
    /// Produce this value as the call's result and continue.
    Value(Value),
    /// Stop execution (e.g. migration); the payload is surfaced in
    /// [`ExecOutcome::HostStopped`].
    Stop(Value),
}

/// Host-call failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostError {
    /// Access denied — becomes [`TrapKind::SecurityException`].
    Denied(String),
    /// Operational failure — becomes [`TrapKind::HostFailure`].
    Failed(String),
}

impl HostError {
    fn into_trap(self) -> TrapKind {
        match self {
            HostError::Denied(m) => TrapKind::SecurityException(m),
            HostError::Failed(m) => TrapKind::HostFailure(m),
        }
    }
}

/// The server side of the host-call boundary.
///
/// In `ajanta-runtime` the implementation is the **agent environment**
/// (paper Fig. 1): it mediates `get_resource`, proxy invocations, `go`,
/// messaging and monitoring — always under the server's reference monitor.
pub trait HostInterface {
    /// Handles one host call. `import` carries the verified signature; the
    /// interpreter guarantees `args` matches `import.params` (in
    /// declaration order) and that a `Value` response of the wrong type is
    /// reported as a host failure rather than corrupting the stack.
    fn call(&mut self, import: &HostImport, args: &[Value]) -> Result<HostResponse, HostError>;
}

/// A no-op host for pure computations: denies every call.
pub struct NoHost;

impl HostInterface for NoHost {
    fn call(&mut self, import: &HostImport, _args: &[Value]) -> Result<HostResponse, HostError> {
        Err(HostError::Denied(format!(
            "no host bound for import {:?}",
            import.name
        )))
    }
}

pub(crate) struct Frame {
    pub(crate) func: u32,
    pub(crate) ip: u32,
    pub(crate) locals: Vec<Value>,
    pub(crate) stack: Vec<Value>,
}

/// Executes entry functions of one verified module against a host.
///
/// The interpreter owns the module's **global state** (the agent's mobile
/// data); run an entry function, then read the globals back out for
/// migration.
///
/// It owns its module via `Arc` (rather than borrowing it) so a suspended
/// interpreter is a self-contained, parkable value: the cooperative
/// scheduler in `ajanta-runtime` keeps thousands of them queued with no
/// thread or stack attached.
pub struct Interpreter {
    module: Arc<VerifiedModule>,
    globals: Vec<Value>,
    limits: Limits,
    fuel_used: u64,
    alloc_used: u64,
    host_calls: u64,
    /// Suspended call stack of an in-progress sliced run; empty when no
    /// run is in progress.
    frames: Vec<Frame>,
}

impl Interpreter {
    /// Creates an interpreter with default-initialized globals.
    pub fn new(module: Arc<VerifiedModule>, limits: Limits) -> Self {
        let globals = module.module().initial_globals();
        Interpreter {
            module,
            globals,
            limits,
            fuel_used: 0,
            alloc_used: 0,
            host_calls: 0,
            frames: Vec::new(),
        }
    }

    /// Replaces the global state (e.g. on arrival after migration).
    /// Returns `false` (and leaves state unchanged) when the shape or
    /// types do not match the module's declarations.
    pub fn restore_globals(&mut self, globals: Vec<Value>) -> bool {
        let decl = &self.module.module().globals;
        if globals.len() != decl.len() || globals.iter().zip(decl).any(|(v, &t)| v.ty() != t) {
            return false;
        }
        self.globals = globals;
        true
    }

    /// Read access to the agent's mobile state.
    pub fn globals(&self) -> &[Value] {
        &self.globals
    }

    /// Fuel consumed so far (accumulates across `run` calls) — the raw
    /// input to time-based usage metering experiments.
    pub fn fuel_used(&self) -> u64 {
        self.fuel_used
    }

    /// Number of host calls made so far.
    pub fn host_calls(&self) -> u64 {
        self.host_calls
    }

    /// Allocation budget consumed so far.
    pub fn alloc_used(&self) -> u64 {
        self.alloc_used
    }

    /// The suspended call stack (empty when no run is in progress) — read
    /// by `state::InterpState` capture.
    pub(crate) fn frames_ref(&self) -> &[Frame] {
        &self.frames
    }

    /// Overwrites globals, quota meters, and the suspended call stack
    /// from a snapshot the caller has already validated against this
    /// interpreter's module and limits.
    pub(crate) fn adopt_state(&mut self, state: crate::state::InterpState) {
        self.globals = state.globals;
        self.fuel_used = state.fuel_used;
        self.alloc_used = state.alloc_used;
        self.host_calls = state.host_calls;
        self.frames = state
            .frames
            .into_iter()
            .map(|f| Frame {
                func: f.func,
                ip: f.ip,
                locals: f.locals,
                stack: f.stack,
            })
            .collect();
    }

    /// A rough estimate of this interpreter's resident heap footprint:
    /// the value vectors' capacities plus per-value byte payloads. Used
    /// by the hibernation bench to compare a warm agent against its
    /// serialized bundle.
    pub fn approx_mem_bytes(&self) -> usize {
        fn vals(v: &[Value], cap: usize) -> usize {
            cap * std::mem::size_of::<Value>()
                + v.iter()
                    .map(|x| match x {
                        Value::Bytes(b) => b.capacity(),
                        Value::Int(_) => 0,
                    })
                    .sum::<usize>()
        }
        std::mem::size_of::<Interpreter>()
            + vals(&self.globals, self.globals.capacity())
            + self
                .frames
                .iter()
                .map(|f| {
                    std::mem::size_of::<Frame>()
                        + vals(&f.locals, f.locals.capacity())
                        + vals(&f.stack, f.stack.capacity())
                })
                .sum::<usize>()
    }

    /// Whether a started run is suspended mid-execution (a `run_slice`
    /// yielded and the call stack is parked inside the interpreter).
    pub fn in_progress(&self) -> bool {
        !self.frames.is_empty()
    }

    /// Prepares an execution of function `entry` with `args` without
    /// running any instruction; drive it with [`Interpreter::run_slice`].
    /// Any previously suspended run is discarded.
    ///
    /// # Panics
    /// Panics if `entry` does not exist or `args` do not match its
    /// signature — programming errors at the embedding boundary, not agent
    /// faults.
    pub fn start(&mut self, entry: &str, args: Vec<Value>) {
        let module = Arc::clone(&self.module);
        let m = module.module();
        let func = m
            .function_index(entry)
            .unwrap_or_else(|| panic!("entry function {entry:?} not found"));
        let f = &m.functions[func as usize];
        assert_eq!(
            args.len(),
            f.params.len(),
            "entry arity mismatch for {entry:?}"
        );
        for (a, &p) in args.iter().zip(&f.params) {
            assert_eq!(a.ty(), p, "entry argument type mismatch for {entry:?}");
        }

        let mut locals: Vec<Value> = args;
        locals.extend(f.locals.iter().map(|&t| Value::default_of(t)));
        self.frames = vec![Frame {
            func,
            ip: 0,
            locals,
            stack: Vec::new(),
        }];
    }

    /// Runs function `entry` with `args` to completion, returning how
    /// execution ended. Equivalent to [`Interpreter::start`] followed by
    /// one unbounded [`Interpreter::run_slice`].
    ///
    /// # Panics
    /// Panics if `entry` does not exist or `args` do not match its
    /// signature — programming errors at the embedding boundary, not agent
    /// faults.
    pub fn run(
        &mut self,
        entry: &str,
        args: Vec<Value>,
        host: &mut dyn HostInterface,
    ) -> ExecOutcome {
        self.start(entry, args);
        match self.run_slice(u64::MAX, host) {
            SliceOutcome::Done(outcome) => outcome,
            SliceOutcome::Yielded => unreachable!("unbounded slice cannot yield"),
        }
    }

    /// Resumes the suspended run for at most `slice_fuel` additional fuel,
    /// cooperatively yielding once the budget is reached.
    ///
    /// Fuel discipline (what makes slicing bit-identical to a single
    /// shot): each op is charged *before* execution, exactly as in a
    /// single-shot run. If the charge busts [`Limits::fuel`], the run dies
    /// `OutOfFuel` with the busting op charged-but-unexecuted — identical
    /// either way. If the charge merely busts the slice budget, it is
    /// **refunded**, the instruction pointer stays put, and the slice
    /// yields: the op will be charged and executed exactly once, on
    /// resume. A slice always executes at least one op (an op costing more
    /// than the whole slice budget overshoots rather than spinning), so
    /// progress is guaranteed.
    ///
    /// # Panics
    /// Panics if no run is in progress (call [`Interpreter::start`]
    /// first).
    pub fn run_slice(&mut self, slice_fuel: u64, host: &mut dyn HostInterface) -> SliceOutcome {
        assert!(
            !self.frames.is_empty(),
            "run_slice with no execution in progress (call start first)"
        );
        let module = Arc::clone(&self.module);
        let m = module.module();
        // The call stack leaves the interpreter for the duration of the
        // slice (split-borrow with the fields the op arms mutate) and is
        // parked back only on yield — every Done path drops it.
        let mut frames = std::mem::take(&mut self.frames);
        let slice_end = self.fuel_used.saturating_add(slice_fuel);
        let mut made_progress = false;

        loop {
            let depth = frames.len();
            let (func_idx, ip) = {
                let frame = frames.last().expect("at least one frame");
                (frame.func, frame.ip)
            };
            let code = &m.functions[func_idx as usize].code;
            let op = code[ip as usize];

            // Fuel accounting.
            let mut cost = op.fuel_cost();
            if matches!(op, Op::HostCall(_)) {
                cost += self.limits.host_call_fuel;
            }
            self.fuel_used += cost;
            if self.fuel_used > self.limits.fuel {
                return SliceOutcome::Done(ExecOutcome::OutOfFuel);
            }
            if self.fuel_used > slice_end && made_progress {
                // Cooperative yield: refund the unexecuted op and park.
                self.fuel_used -= cost;
                self.frames = frames;
                return SliceOutcome::Yielded;
            }
            made_progress = true;
            let frame = frames.last_mut().expect("at least one frame");

            macro_rules! trap {
                ($kind:expr) => {
                    return SliceOutcome::Done(ExecOutcome::Trapped {
                        kind: $kind,
                        func: func_idx,
                        ip,
                    })
                };
            }
            macro_rules! pop_int {
                () => {
                    match frame.stack.pop() {
                        Some(Value::Int(i)) => i,
                        _ => unreachable!("verifier guarantees an int on top"),
                    }
                };
            }
            macro_rules! pop_bytes {
                () => {
                    match frame.stack.pop() {
                        Some(Value::Bytes(b)) => b,
                        _ => unreachable!("verifier guarantees bytes on top"),
                    }
                };
            }

            frame.ip += 1; // default: fall through; jumps overwrite below
            match op {
                Op::PushI(i) => frame.stack.push(Value::Int(i)),
                Op::PushD(d) => {
                    let bytes = m.data[d as usize].clone();
                    self.alloc_used += bytes.len() as u64;
                    if self.alloc_used > self.limits.alloc_budget {
                        trap!(TrapKind::AllocBudgetExceeded);
                    }
                    frame.stack.push(Value::Bytes(bytes));
                }
                Op::Dup => {
                    let v = frame.stack.last().expect("verified").clone();
                    if let Value::Bytes(b) = &v {
                        self.alloc_used += b.len() as u64;
                        if self.alloc_used > self.limits.alloc_budget {
                            trap!(TrapKind::AllocBudgetExceeded);
                        }
                    }
                    frame.stack.push(v);
                }
                Op::Drop => {
                    frame.stack.pop();
                }
                Op::Swap => {
                    let n = frame.stack.len();
                    frame.stack.swap(n - 1, n - 2);
                }
                Op::Add => {
                    let b = pop_int!();
                    let a = pop_int!();
                    frame.stack.push(Value::Int(a.wrapping_add(b)));
                }
                Op::Sub => {
                    let b = pop_int!();
                    let a = pop_int!();
                    frame.stack.push(Value::Int(a.wrapping_sub(b)));
                }
                Op::Mul => {
                    let b = pop_int!();
                    let a = pop_int!();
                    frame.stack.push(Value::Int(a.wrapping_mul(b)));
                }
                Op::Div => {
                    let b = pop_int!();
                    let a = pop_int!();
                    match a.checked_div(b) {
                        Some(v) => frame.stack.push(Value::Int(v)),
                        None => trap!(TrapKind::DivideByZero),
                    }
                }
                Op::Rem => {
                    let b = pop_int!();
                    let a = pop_int!();
                    match a.checked_rem(b) {
                        Some(v) => frame.stack.push(Value::Int(v)),
                        None => trap!(TrapKind::DivideByZero),
                    }
                }
                Op::Neg => {
                    let a = pop_int!();
                    frame.stack.push(Value::Int(a.wrapping_neg()));
                }
                Op::Eq => {
                    let b = pop_int!();
                    let a = pop_int!();
                    frame.stack.push(Value::Int((a == b) as i64));
                }
                Op::Ne => {
                    let b = pop_int!();
                    let a = pop_int!();
                    frame.stack.push(Value::Int((a != b) as i64));
                }
                Op::Lt => {
                    let b = pop_int!();
                    let a = pop_int!();
                    frame.stack.push(Value::Int((a < b) as i64));
                }
                Op::Le => {
                    let b = pop_int!();
                    let a = pop_int!();
                    frame.stack.push(Value::Int((a <= b) as i64));
                }
                Op::Gt => {
                    let b = pop_int!();
                    let a = pop_int!();
                    frame.stack.push(Value::Int((a > b) as i64));
                }
                Op::Ge => {
                    let b = pop_int!();
                    let a = pop_int!();
                    frame.stack.push(Value::Int((a >= b) as i64));
                }
                Op::And => {
                    let b = pop_int!();
                    let a = pop_int!();
                    frame.stack.push(Value::Int(a & b));
                }
                Op::Or => {
                    let b = pop_int!();
                    let a = pop_int!();
                    frame.stack.push(Value::Int(a | b));
                }
                Op::Not => {
                    let a = pop_int!();
                    frame.stack.push(Value::Int((a == 0) as i64));
                }
                Op::BConcat => {
                    let b = pop_bytes!();
                    let mut a = pop_bytes!();
                    self.alloc_used += b.len() as u64;
                    if self.alloc_used > self.limits.alloc_budget {
                        trap!(TrapKind::AllocBudgetExceeded);
                    }
                    a.extend_from_slice(&b);
                    frame.stack.push(Value::Bytes(a));
                }
                Op::BLen => {
                    let b = pop_bytes!();
                    frame.stack.push(Value::Int(b.len() as i64));
                }
                Op::BIndex => {
                    let i = pop_int!();
                    let b = pop_bytes!();
                    match usize::try_from(i).ok().and_then(|i| b.get(i)) {
                        Some(&byte) => frame.stack.push(Value::Int(byte as i64)),
                        None => trap!(TrapKind::BytesOutOfRange),
                    }
                }
                Op::BSlice => {
                    let len = pop_int!();
                    let start = pop_int!();
                    let b = pop_bytes!();
                    let (Ok(start), Ok(len)) = (usize::try_from(start), usize::try_from(len))
                    else {
                        trap!(TrapKind::BytesOutOfRange)
                    };
                    let Some(end) = start.checked_add(len) else {
                        trap!(TrapKind::BytesOutOfRange)
                    };
                    if end > b.len() {
                        trap!(TrapKind::BytesOutOfRange);
                    }
                    self.alloc_used += len as u64;
                    if self.alloc_used > self.limits.alloc_budget {
                        trap!(TrapKind::AllocBudgetExceeded);
                    }
                    frame.stack.push(Value::Bytes(b[start..end].to_vec()));
                }
                Op::BEq => {
                    let b = pop_bytes!();
                    let a = pop_bytes!();
                    frame.stack.push(Value::Int((a == b) as i64));
                }
                Op::IToA => {
                    let i = pop_int!();
                    let s = i.to_string().into_bytes();
                    self.alloc_used += s.len() as u64;
                    if self.alloc_used > self.limits.alloc_budget {
                        trap!(TrapKind::AllocBudgetExceeded);
                    }
                    frame.stack.push(Value::Bytes(s));
                }
                Op::AToI => {
                    let b = pop_bytes!();
                    match std::str::from_utf8(&b)
                        .ok()
                        .and_then(|s| s.parse::<i64>().ok())
                    {
                        Some(v) => frame.stack.push(Value::Int(v)),
                        None => trap!(TrapKind::MalformedNumber),
                    }
                }
                Op::Load(n) => {
                    let v = frame.locals[n as usize].clone();
                    if let Value::Bytes(b) = &v {
                        self.alloc_used += b.len() as u64;
                        if self.alloc_used > self.limits.alloc_budget {
                            trap!(TrapKind::AllocBudgetExceeded);
                        }
                    }
                    frame.stack.push(v);
                }
                Op::Store(n) => {
                    let v = frame.stack.pop().expect("verified");
                    frame.locals[n as usize] = v;
                }
                Op::GLoad(n) => {
                    let v = self.globals[n as usize].clone();
                    if let Value::Bytes(b) = &v {
                        self.alloc_used += b.len() as u64;
                        if self.alloc_used > self.limits.alloc_budget {
                            trap!(TrapKind::AllocBudgetExceeded);
                        }
                    }
                    frame.stack.push(v);
                }
                Op::GStore(n) => {
                    let v = frame.stack.pop().expect("verified");
                    self.globals[n as usize] = v;
                }
                Op::Jump(t) => frame.ip = t,
                Op::JumpIfZero(t) => {
                    if pop_int!() == 0 {
                        frame.ip = t;
                    }
                }
                Op::Call(callee) => {
                    if depth >= self.limits.max_call_depth {
                        trap!(TrapKind::CallDepthExceeded);
                    }
                    let g = &m.functions[callee as usize];
                    let argc = g.params.len();
                    let split = frame.stack.len() - argc;
                    let mut locals: Vec<Value> = frame.stack.split_off(split);
                    locals.extend(g.locals.iter().map(|&t| Value::default_of(t)));
                    frames.push(Frame {
                        func: callee,
                        ip: 0,
                        locals,
                        stack: Vec::new(),
                    });
                }
                Op::Ret => {
                    let rv = frames
                        .last_mut()
                        .expect("frame")
                        .stack
                        .pop()
                        .expect("verified return value");
                    frames.pop();
                    match frames.last_mut() {
                        Some(caller) => caller.stack.push(rv),
                        None => return SliceOutcome::Done(ExecOutcome::Finished(rv)),
                    }
                }
                Op::Halt => {
                    let rv = Value::Int(pop_int!());
                    return SliceOutcome::Done(ExecOutcome::Finished(rv));
                }
                Op::HostCall(idx) => {
                    let import = &m.imports[idx as usize];
                    let argc = import.params.len();
                    let split = frame.stack.len() - argc;
                    let args: Vec<Value> = frame.stack.split_off(split);
                    self.host_calls += 1;
                    match host.call(import, &args) {
                        Ok(HostResponse::Value(v)) => {
                            if v.ty() != import.ret {
                                trap!(TrapKind::HostFailure(format!(
                                    "host returned {} for import {:?} declared {}",
                                    v.ty(),
                                    import.name,
                                    import.ret
                                )));
                            }
                            if let Value::Bytes(b) = &v {
                                self.alloc_used += b.len() as u64;
                                if self.alloc_used > self.limits.alloc_budget {
                                    trap!(TrapKind::AllocBudgetExceeded);
                                }
                            }
                            frame.stack.push(v);
                        }
                        Ok(HostResponse::Stop(payload)) => {
                            return SliceOutcome::Done(ExecOutcome::HostStopped {
                                import: import.name.clone(),
                                payload,
                            });
                        }
                        Err(e) => trap!(e.into_trap()),
                    }
                }
                Op::Nop => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::ModuleBuilder;
    use crate::value::Ty;
    use crate::verifier::verify;

    fn run_main(code: Vec<Op>) -> ExecOutcome {
        run_main_with(code, Limits::default())
    }

    fn run_main_with(code: Vec<Op>, limits: Limits) -> ExecOutcome {
        let mut b = ModuleBuilder::new("t");
        b.function("main", [], [Ty::Int, Ty::Int], Ty::Int, code);
        let vm = Arc::new(verify(b.build()).unwrap());
        let mut interp = Interpreter::new(Arc::clone(&vm), limits);
        interp.run("main", vec![], &mut NoHost)
    }

    #[test]
    fn arithmetic_program() {
        // (3 + 4) * 5 - 1 = 34
        let out = run_main(vec![
            Op::PushI(3),
            Op::PushI(4),
            Op::Add,
            Op::PushI(5),
            Op::Mul,
            Op::PushI(1),
            Op::Sub,
            Op::Ret,
        ]);
        assert_eq!(out, ExecOutcome::Finished(Value::Int(34)));
    }

    #[test]
    fn loop_sums_one_to_ten() {
        // local0 = acc, local1 = i
        let out = run_main(vec![
            /*0*/ Op::PushI(10),
            /*1*/ Op::Store(1),
            /*2*/ Op::Load(1),
            /*3*/ Op::JumpIfZero(12),
            /*4*/ Op::Load(0),
            /*5*/ Op::Load(1),
            /*6*/ Op::Add,
            /*7*/ Op::Store(0),
            /*8*/ Op::Load(1),
            /*9*/ Op::PushI(1),
            /*10*/ Op::Sub,
            /*11*/ Op::Store(1),
            /*12*/ Op::Load(1),
            /*13*/ Op::PushI(0),
            /*14*/ Op::Ne,
            /*15*/ Op::JumpIfZero(17),
            /*16*/ Op::Jump(2),
            /*17*/ Op::Load(0),
            /*18*/ Op::Ret,
        ]);
        // First pass through 2..: handled; expected sum 10+9+...+1 = 55.
        assert_eq!(out, ExecOutcome::Finished(Value::Int(55)));
    }

    #[test]
    fn division_traps_on_zero() {
        let out = run_main(vec![Op::PushI(1), Op::PushI(0), Op::Div, Op::Ret]);
        assert!(matches!(
            out,
            ExecOutcome::Trapped {
                kind: TrapKind::DivideByZero,
                ..
            }
        ));
        let out = run_main(vec![Op::PushI(i64::MIN), Op::PushI(-1), Op::Div, Op::Ret]);
        assert!(matches!(
            out,
            ExecOutcome::Trapped {
                kind: TrapKind::DivideByZero,
                ..
            }
        ));
    }

    #[test]
    fn bytes_operations() {
        let mut b = ModuleBuilder::new("t");
        let hello = b.str_data("hello ");
        let world = b.str_data("world");
        b.function(
            "main",
            [],
            [],
            Ty::Int,
            vec![
                Op::PushD(hello),
                Op::PushD(world),
                Op::BConcat, // "hello world"
                Op::BLen,    // 11
                Op::Ret,
            ],
        );
        let vm = Arc::new(verify(b.build()).unwrap());
        let mut interp = Interpreter::new(Arc::clone(&vm), Limits::default());
        assert_eq!(
            interp.run("main", vec![], &mut NoHost),
            ExecOutcome::Finished(Value::Int(11))
        );
    }

    #[test]
    fn slice_and_index_range_checks() {
        let mut b = ModuleBuilder::new("t");
        let d = b.str_data("abc");
        b.function(
            "ok",
            [],
            [],
            Ty::Int,
            vec![Op::PushD(d), Op::PushI(1), Op::BIndex, Op::Ret],
        );
        b.function(
            "bad",
            [],
            [],
            Ty::Int,
            vec![Op::PushD(d), Op::PushI(3), Op::BIndex, Op::Ret],
        );
        b.function(
            "badslice",
            [],
            [],
            Ty::Int,
            vec![
                Op::PushD(d),
                Op::PushI(2),
                Op::PushI(2),
                Op::BSlice,
                Op::BLen,
                Op::Ret,
            ],
        );
        let vm = Arc::new(verify(b.build()).unwrap());
        let mut i1 = Interpreter::new(Arc::clone(&vm), Limits::default());
        assert_eq!(
            i1.run("ok", vec![], &mut NoHost),
            ExecOutcome::Finished(Value::Int(b'b' as i64))
        );
        let mut i2 = Interpreter::new(Arc::clone(&vm), Limits::default());
        assert!(matches!(
            i2.run("bad", vec![], &mut NoHost),
            ExecOutcome::Trapped {
                kind: TrapKind::BytesOutOfRange,
                ..
            }
        ));
        let mut i3 = Interpreter::new(Arc::clone(&vm), Limits::default());
        assert!(matches!(
            i3.run("badslice", vec![], &mut NoHost),
            ExecOutcome::Trapped {
                kind: TrapKind::BytesOutOfRange,
                ..
            }
        ));
    }

    #[test]
    fn itoa_atoi_roundtrip_and_malformed() {
        let out = run_main(vec![Op::PushI(-12345), Op::IToA, Op::AToI, Op::Ret]);
        assert_eq!(out, ExecOutcome::Finished(Value::Int(-12345)));

        let mut b = ModuleBuilder::new("t");
        let d = b.str_data("not-a-number");
        b.function(
            "main",
            [],
            [],
            Ty::Int,
            vec![Op::PushD(d), Op::AToI, Op::Ret],
        );
        let vm = Arc::new(verify(b.build()).unwrap());
        let mut interp = Interpreter::new(Arc::clone(&vm), Limits::default());
        assert!(matches!(
            interp.run("main", vec![], &mut NoHost),
            ExecOutcome::Trapped {
                kind: TrapKind::MalformedNumber,
                ..
            }
        ));
    }

    #[test]
    fn out_of_fuel_stops_infinite_loop() {
        let out = run_main_with(
            vec![Op::Jump(0)],
            Limits {
                fuel: 1000,
                ..Limits::default()
            },
        );
        assert_eq!(out, ExecOutcome::OutOfFuel);
    }

    #[test]
    fn call_depth_limit() {
        // Infinite recursion main -> main is impossible (Call indexes a
        // second function); build f() { f() }.
        let mut b = ModuleBuilder::new("t");
        b.function("rec", [], [], Ty::Int, vec![Op::Call(0), Op::Ret]);
        let vm = Arc::new(verify(b.build()).unwrap());
        let mut interp = Interpreter::new(
            Arc::clone(&vm),
            Limits {
                max_call_depth: 16,
                ..Limits::default()
            },
        );
        assert!(matches!(
            interp.run("rec", vec![], &mut NoHost),
            ExecOutcome::Trapped {
                kind: TrapKind::CallDepthExceeded,
                ..
            }
        ));
    }

    #[test]
    fn alloc_budget_enforced() {
        // Repeated self-concatenation doubles a string until the budget
        // trips.
        let mut b = ModuleBuilder::new("t");
        let d = b.str_data("0123456789abcdef");
        b.function(
            "main",
            [],
            [Ty::Bytes],
            Ty::Int,
            vec![
                /*0*/ Op::PushD(d),
                /*1*/ Op::Store(0),
                /*2*/ Op::Load(0),
                /*3*/ Op::Load(0),
                /*4*/ Op::BConcat,
                /*5*/ Op::Store(0),
                /*6*/ Op::Jump(2),
            ],
        );
        let vm = Arc::new(verify(b.build()).unwrap());
        let mut interp = Interpreter::new(
            Arc::clone(&vm),
            Limits {
                alloc_budget: 1 << 16,
                ..Limits::default()
            },
        );
        assert!(matches!(
            interp.run("main", vec![], &mut NoHost),
            ExecOutcome::Trapped {
                kind: TrapKind::AllocBudgetExceeded,
                ..
            }
        ));
    }

    #[test]
    fn globals_survive_across_runs() {
        let mut b = ModuleBuilder::new("t");
        let g = b.global(Ty::Int);
        b.function(
            "bump",
            [],
            [],
            Ty::Int,
            vec![
                Op::GLoad(g),
                Op::PushI(1),
                Op::Add,
                Op::GStore(g),
                Op::GLoad(g),
                Op::Ret,
            ],
        );
        let vm = Arc::new(verify(b.build()).unwrap());
        let mut interp = Interpreter::new(Arc::clone(&vm), Limits::default());
        assert_eq!(
            interp.run("bump", vec![], &mut NoHost),
            ExecOutcome::Finished(Value::Int(1))
        );
        assert_eq!(
            interp.run("bump", vec![], &mut NoHost),
            ExecOutcome::Finished(Value::Int(2))
        );
        assert_eq!(interp.globals(), &[Value::Int(2)]);
    }

    #[test]
    fn restore_globals_validates_shape() {
        let mut b = ModuleBuilder::new("t");
        b.global(Ty::Int);
        b.global(Ty::Bytes);
        b.function("main", [], [], Ty::Int, vec![Op::PushI(0), Op::Ret]);
        let vm = Arc::new(verify(b.build()).unwrap());
        let mut interp = Interpreter::new(Arc::clone(&vm), Limits::default());
        assert!(interp.restore_globals(vec![Value::Int(5), Value::str("s")]));
        assert!(!interp.restore_globals(vec![Value::Int(5)]));
        assert!(!interp.restore_globals(vec![Value::str("s"), Value::Int(5)]));
        assert_eq!(interp.globals(), &[Value::Int(5), Value::str("s")]);
    }

    /// A host that records calls and returns canned values / stops.
    struct ScriptedHost {
        log: Vec<(String, Vec<Value>)>,
        stop_on: Option<String>,
    }

    impl HostInterface for ScriptedHost {
        fn call(&mut self, import: &HostImport, args: &[Value]) -> Result<HostResponse, HostError> {
            self.log.push((import.name.clone(), args.to_vec()));
            if self.stop_on.as_deref() == Some(import.name.as_str()) {
                return Ok(HostResponse::Stop(Value::str("dest")));
            }
            match import.name.as_str() {
                "env.add" => Ok(HostResponse::Value(Value::Int(
                    args[0].as_int().unwrap() + args[1].as_int().unwrap(),
                ))),
                "env.deny" => Err(HostError::Denied("method disabled".into())),
                "env.badtype" => Ok(HostResponse::Value(Value::str("oops"))),
                other => Err(HostError::Failed(format!("unknown {other}"))),
            }
        }
    }

    fn host_module() -> Arc<VerifiedModule> {
        let mut b = ModuleBuilder::new("t");
        let add = b.import("env.add", [Ty::Int, Ty::Int], Ty::Int);
        let deny = b.import("env.deny", [], Ty::Int);
        let bad = b.import("env.badtype", [], Ty::Int);
        let go = b.import("env.go", [], Ty::Int);
        b.function(
            "use_add",
            [],
            [],
            Ty::Int,
            vec![Op::PushI(20), Op::PushI(22), Op::HostCall(add), Op::Ret],
        );
        b.function(
            "use_deny",
            [],
            [],
            Ty::Int,
            vec![Op::HostCall(deny), Op::Ret],
        );
        b.function("use_bad", [], [], Ty::Int, vec![Op::HostCall(bad), Op::Ret]);
        b.function("use_go", [], [], Ty::Int, vec![Op::HostCall(go), Op::Ret]);
        Arc::new(verify(b.build()).unwrap())
    }

    #[test]
    fn host_call_passes_args_in_declaration_order() {
        let vm = host_module();
        let mut host = ScriptedHost {
            log: vec![],
            stop_on: None,
        };
        let mut interp = Interpreter::new(Arc::clone(&vm), Limits::default());
        assert_eq!(
            interp.run("use_add", vec![], &mut host),
            ExecOutcome::Finished(Value::Int(42))
        );
        assert_eq!(
            host.log,
            vec![("env.add".to_string(), vec![Value::Int(20), Value::Int(22)])]
        );
        assert_eq!(interp.host_calls(), 1);
    }

    #[test]
    fn host_denial_becomes_security_exception() {
        let vm = host_module();
        let mut host = ScriptedHost {
            log: vec![],
            stop_on: None,
        };
        let mut interp = Interpreter::new(Arc::clone(&vm), Limits::default());
        assert!(matches!(
            interp.run("use_deny", vec![], &mut host),
            ExecOutcome::Trapped {
                kind: TrapKind::SecurityException(_),
                ..
            }
        ));
    }

    #[test]
    fn host_return_type_is_checked() {
        let vm = host_module();
        let mut host = ScriptedHost {
            log: vec![],
            stop_on: None,
        };
        let mut interp = Interpreter::new(Arc::clone(&vm), Limits::default());
        assert!(matches!(
            interp.run("use_bad", vec![], &mut host),
            ExecOutcome::Trapped {
                kind: TrapKind::HostFailure(_),
                ..
            }
        ));
    }

    #[test]
    fn host_stop_surfaces_migration() {
        let vm = host_module();
        let mut host = ScriptedHost {
            log: vec![],
            stop_on: Some("env.go".into()),
        };
        let mut interp = Interpreter::new(Arc::clone(&vm), Limits::default());
        assert_eq!(
            interp.run("use_go", vec![], &mut host),
            ExecOutcome::HostStopped {
                import: "env.go".into(),
                payload: Value::str("dest"),
            }
        );
    }

    #[test]
    fn entry_args_are_locals() {
        let mut b = ModuleBuilder::new("t");
        b.function(
            "main",
            [Ty::Int, Ty::Int],
            [],
            Ty::Int,
            vec![Op::Load(0), Op::Load(1), Op::Sub, Op::Ret],
        );
        let vm = Arc::new(verify(b.build()).unwrap());
        let mut interp = Interpreter::new(Arc::clone(&vm), Limits::default());
        assert_eq!(
            interp.run("main", vec![Value::Int(50), Value::Int(8)], &mut NoHost),
            ExecOutcome::Finished(Value::Int(42))
        );
    }

    #[test]
    #[should_panic(expected = "entry function")]
    fn unknown_entry_panics() {
        let vm = host_module();
        Interpreter::new(Arc::clone(&vm), Limits::default()).run("nope", vec![], &mut NoHost);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_panics() {
        let mut b = ModuleBuilder::new("t");
        b.function("main", [Ty::Int], [], Ty::Int, vec![Op::Load(0), Op::Ret]);
        let vm = Arc::new(verify(b.build()).unwrap());
        Interpreter::new(Arc::clone(&vm), Limits::default()).run("main", vec![], &mut NoHost);
    }

    #[test]
    fn fuel_accumulates_across_runs() {
        let mut b = ModuleBuilder::new("t");
        b.function("main", [], [], Ty::Int, vec![Op::PushI(0), Op::Ret]);
        let vm = Arc::new(verify(b.build()).unwrap());
        let mut interp = Interpreter::new(Arc::clone(&vm), Limits::default());
        interp.run("main", vec![], &mut NoHost);
        let f1 = interp.fuel_used();
        interp.run("main", vec![], &mut NoHost);
        assert_eq!(interp.fuel_used(), 2 * f1);
    }

    /// The countdown-sum loop from `loop_sums_one_to_ten`, reused as the
    /// canonical multi-slice program.
    fn sum_loop_code() -> Vec<Op> {
        vec![
            /*0*/ Op::PushI(10),
            /*1*/ Op::Store(1),
            /*2*/ Op::Load(1),
            /*3*/ Op::JumpIfZero(12),
            /*4*/ Op::Load(0),
            /*5*/ Op::Load(1),
            /*6*/ Op::Add,
            /*7*/ Op::Store(0),
            /*8*/ Op::Load(1),
            /*9*/ Op::PushI(1),
            /*10*/ Op::Sub,
            /*11*/ Op::Store(1),
            /*12*/ Op::Load(1),
            /*13*/ Op::PushI(0),
            /*14*/ Op::Ne,
            /*15*/ Op::JumpIfZero(17),
            /*16*/ Op::Jump(2),
            /*17*/ Op::Load(0),
            /*18*/ Op::Ret,
        ]
    }

    fn sum_loop_module() -> Arc<VerifiedModule> {
        let mut b = ModuleBuilder::new("t");
        b.function("main", [], [Ty::Int, Ty::Int], Ty::Int, sum_loop_code());
        Arc::new(verify(b.build()).unwrap())
    }

    /// Drives a started run to completion in fixed fuel slices, counting
    /// the yields along the way.
    fn drive_slices(
        interp: &mut Interpreter,
        slice_fuel: u64,
        host: &mut dyn HostInterface,
    ) -> (ExecOutcome, u64) {
        let mut yields = 0;
        loop {
            match interp.run_slice(slice_fuel, host) {
                SliceOutcome::Yielded => yields += 1,
                SliceOutcome::Done(outcome) => return (outcome, yields),
            }
        }
    }

    #[test]
    fn sliced_run_is_bit_identical_to_single_shot() {
        let vm = sum_loop_module();
        let mut single = Interpreter::new(Arc::clone(&vm), Limits::default());
        let expected = single.run("main", vec![], &mut NoHost);

        for slice_fuel in [1u64, 2, 3, 7, 16, 1000] {
            let mut sliced = Interpreter::new(Arc::clone(&vm), Limits::default());
            sliced.start("main", vec![]);
            let (outcome, yields) = drive_slices(&mut sliced, slice_fuel, &mut NoHost);
            assert_eq!(outcome, expected, "slice {slice_fuel}");
            assert_eq!(sliced.fuel_used(), single.fuel_used(), "slice {slice_fuel}");
            assert_eq!(sliced.globals(), single.globals(), "slice {slice_fuel}");
            if slice_fuel < single.fuel_used() {
                assert!(yields > 0, "slice {slice_fuel} never yielded");
            }
        }
    }

    #[test]
    fn slice_yield_parks_and_resumes_in_place() {
        let vm = sum_loop_module();
        let mut interp = Interpreter::new(Arc::clone(&vm), Limits::default());
        assert!(!interp.in_progress());
        interp.start("main", vec![]);
        assert!(interp.in_progress());
        assert_eq!(interp.run_slice(4, &mut NoHost), SliceOutcome::Yielded);
        assert!(interp.in_progress(), "yield keeps the run suspended");
        let fuel_after_yield = interp.fuel_used();
        let (outcome, _) = drive_slices(&mut interp, 4, &mut NoHost);
        assert_eq!(outcome, ExecOutcome::Finished(Value::Int(55)));
        assert!(!interp.in_progress(), "completion discards the call stack");
        assert!(interp.fuel_used() > fuel_after_yield);
    }

    #[test]
    fn zero_fuel_slice_still_makes_progress() {
        // An op costing more than the whole slice budget overshoots
        // rather than yielding forever: every slice runs ≥ 1 op.
        let vm = sum_loop_module();
        let mut interp = Interpreter::new(Arc::clone(&vm), Limits::default());
        interp.start("main", vec![]);
        let (outcome, yields) = drive_slices(&mut interp, 0, &mut NoHost);
        assert_eq!(outcome, ExecOutcome::Finished(Value::Int(55)));
        assert!(yields > 0);
    }

    #[test]
    fn sliced_out_of_fuel_matches_single_shot_exactly() {
        // Fuel exhaustion keeps the busting op charged-but-unexecuted in
        // both modes, so fuel_used agrees bit-for-bit.
        let limits = Limits {
            fuel: 137,
            ..Limits::default()
        };
        let vm = sum_loop_module();
        let mut single = Interpreter::new(Arc::clone(&vm), limits);
        assert_eq!(
            single.run("main", vec![], &mut NoHost),
            ExecOutcome::OutOfFuel
        );
        let mut sliced = Interpreter::new(Arc::clone(&vm), limits);
        sliced.start("main", vec![]);
        let (outcome, _) = drive_slices(&mut sliced, 5, &mut NoHost);
        assert_eq!(outcome, ExecOutcome::OutOfFuel);
        assert_eq!(sliced.fuel_used(), single.fuel_used());
    }

    #[test]
    fn sliced_host_calls_fire_exactly_once() {
        let vm = host_module();
        let mut single_host = ScriptedHost {
            log: vec![],
            stop_on: None,
        };
        let mut single = Interpreter::new(Arc::clone(&vm), Limits::default());
        let expected = single.run("use_add", vec![], &mut single_host);

        let mut sliced_host = ScriptedHost {
            log: vec![],
            stop_on: None,
        };
        let mut sliced = Interpreter::new(Arc::clone(&vm), Limits::default());
        sliced.start("use_add", vec![]);
        let (outcome, _) = drive_slices(&mut sliced, 1, &mut sliced_host);
        assert_eq!(outcome, expected);
        assert_eq!(sliced_host.log, single_host.log, "host calls not replayed");
        assert_eq!(sliced.fuel_used(), single.fuel_used());
        assert_eq!(sliced.host_calls(), 1);
    }

    #[test]
    fn start_discards_a_suspended_run() {
        let vm = sum_loop_module();
        let mut interp = Interpreter::new(Arc::clone(&vm), Limits::default());
        interp.start("main", vec![]);
        assert_eq!(interp.run_slice(3, &mut NoHost), SliceOutcome::Yielded);
        // Restart from scratch: the old suspension is gone, and the fresh
        // run completes normally (fuel still accumulates, as across runs).
        interp.start("main", vec![]);
        let (outcome, _) = drive_slices(&mut interp, 1000, &mut NoHost);
        assert_eq!(outcome, ExecOutcome::Finished(Value::Int(55)));
    }
}
