//! The fuel-metered AgentScript interpreter.
//!
//! The interpreter only executes [`VerifiedModule`]s, so no type or bounds
//! check here can fail for *verified* reasons — runtime traps are limited
//! to genuinely dynamic conditions (division by zero, byte-index range,
//! malformed `atoi` input, call-depth and quota exhaustion, and host-call
//! denials). Quota exhaustion is the paper's denial-of-service containment
//! (Section 2: "inordinate consumption of a host's resources").

use crate::module::HostImport;
use crate::value::Value;
use crate::verifier::VerifiedModule;
use crate::Op;

/// Resource limits a server imposes on one agent execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Instruction-fuel budget (see [`Op::fuel_cost`]).
    pub fuel: u64,
    /// Extra fuel charged per host call, on top of the opcode cost.
    pub host_call_fuel: u64,
    /// Maximum call-frame depth.
    pub max_call_depth: usize,
    /// Byte-allocation budget for byte-string results.
    pub alloc_budget: u64,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            fuel: 10_000_000,
            host_call_fuel: 50,
            max_call_depth: 128,
            alloc_budget: 64 << 20,
        }
    }
}

/// Dynamic failure of an agent program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrapKind {
    /// Integer division or remainder by zero (or `i64::MIN / -1`).
    DivideByZero,
    /// Byte index/slice out of range.
    BytesOutOfRange,
    /// `atoi` on non-numeric input.
    MalformedNumber,
    /// Call depth exceeded [`Limits::max_call_depth`].
    CallDepthExceeded,
    /// Allocation budget exceeded.
    AllocBudgetExceeded,
    /// The host denied an operation — the paper's *security exception*
    /// raised by a proxy whose method is disabled, expired, or revoked.
    SecurityException(String),
    /// A host call failed for a non-security reason.
    HostFailure(String),
}

impl std::fmt::Display for TrapKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrapKind::DivideByZero => f.write_str("divide by zero"),
            TrapKind::BytesOutOfRange => f.write_str("byte index out of range"),
            TrapKind::MalformedNumber => f.write_str("malformed number in atoi"),
            TrapKind::CallDepthExceeded => f.write_str("call depth exceeded"),
            TrapKind::AllocBudgetExceeded => f.write_str("allocation budget exceeded"),
            TrapKind::SecurityException(m) => write!(f, "security exception: {m}"),
            TrapKind::HostFailure(m) => write!(f, "host failure: {m}"),
        }
    }
}

/// How one `run` call ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecOutcome {
    /// The entry function returned (or `Halt` executed) with this value.
    Finished(Value),
    /// A dynamic trap; the program is dead at `func`/`ip`.
    Trapped {
        /// Trap reason.
        kind: TrapKind,
        /// Function index where the trap occurred.
        func: u32,
        /// Instruction index where the trap occurred.
        ip: u32,
    },
    /// The fuel budget ran out — quota violation.
    OutOfFuel,
    /// A host call asked execution to stop (e.g. the `go` migration
    /// primitive): the agent will resume elsewhere/later.
    HostStopped {
        /// Name of the import that stopped execution.
        import: String,
        /// Payload the host attached (e.g. encoded destination).
        payload: Value,
    },
}

/// How the host answers a host call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostResponse {
    /// Produce this value as the call's result and continue.
    Value(Value),
    /// Stop execution (e.g. migration); the payload is surfaced in
    /// [`ExecOutcome::HostStopped`].
    Stop(Value),
}

/// Host-call failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostError {
    /// Access denied — becomes [`TrapKind::SecurityException`].
    Denied(String),
    /// Operational failure — becomes [`TrapKind::HostFailure`].
    Failed(String),
}

impl HostError {
    fn into_trap(self) -> TrapKind {
        match self {
            HostError::Denied(m) => TrapKind::SecurityException(m),
            HostError::Failed(m) => TrapKind::HostFailure(m),
        }
    }
}

/// The server side of the host-call boundary.
///
/// In `ajanta-runtime` the implementation is the **agent environment**
/// (paper Fig. 1): it mediates `get_resource`, proxy invocations, `go`,
/// messaging and monitoring — always under the server's reference monitor.
pub trait HostInterface {
    /// Handles one host call. `import` carries the verified signature; the
    /// interpreter guarantees `args` matches `import.params` (in
    /// declaration order) and that a `Value` response of the wrong type is
    /// reported as a host failure rather than corrupting the stack.
    fn call(&mut self, import: &HostImport, args: &[Value]) -> Result<HostResponse, HostError>;
}

/// A no-op host for pure computations: denies every call.
pub struct NoHost;

impl HostInterface for NoHost {
    fn call(&mut self, import: &HostImport, _args: &[Value]) -> Result<HostResponse, HostError> {
        Err(HostError::Denied(format!(
            "no host bound for import {:?}",
            import.name
        )))
    }
}

struct Frame {
    func: u32,
    ip: u32,
    locals: Vec<Value>,
    stack: Vec<Value>,
}

/// Executes entry functions of one verified module against a host.
///
/// The interpreter owns the module's **global state** (the agent's mobile
/// data); run an entry function, then read the globals back out for
/// migration.
pub struct Interpreter<'m> {
    module: &'m VerifiedModule,
    globals: Vec<Value>,
    limits: Limits,
    fuel_used: u64,
    alloc_used: u64,
    host_calls: u64,
}

impl<'m> Interpreter<'m> {
    /// Creates an interpreter with default-initialized globals.
    pub fn new(module: &'m VerifiedModule, limits: Limits) -> Self {
        let globals = module.module().initial_globals();
        Interpreter {
            module,
            globals,
            limits,
            fuel_used: 0,
            alloc_used: 0,
            host_calls: 0,
        }
    }

    /// Replaces the global state (e.g. on arrival after migration).
    /// Returns `false` (and leaves state unchanged) when the shape or
    /// types do not match the module's declarations.
    pub fn restore_globals(&mut self, globals: Vec<Value>) -> bool {
        let decl = &self.module.module().globals;
        if globals.len() != decl.len() || globals.iter().zip(decl).any(|(v, &t)| v.ty() != t) {
            return false;
        }
        self.globals = globals;
        true
    }

    /// Read access to the agent's mobile state.
    pub fn globals(&self) -> &[Value] {
        &self.globals
    }

    /// Fuel consumed so far (accumulates across `run` calls) — the raw
    /// input to time-based usage metering experiments.
    pub fn fuel_used(&self) -> u64 {
        self.fuel_used
    }

    /// Number of host calls made so far.
    pub fn host_calls(&self) -> u64 {
        self.host_calls
    }

    /// Runs function `entry` with `args`, returning how execution ended.
    ///
    /// # Panics
    /// Panics if `entry` does not exist or `args` do not match its
    /// signature — programming errors at the embedding boundary, not agent
    /// faults.
    pub fn run(
        &mut self,
        entry: &str,
        args: Vec<Value>,
        host: &mut dyn HostInterface,
    ) -> ExecOutcome {
        let m = self.module.module();
        let func = m
            .function_index(entry)
            .unwrap_or_else(|| panic!("entry function {entry:?} not found"));
        let f = &m.functions[func as usize];
        assert_eq!(
            args.len(),
            f.params.len(),
            "entry arity mismatch for {entry:?}"
        );
        for (a, &p) in args.iter().zip(&f.params) {
            assert_eq!(a.ty(), p, "entry argument type mismatch for {entry:?}");
        }

        let mut locals: Vec<Value> = args;
        locals.extend(f.locals.iter().map(|&t| Value::default_of(t)));
        let mut frames = vec![Frame {
            func,
            ip: 0,
            locals,
            stack: Vec::new(),
        }];

        loop {
            let depth = frames.len();
            let frame = frames.last_mut().expect("at least one frame");
            let func_idx = frame.func;
            let ip = frame.ip;
            let code = &m.functions[func_idx as usize].code;
            let op = code[ip as usize];

            // Fuel accounting.
            let mut cost = op.fuel_cost();
            if matches!(op, Op::HostCall(_)) {
                cost += self.limits.host_call_fuel;
            }
            self.fuel_used += cost;
            if self.fuel_used > self.limits.fuel {
                return ExecOutcome::OutOfFuel;
            }

            macro_rules! trap {
                ($kind:expr) => {
                    return ExecOutcome::Trapped {
                        kind: $kind,
                        func: func_idx,
                        ip,
                    }
                };
            }
            macro_rules! pop_int {
                () => {
                    match frame.stack.pop() {
                        Some(Value::Int(i)) => i,
                        _ => unreachable!("verifier guarantees an int on top"),
                    }
                };
            }
            macro_rules! pop_bytes {
                () => {
                    match frame.stack.pop() {
                        Some(Value::Bytes(b)) => b,
                        _ => unreachable!("verifier guarantees bytes on top"),
                    }
                };
            }

            frame.ip += 1; // default: fall through; jumps overwrite below
            match op {
                Op::PushI(i) => frame.stack.push(Value::Int(i)),
                Op::PushD(d) => {
                    let bytes = m.data[d as usize].clone();
                    self.alloc_used += bytes.len() as u64;
                    if self.alloc_used > self.limits.alloc_budget {
                        trap!(TrapKind::AllocBudgetExceeded);
                    }
                    frame.stack.push(Value::Bytes(bytes));
                }
                Op::Dup => {
                    let v = frame.stack.last().expect("verified").clone();
                    if let Value::Bytes(b) = &v {
                        self.alloc_used += b.len() as u64;
                        if self.alloc_used > self.limits.alloc_budget {
                            trap!(TrapKind::AllocBudgetExceeded);
                        }
                    }
                    frame.stack.push(v);
                }
                Op::Drop => {
                    frame.stack.pop();
                }
                Op::Swap => {
                    let n = frame.stack.len();
                    frame.stack.swap(n - 1, n - 2);
                }
                Op::Add => {
                    let b = pop_int!();
                    let a = pop_int!();
                    frame.stack.push(Value::Int(a.wrapping_add(b)));
                }
                Op::Sub => {
                    let b = pop_int!();
                    let a = pop_int!();
                    frame.stack.push(Value::Int(a.wrapping_sub(b)));
                }
                Op::Mul => {
                    let b = pop_int!();
                    let a = pop_int!();
                    frame.stack.push(Value::Int(a.wrapping_mul(b)));
                }
                Op::Div => {
                    let b = pop_int!();
                    let a = pop_int!();
                    match a.checked_div(b) {
                        Some(v) => frame.stack.push(Value::Int(v)),
                        None => trap!(TrapKind::DivideByZero),
                    }
                }
                Op::Rem => {
                    let b = pop_int!();
                    let a = pop_int!();
                    match a.checked_rem(b) {
                        Some(v) => frame.stack.push(Value::Int(v)),
                        None => trap!(TrapKind::DivideByZero),
                    }
                }
                Op::Neg => {
                    let a = pop_int!();
                    frame.stack.push(Value::Int(a.wrapping_neg()));
                }
                Op::Eq => {
                    let b = pop_int!();
                    let a = pop_int!();
                    frame.stack.push(Value::Int((a == b) as i64));
                }
                Op::Ne => {
                    let b = pop_int!();
                    let a = pop_int!();
                    frame.stack.push(Value::Int((a != b) as i64));
                }
                Op::Lt => {
                    let b = pop_int!();
                    let a = pop_int!();
                    frame.stack.push(Value::Int((a < b) as i64));
                }
                Op::Le => {
                    let b = pop_int!();
                    let a = pop_int!();
                    frame.stack.push(Value::Int((a <= b) as i64));
                }
                Op::Gt => {
                    let b = pop_int!();
                    let a = pop_int!();
                    frame.stack.push(Value::Int((a > b) as i64));
                }
                Op::Ge => {
                    let b = pop_int!();
                    let a = pop_int!();
                    frame.stack.push(Value::Int((a >= b) as i64));
                }
                Op::And => {
                    let b = pop_int!();
                    let a = pop_int!();
                    frame.stack.push(Value::Int(a & b));
                }
                Op::Or => {
                    let b = pop_int!();
                    let a = pop_int!();
                    frame.stack.push(Value::Int(a | b));
                }
                Op::Not => {
                    let a = pop_int!();
                    frame.stack.push(Value::Int((a == 0) as i64));
                }
                Op::BConcat => {
                    let b = pop_bytes!();
                    let mut a = pop_bytes!();
                    self.alloc_used += b.len() as u64;
                    if self.alloc_used > self.limits.alloc_budget {
                        trap!(TrapKind::AllocBudgetExceeded);
                    }
                    a.extend_from_slice(&b);
                    frame.stack.push(Value::Bytes(a));
                }
                Op::BLen => {
                    let b = pop_bytes!();
                    frame.stack.push(Value::Int(b.len() as i64));
                }
                Op::BIndex => {
                    let i = pop_int!();
                    let b = pop_bytes!();
                    match usize::try_from(i).ok().and_then(|i| b.get(i)) {
                        Some(&byte) => frame.stack.push(Value::Int(byte as i64)),
                        None => trap!(TrapKind::BytesOutOfRange),
                    }
                }
                Op::BSlice => {
                    let len = pop_int!();
                    let start = pop_int!();
                    let b = pop_bytes!();
                    let (Ok(start), Ok(len)) = (usize::try_from(start), usize::try_from(len))
                    else {
                        trap!(TrapKind::BytesOutOfRange)
                    };
                    let Some(end) = start.checked_add(len) else {
                        trap!(TrapKind::BytesOutOfRange)
                    };
                    if end > b.len() {
                        trap!(TrapKind::BytesOutOfRange);
                    }
                    self.alloc_used += len as u64;
                    if self.alloc_used > self.limits.alloc_budget {
                        trap!(TrapKind::AllocBudgetExceeded);
                    }
                    frame.stack.push(Value::Bytes(b[start..end].to_vec()));
                }
                Op::BEq => {
                    let b = pop_bytes!();
                    let a = pop_bytes!();
                    frame.stack.push(Value::Int((a == b) as i64));
                }
                Op::IToA => {
                    let i = pop_int!();
                    let s = i.to_string().into_bytes();
                    self.alloc_used += s.len() as u64;
                    if self.alloc_used > self.limits.alloc_budget {
                        trap!(TrapKind::AllocBudgetExceeded);
                    }
                    frame.stack.push(Value::Bytes(s));
                }
                Op::AToI => {
                    let b = pop_bytes!();
                    match std::str::from_utf8(&b)
                        .ok()
                        .and_then(|s| s.parse::<i64>().ok())
                    {
                        Some(v) => frame.stack.push(Value::Int(v)),
                        None => trap!(TrapKind::MalformedNumber),
                    }
                }
                Op::Load(n) => {
                    let v = frame.locals[n as usize].clone();
                    if let Value::Bytes(b) = &v {
                        self.alloc_used += b.len() as u64;
                        if self.alloc_used > self.limits.alloc_budget {
                            trap!(TrapKind::AllocBudgetExceeded);
                        }
                    }
                    frame.stack.push(v);
                }
                Op::Store(n) => {
                    let v = frame.stack.pop().expect("verified");
                    frame.locals[n as usize] = v;
                }
                Op::GLoad(n) => {
                    let v = self.globals[n as usize].clone();
                    if let Value::Bytes(b) = &v {
                        self.alloc_used += b.len() as u64;
                        if self.alloc_used > self.limits.alloc_budget {
                            trap!(TrapKind::AllocBudgetExceeded);
                        }
                    }
                    frame.stack.push(v);
                }
                Op::GStore(n) => {
                    let v = frame.stack.pop().expect("verified");
                    self.globals[n as usize] = v;
                }
                Op::Jump(t) => frame.ip = t,
                Op::JumpIfZero(t) => {
                    if pop_int!() == 0 {
                        frame.ip = t;
                    }
                }
                Op::Call(callee) => {
                    if depth >= self.limits.max_call_depth {
                        trap!(TrapKind::CallDepthExceeded);
                    }
                    let g = &m.functions[callee as usize];
                    let argc = g.params.len();
                    let split = frame.stack.len() - argc;
                    let mut locals: Vec<Value> = frame.stack.split_off(split);
                    locals.extend(g.locals.iter().map(|&t| Value::default_of(t)));
                    frames.push(Frame {
                        func: callee,
                        ip: 0,
                        locals,
                        stack: Vec::new(),
                    });
                }
                Op::Ret => {
                    let rv = frames
                        .last_mut()
                        .expect("frame")
                        .stack
                        .pop()
                        .expect("verified return value");
                    frames.pop();
                    match frames.last_mut() {
                        Some(caller) => caller.stack.push(rv),
                        None => return ExecOutcome::Finished(rv),
                    }
                }
                Op::Halt => {
                    let rv = Value::Int(pop_int!());
                    return ExecOutcome::Finished(rv);
                }
                Op::HostCall(idx) => {
                    let import = &m.imports[idx as usize];
                    let argc = import.params.len();
                    let split = frame.stack.len() - argc;
                    let args: Vec<Value> = frame.stack.split_off(split);
                    self.host_calls += 1;
                    match host.call(import, &args) {
                        Ok(HostResponse::Value(v)) => {
                            if v.ty() != import.ret {
                                trap!(TrapKind::HostFailure(format!(
                                    "host returned {} for import {:?} declared {}",
                                    v.ty(),
                                    import.name,
                                    import.ret
                                )));
                            }
                            if let Value::Bytes(b) = &v {
                                self.alloc_used += b.len() as u64;
                                if self.alloc_used > self.limits.alloc_budget {
                                    trap!(TrapKind::AllocBudgetExceeded);
                                }
                            }
                            frame.stack.push(v);
                        }
                        Ok(HostResponse::Stop(payload)) => {
                            return ExecOutcome::HostStopped {
                                import: import.name.clone(),
                                payload,
                            };
                        }
                        Err(e) => trap!(e.into_trap()),
                    }
                }
                Op::Nop => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::ModuleBuilder;
    use crate::value::Ty;
    use crate::verifier::verify;

    fn run_main(code: Vec<Op>) -> ExecOutcome {
        run_main_with(code, Limits::default())
    }

    fn run_main_with(code: Vec<Op>, limits: Limits) -> ExecOutcome {
        let mut b = ModuleBuilder::new("t");
        b.function("main", [], [Ty::Int, Ty::Int], Ty::Int, code);
        let vm = verify(b.build()).unwrap();
        let mut interp = Interpreter::new(&vm, limits);
        interp.run("main", vec![], &mut NoHost)
    }

    #[test]
    fn arithmetic_program() {
        // (3 + 4) * 5 - 1 = 34
        let out = run_main(vec![
            Op::PushI(3),
            Op::PushI(4),
            Op::Add,
            Op::PushI(5),
            Op::Mul,
            Op::PushI(1),
            Op::Sub,
            Op::Ret,
        ]);
        assert_eq!(out, ExecOutcome::Finished(Value::Int(34)));
    }

    #[test]
    fn loop_sums_one_to_ten() {
        // local0 = acc, local1 = i
        let out = run_main(vec![
            /*0*/ Op::PushI(10),
            /*1*/ Op::Store(1),
            /*2*/ Op::Load(1),
            /*3*/ Op::JumpIfZero(12),
            /*4*/ Op::Load(0),
            /*5*/ Op::Load(1),
            /*6*/ Op::Add,
            /*7*/ Op::Store(0),
            /*8*/ Op::Load(1),
            /*9*/ Op::PushI(1),
            /*10*/ Op::Sub,
            /*11*/ Op::Store(1),
            /*12*/ Op::Load(1),
            /*13*/ Op::PushI(0),
            /*14*/ Op::Ne,
            /*15*/ Op::JumpIfZero(17),
            /*16*/ Op::Jump(2),
            /*17*/ Op::Load(0),
            /*18*/ Op::Ret,
        ]);
        // First pass through 2..: handled; expected sum 10+9+...+1 = 55.
        assert_eq!(out, ExecOutcome::Finished(Value::Int(55)));
    }

    #[test]
    fn division_traps_on_zero() {
        let out = run_main(vec![Op::PushI(1), Op::PushI(0), Op::Div, Op::Ret]);
        assert!(matches!(
            out,
            ExecOutcome::Trapped {
                kind: TrapKind::DivideByZero,
                ..
            }
        ));
        let out = run_main(vec![Op::PushI(i64::MIN), Op::PushI(-1), Op::Div, Op::Ret]);
        assert!(matches!(
            out,
            ExecOutcome::Trapped {
                kind: TrapKind::DivideByZero,
                ..
            }
        ));
    }

    #[test]
    fn bytes_operations() {
        let mut b = ModuleBuilder::new("t");
        let hello = b.str_data("hello ");
        let world = b.str_data("world");
        b.function(
            "main",
            [],
            [],
            Ty::Int,
            vec![
                Op::PushD(hello),
                Op::PushD(world),
                Op::BConcat, // "hello world"
                Op::BLen,    // 11
                Op::Ret,
            ],
        );
        let vm = verify(b.build()).unwrap();
        let mut interp = Interpreter::new(&vm, Limits::default());
        assert_eq!(
            interp.run("main", vec![], &mut NoHost),
            ExecOutcome::Finished(Value::Int(11))
        );
    }

    #[test]
    fn slice_and_index_range_checks() {
        let mut b = ModuleBuilder::new("t");
        let d = b.str_data("abc");
        b.function(
            "ok",
            [],
            [],
            Ty::Int,
            vec![Op::PushD(d), Op::PushI(1), Op::BIndex, Op::Ret],
        );
        b.function(
            "bad",
            [],
            [],
            Ty::Int,
            vec![Op::PushD(d), Op::PushI(3), Op::BIndex, Op::Ret],
        );
        b.function(
            "badslice",
            [],
            [],
            Ty::Int,
            vec![
                Op::PushD(d),
                Op::PushI(2),
                Op::PushI(2),
                Op::BSlice,
                Op::BLen,
                Op::Ret,
            ],
        );
        let vm = verify(b.build()).unwrap();
        let mut i1 = Interpreter::new(&vm, Limits::default());
        assert_eq!(
            i1.run("ok", vec![], &mut NoHost),
            ExecOutcome::Finished(Value::Int(b'b' as i64))
        );
        let mut i2 = Interpreter::new(&vm, Limits::default());
        assert!(matches!(
            i2.run("bad", vec![], &mut NoHost),
            ExecOutcome::Trapped {
                kind: TrapKind::BytesOutOfRange,
                ..
            }
        ));
        let mut i3 = Interpreter::new(&vm, Limits::default());
        assert!(matches!(
            i3.run("badslice", vec![], &mut NoHost),
            ExecOutcome::Trapped {
                kind: TrapKind::BytesOutOfRange,
                ..
            }
        ));
    }

    #[test]
    fn itoa_atoi_roundtrip_and_malformed() {
        let out = run_main(vec![Op::PushI(-12345), Op::IToA, Op::AToI, Op::Ret]);
        assert_eq!(out, ExecOutcome::Finished(Value::Int(-12345)));

        let mut b = ModuleBuilder::new("t");
        let d = b.str_data("not-a-number");
        b.function(
            "main",
            [],
            [],
            Ty::Int,
            vec![Op::PushD(d), Op::AToI, Op::Ret],
        );
        let vm = verify(b.build()).unwrap();
        let mut interp = Interpreter::new(&vm, Limits::default());
        assert!(matches!(
            interp.run("main", vec![], &mut NoHost),
            ExecOutcome::Trapped {
                kind: TrapKind::MalformedNumber,
                ..
            }
        ));
    }

    #[test]
    fn out_of_fuel_stops_infinite_loop() {
        let out = run_main_with(
            vec![Op::Jump(0)],
            Limits {
                fuel: 1000,
                ..Limits::default()
            },
        );
        assert_eq!(out, ExecOutcome::OutOfFuel);
    }

    #[test]
    fn call_depth_limit() {
        // Infinite recursion main -> main is impossible (Call indexes a
        // second function); build f() { f() }.
        let mut b = ModuleBuilder::new("t");
        b.function("rec", [], [], Ty::Int, vec![Op::Call(0), Op::Ret]);
        let vm = verify(b.build()).unwrap();
        let mut interp = Interpreter::new(
            &vm,
            Limits {
                max_call_depth: 16,
                ..Limits::default()
            },
        );
        assert!(matches!(
            interp.run("rec", vec![], &mut NoHost),
            ExecOutcome::Trapped {
                kind: TrapKind::CallDepthExceeded,
                ..
            }
        ));
    }

    #[test]
    fn alloc_budget_enforced() {
        // Repeated self-concatenation doubles a string until the budget
        // trips.
        let mut b = ModuleBuilder::new("t");
        let d = b.str_data("0123456789abcdef");
        b.function(
            "main",
            [],
            [Ty::Bytes],
            Ty::Int,
            vec![
                /*0*/ Op::PushD(d),
                /*1*/ Op::Store(0),
                /*2*/ Op::Load(0),
                /*3*/ Op::Load(0),
                /*4*/ Op::BConcat,
                /*5*/ Op::Store(0),
                /*6*/ Op::Jump(2),
            ],
        );
        let vm = verify(b.build()).unwrap();
        let mut interp = Interpreter::new(
            &vm,
            Limits {
                alloc_budget: 1 << 16,
                ..Limits::default()
            },
        );
        assert!(matches!(
            interp.run("main", vec![], &mut NoHost),
            ExecOutcome::Trapped {
                kind: TrapKind::AllocBudgetExceeded,
                ..
            }
        ));
    }

    #[test]
    fn globals_survive_across_runs() {
        let mut b = ModuleBuilder::new("t");
        let g = b.global(Ty::Int);
        b.function(
            "bump",
            [],
            [],
            Ty::Int,
            vec![
                Op::GLoad(g),
                Op::PushI(1),
                Op::Add,
                Op::GStore(g),
                Op::GLoad(g),
                Op::Ret,
            ],
        );
        let vm = verify(b.build()).unwrap();
        let mut interp = Interpreter::new(&vm, Limits::default());
        assert_eq!(
            interp.run("bump", vec![], &mut NoHost),
            ExecOutcome::Finished(Value::Int(1))
        );
        assert_eq!(
            interp.run("bump", vec![], &mut NoHost),
            ExecOutcome::Finished(Value::Int(2))
        );
        assert_eq!(interp.globals(), &[Value::Int(2)]);
    }

    #[test]
    fn restore_globals_validates_shape() {
        let mut b = ModuleBuilder::new("t");
        b.global(Ty::Int);
        b.global(Ty::Bytes);
        b.function("main", [], [], Ty::Int, vec![Op::PushI(0), Op::Ret]);
        let vm = verify(b.build()).unwrap();
        let mut interp = Interpreter::new(&vm, Limits::default());
        assert!(interp.restore_globals(vec![Value::Int(5), Value::str("s")]));
        assert!(!interp.restore_globals(vec![Value::Int(5)]));
        assert!(!interp.restore_globals(vec![Value::str("s"), Value::Int(5)]));
        assert_eq!(interp.globals(), &[Value::Int(5), Value::str("s")]);
    }

    /// A host that records calls and returns canned values / stops.
    struct ScriptedHost {
        log: Vec<(String, Vec<Value>)>,
        stop_on: Option<String>,
    }

    impl HostInterface for ScriptedHost {
        fn call(&mut self, import: &HostImport, args: &[Value]) -> Result<HostResponse, HostError> {
            self.log.push((import.name.clone(), args.to_vec()));
            if self.stop_on.as_deref() == Some(import.name.as_str()) {
                return Ok(HostResponse::Stop(Value::str("dest")));
            }
            match import.name.as_str() {
                "env.add" => Ok(HostResponse::Value(Value::Int(
                    args[0].as_int().unwrap() + args[1].as_int().unwrap(),
                ))),
                "env.deny" => Err(HostError::Denied("method disabled".into())),
                "env.badtype" => Ok(HostResponse::Value(Value::str("oops"))),
                other => Err(HostError::Failed(format!("unknown {other}"))),
            }
        }
    }

    fn host_module() -> VerifiedModule {
        let mut b = ModuleBuilder::new("t");
        let add = b.import("env.add", [Ty::Int, Ty::Int], Ty::Int);
        let deny = b.import("env.deny", [], Ty::Int);
        let bad = b.import("env.badtype", [], Ty::Int);
        let go = b.import("env.go", [], Ty::Int);
        b.function(
            "use_add",
            [],
            [],
            Ty::Int,
            vec![Op::PushI(20), Op::PushI(22), Op::HostCall(add), Op::Ret],
        );
        b.function(
            "use_deny",
            [],
            [],
            Ty::Int,
            vec![Op::HostCall(deny), Op::Ret],
        );
        b.function("use_bad", [], [], Ty::Int, vec![Op::HostCall(bad), Op::Ret]);
        b.function("use_go", [], [], Ty::Int, vec![Op::HostCall(go), Op::Ret]);
        verify(b.build()).unwrap()
    }

    #[test]
    fn host_call_passes_args_in_declaration_order() {
        let vm = host_module();
        let mut host = ScriptedHost {
            log: vec![],
            stop_on: None,
        };
        let mut interp = Interpreter::new(&vm, Limits::default());
        assert_eq!(
            interp.run("use_add", vec![], &mut host),
            ExecOutcome::Finished(Value::Int(42))
        );
        assert_eq!(
            host.log,
            vec![("env.add".to_string(), vec![Value::Int(20), Value::Int(22)])]
        );
        assert_eq!(interp.host_calls(), 1);
    }

    #[test]
    fn host_denial_becomes_security_exception() {
        let vm = host_module();
        let mut host = ScriptedHost {
            log: vec![],
            stop_on: None,
        };
        let mut interp = Interpreter::new(&vm, Limits::default());
        assert!(matches!(
            interp.run("use_deny", vec![], &mut host),
            ExecOutcome::Trapped {
                kind: TrapKind::SecurityException(_),
                ..
            }
        ));
    }

    #[test]
    fn host_return_type_is_checked() {
        let vm = host_module();
        let mut host = ScriptedHost {
            log: vec![],
            stop_on: None,
        };
        let mut interp = Interpreter::new(&vm, Limits::default());
        assert!(matches!(
            interp.run("use_bad", vec![], &mut host),
            ExecOutcome::Trapped {
                kind: TrapKind::HostFailure(_),
                ..
            }
        ));
    }

    #[test]
    fn host_stop_surfaces_migration() {
        let vm = host_module();
        let mut host = ScriptedHost {
            log: vec![],
            stop_on: Some("env.go".into()),
        };
        let mut interp = Interpreter::new(&vm, Limits::default());
        assert_eq!(
            interp.run("use_go", vec![], &mut host),
            ExecOutcome::HostStopped {
                import: "env.go".into(),
                payload: Value::str("dest"),
            }
        );
    }

    #[test]
    fn entry_args_are_locals() {
        let mut b = ModuleBuilder::new("t");
        b.function(
            "main",
            [Ty::Int, Ty::Int],
            [],
            Ty::Int,
            vec![Op::Load(0), Op::Load(1), Op::Sub, Op::Ret],
        );
        let vm = verify(b.build()).unwrap();
        let mut interp = Interpreter::new(&vm, Limits::default());
        assert_eq!(
            interp.run("main", vec![Value::Int(50), Value::Int(8)], &mut NoHost),
            ExecOutcome::Finished(Value::Int(42))
        );
    }

    #[test]
    #[should_panic(expected = "entry function")]
    fn unknown_entry_panics() {
        let vm = host_module();
        Interpreter::new(&vm, Limits::default()).run("nope", vec![], &mut NoHost);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_panics() {
        let mut b = ModuleBuilder::new("t");
        b.function("main", [Ty::Int], [], Ty::Int, vec![Op::Load(0), Op::Ret]);
        let vm = verify(b.build()).unwrap();
        Interpreter::new(&vm, Limits::default()).run("main", vec![], &mut NoHost);
    }

    #[test]
    fn fuel_accumulates_across_runs() {
        let mut b = ModuleBuilder::new("t");
        b.function("main", [], [], Ty::Int, vec![Op::PushI(0), Op::Ret]);
        let vm = verify(b.build()).unwrap();
        let mut interp = Interpreter::new(&vm, Limits::default());
        interp.run("main", vec![], &mut NoHost);
        let f1 = interp.fuel_used();
        interp.run("main", vec![], &mut NoHost);
        assert_eq!(interp.fuel_used(), 2 * f1);
    }
}
