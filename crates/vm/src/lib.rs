//! AgentScript: the mobile-code substrate (JVM substitute).
//!
//! The paper's protection mechanisms rest on the Java security model
//! (Section 3.2): a byte-code verifier, class-loader name-space separation,
//! and a security manager. Rust cannot ship native code between hosts, so
//! this crate provides the equivalent substrate the reproduction runs
//! mobile agents on:
//!
//! * [`isa`] — a compact, typed stack-machine instruction set. Code is
//!   plain data: serializable, hashable, transferable.
//! * [`module`] — code containers: functions, globals (the agent's mobile
//!   state), a data pool, and a declared **host-import table**. Imports are
//!   bound by the *hosting server* at load time, which is where the paper's
//!   "safe binding between the visiting agent code and the server
//!   resources" (Section 5.2) happens at the language level.
//! * [`verifier`] — the byte-code verifier: type/stack discipline, valid
//!   jump targets, local/global index bounds, call-signature agreement.
//!   Mirrors the role of Java's verifier ("programs do not violate
//!   type-safety ... or cause run-time errors that can result in security
//!   vulnerabilities").
//! * [`loader`] — per-agent name-spaces. An agent resolves inter-module
//!   references **only within its own loaded set**, so a malicious agent
//!   cannot install an "impostor" module that shadows another agent's or
//!   the server's code (Section 5.3, "Domain creation").
//! * [`interp`] — a fuel-metered interpreter. Fuel exhaustion is the
//!   quota mechanism that contains denial-of-service by buggy or malicious
//!   agents (Section 2). Execution is resumable in fuel slices
//!   ([`Interpreter::run_slice`]): a suspended run parks its call stack
//!   inside the interpreter value, which is what lets the runtime schedule
//!   thousands of agents cooperatively instead of one thread each.
//! * [`asm`] — a small text assembler used by examples and workloads.
//! * [`image`] — serialization of code + mobile state into the byte image
//!   that `ajanta-runtime` ships between servers.
//!
//! Migration model: like Ajanta itself (and Aglets), state capture is at
//! the *application level* — an agent's mobile state is its globals, and
//! after a `go` the agent resumes at a designated entry function on the new
//! server. No mid-stack capture is required, exactly as in the Java systems
//! the paper describes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod disasm;
pub mod image;
pub mod interp;
pub mod isa;
pub mod loader;
pub mod module;
pub mod state;
pub mod value;
pub mod verifier;

pub use asm::{assemble, AsmError};
pub use disasm::disassemble;
pub use image::AgentImage;
pub use interp::{
    ExecOutcome, HostError, HostInterface, HostResponse, Interpreter, Limits, NoHost, SliceOutcome,
    TrapKind,
};
pub use isa::Op;
pub use loader::{LoadError, Namespace, Origin};
pub use module::{Function, HostImport, Module, ModuleBuilder};
pub use state::{FrameState, InterpState, INTERP_STATE_VERSION};
pub use value::{Ty, Value};
pub use verifier::{verify, VerifiedModule, VerifyError};
