//! The AgentScript instruction set.
//!
//! A compact, typed stack machine. Design constraints:
//!
//! * Every instruction has a statically known stack effect, so the
//!   verifier can compute types without widening.
//! * Code is a `Vec<Op>` — plain data, serializable and hashable, which is
//!   what makes agents *mobile* (code travels as bytes).
//! * No instruction can address memory outside the frame's locals, the
//!   module's globals, or the operand stack; there is no raw memory at all.

use serde::{Deserialize, Serialize};

/// One instruction. Operands are embedded (fixed-width decode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    // ---- stack -----------------------------------------------------------
    /// Push an integer literal.
    PushI(i64),
    /// Push the data-pool entry at this index (a byte string).
    PushD(u32),
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Drop,
    /// Swap the top two stack slots.
    Swap,

    // ---- integer arithmetic (int int -> int) ------------------------------
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division; traps on divide-by-zero or `i64::MIN / -1`.
    Div,
    /// Remainder; traps like [`Op::Div`].
    Rem,
    /// Arithmetic negation (int -> int).
    Neg,

    // ---- comparisons (int int -> int; 0 or 1) -----------------------------
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,

    // ---- boolean/bitwise on ints ------------------------------------------
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Logical not (0 -> 1, nonzero -> 0).
    Not,

    // ---- byte strings ------------------------------------------------------
    /// Concatenate (bytes bytes -> bytes).
    BConcat,
    /// Length (bytes -> int).
    BLen,
    /// Byte at index (bytes int -> int); traps when out of range.
    BIndex,
    /// Substring (bytes start len -> bytes); traps when out of range.
    BSlice,
    /// Byte-string equality (bytes bytes -> int).
    BEq,
    /// Render an int as decimal ASCII (int -> bytes).
    IToA,
    /// Parse decimal ASCII to int (bytes -> int); traps on malformed input.
    AToI,

    // ---- locals & globals ---------------------------------------------------
    /// Push local `n`.
    Load(u16),
    /// Pop into local `n`.
    Store(u16),
    /// Push global `n` (agent mobile state).
    GLoad(u16),
    /// Pop into global `n`.
    GStore(u16),

    // ---- control flow --------------------------------------------------------
    /// Unconditional jump to instruction index.
    Jump(u32),
    /// Pop an int; jump when it is zero.
    JumpIfZero(u32),
    /// Call function `n` in the same module.
    Call(u32),
    /// Return from the current function (pops the declared return value).
    Ret,
    /// Stop the program successfully (pops the entry function's return
    /// value if any remains unconsumed — by convention entry returns int).
    Halt,

    // ---- host interface --------------------------------------------------------
    /// Invoke host import `n` (bound by the hosting server at load time).
    HostCall(u32),

    /// No operation (padding / patch target).
    Nop,
}

impl Op {
    /// Fuel charged for executing this instruction. Host calls carry an
    /// extra charge applied by the interpreter on top of this base cost.
    pub fn fuel_cost(&self) -> u64 {
        match self {
            // Byte-string operators allocate; charge more.
            Op::BConcat | Op::BSlice | Op::IToA | Op::AToI => 4,
            Op::Call(_) | Op::HostCall(_) => 2,
            _ => 1,
        }
    }

    /// Human-readable mnemonic (matches the assembler's syntax).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Op::PushI(_) => "push",
            Op::PushD(_) => "pushd",
            Op::Dup => "dup",
            Op::Drop => "drop",
            Op::Swap => "swap",
            Op::Add => "add",
            Op::Sub => "sub",
            Op::Mul => "mul",
            Op::Div => "div",
            Op::Rem => "rem",
            Op::Neg => "neg",
            Op::Eq => "eq",
            Op::Ne => "ne",
            Op::Lt => "lt",
            Op::Le => "le",
            Op::Gt => "gt",
            Op::Ge => "ge",
            Op::And => "and",
            Op::Or => "or",
            Op::Not => "not",
            Op::BConcat => "bconcat",
            Op::BLen => "blen",
            Op::BIndex => "bindex",
            Op::BSlice => "bslice",
            Op::BEq => "beq",
            Op::IToA => "itoa",
            Op::AToI => "atoi",
            Op::Load(_) => "load",
            Op::Store(_) => "store",
            Op::GLoad(_) => "gload",
            Op::GStore(_) => "gstore",
            Op::Jump(_) => "jump",
            Op::JumpIfZero(_) => "jz",
            Op::Call(_) => "call",
            Op::Ret => "ret",
            Op::Halt => "halt",
            Op::HostCall(_) => "hostcall",
            Op::Nop => "nop",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuel_costs_ordered() {
        assert_eq!(Op::Add.fuel_cost(), 1);
        assert!(Op::BConcat.fuel_cost() > Op::Add.fuel_cost());
        assert!(Op::Call(0).fuel_cost() > Op::Add.fuel_cost());
    }

    #[test]
    fn mnemonics_are_lowercase_and_nonempty() {
        let ops = [
            Op::PushI(0),
            Op::PushD(0),
            Op::Dup,
            Op::Drop,
            Op::Swap,
            Op::Add,
            Op::Sub,
            Op::Mul,
            Op::Div,
            Op::Rem,
            Op::Neg,
            Op::Eq,
            Op::Ne,
            Op::Lt,
            Op::Le,
            Op::Gt,
            Op::Ge,
            Op::And,
            Op::Or,
            Op::Not,
            Op::BConcat,
            Op::BLen,
            Op::BIndex,
            Op::BSlice,
            Op::BEq,
            Op::IToA,
            Op::AToI,
            Op::Load(0),
            Op::Store(0),
            Op::GLoad(0),
            Op::GStore(0),
            Op::Jump(0),
            Op::JumpIfZero(0),
            Op::Call(0),
            Op::Ret,
            Op::Halt,
            Op::HostCall(0),
            Op::Nop,
        ];
        for op in ops {
            let m = op.mnemonic();
            assert!(!m.is_empty());
            assert_eq!(m, m.to_lowercase());
        }
    }
}
