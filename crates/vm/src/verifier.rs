//! The AgentScript byte-code verifier.
//!
//! Plays the role of Java's verifier in the paper's security model
//! (Section 3.2): *"ensures that programs do not violate type-safety,
//! encapsulation properties, etc. or cause run-time errors that can result
//! in security vulnerabilities"*. Verification is a static abstract
//! interpretation over the two-point type lattice:
//!
//! * every instruction's stack effect is checked against the abstract
//!   stack shape flowing into it;
//! * at control-flow joins the incoming shapes must agree exactly (no
//!   widening — shapes are set once and re-encounters only compare);
//! * jump targets, local/global/data/function/import indices are bounds-
//!   checked;
//! * execution cannot fall off the end of a function;
//! * the static operand-stack depth is bounded by [`MAX_STACK`].
//!
//! A successfully verified module is witnessed by [`VerifiedModule`], the
//! only type the interpreter accepts — "verified" is a type-level fact.

use serde::{Deserialize, Serialize};

use crate::isa::Op;
use crate::module::Module;
use crate::value::Ty;

/// Maximum statically determined operand-stack depth per frame.
pub const MAX_STACK: usize = 256;

/// Why verification rejected a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A stack operation would underflow.
    StackUnderflow {
        /// Function index.
        func: u32,
        /// Instruction index.
        ip: u32,
    },
    /// The static stack depth exceeds [`MAX_STACK`].
    StackOverflow {
        /// Function index.
        func: u32,
        /// Instruction index.
        ip: u32,
    },
    /// An operand had the wrong type.
    TypeMismatch {
        /// Function index.
        func: u32,
        /// Instruction index.
        ip: u32,
        /// Type required by the instruction.
        expected: Ty,
        /// Type found on the abstract stack.
        found: Ty,
    },
    /// Two control-flow paths reach the same instruction with different
    /// stack shapes.
    InconsistentJoin {
        /// Function index.
        func: u32,
        /// Instruction index.
        ip: u32,
    },
    /// A jump targets an instruction index outside the function.
    BadJumpTarget {
        /// Function index.
        func: u32,
        /// Instruction index.
        ip: u32,
        /// The out-of-range target.
        target: u32,
    },
    /// A local index is out of range for the function.
    BadLocal {
        /// Function index.
        func: u32,
        /// Instruction index.
        ip: u32,
        /// The bad local slot.
        local: u16,
    },
    /// A global index is out of range for the module.
    BadGlobal {
        /// Function index.
        func: u32,
        /// Instruction index.
        ip: u32,
        /// The bad global slot.
        global: u16,
    },
    /// A data-pool index is out of range.
    BadData {
        /// Function index.
        func: u32,
        /// Instruction index.
        ip: u32,
        /// The bad data index.
        data: u32,
    },
    /// A `Call` references a nonexistent function.
    BadFunction {
        /// Function index.
        func: u32,
        /// Instruction index.
        ip: u32,
        /// The bad callee index.
        callee: u32,
    },
    /// A `HostCall` references a nonexistent import.
    BadImport {
        /// Function index.
        func: u32,
        /// Instruction index.
        ip: u32,
        /// The bad import index.
        import: u32,
    },
    /// Execution can fall off the end of the function body.
    FallsOffEnd {
        /// Function index.
        func: u32,
    },
    /// A function body is empty.
    EmptyBody {
        /// Function index.
        func: u32,
    },
    /// Two functions share a name, which would make name-based entry
    /// resolution ambiguous.
    DuplicateFunctionName(String),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::StackUnderflow { func, ip } => {
                write!(f, "fn#{func}@{ip}: stack underflow")
            }
            VerifyError::StackOverflow { func, ip } => {
                write!(f, "fn#{func}@{ip}: stack deeper than {MAX_STACK}")
            }
            VerifyError::TypeMismatch {
                func,
                ip,
                expected,
                found,
            } => write!(f, "fn#{func}@{ip}: expected {expected}, found {found}"),
            VerifyError::InconsistentJoin { func, ip } => {
                write!(f, "fn#{func}@{ip}: inconsistent stack shapes at join")
            }
            VerifyError::BadJumpTarget { func, ip, target } => {
                write!(f, "fn#{func}@{ip}: jump target {target} out of range")
            }
            VerifyError::BadLocal { func, ip, local } => {
                write!(f, "fn#{func}@{ip}: local {local} out of range")
            }
            VerifyError::BadGlobal { func, ip, global } => {
                write!(f, "fn#{func}@{ip}: global {global} out of range")
            }
            VerifyError::BadData { func, ip, data } => {
                write!(f, "fn#{func}@{ip}: data index {data} out of range")
            }
            VerifyError::BadFunction { func, ip, callee } => {
                write!(f, "fn#{func}@{ip}: call target {callee} out of range")
            }
            VerifyError::BadImport { func, ip, import } => {
                write!(f, "fn#{func}@{ip}: host import {import} out of range")
            }
            VerifyError::FallsOffEnd { func } => {
                write!(f, "fn#{func}: control flow can fall off the end")
            }
            VerifyError::EmptyBody { func } => write!(f, "fn#{func}: empty body"),
            VerifyError::DuplicateFunctionName(n) => {
                write!(f, "duplicate function name: {n:?}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// A module that passed verification. The only way to construct one is
/// [`verify`], so holding a `VerifiedModule` *is* the proof the
/// interpreter relies on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerifiedModule {
    module: Module,
}

impl VerifiedModule {
    /// The underlying module (read-only; mutation would invalidate the
    /// verification witness).
    pub fn module(&self) -> &Module {
        &self.module
    }
}

/// Verifies a whole module.
pub fn verify(module: Module) -> Result<VerifiedModule, VerifyError> {
    let mut names = std::collections::BTreeSet::new();
    for f in &module.functions {
        if !names.insert(f.name.as_str()) {
            return Err(VerifyError::DuplicateFunctionName(f.name.clone()));
        }
    }
    for (i, _) in module.functions.iter().enumerate() {
        verify_function(&module, i as u32)?;
    }
    Ok(VerifiedModule { module })
}

/// Abstract stack shapes per instruction entry point.
type Shape = Vec<Ty>;

fn verify_function(m: &Module, func: u32) -> Result<(), VerifyError> {
    let f = &m.functions[func as usize];
    let code = &f.code;
    if code.is_empty() {
        return Err(VerifyError::EmptyBody { func });
    }

    let mut shapes: Vec<Option<Shape>> = vec![None; code.len()];
    let mut worklist: Vec<u32> = vec![0];
    shapes[0] = Some(Vec::new());

    while let Some(ip) = worklist.pop() {
        let mut stack = shapes[ip as usize]
            .clone()
            .expect("worklist entries always have shapes");
        let op = code[ip as usize];

        // Helper closures over the local abstract stack.
        let pop = |stack: &mut Shape, expected: Option<Ty>| -> Result<Ty, VerifyError> {
            let found = stack
                .pop()
                .ok_or(VerifyError::StackUnderflow { func, ip })?;
            if let Some(exp) = expected {
                if found != exp {
                    return Err(VerifyError::TypeMismatch {
                        func,
                        ip,
                        expected: exp,
                        found,
                    });
                }
            }
            Ok(found)
        };
        let push = |stack: &mut Shape, t: Ty| -> Result<(), VerifyError> {
            if stack.len() >= MAX_STACK {
                return Err(VerifyError::StackOverflow { func, ip });
            }
            stack.push(t);
            Ok(())
        };

        // Successors: (next ip, shape) pairs; None means terminal.
        let mut successors: Vec<u32> = Vec::with_capacity(2);
        match op {
            Op::PushI(_) => {
                push(&mut stack, Ty::Int)?;
                successors.push(ip + 1);
            }
            Op::PushD(d) => {
                if d as usize >= m.data.len() {
                    return Err(VerifyError::BadData { func, ip, data: d });
                }
                push(&mut stack, Ty::Bytes)?;
                successors.push(ip + 1);
            }
            Op::Dup => {
                let t = pop(&mut stack, None)?;
                push(&mut stack, t)?;
                push(&mut stack, t)?;
                successors.push(ip + 1);
            }
            Op::Drop => {
                pop(&mut stack, None)?;
                successors.push(ip + 1);
            }
            Op::Swap => {
                let a = pop(&mut stack, None)?;
                let b = pop(&mut stack, None)?;
                push(&mut stack, a)?;
                push(&mut stack, b)?;
                successors.push(ip + 1);
            }
            Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Div
            | Op::Rem
            | Op::Eq
            | Op::Ne
            | Op::Lt
            | Op::Le
            | Op::Gt
            | Op::Ge
            | Op::And
            | Op::Or => {
                pop(&mut stack, Some(Ty::Int))?;
                pop(&mut stack, Some(Ty::Int))?;
                push(&mut stack, Ty::Int)?;
                successors.push(ip + 1);
            }
            Op::Neg | Op::Not => {
                pop(&mut stack, Some(Ty::Int))?;
                push(&mut stack, Ty::Int)?;
                successors.push(ip + 1);
            }
            Op::BConcat => {
                pop(&mut stack, Some(Ty::Bytes))?;
                pop(&mut stack, Some(Ty::Bytes))?;
                push(&mut stack, Ty::Bytes)?;
                successors.push(ip + 1);
            }
            Op::BLen => {
                pop(&mut stack, Some(Ty::Bytes))?;
                push(&mut stack, Ty::Int)?;
                successors.push(ip + 1);
            }
            Op::BIndex => {
                pop(&mut stack, Some(Ty::Int))?;
                pop(&mut stack, Some(Ty::Bytes))?;
                push(&mut stack, Ty::Int)?;
                successors.push(ip + 1);
            }
            Op::BSlice => {
                pop(&mut stack, Some(Ty::Int))?; // len
                pop(&mut stack, Some(Ty::Int))?; // start
                pop(&mut stack, Some(Ty::Bytes))?;
                push(&mut stack, Ty::Bytes)?;
                successors.push(ip + 1);
            }
            Op::BEq => {
                pop(&mut stack, Some(Ty::Bytes))?;
                pop(&mut stack, Some(Ty::Bytes))?;
                push(&mut stack, Ty::Int)?;
                successors.push(ip + 1);
            }
            Op::IToA => {
                pop(&mut stack, Some(Ty::Int))?;
                push(&mut stack, Ty::Bytes)?;
                successors.push(ip + 1);
            }
            Op::AToI => {
                pop(&mut stack, Some(Ty::Bytes))?;
                push(&mut stack, Ty::Int)?;
                successors.push(ip + 1);
            }
            Op::Load(n) => {
                let t =
                    f.local_ty(n as usize)
                        .ok_or(VerifyError::BadLocal { func, ip, local: n })?;
                push(&mut stack, t)?;
                successors.push(ip + 1);
            }
            Op::Store(n) => {
                let t =
                    f.local_ty(n as usize)
                        .ok_or(VerifyError::BadLocal { func, ip, local: n })?;
                pop(&mut stack, Some(t))?;
                successors.push(ip + 1);
            }
            Op::GLoad(n) => {
                let t = m
                    .globals
                    .get(n as usize)
                    .copied()
                    .ok_or(VerifyError::BadGlobal {
                        func,
                        ip,
                        global: n,
                    })?;
                push(&mut stack, t)?;
                successors.push(ip + 1);
            }
            Op::GStore(n) => {
                let t = m
                    .globals
                    .get(n as usize)
                    .copied()
                    .ok_or(VerifyError::BadGlobal {
                        func,
                        ip,
                        global: n,
                    })?;
                pop(&mut stack, Some(t))?;
                successors.push(ip + 1);
            }
            Op::Jump(t) => {
                if t as usize >= code.len() {
                    return Err(VerifyError::BadJumpTarget {
                        func,
                        ip,
                        target: t,
                    });
                }
                successors.push(t);
            }
            Op::JumpIfZero(t) => {
                if t as usize >= code.len() {
                    return Err(VerifyError::BadJumpTarget {
                        func,
                        ip,
                        target: t,
                    });
                }
                pop(&mut stack, Some(Ty::Int))?;
                successors.push(t);
                successors.push(ip + 1);
            }
            Op::Call(callee) => {
                let g = m
                    .functions
                    .get(callee as usize)
                    .ok_or(VerifyError::BadFunction { func, ip, callee })?;
                // Arguments are pushed left-to-right, so the last parameter
                // is on top: pop in reverse declaration order.
                for &pt in g.params.iter().rev() {
                    pop(&mut stack, Some(pt))?;
                }
                push(&mut stack, g.ret)?;
                successors.push(ip + 1);
            }
            Op::HostCall(idx) => {
                let im = m.imports.get(idx as usize).ok_or(VerifyError::BadImport {
                    func,
                    ip,
                    import: idx,
                })?;
                for &pt in im.params.iter().rev() {
                    pop(&mut stack, Some(pt))?;
                }
                push(&mut stack, im.ret)?;
                successors.push(ip + 1);
            }
            Op::Ret => {
                pop(&mut stack, Some(f.ret))?;
                // Terminal: leftover stack values are permitted and
                // discarded with the frame (as in the JVM).
            }
            Op::Halt => {
                pop(&mut stack, Some(Ty::Int))?;
                // Terminal.
            }
            Op::Nop => {
                successors.push(ip + 1);
            }
        }

        for succ in successors {
            if succ as usize >= code.len() {
                return Err(VerifyError::FallsOffEnd { func });
            }
            match &shapes[succ as usize] {
                None => {
                    shapes[succ as usize] = Some(stack.clone());
                    worklist.push(succ);
                }
                Some(existing) => {
                    if existing != &stack {
                        return Err(VerifyError::InconsistentJoin { func, ip: succ });
                    }
                }
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::ModuleBuilder;

    fn single(code: Vec<Op>) -> Result<VerifiedModule, VerifyError> {
        let mut b = ModuleBuilder::new("t");
        b.function("main", [Ty::Int], [Ty::Int], Ty::Int, code);
        verify(b.build())
    }

    #[test]
    fn accepts_trivial_return() {
        single(vec![Op::PushI(42), Op::Ret]).unwrap();
    }

    #[test]
    fn accepts_arithmetic_and_locals() {
        single(vec![
            Op::Load(0),
            Op::PushI(2),
            Op::Mul,
            Op::Store(1),
            Op::Load(1),
            Op::Ret,
        ])
        .unwrap();
    }

    #[test]
    fn accepts_loop_with_consistent_shapes() {
        // local1 = 10; while (local1 != 0) local1 -= 1; return 0
        single(vec![
            /*0*/ Op::PushI(10),
            /*1*/ Op::Store(1),
            /*2*/ Op::Load(1),
            /*3*/ Op::JumpIfZero(8),
            /*4*/ Op::Load(1),
            /*5*/ Op::PushI(1),
            /*6*/ Op::Sub,
            /*7*/ Op::Store(1),
            // note: ip 8 is the exit, loop back happens below
            /*8*/
            Op::PushI(0),
            /*9*/ Op::Ret,
        ])
        .unwrap();
    }

    #[test]
    fn rejects_stack_underflow() {
        assert!(matches!(
            single(vec![Op::Add, Op::Ret]),
            Err(VerifyError::StackUnderflow { .. })
        ));
        assert!(matches!(
            single(vec![Op::Drop, Op::PushI(0), Op::Ret]),
            Err(VerifyError::StackUnderflow { .. })
        ));
    }

    #[test]
    fn rejects_type_confusion() {
        // bytes + int addition
        let mut b = ModuleBuilder::new("t");
        let d = b.str_data("x");
        b.function(
            "main",
            [],
            [],
            Ty::Int,
            vec![Op::PushD(d), Op::PushI(1), Op::Add, Op::Ret],
        );
        assert!(matches!(
            verify(b.build()),
            Err(VerifyError::TypeMismatch {
                expected: Ty::Int,
                found: Ty::Bytes,
                ..
            })
        ));
    }

    #[test]
    fn rejects_wrong_return_type() {
        let mut b = ModuleBuilder::new("t");
        let d = b.str_data("x");
        b.function("main", [], [], Ty::Int, vec![Op::PushD(d), Op::Ret]);
        assert!(matches!(
            verify(b.build()),
            Err(VerifyError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn rejects_bad_jump_targets() {
        assert!(matches!(
            single(vec![Op::Jump(99), Op::PushI(0), Op::Ret]),
            Err(VerifyError::BadJumpTarget { target: 99, .. })
        ));
    }

    #[test]
    fn rejects_fall_off_end() {
        assert!(matches!(
            single(vec![Op::PushI(1), Op::Drop]),
            Err(VerifyError::FallsOffEnd { .. })
        ));
        // Jump to last instruction which is not terminal
        assert!(matches!(
            single(vec![Op::PushI(0), Op::Nop]),
            Err(VerifyError::FallsOffEnd { .. })
        ));
    }

    #[test]
    fn rejects_empty_body() {
        assert!(matches!(single(vec![]), Err(VerifyError::EmptyBody { .. })));
    }

    #[test]
    fn rejects_inconsistent_join() {
        // Two paths into ip 4 with different stack shapes:
        // path A pushes one int; path B pushes two.
        let code = vec![
            /*0*/ Op::Load(0),
            /*1*/ Op::JumpIfZero(5),
            /*2*/ Op::PushI(1),
            /*3*/ Op::PushI(2),
            /*4*/ Op::Jump(6),
            /*5*/ Op::PushI(1), // joins ip 6 with depth 1 vs depth 2
            /*6*/ Op::Ret,
        ];
        assert!(matches!(
            single(code),
            Err(VerifyError::InconsistentJoin { .. })
        ));
    }

    #[test]
    fn rejects_bad_indices() {
        assert!(matches!(
            single(vec![Op::Load(99), Op::Ret]),
            Err(VerifyError::BadLocal { local: 99, .. })
        ));
        assert!(matches!(
            single(vec![Op::GLoad(0), Op::Ret]),
            Err(VerifyError::BadGlobal { .. })
        ));
        assert!(matches!(
            single(vec![Op::PushD(7), Op::Drop, Op::PushI(0), Op::Ret]),
            Err(VerifyError::BadData { data: 7, .. })
        ));
        assert!(matches!(
            single(vec![Op::Call(9), Op::Ret]),
            Err(VerifyError::BadFunction { callee: 9, .. })
        ));
        assert!(matches!(
            single(vec![Op::HostCall(0), Op::Ret]),
            Err(VerifyError::BadImport { .. })
        ));
    }

    #[test]
    fn rejects_static_stack_overflow() {
        // A loop that pushes without popping has an inconsistent join, but
        // a straight-line push chain past MAX_STACK must overflow.
        let mut code = Vec::new();
        for _ in 0..=MAX_STACK {
            code.push(Op::PushI(1));
        }
        code.push(Op::Ret);
        assert!(matches!(
            single(code),
            Err(VerifyError::StackOverflow { .. })
        ));
    }

    #[test]
    fn verifies_calls_with_signatures() {
        let mut b = ModuleBuilder::new("t");
        b.function(
            "callee",
            [Ty::Int, Ty::Bytes],
            [],
            Ty::Int,
            vec![Op::Load(0), Op::Ret],
        );
        let d = b.str_data("payload");
        b.function(
            "main",
            [],
            [],
            Ty::Int,
            vec![Op::PushI(7), Op::PushD(d), Op::Call(0), Op::Ret],
        );
        verify(b.build()).unwrap();
    }

    #[test]
    fn rejects_call_with_swapped_args() {
        let mut b = ModuleBuilder::new("t");
        b.function(
            "callee",
            [Ty::Int, Ty::Bytes],
            [],
            Ty::Int,
            vec![Op::Load(0), Op::Ret],
        );
        let d = b.str_data("payload");
        b.function(
            "main",
            [],
            [],
            Ty::Int,
            vec![Op::PushD(d), Op::PushI(7), Op::Call(0), Op::Ret],
        );
        assert!(matches!(
            verify(b.build()),
            Err(VerifyError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn rejects_duplicate_function_names() {
        let mut b = ModuleBuilder::new("t");
        b.function("f", [], [], Ty::Int, vec![Op::PushI(0), Op::Ret]);
        b.function("f", [], [], Ty::Int, vec![Op::PushI(1), Op::Ret]);
        assert_eq!(
            verify(b.build()),
            Err(VerifyError::DuplicateFunctionName("f".into()))
        );
    }

    #[test]
    fn halt_requires_int() {
        single(vec![Op::PushI(0), Op::Halt]).unwrap();
        let mut b = ModuleBuilder::new("t");
        let d = b.str_data("x");
        b.function("main", [], [], Ty::Int, vec![Op::PushD(d), Op::Halt]);
        assert!(matches!(
            verify(b.build()),
            Err(VerifyError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn leftover_stack_at_ret_is_allowed() {
        single(vec![Op::PushI(1), Op::PushI(2), Op::Ret]).unwrap();
    }
}
