//! Mid-run interpreter state capture for agent hibernation.
//!
//! The migration model stays application-level (globals + entry, see the
//! crate docs) — this module serves a different need: a *server* spilling
//! an idle agent it is already hosting. A suspended [`Interpreter`] parks
//! its call stack inside the value; [`InterpState`] is that parked state
//! as canonical bytes, so the runtime can drop the live interpreter (and
//! its Vec capacities) and later rebuild one that resumes bit-identically.
//!
//! Import is a trust boundary: snapshots are only ever produced and
//! consumed by the *same server's* bundle store and write-ahead log,
//! never accepted from agents or peers. Decoding is total (typed errors,
//! no panics) and [`Interpreter::import_state`] re-validates the
//! structural invariants the interpreter relies on — function and
//! instruction indices in range, local slots matching the verified
//! declarations, call depth and fuel within limits — rejecting anything
//! inconsistent with the module rather than trusting the bytes.

use ajanta_wire::{decode_seq, encode_seq, Decoder, Encoder, Wire, WireError};

use crate::interp::{Interpreter, Limits};
use crate::value::Value;
use crate::verifier::VerifiedModule;

/// Version tag leading every [`InterpState`] encoding. Bump on any layout
/// change; decoders reject versions they do not understand.
pub const INTERP_STATE_VERSION: u8 = 1;

/// One suspended call frame: which function, where in it, and the frame's
/// local slots and operand stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameState {
    /// Function index in the module.
    pub func: u32,
    /// Instruction index of the next op to execute.
    pub ip: u32,
    /// Local slots (params first, then declared locals).
    pub locals: Vec<Value>,
    /// Operand stack.
    pub stack: Vec<Value>,
}

impl Wire for FrameState {
    fn encode(&self, e: &mut Encoder) {
        e.put_varint(u64::from(self.func));
        e.put_varint(u64::from(self.ip));
        encode_seq(&self.locals, e);
        encode_seq(&self.stack, e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        let func = u32::try_from(d.get_varint()?).map_err(|_| WireError::Invalid("frame func"))?;
        let ip = u32::try_from(d.get_varint()?).map_err(|_| WireError::Invalid("frame ip"))?;
        let locals = decode_seq(d)?;
        let stack = decode_seq(d)?;
        Ok(FrameState {
            func,
            ip,
            locals,
            stack,
        })
    }
}

/// A serializable snapshot of one interpreter: globals, quota meters, and
/// the suspended call stack (empty when no run is in progress).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpState {
    /// The agent's mobile state.
    pub globals: Vec<Value>,
    /// Fuel consumed so far (resumes against the same budget).
    pub fuel_used: u64,
    /// Allocation budget consumed so far.
    pub alloc_used: u64,
    /// Host calls made so far.
    pub host_calls: u64,
    /// Suspended call stack, outermost frame first.
    pub frames: Vec<FrameState>,
}

impl Wire for InterpState {
    fn encode(&self, e: &mut Encoder) {
        e.put_u8(INTERP_STATE_VERSION);
        e.put_varint(self.fuel_used);
        e.put_varint(self.alloc_used);
        e.put_varint(self.host_calls);
        encode_seq(&self.globals, e);
        encode_seq(&self.frames, e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        let version = d.get_u8()?;
        if version != INTERP_STATE_VERSION {
            return Err(WireError::BadTag {
                ty: "InterpState version",
                tag: version,
            });
        }
        let fuel_used = d.get_varint()?;
        let alloc_used = d.get_varint()?;
        let host_calls = d.get_varint()?;
        let globals = decode_seq(d)?;
        let frames = decode_seq(d)?;
        Ok(InterpState {
            globals,
            fuel_used,
            alloc_used,
            host_calls,
            frames,
        })
    }
}

impl InterpState {
    /// Validates this snapshot against `module` under `limits`: every
    /// structural invariant the interpreter assumes must hold before the
    /// state is allowed back into a live [`Interpreter`].
    pub fn validate(&self, module: &VerifiedModule, limits: &Limits) -> bool {
        let m = module.module();
        if self.fuel_used > limits.fuel
            || self.alloc_used > limits.alloc_budget
            || self.frames.len() > limits.max_call_depth
        {
            return false;
        }
        let decl = &m.globals;
        if self.globals.len() != decl.len()
            || self.globals.iter().zip(decl).any(|(v, &t)| v.ty() != t)
        {
            return false;
        }
        for frame in &self.frames {
            let Some(f) = m.functions.get(frame.func as usize) else {
                return false;
            };
            if frame.ip as usize >= f.code.len() {
                return false;
            }
            let want = f.params.len() + f.locals.len();
            if frame.locals.len() != want {
                return false;
            }
            let declared = f.params.iter().chain(f.locals.iter());
            if frame.locals.iter().zip(declared).any(|(v, &t)| v.ty() != t) {
                return false;
            }
        }
        true
    }
}

impl Interpreter {
    /// Captures the interpreter's globals, quota meters, and suspended
    /// call stack as a serializable snapshot. Works both mid-run (after a
    /// [`Interpreter::run_slice`] yield) and idle (empty stack).
    pub fn export_state(&self) -> InterpState {
        InterpState {
            globals: self.globals().to_vec(),
            fuel_used: self.fuel_used(),
            alloc_used: self.alloc_used(),
            host_calls: self.host_calls(),
            frames: self
                .frames_ref()
                .iter()
                .map(|f| FrameState {
                    func: f.func,
                    ip: f.ip,
                    locals: f.locals.clone(),
                    stack: f.stack.clone(),
                })
                .collect(),
        }
    }

    /// Rebuilds an interpreter from a snapshot, resuming bit-identically
    /// where [`Interpreter::export_state`] left off. Returns `None` (and
    /// constructs nothing) when the snapshot fails
    /// [`InterpState::validate`] against the module.
    pub fn import_state(
        module: std::sync::Arc<VerifiedModule>,
        limits: Limits,
        state: InterpState,
    ) -> Option<Interpreter> {
        if !state.validate(&module, &limits) {
            return None;
        }
        let mut interp = Interpreter::new(module, limits);
        interp.adopt_state(state);
        Some(interp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::interp::{NoHost, SliceOutcome};
    use crate::verifier::verify;
    use std::sync::Arc;

    fn counting_module() -> Arc<VerifiedModule> {
        let src = r#"
            module counting
            global acc: int

            func main(arg: bytes) -> int
              locals i: int
              push 0
              store i
            loop:
              gload acc
              push 1
              add
              gstore acc
              load i
              push 1
              add
              store i
              load i
              push 200
              lt
              jz done
              jump loop
            done:
              gload acc
              ret
        "#;
        Arc::new(verify(assemble(src).expect("assembles")).expect("verifies"))
    }

    #[test]
    fn snapshot_resume_is_bit_identical_to_uninterrupted_run() {
        let module = counting_module();
        let limits = Limits::default();

        let mut reference = Interpreter::new(Arc::clone(&module), limits);
        let baseline = reference.run("main", vec![Value::Bytes(vec![])], &mut NoHost);

        let mut interp = Interpreter::new(Arc::clone(&module), limits);
        interp.start("main", vec![Value::Bytes(vec![])]);
        // Run a few slices, snapshot mid-run, drop the live interpreter,
        // resume from the snapshot.
        for _ in 0..3 {
            assert_eq!(interp.run_slice(40, &mut NoHost), SliceOutcome::Yielded);
        }
        let state = interp.export_state();
        let bytes = state.to_bytes();
        drop(interp);

        let restored = InterpState::from_bytes(&bytes).expect("snapshot decodes");
        assert_eq!(restored, state);
        let mut resumed =
            Interpreter::import_state(Arc::clone(&module), limits, restored).expect("valid state");
        let outcome = loop {
            match resumed.run_slice(40, &mut NoHost) {
                SliceOutcome::Yielded => continue,
                SliceOutcome::Done(o) => break o,
            }
        };
        assert_eq!(outcome, baseline);
        assert_eq!(resumed.fuel_used(), reference.fuel_used());
        assert_eq!(resumed.globals(), reference.globals());
    }

    #[test]
    fn import_rejects_states_inconsistent_with_the_module() {
        let module = counting_module();
        let limits = Limits::default();
        let mut interp = Interpreter::new(Arc::clone(&module), limits);
        interp.start("main", vec![Value::Bytes(vec![])]);
        assert_eq!(interp.run_slice(40, &mut NoHost), SliceOutcome::Yielded);
        let good = interp.export_state();
        assert!(good.validate(&module, &limits));

        let mut bad_func = good.clone();
        bad_func.frames[0].func = 99;
        assert!(Interpreter::import_state(Arc::clone(&module), limits, bad_func).is_none());

        let mut bad_ip = good.clone();
        bad_ip.frames[0].ip = u32::MAX;
        assert!(Interpreter::import_state(Arc::clone(&module), limits, bad_ip).is_none());

        let mut bad_locals = good.clone();
        bad_locals.frames[0].locals.push(Value::Int(1));
        assert!(Interpreter::import_state(Arc::clone(&module), limits, bad_locals).is_none());

        let mut bad_global = good.clone();
        bad_global.globals[0] = Value::Bytes(vec![1]);
        assert!(Interpreter::import_state(Arc::clone(&module), limits, bad_global).is_none());

        let mut bad_fuel = good.clone();
        bad_fuel.fuel_used = limits.fuel + 1;
        assert!(Interpreter::import_state(Arc::clone(&module), limits, bad_fuel).is_none());
    }

    #[test]
    fn decode_is_total_on_truncated_and_corrupt_bytes() {
        let module = counting_module();
        let limits = Limits::default();
        let mut interp = Interpreter::new(Arc::clone(&module), limits);
        interp.start("main", vec![Value::Bytes(vec![])]);
        assert_eq!(interp.run_slice(40, &mut NoHost), SliceOutcome::Yielded);
        let bytes = interp.export_state().to_bytes();
        for cut in 0..bytes.len() {
            let _ = InterpState::from_bytes(&bytes[..cut]); // must not panic
        }
        let mut wrong_version = bytes.clone();
        wrong_version[0] = INTERP_STATE_VERSION + 1;
        assert!(InterpState::from_bytes(&wrong_version).is_err());
    }
}
