//! A small text assembler for AgentScript.
//!
//! Examples and workloads define agent programs in a readable form instead
//! of raw `Op` vectors. Grammar (line-oriented; `#` starts a comment):
//!
//! ```text
//! module shopper
//! import env.get_resource (bytes) -> int
//! global counter: int
//! data greeting = "hello"
//!
//! func main(args: bytes) -> int
//!   locals i: int, buf: bytes
//!   push 5
//!   store i
//! loop:
//!   load i
//!   jz done
//!   load i
//!   push 1
//!   sub
//!   store i
//!   jump loop
//! done:
//!   push 0
//!   ret
//! ```
//!
//! Names are resolved at assembly time: locals/globals/data/imports/
//! functions are referenced by name; labels resolve forward and backward.
//! The output is an **unverified** [`Module`] — callers pass it through
//! the verifier (or a [`crate::loader::Namespace`]) like any other code.

use std::collections::BTreeMap;

use crate::isa::Op;
use crate::module::{Function, HostImport, Module};
use crate::value::Ty;

/// Assembly failure, with a 1-based source line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line where assembly failed.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn parse_ty(s: &str, line: usize) -> Result<Ty, AsmError> {
    match s {
        "int" => Ok(Ty::Int),
        "bytes" => Ok(Ty::Bytes),
        other => Err(err(line, format!("unknown type {other:?}"))),
    }
}

/// Parses `name: ty` pairs separated by commas; empty input is fine.
fn parse_typed_list(s: &str, line: usize) -> Result<Vec<(String, Ty)>, AsmError> {
    let s = s.trim();
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|part| {
            let (name, ty) = part
                .split_once(':')
                .ok_or_else(|| err(line, format!("expected `name: type` in {part:?}")))?;
            Ok((name.trim().to_string(), parse_ty(ty.trim(), line)?))
        })
        .collect()
}

/// Parses a double-quoted string literal with `\n`, `\t`, `\"`, `\\`
/// escapes.
fn parse_string_literal(s: &str, line: usize) -> Result<Vec<u8>, AsmError> {
    let s = s.trim();
    let inner = s
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| err(line, "expected a double-quoted string"))?;
    let mut out = Vec::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push(b'\n'),
                Some('t') => out.push(b'\t'),
                Some('"') => out.push(b'"'),
                Some('\\') => out.push(b'\\'),
                other => return Err(err(line, format!("bad escape: \\{other:?}"))),
            }
        } else {
            let mut buf = [0u8; 4];
            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
        }
    }
    Ok(out)
}

struct PendingFn {
    name: String,
    params: Vec<(String, Ty)>,
    locals: Vec<(String, Ty)>,
    ret: Ty,
    /// (line, mnemonic, operand) triples; resolved in pass two.
    body: Vec<(usize, String, Option<String>)>,
    /// label -> instruction index
    labels: BTreeMap<String, u32>,
    decl_line: usize,
}

/// Assembles source text into a module.
pub fn assemble(source: &str) -> Result<Module, AsmError> {
    let mut module_name: Option<String> = None;
    let mut imports: Vec<HostImport> = Vec::new();
    let mut globals: Vec<(String, Ty)> = Vec::new();
    let mut data: Vec<(String, Vec<u8>)> = Vec::new();
    let mut funcs: Vec<PendingFn> = Vec::new();
    let mut current: Option<PendingFn> = None;

    for (i, raw) in source.lines().enumerate() {
        let lineno = i + 1;
        let line = match raw.split_once('#') {
            Some((before, _)) => before.trim(),
            None => raw.trim(),
        };
        if line.is_empty() {
            continue;
        }

        let (word, rest) = match line.split_once(char::is_whitespace) {
            Some((w, r)) => (w, r.trim()),
            None => (line, ""),
        };

        match word {
            "module" => {
                if module_name.is_some() {
                    return Err(err(lineno, "duplicate module declaration"));
                }
                if rest.is_empty() {
                    return Err(err(lineno, "module needs a name"));
                }
                module_name = Some(rest.to_string());
            }
            "import" => {
                // import env.log (bytes) -> int
                let (name, sig) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| err(lineno, "import needs `name (types) -> ret`"))?;
                let (params_s, ret_s) = sig
                    .split_once("->")
                    .ok_or_else(|| err(lineno, "import needs `-> ret`"))?;
                let params_s = params_s
                    .trim()
                    .strip_prefix('(')
                    .and_then(|s| s.strip_suffix(')'))
                    .ok_or_else(|| err(lineno, "import params need parentheses"))?;
                let params = if params_s.trim().is_empty() {
                    Vec::new()
                } else {
                    params_s
                        .split(',')
                        .map(|t| parse_ty(t.trim(), lineno))
                        .collect::<Result<_, _>>()?
                };
                imports.push(HostImport {
                    name: name.to_string(),
                    params,
                    ret: parse_ty(ret_s.trim(), lineno)?,
                });
            }
            "global" => {
                let mut pairs = parse_typed_list(rest, lineno)?;
                if pairs.len() != 1 {
                    return Err(err(lineno, "one global per line"));
                }
                let pair = pairs.pop().expect("checked length");
                if globals.iter().any(|(n, _)| *n == pair.0) {
                    return Err(err(lineno, format!("duplicate global {:?}", pair.0)));
                }
                globals.push(pair);
            }
            "data" => {
                let (name, value) = rest
                    .split_once('=')
                    .ok_or_else(|| err(lineno, "data needs `name = \"...\"`"))?;
                let name = name.trim().to_string();
                if data.iter().any(|(n, _)| *n == name) {
                    return Err(err(lineno, format!("duplicate data {name:?}")));
                }
                data.push((name, parse_string_literal(value, lineno)?));
            }
            "func" => {
                if let Some(f) = current.take() {
                    funcs.push(f);
                }
                // func main(args: bytes) -> int
                let (head, ret_s) = rest
                    .split_once("->")
                    .ok_or_else(|| err(lineno, "func needs `-> ret`"))?;
                let head = head.trim();
                let open = head
                    .find('(')
                    .ok_or_else(|| err(lineno, "func needs a parameter list"))?;
                let name = head[..open].trim().to_string();
                let params_s = head[open + 1..]
                    .strip_suffix(')')
                    .ok_or_else(|| err(lineno, "unclosed parameter list"))?;
                current = Some(PendingFn {
                    name,
                    params: parse_typed_list(params_s, lineno)?,
                    locals: Vec::new(),
                    ret: parse_ty(ret_s.trim(), lineno)?,
                    body: Vec::new(),
                    labels: BTreeMap::new(),
                    decl_line: lineno,
                });
            }
            "locals" => {
                let f = current
                    .as_mut()
                    .ok_or_else(|| err(lineno, "locals outside a func"))?;
                if !f.body.is_empty() {
                    return Err(err(lineno, "locals must precede instructions"));
                }
                f.locals.extend(parse_typed_list(rest, lineno)?);
            }
            _ if word.ends_with(':') && rest.is_empty() => {
                let f = current
                    .as_mut()
                    .ok_or_else(|| err(lineno, "label outside a func"))?;
                let label = word.trim_end_matches(':').to_string();
                let at = f.body.len() as u32;
                if f.labels.insert(label.clone(), at).is_some() {
                    return Err(err(lineno, format!("duplicate label {label:?}")));
                }
            }
            mnemonic => {
                let f = current
                    .as_mut()
                    .ok_or_else(|| err(lineno, "instruction outside a func"))?;
                let operand = if rest.is_empty() {
                    None
                } else {
                    Some(rest.to_string())
                };
                f.body.push((lineno, mnemonic.to_string(), operand));
            }
        }
    }
    if let Some(f) = current.take() {
        funcs.push(f);
    }

    let module_name = module_name.ok_or_else(|| err(1, "missing module declaration"))?;

    // Pass two: resolve names and labels into operands.
    let func_names: Vec<String> = funcs.iter().map(|f| f.name.clone()).collect();
    let mut functions = Vec::with_capacity(funcs.len());
    for f in &funcs {
        let mut code = Vec::with_capacity(f.body.len());
        let local_index = |name: &str| -> Option<u16> {
            f.params
                .iter()
                .chain(f.locals.iter())
                .position(|(n, _)| n == name)
                .map(|i| i as u16)
        };
        for (lineno, mnemonic, operand) in &f.body {
            let lineno = *lineno;
            let need = |what: &str| -> Result<&str, AsmError> {
                operand
                    .as_deref()
                    .ok_or_else(|| err(lineno, format!("{mnemonic} needs {what}")))
            };
            let none = |op: Op| -> Result<Op, AsmError> {
                if operand.is_some() {
                    Err(err(lineno, format!("{mnemonic} takes no operand")))
                } else {
                    Ok(op)
                }
            };
            let label = |name: &str| -> Result<u32, AsmError> {
                f.labels
                    .get(name)
                    .copied()
                    .ok_or_else(|| err(lineno, format!("unknown label {name:?}")))
            };
            let op = match mnemonic.as_str() {
                "push" => Op::PushI(
                    need("an integer")?
                        .parse::<i64>()
                        .map_err(|_| err(lineno, "push needs an integer"))?,
                ),
                "pushd" => {
                    let name = need("a data name")?;
                    let idx = data
                        .iter()
                        .position(|(n, _)| n == name)
                        .ok_or_else(|| err(lineno, format!("unknown data {name:?}")))?;
                    Op::PushD(idx as u32)
                }
                "dup" => none(Op::Dup)?,
                "drop" => none(Op::Drop)?,
                "swap" => none(Op::Swap)?,
                "add" => none(Op::Add)?,
                "sub" => none(Op::Sub)?,
                "mul" => none(Op::Mul)?,
                "div" => none(Op::Div)?,
                "rem" => none(Op::Rem)?,
                "neg" => none(Op::Neg)?,
                "eq" => none(Op::Eq)?,
                "ne" => none(Op::Ne)?,
                "lt" => none(Op::Lt)?,
                "le" => none(Op::Le)?,
                "gt" => none(Op::Gt)?,
                "ge" => none(Op::Ge)?,
                "and" => none(Op::And)?,
                "or" => none(Op::Or)?,
                "not" => none(Op::Not)?,
                "bconcat" => none(Op::BConcat)?,
                "blen" => none(Op::BLen)?,
                "bindex" => none(Op::BIndex)?,
                "bslice" => none(Op::BSlice)?,
                "beq" => none(Op::BEq)?,
                "itoa" => none(Op::IToA)?,
                "atoi" => none(Op::AToI)?,
                "load" => {
                    let name = need("a local name")?;
                    Op::Load(
                        local_index(name)
                            .ok_or_else(|| err(lineno, format!("unknown local {name:?}")))?,
                    )
                }
                "store" => {
                    let name = need("a local name")?;
                    Op::Store(
                        local_index(name)
                            .ok_or_else(|| err(lineno, format!("unknown local {name:?}")))?,
                    )
                }
                "gload" => {
                    let name = need("a global name")?;
                    let idx = globals
                        .iter()
                        .position(|(n, _)| n == name)
                        .ok_or_else(|| err(lineno, format!("unknown global {name:?}")))?;
                    Op::GLoad(idx as u16)
                }
                "gstore" => {
                    let name = need("a global name")?;
                    let idx = globals
                        .iter()
                        .position(|(n, _)| n == name)
                        .ok_or_else(|| err(lineno, format!("unknown global {name:?}")))?;
                    Op::GStore(idx as u16)
                }
                "jump" => Op::Jump(label(need("a label")?)?),
                "jz" => Op::JumpIfZero(label(need("a label")?)?),
                "call" => {
                    let name = need("a function name")?;
                    let idx = func_names
                        .iter()
                        .position(|n| n == name)
                        .ok_or_else(|| err(lineno, format!("unknown function {name:?}")))?;
                    Op::Call(idx as u32)
                }
                "hostcall" => {
                    let name = need("an import name")?;
                    let idx = imports
                        .iter()
                        .position(|im| im.name == name)
                        .ok_or_else(|| err(lineno, format!("unknown import {name:?}")))?;
                    Op::HostCall(idx as u32)
                }
                "ret" => none(Op::Ret)?,
                "halt" => none(Op::Halt)?,
                "nop" => none(Op::Nop)?,
                other => return Err(err(lineno, format!("unknown mnemonic {other:?}"))),
            };
            code.push(op);
        }
        // Labels may point one past the final instruction only if unused;
        // the verifier will catch genuinely bad targets. An empty body is
        // rejected here with a clearer message.
        if code.is_empty() {
            return Err(err(
                f.decl_line,
                format!("function {:?} has no body", f.name),
            ));
        }
        functions.push(Function {
            name: f.name.clone(),
            params: f.params.iter().map(|(_, t)| *t).collect(),
            locals: f.locals.iter().map(|(_, t)| *t).collect(),
            ret: f.ret,
            code,
        });
    }

    Ok(Module {
        name: module_name,
        imports,
        functions,
        globals: globals.into_iter().map(|(_, t)| t).collect(),
        data: data.into_iter().map(|(_, b)| b).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{ExecOutcome, Interpreter, Limits, NoHost};
    use crate::value::Value;
    use crate::verifier::verify;

    fn run(source: &str, entry: &str) -> ExecOutcome {
        let module = assemble(source).unwrap();
        let vm = std::sync::Arc::new(verify(module).unwrap());
        let mut interp = Interpreter::new(vm, Limits::default());
        interp.run(entry, vec![], &mut NoHost)
    }

    #[test]
    fn assembles_and_runs_countdown() {
        let src = r#"
            module countdown
            func main() -> int
              locals i: int, acc: int
              push 5
              store i
            loop:
              load i
              jz done
              load acc
              load i
              add
              store acc
              load i
              push 1
              sub
              store i
              jump loop
            done:
              load acc
              ret
        "#;
        assert_eq!(run(src, "main"), ExecOutcome::Finished(Value::Int(15)));
    }

    #[test]
    fn data_and_string_escapes() {
        let src = r#"
            module strings
            data msg = "a\"b\n\t\\"
            func main() -> int
              pushd msg
              blen
              ret
        "#;
        // a, ", b, \n, \t, \\ = 6 bytes
        assert_eq!(run(src, "main"), ExecOutcome::Finished(Value::Int(6)));
    }

    #[test]
    fn globals_and_calls() {
        let src = r#"
            module gc
            global counter: int

            func bump() -> int
              gload counter
              push 1
              add
              gstore counter
              gload counter
              ret

            func main() -> int
              call bump
              drop
              call bump
              ret
        "#;
        assert_eq!(run(src, "main"), ExecOutcome::Finished(Value::Int(2)));
    }

    #[test]
    fn imports_resolve_by_name() {
        let src = r#"
            module im
            import env.log (bytes) -> int
            import env.get (bytes, int) -> bytes
            data q = "query"
            func main() -> int
              pushd q
              push 3
              hostcall env.get
              blen
              ret
        "#;
        let m = assemble(src).unwrap();
        assert_eq!(m.imports.len(), 2);
        assert_eq!(m.functions[0].code[2], Op::HostCall(1));
        verify(m).unwrap();
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "
            # leading comment
            module c  # trailing words are part of the name? no: comment stripped first

            func main() -> int   # entry
              push 1   # one
              ret
        ";
        // note: '# trailing...' is stripped before parsing the name
        let m = assemble(src).unwrap();
        assert_eq!(m.name, "c");
    }

    #[test]
    fn params_become_locals() {
        let src = r#"
            module p
            func diff(a: int, b: int) -> int
              load a
              load b
              sub
              ret
            func main() -> int
              push 50
              push 8
              call diff
              ret
        "#;
        assert_eq!(run(src, "main"), ExecOutcome::Finished(Value::Int(42)));
    }

    #[test]
    fn error_reports_line_numbers() {
        let src = "module m\nfunc main() -> int\n  frobnicate\n  ret\n";
        let e = assemble(src).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn unknown_names_rejected() {
        for (line, src) in [
            ("label", "module m\nfunc f() -> int\n  jump nowhere\n  ret"),
            ("local", "module m\nfunc f() -> int\n  load ghost\n  ret"),
            ("global", "module m\nfunc f() -> int\n  gload ghost\n  ret"),
            ("data", "module m\nfunc f() -> int\n  pushd ghost\n  ret"),
            ("function", "module m\nfunc f() -> int\n  call ghost\n  ret"),
            (
                "import",
                "module m\nfunc f() -> int\n  hostcall ghost\n  ret",
            ),
        ] {
            assert!(assemble(src).is_err(), "should reject unknown {line}");
        }
    }

    #[test]
    fn structural_errors_rejected() {
        assert!(assemble("func f() -> int\n  ret").is_err()); // no module
        assert!(assemble("module m\n  push 1").is_err()); // instr outside func
        assert!(assemble("module m\nfunc f() -> int").is_err()); // empty body
        assert!(assemble("module m\nmodule n").is_err()); // duplicate module
        assert!(assemble("module m\nglobal x: int\nglobal x: int").is_err());
        assert!(assemble("module m\ndata d = \"a\"\ndata d = \"b\"").is_err());
    }

    #[test]
    fn duplicate_labels_rejected() {
        let src = "module m\nfunc f() -> int\nl:\nl:\n  push 0\n  ret";
        let e = assemble(src).unwrap_err();
        assert!(e.message.contains("duplicate label"));
    }

    #[test]
    fn operand_arity_enforced() {
        assert!(assemble("module m\nfunc f() -> int\n  push\n  ret").is_err());
        assert!(assemble("module m\nfunc f() -> int\n  add 3\n  ret").is_err());
    }

    #[test]
    fn assembled_module_roundtrips_through_wire() {
        use ajanta_wire::Wire;
        let src = r#"
            module rt
            global g: bytes
            data d = "payload"
            import env.x (int) -> int
            func main() -> int
              push 1
              hostcall env.x
              ret
        "#;
        let m = assemble(src).unwrap();
        assert_eq!(Module::from_bytes(&m.to_bytes()).unwrap(), m);
    }
}
