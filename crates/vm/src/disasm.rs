//! Disassembler: renders a [`Module`] back to assembler syntax.
//!
//! Useful for debugging migrated agents (servers can dump exactly what
//! code arrived) and for testing: `assemble(disassemble(m))` reproduces
//! `m` up to naming of labels/locals, and exactly for modules that came
//! from the assembler in the first place (see the round-trip property in
//! `tests/properties.rs`).

use std::collections::BTreeSet;
use std::fmt::Write;

use crate::isa::Op;
use crate::module::{Function, Module};
use crate::value::Ty;

/// Renders `module` as assembler source accepted by [`crate::assemble`].
pub fn disassemble(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module {}", m.name);

    for import in &m.imports {
        let params: Vec<String> = import.params.iter().map(|t| t.to_string()).collect();
        let _ = writeln!(
            out,
            "import {} ({}) -> {}",
            import.name,
            params.join(", "),
            import.ret
        );
    }
    for (i, ty) in m.globals.iter().enumerate() {
        let _ = writeln!(out, "global g{i}: {ty}");
    }
    for (i, data) in m.data.iter().enumerate() {
        let _ = writeln!(out, "data d{i} = \"{}\"", escape(data));
    }

    for f in &m.functions {
        let _ = writeln!(out);
        let params: Vec<String> = f
            .params
            .iter()
            .enumerate()
            .map(|(i, t)| format!("p{i}: {t}"))
            .collect();
        let _ = writeln!(out, "func {}({}) -> {}", f.name, params.join(", "), f.ret);
        if !f.locals.is_empty() {
            let locals: Vec<String> = f
                .locals
                .iter()
                .enumerate()
                .map(|(i, t)| format!("l{}: {t}", i + f.params.len()))
                .collect();
            let _ = writeln!(out, "  locals {}", locals.join(", "));
        }
        render_body(&mut out, m, f);
    }
    out
}

fn render_body(out: &mut String, m: &Module, f: &Function) {
    // Collect jump targets so they get labels.
    let mut targets = BTreeSet::new();
    for op in &f.code {
        match op {
            Op::Jump(t) | Op::JumpIfZero(t) => {
                targets.insert(*t);
            }
            _ => {}
        }
    }
    let local_name = |i: u16| -> String {
        if (i as usize) < f.params.len() {
            format!("p{i}")
        } else {
            format!("l{i}")
        }
    };
    for (ip, op) in f.code.iter().enumerate() {
        if targets.contains(&(ip as u32)) {
            let _ = writeln!(out, "L{ip}:");
        }
        let line = match op {
            Op::PushI(v) => format!("push {v}"),
            Op::PushD(d) => format!("pushd d{d}"),
            Op::Load(n) => format!("load {}", local_name(*n)),
            Op::Store(n) => format!("store {}", local_name(*n)),
            Op::GLoad(n) => format!("gload g{n}"),
            Op::GStore(n) => format!("gstore g{n}"),
            Op::Jump(t) => format!("jump L{t}"),
            Op::JumpIfZero(t) => format!("jz L{t}"),
            Op::Call(i) => format!(
                "call {}",
                m.functions
                    .get(*i as usize)
                    .map(|g| g.name.as_str())
                    .unwrap_or("<bad-fn>")
            ),
            Op::HostCall(i) => format!(
                "hostcall {}",
                m.imports
                    .get(*i as usize)
                    .map(|im| im.name.as_str())
                    .unwrap_or("<bad-import>")
            ),
            other => other.mnemonic().to_string(),
        };
        let _ = writeln!(out, "  {line}");
    }
}

fn escape(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len());
    for &b in bytes {
        match b {
            b'\n' => s.push_str("\\n"),
            b'\t' => s.push_str("\\t"),
            b'"' => s.push_str("\\\""),
            b'\\' => s.push_str("\\\\"),
            0x20..=0x7e => s.push(b as char),
            other => {
                // Assembler strings are text; arbitrary bytes fall back to
                // a visible marker. Binary payloads should travel in
                // globals, not the data pool. (The round-trip property is
                // stated for text-pool modules.)
                let _ = write!(s, "\\x{other:02x}");
            }
        }
    }
    s
}

/// True when every data-pool entry can round-trip through assembler
/// string syntax (printable ASCII plus the standard escapes).
pub fn pool_is_textual(m: &Module) -> bool {
    m.data
        .iter()
        .all(|d| d.iter().all(|&b| matches!(b, 0x20..=0x7e | b'\n' | b'\t')))
}

/// Keep the unused-ty warning away while documenting intent: the
/// disassembler names locals after their slot, typed from the function
/// signature.
#[allow(dead_code)]
fn ty_name(t: Ty) -> &'static str {
    match t {
        Ty::Int => "int",
        Ty::Bytes => "bytes",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::module::ModuleBuilder;
    use crate::verifier::verify;

    const SAMPLE: &str = r#"
        module sample
        import env.log (bytes) -> int
        global counter: int
        data greeting = "hi\n"

        func run(arg: bytes) -> int
          locals i: int
          push 3
          store i
        loop:
          load i
          jz done
          pushd greeting
          hostcall env.log
          drop
          load i
          push 1
          sub
          store i
          jump loop
        done:
          gload counter
          ret
    "#;

    #[test]
    fn disassembly_reassembles_to_identical_code() {
        let original = assemble(SAMPLE).unwrap();
        let text = disassemble(&original);
        let again = assemble(&text).unwrap_or_else(|e| panic!("reassembly failed: {e}\n{text}"));
        // Same code, imports, globals, data; names differ (placeholders).
        assert_eq!(again.imports, original.imports);
        assert_eq!(again.globals, original.globals);
        assert_eq!(again.data, original.data);
        assert_eq!(again.functions.len(), original.functions.len());
        for (a, b) in again.functions.iter().zip(&original.functions) {
            assert_eq!(a.code, b.code, "code drifted through disassembly");
            assert_eq!(a.params, b.params);
            assert_eq!(a.locals, b.locals);
            assert_eq!(a.ret, b.ret);
        }
        // Still verifies, obviously.
        verify(again).unwrap();
    }

    #[test]
    fn escapes_render_and_roundtrip() {
        let mut b = ModuleBuilder::new("esc");
        b.data(b"tab\there \"quoted\" back\\slash\nnewline".to_vec());
        b.function("run", [], [], Ty::Int, vec![Op::PushI(0), Op::Ret]);
        let m = b.build();
        assert!(pool_is_textual(&m));
        let text = disassemble(&m);
        let again = assemble(&text).unwrap();
        assert_eq!(again.data, m.data);
    }

    #[test]
    fn binary_pools_are_flagged() {
        let mut b = ModuleBuilder::new("bin");
        b.data(vec![0x00, 0xff, 0x80]);
        b.function("run", [], [], Ty::Int, vec![Op::PushI(0), Op::Ret]);
        let m = b.build();
        assert!(!pool_is_textual(&m));
        // Disassembly still renders something (with \x escapes), it just
        // won't reassemble byte-identically; callers check
        // `pool_is_textual` first.
        let text = disassemble(&m);
        assert!(text.contains("\\x00"));
    }

    #[test]
    fn labels_only_where_targeted() {
        let original = assemble(SAMPLE).unwrap();
        let text = disassemble(&original);
        // Exactly the two jump targets get labels.
        let labels = text.lines().filter(|l| l.trim_end().ends_with(':')).count();
        assert_eq!(labels, 2, "{text}");
    }
}
