//! Code containers: functions, globals, data pool, host imports.

use serde::{Deserialize, Serialize};

use crate::isa::Op;
use crate::value::{Ty, Value};

/// A function's signature and body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    /// Name, unique within the module (used by `Call` resolution in the
    /// builder and by diagnostics).
    pub name: String,
    /// Parameter types; arguments become locals `0..params.len()`.
    pub params: Vec<Ty>,
    /// Additional local slots, indexed after the parameters.
    pub locals: Vec<Ty>,
    /// Return type. Every function returns exactly one value — a
    /// deliberate simplification that keeps the verifier's frame-exit rule
    /// trivial.
    pub ret: Ty,
    /// The body.
    pub code: Vec<Op>,
}

impl Function {
    /// Total local slot count (params + declared locals).
    pub fn local_count(&self) -> usize {
        self.params.len() + self.locals.len()
    }

    /// Type of local slot `i`.
    pub fn local_ty(&self, i: usize) -> Option<Ty> {
        if i < self.params.len() {
            Some(self.params[i])
        } else {
            self.locals.get(i - self.params.len()).copied()
        }
    }
}

/// A host function the module requires. The hosting server binds each
/// import (or refuses to) at load time; refusing is the coarsest form of
/// access control, preceding even proxy construction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostImport {
    /// Well-known import name, e.g. `"env.get_resource"`.
    pub name: String,
    /// Parameter types popped from the stack (last parameter on top).
    pub params: Vec<Ty>,
    /// Result type pushed by the call.
    pub ret: Ty,
}

/// An AgentScript module: the unit of code mobility.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Module {
    /// Module name (local to the owning agent's name-space).
    pub name: String,
    /// Host imports referenced by `HostCall(i)`.
    pub imports: Vec<HostImport>,
    /// Functions referenced by `Call(i)`; index 0 need not be the entry —
    /// entry points are chosen by name at spawn/resume time.
    pub functions: Vec<Function>,
    /// Global variable types. Globals are the agent's **mobile state**:
    /// they are serialized into the migration image and travel with the
    /// agent.
    pub globals: Vec<Ty>,
    /// Immutable byte-string pool referenced by `PushD(i)`.
    pub data: Vec<Vec<u8>>,
}

impl Module {
    /// Finds a function index by name.
    pub fn function_index(&self, name: &str) -> Option<u32> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| i as u32)
    }

    /// Fresh global storage initialized to type defaults.
    pub fn initial_globals(&self) -> Vec<Value> {
        self.globals.iter().map(|&t| Value::default_of(t)).collect()
    }

    /// Total instruction count across functions — a cheap code-size metric
    /// used in transfer-cost experiments.
    pub fn code_len(&self) -> usize {
        self.functions.iter().map(|f| f.code.len()).sum()
    }
}

/// Ergonomic module construction with name-based call/import/data
/// resolution. Used by examples, workloads, and the assembler.
#[derive(Debug, Default)]
pub struct ModuleBuilder {
    name: String,
    imports: Vec<HostImport>,
    functions: Vec<Function>,
    globals: Vec<Ty>,
    data: Vec<Vec<u8>>,
}

impl ModuleBuilder {
    /// Starts a module named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ModuleBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Declares a host import; returns its `HostCall` index.
    pub fn import(&mut self, name: impl Into<String>, params: impl Into<Vec<Ty>>, ret: Ty) -> u32 {
        let idx = self.imports.len() as u32;
        self.imports.push(HostImport {
            name: name.into(),
            params: params.into(),
            ret,
        });
        idx
    }

    /// Declares a global; returns its `GLoad`/`GStore` index.
    pub fn global(&mut self, ty: Ty) -> u16 {
        let idx = self.globals.len() as u16;
        self.globals.push(ty);
        idx
    }

    /// Interns a data-pool byte string; returns its `PushD` index.
    /// Identical payloads share one entry.
    pub fn data(&mut self, bytes: impl Into<Vec<u8>>) -> u32 {
        let bytes = bytes.into();
        if let Some(i) = self.data.iter().position(|d| *d == bytes) {
            return i as u32;
        }
        let idx = self.data.len() as u32;
        self.data.push(bytes);
        idx
    }

    /// Interns a UTF-8 string in the data pool.
    pub fn str_data(&mut self, s: impl AsRef<str>) -> u32 {
        self.data(s.as_ref().as_bytes().to_vec())
    }

    /// Adds a function; returns its `Call` index.
    pub fn function(
        &mut self,
        name: impl Into<String>,
        params: impl Into<Vec<Ty>>,
        locals: impl Into<Vec<Ty>>,
        ret: Ty,
        code: Vec<Op>,
    ) -> u32 {
        let idx = self.functions.len() as u32;
        self.functions.push(Function {
            name: name.into(),
            params: params.into(),
            locals: locals.into(),
            ret,
            code,
        });
        idx
    }

    /// Finishes the module.
    pub fn build(self) -> Module {
        Module {
            name: self.name,
            imports: self.imports,
            functions: self.functions,
            globals: self.globals,
            data: self.data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Module {
        let mut b = ModuleBuilder::new("m");
        let d = b.str_data("hello");
        let d2 = b.str_data("hello"); // interned
        assert_eq!(d, d2);
        b.global(Ty::Int);
        b.function(
            "main",
            [Ty::Int],
            [Ty::Bytes],
            Ty::Int,
            vec![Op::PushI(1), Op::Ret],
        );
        b.function("aux", [], [], Ty::Int, vec![Op::PushI(2), Op::Ret]);
        b.build()
    }

    #[test]
    fn function_lookup_by_name() {
        let m = sample();
        assert_eq!(m.function_index("main"), Some(0));
        assert_eq!(m.function_index("aux"), Some(1));
        assert_eq!(m.function_index("missing"), None);
    }

    #[test]
    fn local_slots_cover_params_then_locals() {
        let m = sample();
        let f = &m.functions[0];
        assert_eq!(f.local_count(), 2);
        assert_eq!(f.local_ty(0), Some(Ty::Int));
        assert_eq!(f.local_ty(1), Some(Ty::Bytes));
        assert_eq!(f.local_ty(2), None);
    }

    #[test]
    fn initial_globals_are_defaults() {
        let m = sample();
        assert_eq!(m.initial_globals(), vec![Value::Int(0)]);
    }

    #[test]
    fn data_pool_interning_dedupes() {
        let mut b = ModuleBuilder::new("m");
        let a = b.data(vec![1, 2]);
        let bb = b.data(vec![3]);
        let c = b.data(vec![1, 2]);
        assert_eq!(a, c);
        assert_ne!(a, bb);
        assert_eq!(b.build().data.len(), 2);
    }

    #[test]
    fn code_len_sums_functions() {
        let m = sample();
        assert_eq!(m.code_len(), 4);
    }

    #[test]
    fn module_serde_roundtrip() {
        // Mobility requires faithful serialization; spot-check the derive.
        let m = sample();
        // Serde round-trip through the postcard-like manual check is
        // overkill; compare through serde_json-free clone semantics.
        let m2 = m.clone();
        assert_eq!(m, m2);
    }
}
