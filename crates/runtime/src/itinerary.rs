//! Itinerary encoding shared by Rust launchers and AgentScript agents.
//!
//! Paper Section 1: agents visit sites *"either on a predetermined path or
//! one that the agents themselves determine based on dynamically gathered
//! information"*; Section 4: *"higher-level abstractions such as ...
//! specification of itineraries are implemented on top of the go
//! primitive"*.
//!
//! The encoding is a newline-separated list of rendered server URNs —
//! deliberately trivial so agent bytecode can manipulate it with `bslice`
//! / `bindex`, and the environment offers `env.itin_head` /
//! `env.itin_tail` so most agents never parse at all.

use ajanta_naming::Urn;

/// A predetermined travel plan.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Itinerary {
    stops: Vec<Urn>,
}

impl Itinerary {
    /// An itinerary over the given stops, in visiting order.
    pub fn new(stops: impl IntoIterator<Item = Urn>) -> Self {
        Itinerary {
            stops: stops.into_iter().collect(),
        }
    }

    /// The stops remaining.
    pub fn stops(&self) -> &[Urn] {
        &self.stops
    }

    /// Splits off the next stop, returning it and the remainder.
    pub fn next_stop(mut self) -> (Option<Urn>, Itinerary) {
        if self.stops.is_empty() {
            (None, self)
        } else {
            let head = self.stops.remove(0);
            (Some(head), self)
        }
    }

    /// The byte encoding agents carry in a global.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for (i, stop) in self.stops.iter().enumerate() {
            if i > 0 {
                out.push(b'\n');
            }
            out.extend_from_slice(stop.to_string().as_bytes());
        }
        out
    }

    /// Parses the byte encoding; malformed URNs yield `None`.
    pub fn decode(bytes: &[u8]) -> Option<Itinerary> {
        if bytes.is_empty() {
            return Some(Itinerary::default());
        }
        let text = std::str::from_utf8(bytes).ok()?;
        let stops: Option<Vec<Urn>> = text.split('\n').map(|l| l.parse().ok()).collect();
        Some(Itinerary { stops: stops? })
    }
}

/// First line of a newline-separated list (empty input → empty output).
pub fn head(bytes: &[u8]) -> &[u8] {
    match bytes.iter().position(|&b| b == b'\n') {
        Some(i) => &bytes[..i],
        None => bytes,
    }
}

/// Everything after the first line (no newline → empty).
pub fn tail(bytes: &[u8]) -> &[u8] {
    match bytes.iter().position(|&b| b == b'\n') {
        Some(i) => &bytes[i + 1..],
        None => &[],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(n: &str) -> Urn {
        Urn::server("x.org", [n]).unwrap()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let it = Itinerary::new([server("a"), server("b"), server("c")]);
        let bytes = it.encode();
        assert_eq!(Itinerary::decode(&bytes), Some(it));
    }

    #[test]
    fn empty_itinerary() {
        let it = Itinerary::default();
        assert!(it.encode().is_empty());
        assert_eq!(Itinerary::decode(b""), Some(Itinerary::default()));
        let (next, rest) = it.next_stop();
        assert_eq!(next, None);
        assert!(rest.stops().is_empty());
    }

    #[test]
    fn next_stop_pops_in_order() {
        let it = Itinerary::new([server("a"), server("b")]);
        let (first, rest) = it.next_stop();
        assert_eq!(first, Some(server("a")));
        let (second, rest) = rest.next_stop();
        assert_eq!(second, Some(server("b")));
        let (third, _) = rest.next_stop();
        assert_eq!(third, None);
    }

    #[test]
    fn malformed_entries_rejected() {
        assert_eq!(Itinerary::decode(b"not a urn"), None);
        assert_eq!(Itinerary::decode(&[0xff, 0xfe]), None);
    }

    #[test]
    fn head_tail_match_encoding() {
        let it = Itinerary::new([server("a"), server("b"), server("c")]);
        let bytes = it.encode();
        assert_eq!(head(&bytes), server("a").to_string().as_bytes());
        let rest = tail(&bytes);
        assert_eq!(head(rest), server("b").to_string().as_bytes());
        // One-element list: head is everything, tail empty.
        let one = Itinerary::new([server("z")]).encode();
        assert_eq!(head(&one), one.as_slice());
        assert_eq!(tail(&one), b"");
    }
}
