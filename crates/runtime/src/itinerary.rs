//! Itinerary encoding shared by Rust launchers and AgentScript agents.
//!
//! Paper Section 1: agents visit sites *"either on a predetermined path or
//! one that the agents themselves determine based on dynamically gathered
//! information"*; Section 4: *"higher-level abstractions such as ...
//! specification of itineraries are implemented on top of the go
//! primitive"*.
//!
//! The encoding is a newline-separated list of rendered server URNs —
//! deliberately trivial so agent bytecode can manipulate it with `bslice`
//! / `bindex`, and the environment offers `env.itin_head` /
//! `env.itin_tail` so most agents never parse at all.

use ajanta_naming::Urn;

/// Why an itinerary byte encoding failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItineraryError {
    /// The bytes are not UTF-8 at all.
    NotUtf8,
    /// Line `line` (0-based) is not a parseable URN; `text` is the
    /// offending line, so callers can say *which* stop was malformed
    /// instead of discarding the whole valid prefix silently.
    BadStop {
        /// 0-based index of the malformed line.
        line: usize,
        /// The line that failed to parse.
        text: String,
    },
}

impl std::fmt::Display for ItineraryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ItineraryError::NotUtf8 => write!(f, "itinerary is not utf-8"),
            ItineraryError::BadStop { line, text } => {
                write!(f, "itinerary line {line} is not a server urn: {text:?}")
            }
        }
    }
}

impl std::error::Error for ItineraryError {}

/// A predetermined travel plan.
///
/// Advancing is O(1): `next_stop` moves a cursor instead of shifting the
/// vector (the old `Vec::remove(0)` made an n-stop tour O(n²)). Equality
/// and the encoding consider only the *remaining* stops, so a partially
/// consumed itinerary behaves exactly like a freshly built shorter one.
#[derive(Debug, Clone, Default)]
pub struct Itinerary {
    stops: Vec<Urn>,
    cursor: usize,
}

impl PartialEq for Itinerary {
    fn eq(&self, other: &Self) -> bool {
        self.stops() == other.stops()
    }
}

impl Eq for Itinerary {}

impl Itinerary {
    /// An itinerary over the given stops, in visiting order.
    pub fn new(stops: impl IntoIterator<Item = Urn>) -> Self {
        Itinerary {
            stops: stops.into_iter().collect(),
            cursor: 0,
        }
    }

    /// The stops remaining.
    pub fn stops(&self) -> &[Urn] {
        &self.stops[self.cursor..]
    }

    /// Splits off the next stop, returning it and the remainder.
    pub fn next_stop(mut self) -> (Option<Urn>, Itinerary) {
        match self.stops.get(self.cursor) {
            Some(head) => {
                let head = head.clone();
                self.cursor += 1;
                (Some(head), self)
            }
            None => (None, self),
        }
    }

    /// The byte encoding agents carry in a global (remaining stops only).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for (i, stop) in self.stops().iter().enumerate() {
            if i > 0 {
                out.push(b'\n');
            }
            out.extend_from_slice(stop.to_string().as_bytes());
        }
        out
    }

    /// Parses the byte encoding, reporting *which* line is malformed
    /// rather than collapsing every failure to `None`.
    pub fn decode(bytes: &[u8]) -> Result<Itinerary, ItineraryError> {
        if bytes.is_empty() {
            return Ok(Itinerary::default());
        }
        let text = std::str::from_utf8(bytes).map_err(|_| ItineraryError::NotUtf8)?;
        let mut stops = Vec::new();
        for (line, l) in text.split('\n').enumerate() {
            stops.push(l.parse().map_err(|_| ItineraryError::BadStop {
                line,
                text: l.to_string(),
            })?);
        }
        Ok(Itinerary { stops, cursor: 0 })
    }
}

/// First line of a newline-separated list (empty input → empty output).
pub fn head(bytes: &[u8]) -> &[u8] {
    match bytes.iter().position(|&b| b == b'\n') {
        Some(i) => &bytes[..i],
        None => bytes,
    }
}

/// Everything after the first line (no newline → empty).
pub fn tail(bytes: &[u8]) -> &[u8] {
    match bytes.iter().position(|&b| b == b'\n') {
        Some(i) => &bytes[i + 1..],
        None => &[],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(n: &str) -> Urn {
        Urn::server("x.org", [n]).unwrap()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let it = Itinerary::new([server("a"), server("b"), server("c")]);
        let bytes = it.encode();
        assert_eq!(Itinerary::decode(&bytes), Ok(it));
    }

    #[test]
    fn empty_itinerary() {
        let it = Itinerary::default();
        assert!(it.encode().is_empty());
        assert_eq!(Itinerary::decode(b""), Ok(Itinerary::default()));
        let (next, rest) = it.next_stop();
        assert_eq!(next, None);
        assert!(rest.stops().is_empty());
    }

    #[test]
    fn next_stop_pops_in_order() {
        let it = Itinerary::new([server("a"), server("b")]);
        let (first, rest) = it.next_stop();
        assert_eq!(first, Some(server("a")));
        let (second, rest) = rest.next_stop();
        assert_eq!(second, Some(server("b")));
        let (third, _) = rest.next_stop();
        assert_eq!(third, None);
    }

    #[test]
    fn partially_consumed_equals_shorter_plan() {
        let (_, rest) = Itinerary::new([server("a"), server("b"), server("c")]).next_stop();
        let fresh = Itinerary::new([server("b"), server("c")]);
        assert_eq!(rest, fresh);
        assert_eq!(rest.encode(), fresh.encode());
    }

    #[test]
    fn malformed_entries_report_the_line() {
        assert_eq!(
            Itinerary::decode(b"not a urn"),
            Err(ItineraryError::BadStop {
                line: 0,
                text: "not a urn".into()
            })
        );
        let mut bytes = Itinerary::new([server("a"), server("b")]).encode();
        bytes.extend_from_slice(b"\nbogus");
        assert_eq!(
            Itinerary::decode(&bytes),
            Err(ItineraryError::BadStop {
                line: 2,
                text: "bogus".into()
            })
        );
        assert_eq!(
            Itinerary::decode(&[0xff, 0xfe]),
            Err(ItineraryError::NotUtf8)
        );
    }

    #[test]
    fn head_tail_match_encoding() {
        let it = Itinerary::new([server("a"), server("b"), server("c")]);
        let bytes = it.encode();
        assert_eq!(head(&bytes), server("a").to_string().as_bytes());
        let rest = tail(&bytes);
        assert_eq!(head(rest), server("b").to_string().as_bytes());
        // One-element list: head is everything, tail empty.
        let one = Itinerary::new([server("z")]).encode();
        assert_eq!(head(&one), one.as_slice());
        assert_eq!(tail(&one), b"");
    }
}
