//! Durable agent state: the serialized bundle and the store it spills to.
//!
//! An [`AgentBundle`] is everything a server needs to re-host one agent
//! it already admitted: the signed credentials, the agent image (code +
//! globals + entry — the itinerary cursor travels inside the globals,
//! exactly as it does over the wire), the `(run_as, hop)` admission
//! identity, the admission span context, and — for an agent captured
//! mid-run — the suspended interpreter state from
//! [`ajanta_vm::InterpState`]. Bundles are version-tagged canonical
//! bytes with a round-trip guarantee and total decoding.
//!
//! Two consumers:
//!
//! * **Hibernation** ([`BundleStore`]): an idle agent is serialized,
//!   its live interpreter and environment dropped, and only the bytes
//!   retained (in memory or on disk) until a message or tour resume
//!   wakes it.
//! * **The admission WAL** (`runtime::wal`): every admission is logged
//!   as a bundle so a restarted server can re-admit in-flight agents.
//!
//! Bundles never cross the trust boundary: a server only ever decodes
//! bundles it encoded itself.

use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ajanta_core::telemetry::SpanContext;
use ajanta_core::Credentials;
use ajanta_naming::Urn;
use ajanta_vm::{AgentImage, InterpState};
use ajanta_wire::{Decoder, Encoder, Wire, WireError};

/// Version tag leading every [`AgentBundle`] encoding. Bump on any
/// layout change; decoders reject versions they do not understand.
pub const BUNDLE_VERSION: u8 = 1;

/// The mid-run half of a bundle: the suspended interpreter plus the
/// agent-environment session state that must survive hibernation for
/// the resumed run to be indistinguishable from an uninterrupted one
/// (the deterministic RNG cursor, the child-dispatch counter, and the
/// last mail sender the agent may still query).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarmState {
    /// The suspended call stack, globals, and quota meters.
    pub interp: InterpState,
    /// The environment's deterministic RNG cursor.
    pub rng_state: u64,
    /// Children dispatched so far (names child agents derive from).
    pub children: u64,
    /// Sender of the most recently received mail.
    pub last_sender: Vec<u8>,
}

impl Wire for WarmState {
    fn encode(&self, e: &mut Encoder) {
        self.interp.encode(e);
        e.put_varint(self.rng_state);
        e.put_varint(self.children);
        e.put_bytes(&self.last_sender);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(WarmState {
            interp: InterpState::decode(d)?,
            rng_state: d.get_varint()?,
            children: d.get_varint()?,
            last_sender: d.get_bytes()?,
        })
    }
}

/// One agent's durable state, as defined in the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgentBundle {
    /// The executing identity (the dedup key's name half).
    pub agent: Urn,
    /// The hop this agent was admitted at (the dedup key's sequence
    /// half).
    pub hop: u64,
    /// The agent's signed credentials, re-verified on every restore.
    pub credentials: Credentials,
    /// Code + globals-at-capture + entry. For a cold agent these are
    /// the globals it arrived with; for a warm capture they are
    /// superseded by `interp`'s globals on restore.
    pub image: AgentImage,
    /// Entry argument from the original transfer.
    pub arg: Vec<u8>,
    /// The span anchoring the agent's causal tree: the delivering
    /// transfer leg for WAL admissions, the stay's admission span for
    /// hibernation — either way a woken or replayed agent's spans
    /// rejoin the same trace.
    pub ctx: SpanContext,
    /// Suspended mid-run state, or `None` for an agent that never
    /// started (cold) — it restarts from its entry function.
    pub warm: Option<WarmState>,
}

impl Wire for AgentBundle {
    fn encode(&self, e: &mut Encoder) {
        e.put_u8(BUNDLE_VERSION);
        self.agent.encode(e);
        e.put_varint(self.hop);
        self.credentials.encode(e);
        self.image.encode(e);
        e.put_bytes(&self.arg);
        self.ctx.encode(e);
        self.warm.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        let version = d.get_u8()?;
        if version != BUNDLE_VERSION {
            return Err(WireError::BadTag {
                ty: "AgentBundle version",
                tag: version,
            });
        }
        Ok(AgentBundle {
            agent: Urn::decode(d)?,
            hop: d.get_varint()?,
            credentials: Credentials::decode(d)?,
            image: AgentImage::decode(d)?,
            arg: d.get_bytes()?,
            ctx: SpanContext::decode(d)?,
            warm: Option::<WarmState>::decode(d)?,
        })
    }
}

/// Where hibernated bundles live: an in-memory map, optionally spilling
/// the bytes to one file per agent under a directory instead. `take` is
/// atomic — exactly one caller gets the bundle, which is what makes the
/// wake path race-free (hibernate-then-wake can never schedule two
/// copies of an agent).
#[derive(Debug)]
pub struct BundleStore {
    /// agent → encoded bundle (in-memory mode) or spill file name
    /// (on-disk mode, bytes live in the file).
    index: Mutex<HashMap<Urn, Vec<u8>>>,
    dir: Option<PathBuf>,
    bytes: AtomicUsize,
}

impl BundleStore {
    /// A store that keeps encoded bundles in memory.
    pub fn in_memory() -> Self {
        BundleStore {
            index: Mutex::new(HashMap::new()),
            dir: None,
            bytes: AtomicUsize::new(0),
        }
    }

    /// A store that spills each bundle to one file under `dir`
    /// (created if missing); memory holds only the index.
    pub fn on_disk(dir: PathBuf) -> io::Result<Self> {
        std::fs::create_dir_all(&dir)?;
        Ok(BundleStore {
            index: Mutex::new(HashMap::new()),
            dir: Some(dir),
            bytes: AtomicUsize::new(0),
        })
    }

    fn spill_name(agent: &Urn) -> Vec<u8> {
        let mut name = ajanta_crypto::sha256(agent.to_string().as_bytes()).to_hex();
        name.push_str(".bundle");
        name.into_bytes()
    }

    /// Stores `bundle`, replacing any previous entry for the same agent.
    /// Returns the encoded size in bytes.
    pub fn put(&self, bundle: &AgentBundle) -> io::Result<usize> {
        let bytes = bundle.to_bytes();
        let len = bytes.len();
        let entry = match &self.dir {
            None => bytes,
            Some(dir) => {
                let name = Self::spill_name(&bundle.agent);
                let path = dir.join(String::from_utf8_lossy(&name).into_owned());
                std::fs::write(path, &bytes)?;
                name
            }
        };
        let mut index = self.index.lock().expect("bundle index poisoned");
        if let Some(old) = index.insert(bundle.agent.clone(), entry) {
            let old_len = self.entry_len(&old);
            self.bytes.fetch_sub(old_len, Ordering::Relaxed);
        }
        self.bytes.fetch_add(len, Ordering::Relaxed);
        Ok(len)
    }

    fn entry_len(&self, entry: &[u8]) -> usize {
        match &self.dir {
            None => entry.len(),
            Some(dir) => {
                let path = dir.join(String::from_utf8_lossy(entry).into_owned());
                std::fs::metadata(path)
                    .map(|m| m.len() as usize)
                    .unwrap_or(0)
            }
        }
    }

    /// Removes and decodes the bundle for `agent`, if present. Exactly
    /// one concurrent caller observes `Some`.
    pub fn take(&self, agent: &Urn) -> Option<AgentBundle> {
        let entry = self
            .index
            .lock()
            .expect("bundle index poisoned")
            .remove(agent)?;
        let bytes = match &self.dir {
            None => entry,
            Some(dir) => {
                let path = dir.join(String::from_utf8_lossy(&entry).into_owned());
                let bytes = std::fs::read(&path).ok()?;
                let _ = std::fs::remove_file(&path);
                bytes
            }
        };
        self.bytes.fetch_sub(bytes.len(), Ordering::Relaxed);
        AgentBundle::from_bytes(&bytes).ok()
    }

    /// Names of every hibernated agent, sorted — the control plane's
    /// inventory of the store.
    pub fn list(&self) -> Vec<Urn> {
        let mut agents: Vec<Urn> = self
            .index
            .lock()
            .expect("bundle index poisoned")
            .keys()
            .cloned()
            .collect();
        agents.sort();
        agents
    }

    /// Whether a bundle for `agent` is currently stored.
    pub fn contains(&self, agent: &Urn) -> bool {
        self.index
            .lock()
            .expect("bundle index poisoned")
            .contains_key(agent)
    }

    /// Number of hibernated agents.
    pub fn len(&self) -> usize {
        self.index.lock().expect("bundle index poisoned").len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total encoded bytes currently stored (on-disk mode: bytes on
    /// disk, not resident).
    pub fn stored_bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }
}
