//! The owner-side application endpoint.
//!
//! An owner (a human principal's client application) mints agent names
//! and signed credentials, and launches agents via its home server's
//! control handle — the "client process working on behalf of some
//! authorized user" of paper Section 2.

use ajanta_core::{Credentials, CredentialsBuilder, Rights};
use ajanta_crypto::cert::Certificate;
use ajanta_crypto::{DetRng, KeyPair};
use ajanta_naming::Urn;

/// An owner principal with signing keys and a certified identity.
pub struct Owner {
    name: Urn,
    keys: KeyPair,
    chain: Vec<Certificate>,
    rng: DetRng,
    counter: u64,
}

impl Owner {
    /// Wraps an owner identity. `chain` must certify `name` (leaf first).
    pub fn new(name: Urn, keys: KeyPair, chain: Vec<Certificate>, seed: u64) -> Self {
        Owner {
            name,
            keys,
            chain,
            rng: DetRng::new(seed),
            counter: 0,
        }
    }

    /// The owner's global name.
    pub fn name(&self) -> &Urn {
        &self.name
    }

    /// Mints a fresh agent name under this owner's authority, scoped by
    /// the owner's own leaf so distinct owners can never collide.
    pub fn next_agent_name(&mut self, tag: &str) -> Urn {
        self.counter += 1;
        Urn::agent(
            self.name.authority(),
            [self.name.leaf(), tag, &format!("{}", self.counter)],
        )
        .expect("owner authority and counter are canonical")
    }

    /// Mints signed credentials for an agent.
    ///
    /// * `home` — the server reports return to;
    /// * `rights` — the delegated rights (least privilege: delegate only
    ///   what the errand needs, Section 5.2);
    /// * `not_after` — expiry instant (stolen credentials cannot be
    ///   misused indefinitely).
    pub fn credentials(
        &mut self,
        agent: Urn,
        home: Urn,
        rights: Rights,
        not_after: u64,
    ) -> Credentials {
        CredentialsBuilder::new(agent, self.name.clone())
            .home(home)
            .owner_chain(self.chain.clone())
            .delegate(rights)
            .expires_at(not_after)
            .sign(&self.keys, &mut self.rng)
    }

    /// Endorses another principal's agent credentials with a restriction —
    /// this owner acting as the forwarding server of Section 5.2's
    /// "subcontract" case. The effective rights can only shrink.
    pub fn endorse(&mut self, creds: &Credentials, restriction: Rights) -> Credentials {
        creds.endorse(
            &self.name,
            &self.keys,
            self.chain.clone(),
            restriction,
            &mut self.rng,
        )
    }

    /// Credentials with a creator distinct from the owner (e.g. an
    /// application or parent agent created this one).
    pub fn credentials_created_by(
        &mut self,
        agent: Urn,
        creator: Urn,
        home: Urn,
        rights: Rights,
        not_after: u64,
    ) -> Credentials {
        CredentialsBuilder::new(agent, self.name.clone())
            .creator(creator)
            .home(home)
            .owner_chain(self.chain.clone())
            .delegate(rights)
            .expires_at(not_after)
            .sign(&self.keys, &mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajanta_crypto::RootOfTrust;

    fn owner() -> (Owner, RootOfTrust) {
        let mut rng = DetRng::new(4);
        let ca = KeyPair::generate(&mut rng);
        let mut roots = RootOfTrust::new();
        roots.trust("ca", ca.public);
        let name = Urn::owner("umn.edu", ["alice"]).unwrap();
        let keys = KeyPair::generate(&mut rng);
        let cert = Certificate::issue(
            name.to_string(),
            keys.public,
            "ca",
            &ca,
            u64::MAX,
            1,
            &mut rng,
        );
        (Owner::new(name, keys, vec![cert], 42), roots)
    }

    #[test]
    fn agent_names_are_fresh_and_scoped() {
        let (mut o, _) = owner();
        let a1 = o.next_agent_name("shopper");
        let a2 = o.next_agent_name("shopper");
        assert_ne!(a1, a2);
        assert_eq!(a1.authority(), "umn.edu");
        assert!(a1.to_string().contains("shopper"));
    }

    #[test]
    fn minted_credentials_verify() {
        let (mut o, roots) = owner();
        let agent = o.next_agent_name("t");
        let home = Urn::server("umn.edu", ["home"]).unwrap();
        let rights = Rights::on_resource(Urn::resource("acme.com", ["r"]).unwrap());
        let creds = o.credentials(agent.clone(), home.clone(), rights.clone(), 10_000);
        assert_eq!(creds.agent, agent);
        assert_eq!(creds.home, home);
        assert_eq!(creds.creator, *o.name());
        assert_eq!(creds.verify(&roots, 0).unwrap(), rights);
    }

    #[test]
    fn creator_can_differ() {
        let (mut o, roots) = owner();
        let agent = o.next_agent_name("child");
        let creator = Urn::agent("umn.edu", ["parent", "1"]).unwrap();
        let home = Urn::server("umn.edu", ["home"]).unwrap();
        let creds =
            o.credentials_created_by(agent, creator.clone(), home, Rights::none(), u64::MAX);
        assert_eq!(creds.creator, creator);
        creds.verify(&roots, 0).unwrap();
    }
}
