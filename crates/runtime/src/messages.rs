//! Server-to-server protocol messages.
//!
//! Every message travels as the plaintext of a
//! [`ajanta_net::SealedDatagram`], so confidentiality, integrity, sender
//! authentication and replay protection are already guaranteed by the
//! time one of these is decoded.

use ajanta_core::telemetry::SpanContext;
use ajanta_core::Credentials;
use ajanta_naming::Urn;
use ajanta_vm::AgentImage;
use ajanta_wire::{Decoder, Encoder, Wire, WireError};

/// How an agent's stay at a server ended, as reported to its home site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportStatus {
    /// The agent's entry function returned this value (rendered).
    Completed(String),
    /// The agent trapped or was denied; human-readable reason.
    Failed(String),
    /// The agent exceeded a quota.
    QuotaExceeded(String),
    /// The server refused the agent at admission (bad credentials,
    /// unverifiable code, duplicate name, ...).
    Refused(String),
}

impl Wire for ReportStatus {
    fn encode(&self, e: &mut Encoder) {
        match self {
            ReportStatus::Completed(s) => {
                e.put_u8(0);
                e.put_str(s);
            }
            ReportStatus::Failed(s) => {
                e.put_u8(1);
                e.put_str(s);
            }
            ReportStatus::QuotaExceeded(s) => {
                e.put_u8(2);
                e.put_str(s);
            }
            ReportStatus::Refused(s) => {
                e.put_u8(3);
                e.put_str(s);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        let tag = d.get_u8()?;
        let s = d.get_str()?;
        Ok(match tag {
            0 => ReportStatus::Completed(s),
            1 => ReportStatus::Failed(s),
            2 => ReportStatus::QuotaExceeded(s),
            3 => ReportStatus::Refused(s),
            tag => {
                return Err(WireError::BadTag {
                    ty: "ReportStatus",
                    tag,
                })
            }
        })
    }
}

/// A status report sent to an agent's home site (Section 4: the domain
/// database "responds to status queries from their owners"; completion
/// reports close the loop).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// The agent this report concerns.
    pub agent: Urn,
    /// The server reporting.
    pub server: Urn,
    /// What happened.
    pub status: ReportStatus,
    /// Virtual time of the event.
    pub at: u64,
}

impl Wire for Report {
    fn encode(&self, e: &mut Encoder) {
        self.agent.encode(e);
        self.server.encode(e);
        self.status.encode(e);
        e.put_varint(self.at);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Report {
            agent: Urn::decode(d)?,
            server: Urn::decode(d)?,
            status: ReportStatus::decode(d)?,
            at: d.get_varint()?,
        })
    }
}

/// A snapshot of one agent's domain-database record, for status queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AgentStatus {
    /// The agent is currently resident at the queried server.
    Resident {
        /// Owner recorded at admission.
        owner: Urn,
        /// Creator recorded at admission.
        creator: Urn,
        /// Fuel charged against its quota so far.
        fuel_used: u64,
        /// Resources it currently holds proxies to.
        bindings: Vec<Urn>,
    },
    /// The agent is not (or no longer) resident there.
    NotResident,
}

impl Wire for AgentStatus {
    fn encode(&self, e: &mut Encoder) {
        match self {
            AgentStatus::Resident {
                owner,
                creator,
                fuel_used,
                bindings,
            } => {
                e.put_u8(0);
                owner.encode(e);
                creator.encode(e);
                e.put_varint(*fuel_used);
                ajanta_wire::encode_seq(bindings, e);
            }
            AgentStatus::NotResident => e.put_u8(1),
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        match d.get_u8()? {
            0 => Ok(AgentStatus::Resident {
                owner: Urn::decode(d)?,
                creator: Urn::decode(d)?,
                fuel_used: d.get_varint()?,
                bindings: ajanta_wire::decode_seq(d)?,
            }),
            1 => Ok(AgentStatus::NotResident),
            tag => Err(WireError::BadTag {
                ty: "AgentStatus",
                tag,
            }),
        }
    }
}

/// The server-to-server protocol.
///
/// `Transfer` dwarfs the other variants by design — it carries whole
/// agents. Messages are built once and serialized immediately, so the
/// size skew has no practical cost and boxing would only add noise.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(clippy::large_enum_variant)]
pub enum Message {
    /// An agent in flight: its tamper-evident credentials and its image.
    /// `hop` counts migrations (loop/self-forwarding diagnostics).
    Transfer {
        /// The agent's signed credentials.
        credentials: Credentials,
        /// Code + mobile state + entry point.
        image: AgentImage,
        /// Migration count so far.
        hop: u64,
        /// The executing identity: `credentials.agent` itself, or — for a
        /// child dispatched by the agent (paper Section 2: "the agent
        /// itself may be created by ... another agent") — a name within
        /// its subtree. Receivers enforce the subtree rule.
        run_as: Urn,
        /// Entry argument. Empty = the convention of passing the current
        /// server's name; non-empty = a parent-chosen payload for a
        /// child.
        arg: Vec<u8>,
        /// The sender's transfer span — trace id, this leg's span id, and
        /// the causing span. Carried in the frame so the receiver's
        /// admission span joins the same causal tree.
        ctx: SpanContext,
        /// Virtual time of the **first** send of this leg (not updated by
        /// retries), so the receiver can compute end-to-end hop latency.
        sent_ns: u64,
    },
    /// A status report for the home site. `seq` is the sender-chosen
    /// delivery sequence the home site echoes in its [`Message::Ack`] and
    /// dedupes retried copies by.
    Report {
        /// The report itself.
        report: Report,
        /// Per-sending-server delivery sequence number.
        seq: u64,
        /// The sender's report span, so the home site's record of the
        /// report joins the tour's causal tree.
        ctx: SpanContext,
    },
    /// Mail from one agent to another hosted on the destination server.
    AgentMail {
        /// Sending agent.
        from: Urn,
        /// Receiving agent (must be resident at the destination).
        to: Urn,
        /// Opaque payload.
        data: Vec<u8>,
    },
    /// A status query against the destination's domain database
    /// (Section 4: it "responds to status queries from their owners").
    StatusQuery {
        /// Correlation id chosen by the asker.
        query_id: u64,
        /// The agent being asked about.
        agent: Urn,
    },
    /// The answer to a [`Message::StatusQuery`].
    StatusReply {
        /// Echoed correlation id.
        query_id: u64,
        /// The agent asked about.
        agent: Urn,
        /// Its status at the replying server.
        status: AgentStatus,
    },
    /// Delivery acknowledgment for a reliable frame ([`Message::Transfer`]
    /// or [`Message::Report`]): "I processed (or had already processed)
    /// `(agent, seq)`". The sender stops retrying on receipt. `kind`
    /// disambiguates the two sequence spaces ([`Ack::TRANSFER`] uses the
    /// hop number, [`Ack::REPORT`] the report sequence).
    Ack {
        /// Which sequence space `seq` lives in.
        kind: u8,
        /// The agent the acknowledged frame concerned.
        agent: Urn,
        /// The acknowledged sequence number.
        seq: u64,
    },
}

/// Namespacing constants for [`Message::Ack::kind`].
pub struct Ack;

impl Ack {
    /// The acked frame was a [`Message::Transfer`]; `seq` is its hop.
    pub const TRANSFER: u8 = 0;
    /// The acked frame was a [`Message::Report`]; `seq` is its sequence.
    pub const REPORT: u8 = 1;
}

impl Wire for Message {
    fn encode(&self, e: &mut Encoder) {
        match self {
            Message::Transfer {
                credentials,
                image,
                hop,
                run_as,
                arg,
                ctx,
                sent_ns,
            } => {
                e.put_u8(0);
                credentials.encode(e);
                image.encode(e);
                e.put_varint(*hop);
                run_as.encode(e);
                e.put_bytes(arg);
                ctx.encode(e);
                e.put_varint(*sent_ns);
            }
            Message::Report { report, seq, ctx } => {
                e.put_u8(1);
                report.encode(e);
                e.put_varint(*seq);
                ctx.encode(e);
            }
            Message::AgentMail { from, to, data } => {
                e.put_u8(2);
                from.encode(e);
                to.encode(e);
                e.put_bytes(data);
            }
            Message::StatusQuery { query_id, agent } => {
                e.put_u8(3);
                e.put_varint(*query_id);
                agent.encode(e);
            }
            Message::StatusReply {
                query_id,
                agent,
                status,
            } => {
                e.put_u8(4);
                e.put_varint(*query_id);
                agent.encode(e);
                status.encode(e);
            }
            Message::Ack { kind, agent, seq } => {
                e.put_u8(5);
                e.put_u8(*kind);
                agent.encode(e);
                e.put_varint(*seq);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        match d.get_u8()? {
            0 => Ok(Message::Transfer {
                credentials: Credentials::decode(d)?,
                image: AgentImage::decode(d)?,
                hop: d.get_varint()?,
                run_as: Urn::decode(d)?,
                arg: d.get_bytes()?,
                ctx: SpanContext::decode(d)?,
                sent_ns: d.get_varint()?,
            }),
            1 => Ok(Message::Report {
                report: Report::decode(d)?,
                seq: d.get_varint()?,
                ctx: SpanContext::decode(d)?,
            }),
            2 => Ok(Message::AgentMail {
                from: Urn::decode(d)?,
                to: Urn::decode(d)?,
                data: d.get_bytes()?,
            }),
            3 => Ok(Message::StatusQuery {
                query_id: d.get_varint()?,
                agent: Urn::decode(d)?,
            }),
            4 => Ok(Message::StatusReply {
                query_id: d.get_varint()?,
                agent: Urn::decode(d)?,
                status: AgentStatus::decode(d)?,
            }),
            5 => Ok(Message::Ack {
                kind: d.get_u8()?,
                agent: Urn::decode(d)?,
                seq: d.get_varint()?,
            }),
            tag => Err(WireError::BadTag { ty: "Message", tag }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajanta_core::telemetry::{SpanId, TraceId};
    use ajanta_core::{CredentialsBuilder, Rights};
    use ajanta_crypto::{DetRng, KeyPair};
    use ajanta_vm::{ModuleBuilder, Op, Ty};

    fn sample_ctx() -> SpanContext {
        SpanContext {
            trace: TraceId(0xDEAD_BEEF_0000_0001),
            span: SpanId(0xCAFE_0000_0000_0002),
            parent: Some(SpanId(3)),
        }
    }

    fn sample_image() -> AgentImage {
        let mut b = ModuleBuilder::new("m");
        b.global(Ty::Int);
        b.function("run", [Ty::Bytes], [], Ty::Int, vec![Op::PushI(0), Op::Ret]);
        let module = b.build();
        let globals = module.initial_globals();
        AgentImage {
            module,
            globals,
            entry: "run".into(),
        }
    }

    fn sample_credentials() -> Credentials {
        let mut rng = DetRng::new(5);
        let keys = KeyPair::generate(&mut rng);
        CredentialsBuilder::new(
            Urn::agent("x.org", ["a"]).unwrap(),
            Urn::owner("x.org", ["o"]).unwrap(),
        )
        .delegate(Rights::all())
        .sign(&keys, &mut rng)
    }

    #[test]
    fn transfer_roundtrips() {
        let creds = sample_credentials();
        let m = Message::Transfer {
            run_as: creds.agent.child("c1").unwrap(),
            credentials: creds,
            image: sample_image(),
            hop: 3,
            arg: b"payload".to_vec(),
            ctx: sample_ctx(),
            sent_ns: 123_456_789,
        };
        assert_eq!(Message::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn transfer_carries_trace_context_across_the_wire() {
        // A root-context transfer (launch: no parent) round-trips too.
        let creds = sample_credentials();
        let m = Message::Transfer {
            run_as: creds.agent.clone(),
            credentials: creds,
            image: sample_image(),
            hop: 0,
            arg: Vec::new(),
            ctx: SpanContext::root(TraceId(7), SpanId(8)),
            sent_ns: 0,
        };
        let decoded = Message::from_bytes(&m.to_bytes()).unwrap();
        let Message::Transfer { ctx, sent_ns, .. } = decoded else {
            panic!("expected transfer");
        };
        assert_eq!(ctx.trace, TraceId(7));
        assert_eq!(ctx.parent, None);
        assert_eq!(sent_ns, 0);
    }

    #[test]
    fn status_messages_roundtrip() {
        let q = Message::StatusQuery {
            query_id: 9,
            agent: Urn::agent("x.org", ["a"]).unwrap(),
        };
        assert_eq!(Message::from_bytes(&q.to_bytes()).unwrap(), q);
        for status in [
            AgentStatus::NotResident,
            AgentStatus::Resident {
                owner: Urn::owner("x.org", ["o"]).unwrap(),
                creator: Urn::owner("x.org", ["c"]).unwrap(),
                fuel_used: 123,
                bindings: vec![Urn::resource("x.org", ["r"]).unwrap()],
            },
        ] {
            let r = Message::StatusReply {
                query_id: 9,
                agent: Urn::agent("x.org", ["a"]).unwrap(),
                status,
            };
            assert_eq!(Message::from_bytes(&r.to_bytes()).unwrap(), r);
        }
    }

    #[test]
    fn report_roundtrips() {
        for status in [
            ReportStatus::Completed("42".into()),
            ReportStatus::Failed("trap".into()),
            ReportStatus::QuotaExceeded("fuel".into()),
            ReportStatus::Refused("bad credentials".into()),
        ] {
            let m = Message::Report {
                report: Report {
                    agent: Urn::agent("x.org", ["a"]).unwrap(),
                    server: Urn::server("x.org", ["s"]).unwrap(),
                    status,
                    at: 777,
                },
                seq: 12,
                ctx: sample_ctx(),
            };
            assert_eq!(Message::from_bytes(&m.to_bytes()).unwrap(), m);
        }
    }

    #[test]
    fn mail_roundtrips() {
        let m = Message::AgentMail {
            from: Urn::agent("x.org", ["a"]).unwrap(),
            to: Urn::agent("y.org", ["b"]).unwrap(),
            data: vec![1, 2, 3],
        };
        assert_eq!(Message::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn ack_roundtrips() {
        for kind in [Ack::TRANSFER, Ack::REPORT] {
            let m = Message::Ack {
                kind,
                agent: Urn::agent("x.org", ["a"]).unwrap(),
                seq: 42,
            };
            assert_eq!(Message::from_bytes(&m.to_bytes()).unwrap(), m);
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(Message::from_bytes(&[99, 1, 2]).is_err());
        assert!(Message::from_bytes(&[]).is_err());
    }
}
