//! The agent environment — the `host` reference of paper Section 4.
//!
//! *"The agent environment provides services to agents in the form of
//! primitive operations. At the most basic level, mobility is supported by
//! the `go` function ... Other primitives provided by the agent server
//! include facilities for installing and accessing resources,
//! communicating with other agents, monitoring the status of child agents,
//! issuing control commands to them, etc."*
//!
//! Every primitive is a host call from verified agent byte-code into this
//! module, always executed with the agent's [`DomainId`] attached — agent
//! code can never claim another identity, because the identity is supplied
//! by the environment, not by the agent.
//!
//! # Host-call ABI
//!
//! | import | signature | semantics |
//! |---|---|---|
//! | `env.go` | `(bytes dest, bytes entry) -> int` | migrate; never returns |
//! | `env.go_tour` | `(bytes itinerary, bytes entry) -> int` | migrate to the itinerary's head, carrying the tail as recovery fallbacks |
//! | `env.get_resource` | `(bytes name) -> int` | bind; returns proxy handle |
//! | `env.invoke` | `(int handle, bytes method, bytes args) -> bytes` | call through proxy; result encoding below |
//! | `env.args0..` | various | build `args` payloads |
//! | `env.res_*` | various | inspect `env.invoke` results |
//! | `env.log` | `(bytes) -> int` | append to the server's per-agent log |
//! | `env.self_name` / `env.here` / `env.home` | `() -> bytes` | identities |
//! | `env.time` | `() -> int` | virtual now (ns) |
//! | `env.send` | `(bytes agent, bytes data) -> int` | mail a co-located agent |
//! | `env.send_remote` | `(bytes server, bytes agent, bytes data) -> int` | mail via the network |
//! | `env.recv` | `() -> bytes` | oldest mail payload ("" if none) |
//! | `env.sender` | `() -> bytes` | sender of the last `env.recv` |
//! | `env.install_resource` | `(bytes name, bytes module) -> int` | dynamic extension |
//! | `env.dispatch` | `(bytes dest, bytes entry, bytes payload) -> bytes` | launch a child agent; returns its name |
//! | `env.itin_head` / `env.itin_tail` | `(bytes) -> bytes` | itinerary helpers |
//! | `env.rand` | `(int bound) -> int` | deterministic per-agent randomness |
//!
//! `env.invoke` results are `[0] ‖ wire(Value)` on success or
//! `[1] ‖ wire(string)` for an **application-level** resource error
//! (agents may retry). Security violations — disabled method, revoked or
//! expired proxy, confinement breach — do *not* produce a result: they
//! raise the security exception that kills the invocation, exactly as the
//! paper's proxies throw.

use std::sync::Arc;

use ajanta_core::{
    AccessError, Credentials, DomainId, Requester, ResourceError, ResourceProxy, Rights,
    SpanContext, SpanKind,
};
use ajanta_naming::Urn;
use ajanta_vm::{HostError, HostImport, HostInterface, HostResponse, Module, Ty, Value};
use ajanta_wire::{decode_seq, encode_seq, Decoder, Encoder, Wire};

use crate::itinerary;
use crate::server::Shared;

/// Declares the full `env.*` import set on a [`ajanta_vm::ModuleBuilder`]
/// in a canonical order, returning nothing — agents import only what they
/// use; this helper exists for workloads that want everything.
pub fn declare_all_imports(b: &mut ajanta_vm::ModuleBuilder) {
    for (name, params, ret) in IMPORTS {
        b.import(*name, params.to_vec(), *ret);
    }
}

/// The ABI table (name, params, ret).
pub const IMPORTS: &[(&str, &[Ty], Ty)] = &[
    ("env.go", &[Ty::Bytes, Ty::Bytes], Ty::Int),
    ("env.go_tour", &[Ty::Bytes, Ty::Bytes], Ty::Int),
    ("env.get_resource", &[Ty::Bytes], Ty::Int),
    ("env.invoke", &[Ty::Int, Ty::Bytes, Ty::Bytes], Ty::Bytes),
    ("env.args0", &[], Ty::Bytes),
    ("env.args_i", &[Ty::Int], Ty::Bytes),
    ("env.args_b", &[Ty::Bytes], Ty::Bytes),
    ("env.args_ii", &[Ty::Int, Ty::Int], Ty::Bytes),
    ("env.args_bb", &[Ty::Bytes, Ty::Bytes], Ty::Bytes),
    ("env.args_bi", &[Ty::Bytes, Ty::Int], Ty::Bytes),
    ("env.res_ok", &[Ty::Bytes], Ty::Int),
    ("env.res_int", &[Ty::Bytes], Ty::Int),
    ("env.res_bytes", &[Ty::Bytes], Ty::Bytes),
    ("env.res_err", &[Ty::Bytes], Ty::Bytes),
    ("env.log", &[Ty::Bytes], Ty::Int),
    ("env.self_name", &[], Ty::Bytes),
    ("env.here", &[], Ty::Bytes),
    ("env.home", &[], Ty::Bytes),
    ("env.time", &[], Ty::Int),
    ("env.send", &[Ty::Bytes, Ty::Bytes], Ty::Int),
    (
        "env.send_remote",
        &[Ty::Bytes, Ty::Bytes, Ty::Bytes],
        Ty::Int,
    ),
    ("env.recv", &[], Ty::Bytes),
    ("env.sender", &[], Ty::Bytes),
    ("env.install_resource", &[Ty::Bytes, Ty::Bytes], Ty::Int),
    (
        "env.dispatch",
        &[Ty::Bytes, Ty::Bytes, Ty::Bytes],
        Ty::Bytes,
    ),
    ("env.itin_head", &[Ty::Bytes], Ty::Bytes),
    ("env.itin_tail", &[Ty::Bytes], Ty::Bytes),
    ("env.rand", &[Ty::Int], Ty::Int),
];

/// Encodes an invoke result: success.
pub fn encode_ok(v: &Value) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(0);
    v.encode(&mut e);
    e.finish()
}

/// Encodes an invoke result: recoverable application error.
pub fn encode_err(msg: &str) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u8(1);
    e.put_str(msg);
    e.finish()
}

/// Decodes an invoke result (host-side counterpart used by tests and the
/// `env.res_*` helpers).
pub fn decode_result(bytes: &[u8]) -> Option<Result<Value, String>> {
    let mut d = Decoder::new(bytes);
    match d.get_u8().ok()? {
        0 => {
            let v = Value::decode(&mut d).ok()?;
            d.expect_end().ok()?;
            Some(Ok(v))
        }
        1 => {
            let s = d.get_str().ok()?;
            d.expect_end().ok()?;
            Some(Err(s))
        }
        _ => None,
    }
}

/// Where the agent asked to go (set by a successful `env.go` or
/// `env.go_tour`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingGo {
    /// Destination server.
    pub dest: Urn,
    /// Entry function to resume at.
    pub entry: String,
    /// Later itinerary stops, in order — the recovery plan if `dest`
    /// stays unreachable after the transfer layer's retries exhaust
    /// (`env.go_tour` fills this; plain `env.go` leaves it empty).
    pub fallbacks: Vec<Urn>,
}

/// The per-agent environment: implements [`HostInterface`] for one agent
/// execution on one server.
pub struct AgentEnv {
    shared: Arc<Shared>,
    domain: DomainId,
    /// The executing identity (the credentialed agent, or a child name
    /// within its subtree).
    identity: Urn,
    credentials: Credentials,
    rights: Rights,
    /// The agent's own code, needed to package children it dispatches.
    module: Option<Arc<ajanta_vm::VerifiedModule>>,
    proxies: Vec<ResourceProxy>,
    pending_go: Option<PendingGo>,
    last_sender: Vec<u8>,
    children: u64,
    rng_state: u64,
    /// Consecutive empty `env.recv` polls since the last delivery — the
    /// idleness signal hibernation keys off.
    mail_misses: u32,
    /// This stay's admission span: every bind, access, dispatch, and
    /// report the agent performs here descends from it in the trace.
    ctx: SpanContext,
}

impl AgentEnv {
    /// Builds the environment for an admitted agent.
    pub(crate) fn new(
        shared: Arc<Shared>,
        domain: DomainId,
        identity: Urn,
        credentials: Credentials,
        rights: Rights,
        ctx: SpanContext,
    ) -> Self {
        // Per-agent deterministic randomness derived from the identity,
        // so reruns of an experiment reproduce identical agent behaviour.
        let mut h = ajanta_crypto::Sha256::new();
        h.update(b"agent.rng");
        h.update(identity.to_string().as_bytes());
        let rng_state = h.finalize().prefix_u64();
        AgentEnv {
            shared,
            domain,
            identity,
            credentials,
            rights,
            module: None,
            proxies: Vec::new(),
            pending_go: None,
            last_sender: Vec::new(),
            children: 0,
            rng_state,
            mail_misses: 0,
            ctx,
        }
    }

    /// Attaches the agent's verified module, enabling `env.dispatch`.
    pub(crate) fn set_module(&mut self, module: Arc<ajanta_vm::VerifiedModule>) {
        self.module = Some(module);
    }

    /// The migration request, if the last run ended in `env.go`.
    pub fn pending_go(&self) -> Option<&PendingGo> {
        self.pending_go.as_ref()
    }

    /// Number of live proxies (bindings) this agent holds.
    pub fn binding_count(&self) -> usize {
        self.proxies.len()
    }

    /// Consecutive empty `env.recv` polls since the last delivered mail.
    pub fn mail_misses(&self) -> u32 {
        self.mail_misses
    }

    /// The session state that must ride in a hibernation bundle:
    /// `(rng_state, children, last_sender)`. Everything else in the
    /// environment is rebuilt from the admission inputs on wake.
    pub(crate) fn export_session(&self) -> (u64, u64, Vec<u8>) {
        (self.rng_state, self.children, self.last_sender.clone())
    }

    /// Restores the counterpart of [`AgentEnv::export_session`] into a
    /// freshly built environment, making the woken agent's observable
    /// behaviour identical to one that never hibernated.
    pub(crate) fn restore_session(&mut self, rng_state: u64, children: u64, last_sender: Vec<u8>) {
        self.rng_state = rng_state;
        self.children = children;
        self.last_sender = last_sender;
    }

    fn now(&self) -> u64 {
        self.shared.clock_now()
    }

    fn parse_urn(bytes: &[u8], what: &str) -> Result<Urn, HostError> {
        std::str::from_utf8(bytes)
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| HostError::Failed(format!("malformed {what} urn")))
    }

    fn next_rand(&mut self) -> u64 {
        // SplitMix64 step, kept local so the environment is Send.
        self.rng_state = self.rng_state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl HostInterface for AgentEnv {
    fn call(&mut self, import: &HostImport, args: &[Value]) -> Result<HostResponse, HostError> {
        // An agent controls its own import declarations; before trusting
        // the argument shapes, pin the declaration to the canonical ABI.
        // A mismatch is a (failed) attack on the host-call boundary.
        match IMPORTS.iter().find(|(n, _, _)| *n == import.name) {
            Some((_, params, ret)) => {
                if import.params.as_slice() != *params || import.ret != *ret {
                    return Err(HostError::Denied(format!(
                        "import {:?} declared with a non-ABI signature",
                        import.name
                    )));
                }
            }
            None => {
                return Err(HostError::Denied(format!(
                    "import {:?} is not provided by this server",
                    import.name
                )))
            }
        }
        let val = |v: Value| Ok(HostResponse::Value(v));
        match import.name.as_str() {
            "env.go" => {
                let dest = Self::parse_urn(args[0].as_bytes().expect("verified"), "destination")?;
                let entry = String::from_utf8(args[1].as_bytes().expect("verified").to_vec())
                    .map_err(|_| HostError::Failed("malformed entry name".into()))?;
                self.pending_go = Some(PendingGo {
                    dest,
                    entry,
                    fallbacks: Vec::new(),
                });
                Ok(HostResponse::Stop(Value::Int(0)))
            }
            "env.go_tour" => {
                // Like env.go, but the agent hands over its whole
                // remaining itinerary: head = next stop, tail = the
                // recovery plan the transfer layer may fall back to.
                let plan = itinerary::Itinerary::decode(args[0].as_bytes().expect("verified"))
                    .map_err(|e| HostError::Failed(format!("go_tour: {e}")))?;
                let entry = String::from_utf8(args[1].as_bytes().expect("verified").to_vec())
                    .map_err(|_| HostError::Failed("malformed entry name".into()))?;
                let (dest, rest) = plan.next_stop();
                let dest =
                    dest.ok_or_else(|| HostError::Failed("go_tour: empty itinerary".into()))?;
                self.pending_go = Some(PendingGo {
                    dest,
                    entry,
                    fallbacks: rest.stops().to_vec(),
                });
                Ok(HostResponse::Stop(Value::Int(0)))
            }
            "env.get_resource" => {
                let name = Self::parse_urn(args[0].as_bytes().expect("verified"), "resource")?;
                let requester = Requester {
                    agent: self.identity.clone(),
                    owner: self.credentials.owner.clone(),
                    domain: self.domain,
                    rights: self.rights.clone(),
                };
                let proxy = self
                    .shared
                    .bind_resource(
                        &requester,
                        &name,
                        self.now(),
                        Some((self.ctx.trace, self.ctx.span)),
                    )
                    .map_err(HostError::Denied)?;
                self.proxies.push(proxy);
                val(Value::Int(self.proxies.len() as i64))
            }
            "env.invoke" => {
                let handle = args[0].as_int().expect("verified");
                let proxy = usize::try_from(handle)
                    .ok()
                    .and_then(|h| h.checked_sub(1))
                    .and_then(|h| self.proxies.get(h))
                    .ok_or_else(|| HostError::Failed(format!("bad proxy handle {handle}")))?;
                // Borrow the method name in place: the VM→proxy hot path
                // must not allocate per call.
                let method = std::str::from_utf8(args[1].as_bytes().expect("verified"))
                    .map_err(|_| HostError::Failed("malformed method name".into()))?;
                let mut d = Decoder::new(args[2].as_bytes().expect("verified"));
                let call_args: Vec<Value> = decode_seq(&mut d)
                    .map_err(|e| HostError::Failed(format!("malformed args: {e}")))?;
                let t0 = std::time::Instant::now();
                let result = proxy.invoke(self.domain, method, &call_args, self.now());
                // Each access is a child span of the admission; the
                // detail's three whitespace-separated tokens (resource,
                // method, outcome) are what `tracectl`'s anomaly scan
                // parses to spot accesses that postdate a revocation.
                let outcome = match &result {
                    Ok(_) => "ok",
                    Err(AccessError::Resource(_)) => "app-err",
                    Err(_) => "denied",
                };
                let span = SpanContext {
                    trace: self.ctx.trace,
                    span: self.shared.journal.mint_span(),
                    parent: Some(self.ctx.span),
                };
                self.shared.emit_span(
                    span,
                    SpanKind::Access,
                    &self.identity,
                    format!("{} {} {}", proxy.resource_name(), method, outcome),
                    self.now(),
                    t0.elapsed().as_nanos() as u64,
                );
                match result {
                    Ok(v) => val(Value::Bytes(encode_ok(&v))),
                    // Application-level failures are recoverable results…
                    Err(AccessError::Resource(ResourceError::WouldBlock)) => {
                        val(Value::Bytes(encode_err("would block")))
                    }
                    Err(AccessError::Resource(e)) => val(Value::Bytes(encode_err(&e.to_string()))),
                    // …security violations raise, as the paper's proxies
                    // throw security exceptions.
                    Err(e) => Err(HostError::Denied(e.to_string())),
                }
            }
            "env.args0" => {
                let mut e = Encoder::new();
                encode_seq::<Value>(&[], &mut e);
                val(Value::Bytes(e.finish()))
            }
            "env.args_i" | "env.args_b" => {
                let mut e = Encoder::new();
                encode_seq(&[args[0].clone()], &mut e);
                val(Value::Bytes(e.finish()))
            }
            "env.args_ii" | "env.args_bb" | "env.args_bi" => {
                let mut e = Encoder::new();
                encode_seq(&[args[0].clone(), args[1].clone()], &mut e);
                val(Value::Bytes(e.finish()))
            }
            "env.res_ok" => {
                let r = decode_result(args[0].as_bytes().expect("verified"));
                val(Value::Int(matches!(r, Some(Ok(_))) as i64))
            }
            "env.res_int" => match decode_result(args[0].as_bytes().expect("verified")) {
                Some(Ok(Value::Int(i))) => val(Value::Int(i)),
                other => Err(HostError::Failed(format!(
                    "result is not an int: {other:?}"
                ))),
            },
            "env.res_bytes" => match decode_result(args[0].as_bytes().expect("verified")) {
                Some(Ok(Value::Bytes(b))) => val(Value::Bytes(b)),
                other => Err(HostError::Failed(format!("result is not bytes: {other:?}"))),
            },
            "env.res_err" => match decode_result(args[0].as_bytes().expect("verified")) {
                Some(Err(msg)) => val(Value::Bytes(msg.into_bytes())),
                _ => val(Value::Bytes(Vec::new())),
            },
            "env.log" => {
                let text =
                    String::from_utf8_lossy(args[0].as_bytes().expect("verified")).into_owned();
                self.shared.log(&self.identity, text);
                val(Value::Int(0))
            }
            "env.self_name" => val(Value::str(self.identity.to_string())),
            "env.here" => val(Value::str(self.shared.name().to_string())),
            "env.home" => val(Value::str(self.credentials.home.to_string())),
            "env.time" => val(Value::Int(self.now() as i64)),
            "env.send" => {
                let to = Self::parse_urn(args[0].as_bytes().expect("verified"), "agent")?;
                let data = args[1].as_bytes().expect("verified").to_vec();
                let delivered = self.shared.local_mail(self.identity.clone(), to, data);
                val(Value::Int(delivered as i64))
            }
            "env.send_remote" => {
                let server = Self::parse_urn(args[0].as_bytes().expect("verified"), "server")?;
                let to = Self::parse_urn(args[1].as_bytes().expect("verified"), "agent")?;
                let data = args[2].as_bytes().expect("verified").to_vec();
                match self
                    .shared
                    .remote_mail(self.identity.clone(), server, to, data)
                {
                    Ok(()) => val(Value::Int(1)),
                    Err(e) => Err(HostError::Failed(e)),
                }
            }
            "env.recv" => match self.shared.take_mail(&self.identity) {
                Some((from, data)) => {
                    self.mail_misses = 0;
                    self.last_sender = from.to_string().into_bytes();
                    val(Value::Bytes(data))
                }
                None => {
                    self.mail_misses = self.mail_misses.saturating_add(1);
                    self.last_sender.clear();
                    val(Value::Bytes(Vec::new()))
                }
            },
            "env.sender" => val(Value::Bytes(self.last_sender.clone())),
            "env.install_resource" => {
                let name = Self::parse_urn(args[0].as_bytes().expect("verified"), "resource")?;
                let module = Module::from_bytes(args[1].as_bytes().expect("verified"))
                    .map_err(|e| HostError::Failed(format!("malformed module: {e}")))?;
                self.shared
                    .install_vm_resource(self.domain, &self.identity, name, module)
                    .map_err(HostError::Denied)?;
                val(Value::Int(0))
            }
            "env.dispatch" => {
                let dest = Self::parse_urn(args[0].as_bytes().expect("verified"), "destination")?;
                let entry = String::from_utf8(args[1].as_bytes().expect("verified").to_vec())
                    .map_err(|_| HostError::Failed("malformed entry name".into()))?;
                let payload = args[2].as_bytes().expect("verified").to_vec();
                if payload.is_empty() {
                    return Err(HostError::Failed(
                        "dispatch payload must be non-empty (it is the child's argument)".into(),
                    ));
                }
                let module = self
                    .module
                    .as_ref()
                    .ok_or_else(|| HostError::Failed("dispatch unavailable here".into()))?
                    .module()
                    .clone();
                self.children += 1;
                let child = self
                    .shared
                    .dispatch_child(
                        self.domain,
                        &self.identity,
                        &self.credentials,
                        module,
                        &dest,
                        entry,
                        payload,
                        self.children,
                        Some((self.ctx.trace, self.ctx.span)),
                    )
                    .map_err(HostError::Denied)?;
                val(Value::str(child.to_string()))
            }
            "env.itin_head" => val(Value::Bytes(
                itinerary::head(args[0].as_bytes().expect("verified")).to_vec(),
            )),
            "env.itin_tail" => val(Value::Bytes(
                itinerary::tail(args[0].as_bytes().expect("verified")).to_vec(),
            )),
            "env.rand" => {
                let bound = args[0].as_int().expect("verified");
                if bound <= 0 {
                    return Err(HostError::Failed("rand bound must be positive".into()));
                }
                val(Value::Int((self.next_rand() % bound as u64) as i64))
            }
            other => Err(HostError::Denied(format!(
                "import {other:?} is not provided by this server"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_encoding_roundtrip() {
        let ok = encode_ok(&Value::Int(42));
        assert_eq!(decode_result(&ok), Some(Ok(Value::Int(42))));
        let ok = encode_ok(&Value::str("payload"));
        assert_eq!(decode_result(&ok), Some(Ok(Value::str("payload"))));
        let err = encode_err("would block");
        assert_eq!(decode_result(&err), Some(Err("would block".into())));
        assert_eq!(decode_result(&[7, 7, 7]), None);
        assert_eq!(decode_result(&[]), None);
    }

    #[test]
    fn import_table_is_well_formed() {
        let mut names = std::collections::BTreeSet::new();
        for (name, _, _) in IMPORTS {
            assert!(name.starts_with("env."));
            assert!(names.insert(*name), "duplicate import {name}");
        }
        assert!(names.len() >= 20);
    }

    #[test]
    fn declare_all_imports_matches_table() {
        let mut b = ajanta_vm::ModuleBuilder::new("t");
        declare_all_imports(&mut b);
        let m = b.build();
        assert_eq!(m.imports.len(), IMPORTS.len());
        for (im, (name, params, ret)) in m.imports.iter().zip(IMPORTS) {
            assert_eq!(im.name, *name);
            assert_eq!(im.params.as_slice(), *params);
            assert_eq!(im.ret, *ret);
        }
    }
}
