//! `ajantactl` — the operator CLI for a running Ajanta world.
//!
//! Talks the framed control protocol (`ajanta_runtime::control`) to one
//! or more control sockets (`--ctl uds:/path` or `--ctl tcp:host:port`,
//! repeatable — results aggregate across endpoints; the `AJANTA_CTL`
//! environment variable seeds the list). Every subcommand has a human
//! rendering and a `--json` rendering (flat, line-oriented, no
//! dependencies).
//!
//! ```text
//! ajantactl --ctl uds:/tmp/ajanta.ctl list
//! ajantactl --ctl uds:/tmp/ajanta.ctl info ajn://users.org/agent/alice/tracer.0
//! ajantactl --ctl uds:/tmp/ajanta.ctl metrics | grep proxy
//! ajantactl --ctl uds:/tmp/ajanta.ctl histo
//! ajantactl --ctl uds:/tmp/ajanta.ctl journal --tail 20
//! ajantactl --ctl uds:/tmp/ajanta.ctl follow --for-ms 2000
//! ajantactl --ctl uds:/tmp/ajanta.ctl hibernate ajn://…/agent/…
//! ajantactl --ctl uds:/tmp/a.ctl --ctl uds:/tmp/b.ctl revoke ajn://…/resource/jobs
//! ajantactl trace server0.jsonl server1.jsonl   # offline, replaces tracectl
//! ```
//!
//! Subcommands: `health`, `status`, `list`, `info`, `logs`, `journal`,
//! `follow`, `metrics`, `histo`, `trace`, `hibernate`, `wake`,
//! `revoke`. Exit codes: 0 success, 1 the operation failed or reported
//! a violation, 2 usage/connection errors.

use std::time::{Duration, Instant};

use ajanta_core::trace::{parse_jsonl, render_tree, scan_anomalies, TraceForest};
use ajanta_net::fmt_ns;
use ajanta_runtime::control::{
    revoke_everywhere, ControlClient, ControlRequest, ControlResponse, JournalEntry,
    JournalFollower,
};
use ajanta_runtime::{Counter, HistoPath, Severity, SpanKind, TelemetrySnapshot};

/// Retry count above which `trace` reports a hop as a retry storm.
const RETRY_THRESHOLD: usize = 3;

fn usage() -> ! {
    eprintln!(
        "usage: ajantactl [--ctl ADDR]... [--json] <command> [args]\n\
         \n\
         ADDR is uds:/path or tcp:host:port (repeatable; env AJANTA_CTL seeds it)\n\
         \n\
         commands:\n\
           health                     protocol version + servers behind each endpoint\n\
           status                     per-server occupancy (resident/hibernated/in-flight)\n\
           list                       every agent: resident, hibernated, in-flight\n\
           info <agent-urn>           everything one server knows about an agent\n\
           logs [--tail N]            recent per-agent log lines (default 20)\n\
           journal [--tail N]         recent journal records (default 20)\n\
           follow [--for-ms T] [--max N] [--interval-ms I]\n\
                                      stream journal records, gap-checked via drop counters\n\
           metrics                    merged Prometheus text exposition (all endpoints)\n\
           histo                      p50/p90/p99/max for every latency histogram\n\
           trace [file.jsonl ...]     causal tour trees + anomalies (remote when no files)\n\
           hibernate <agent-urn>      spill one agent to its bundle store\n\
           wake <agent-urn>           revive one hibernated agent\n\
           revoke <resource-urn>      invalidate every proxy fleet-wide"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("ajantactl: {msg}");
    std::process::exit(2);
}

/// Minimal JSON string escaping (control chars, quote, backslash).
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Cli {
    endpoints: Vec<String>,
    json: bool,
}

impl Cli {
    /// One connected client per endpoint, in order.
    fn connect_all(&self) -> Vec<(String, ControlClient)> {
        if self.endpoints.is_empty() {
            fail("no control endpoint: pass --ctl or set AJANTA_CTL");
        }
        self.endpoints
            .iter()
            .map(|e| match ControlClient::connect_str(e) {
                Ok(c) => (e.clone(), c),
                Err(err) => fail(&format!("connecting {e}: {err}")),
            })
            .collect()
    }

    /// Sends `req` to every endpoint; returns `(endpoint, response)`.
    fn call_all(&self, req: &ControlRequest) -> Vec<(String, ControlResponse)> {
        self.connect_all()
            .into_iter()
            .map(|(e, mut c)| match c.call(req) {
                Ok(r) => (e, r),
                Err(err) => fail(&format!("calling {e}: {err}")),
            })
            .collect()
    }
}

fn main() {
    let mut endpoints: Vec<String> = Vec::new();
    if let Ok(env) = std::env::var("AJANTA_CTL") {
        endpoints.extend(env.split(',').filter(|s| !s.is_empty()).map(String::from));
    }
    let mut json = false;
    let mut args = std::env::args().skip(1).peekable();
    let cmd = loop {
        match args.next() {
            Some(a) if a == "--ctl" => match args.next() {
                Some(v) => endpoints.push(v),
                None => fail("--ctl needs a value"),
            },
            Some(a) if a == "--json" => json = true,
            Some(a) if a.starts_with("--") => fail(&format!("unknown flag {a}")),
            Some(a) => break a,
            None => usage(),
        }
    };
    let rest: Vec<String> = args.collect();
    let cli = Cli { endpoints, json };
    match cmd.as_str() {
        "health" => health(&cli),
        "status" => status(&cli),
        "list" => list(&cli),
        "info" => info(&cli, &rest),
        "logs" => logs(&cli, &rest),
        "journal" => journal(&cli, &rest),
        "follow" => follow(&cli, &rest),
        "metrics" => metrics(&cli),
        "histo" => histo(&cli),
        "trace" => trace(&cli, &rest),
        "hibernate" => act(&cli, &rest, "hibernate"),
        "wake" => act(&cli, &rest, "wake"),
        "revoke" => revoke(&cli, &rest),
        _ => usage(),
    }
}

fn tail_arg(rest: &[String], default: u64) -> u64 {
    let mut tail = default;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        if a == "--tail" {
            tail = it
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| fail("--tail needs a number"));
        } else {
            fail(&format!("unexpected argument {a}"));
        }
    }
    tail
}

fn health(cli: &Cli) {
    let results = cli.call_all(&ControlRequest::Health);
    let mut lines = Vec::new();
    for (endpoint, resp) in results {
        let ControlResponse::Health { version, servers } = resp else {
            fail("unexpected response to health");
        };
        if cli.json {
            lines.push(format!(
                "{{\"endpoint\":{},\"version\":{},\"servers\":[{}]}}",
                jstr(&endpoint),
                version,
                servers
                    .iter()
                    .map(|s| jstr(&s.to_string()))
                    .collect::<Vec<_>>()
                    .join(",")
            ));
        } else {
            println!(
                "{endpoint}: control v{version}, {} server(s)",
                servers.len()
            );
            for s in &servers {
                println!("  {s}");
            }
        }
    }
    if cli.json {
        println!("[{}]", lines.join(","));
    }
}

fn status(cli: &Cli) {
    let results = cli.call_all(&ControlRequest::Status);
    let mut lines = Vec::new();
    for (endpoint, resp) in results {
        let ControlResponse::Status(statuses) = resp else {
            fail("unexpected response to status");
        };
        for s in statuses {
            if cli.json {
                lines.push(format!(
                    "{{\"endpoint\":{},\"server\":{},\"resident\":{},\"hibernated\":{},\
                     \"hibernated_bytes\":{},\"in_flight\":{},\"pending_sends\":{},\
                     \"journal_next_seq\":{},\"journal_dropped\":{}}}",
                    jstr(&endpoint),
                    jstr(&s.server.to_string()),
                    s.resident,
                    s.hibernated,
                    s.hibernated_bytes,
                    s.in_flight,
                    s.pending_sends,
                    s.journal_next_seq,
                    s.journal_dropped,
                ));
            } else {
                println!(
                    "{}: resident={} hibernated={} ({} B) in-flight={} pending-sends={} \
                     journal-seq={} dropped={}",
                    s.server,
                    s.resident,
                    s.hibernated,
                    s.hibernated_bytes,
                    s.in_flight,
                    s.pending_sends,
                    s.journal_next_seq,
                    s.journal_dropped,
                );
            }
        }
    }
    if cli.json {
        println!("[{}]", lines.join(","));
    }
}

fn list(cli: &Cli) {
    let results = cli.call_all(&ControlRequest::ListAgents);
    let mut lines = Vec::new();
    let mut total = 0usize;
    for (_, resp) in results {
        let ControlResponse::Agents(agents) = resp else {
            fail("unexpected response to list");
        };
        total += agents.len();
        for a in agents {
            if cli.json {
                lines.push(format!(
                    "{{\"server\":{},\"agent\":{},\"state\":{},\"hop\":{},\"domain\":{},\
                     \"fuel_used\":{},\"bindings\":{}}}",
                    jstr(&a.server.to_string()),
                    jstr(&a.agent.to_string()),
                    jstr(a.state.as_str()),
                    a.hop,
                    a.domain,
                    a.fuel_used,
                    a.bindings,
                ));
            } else {
                println!(
                    "{:<11} {}  @{}  domain={} fuel={} bindings={}",
                    a.state.as_str(),
                    a.agent,
                    a.server,
                    a.domain,
                    a.fuel_used,
                    a.bindings,
                );
            }
        }
    }
    if cli.json {
        println!("[{}]", lines.join(","));
    } else {
        println!("{total} agent(s)");
    }
}

fn info(cli: &Cli, rest: &[String]) {
    let Some(agent) = rest.first() else { usage() };
    let agent = agent
        .parse()
        .unwrap_or_else(|e| fail(&format!("bad agent urn: {e}")));
    for (_, resp) in cli.call_all(&ControlRequest::AgentInfo { agent }) {
        let ControlResponse::Agent(detail) = resp else {
            fail("unexpected response to info");
        };
        let Some(d) = detail else { continue };
        if cli.json {
            println!(
                "{{\"server\":{},\"agent\":{},\"state\":{},\"domain\":{},\"owner\":{},\
                 \"creator\":{},\"home\":{},\"fuel_used\":{},\"fuel_limit\":{},\
                 \"alloc_bytes\":{},\"bindings\":[{}]}}",
                jstr(&d.entry.server.to_string()),
                jstr(&d.entry.agent.to_string()),
                jstr(d.entry.state.as_str()),
                d.entry.domain,
                jstr(&d.owner),
                jstr(&d.creator),
                jstr(&d.home),
                d.entry.fuel_used,
                d.fuel_limit,
                d.alloc_bytes,
                d.bound_resources
                    .iter()
                    .map(|r| jstr(r))
                    .collect::<Vec<_>>()
                    .join(","),
            );
        } else {
            println!("agent:   {}", d.entry.agent);
            println!("state:   {} @ {}", d.entry.state, d.entry.server);
            println!("domain:  {}", d.entry.domain);
            println!("owner:   {}", d.owner);
            println!("creator: {}", d.creator);
            println!("home:    {}", d.home);
            println!("fuel:    {} / {}", d.entry.fuel_used, d.fuel_limit);
            println!("alloc:   {} B", d.alloc_bytes);
            println!("bindings ({}):", d.bound_resources.len());
            for r in &d.bound_resources {
                println!("  {r}");
            }
        }
        return;
    }
    if cli.json {
        println!("null");
    } else {
        eprintln!("ajantactl: no server knows that agent");
    }
    std::process::exit(1);
}

fn logs(cli: &Cli, rest: &[String]) {
    let tail = tail_arg(rest, 20);
    let mut lines = Vec::new();
    for (_, resp) in cli.call_all(&ControlRequest::Logs { tail }) {
        let ControlResponse::Logs(entries) = resp else {
            fail("unexpected response to logs");
        };
        for (server, (agent, text)) in entries {
            if cli.json {
                lines.push(format!(
                    "{{\"server\":{},\"agent\":{},\"text\":{}}}",
                    jstr(&server.to_string()),
                    jstr(&agent.to_string()),
                    jstr(&text),
                ));
            } else {
                println!("[{} {}] {}", server.leaf(), agent.leaf(), text);
            }
        }
    }
    if cli.json {
        println!("[{}]", lines.join(","));
    }
}

fn print_journal_entry(json_lines: &mut Vec<String>, cli: &Cli, server: &str, e: &JournalEntry) {
    let severity = Severity::from_index(e.severity)
        .map(|s| s.to_string())
        .unwrap_or_else(|| format!("sev{}", e.severity));
    if cli.json {
        json_lines.push(format!(
            "{{\"server\":{},\"seq\":{},\"at\":{},\"severity\":{},\"label\":{},\
             \"agent\":{},\"text\":{}}}",
            jstr(server),
            e.seq,
            e.at,
            jstr(&severity),
            jstr(&e.label),
            e.agent
                .as_deref()
                .map(jstr)
                .unwrap_or_else(|| "null".into()),
            jstr(&e.text),
        ));
    } else {
        println!(
            "{server} #{:<6} t={:<12} {:<5} {:<18} {}",
            e.seq, e.at, severity, e.label, e.text
        );
    }
}

fn journal(cli: &Cli, rest: &[String]) {
    let tail = tail_arg(rest, 20);
    let mut lines = Vec::new();
    for (_, resp) in cli.call_all(&ControlRequest::JournalTail {
        cursor: None,
        max: tail,
    }) {
        let ControlResponse::Journal(pages) = resp else {
            fail("unexpected response to journal");
        };
        for page in pages {
            let server = page.server.to_string();
            for e in &page.entries {
                print_journal_entry(&mut lines, cli, &server, e);
            }
        }
    }
    if cli.json {
        println!("[{}]", lines.join(","));
    }
}

fn follow(cli: &Cli, rest: &[String]) {
    let mut for_ms: Option<u64> = None;
    let mut max = 256u64;
    let mut interval = Duration::from_millis(100);
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut val = |flag: &str| {
            it.next()
                .and_then(|x| x.parse::<u64>().ok())
                .unwrap_or_else(|| fail(&format!("{flag} needs a number")))
        };
        match a.as_str() {
            "--for-ms" => for_ms = Some(val("--for-ms")),
            "--max" => max = val("--max"),
            "--interval-ms" => interval = Duration::from_millis(val("--interval-ms")),
            other => fail(&format!("unexpected argument {other}")),
        }
    }
    let mut clients = cli.connect_all();
    // One follower per endpoint: cursors are per-server, and servers
    // are disjoint across endpoints, so each socket's gap accounting
    // stays separate.
    let mut followers: Vec<JournalFollower> =
        clients.iter().map(|_| JournalFollower::new()).collect();
    let deadline = for_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let mut json_lines = Vec::new();
    loop {
        for (i, (endpoint, client)) in clients.iter_mut().enumerate() {
            let follower = &mut followers[i];
            let resp = match client.call(&follower.request(max)) {
                Ok(r) => r,
                Err(e) => fail(&format!("calling {endpoint}: {e}")),
            };
            let ControlResponse::Journal(pages) = resp else {
                fail("unexpected response to follow");
            };
            for page in &pages {
                let server = page.server.to_string();
                for e in &follower.ingest(page) {
                    print_journal_entry(&mut json_lines, cli, &server, e);
                }
            }
            for l in json_lines.drain(..) {
                println!("{l}");
            }
        }
        match deadline {
            Some(d) if Instant::now() >= d => break,
            _ => std::thread::sleep(interval),
        }
    }
    let gaps: u64 = followers.iter().map(|f| f.unexplained_gaps).sum();
    if gaps > 0 {
        eprintln!("ajantactl: {gaps} journal record(s) missing without accounted drops");
        std::process::exit(1);
    }
}

/// Fetches and merges typed telemetry from every server behind every
/// endpoint.
fn merged_telemetry(cli: &Cli) -> TelemetrySnapshot {
    let mut merged = TelemetrySnapshot::empty();
    for (_, resp) in cli.call_all(&ControlRequest::Metrics) {
        let ControlResponse::Metrics(per_server) = resp else {
            fail("unexpected response to metrics");
        };
        for (_, snap) in per_server {
            merged.merge(&snap);
        }
    }
    merged
}

fn metrics(cli: &Cli) {
    let merged = merged_telemetry(cli);
    if cli.json {
        let mut counters = Vec::new();
        for c in Counter::ALL {
            counters.push(format!("{}:{}", jstr(c.name()), merged.counters.get(c)));
        }
        let shard_drops = merged
            .counters
            .shard_drops
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join(",");
        println!(
            "{{\"counters\":{{{}}},\"shard_drops\":[{}]}}",
            counters.join(","),
            shard_drops
        );
    } else {
        print!("{}", merged.render());
    }
}

fn histo(cli: &Cli) {
    let merged = merged_telemetry(cli);
    let mut lines = Vec::new();
    for path in HistoPath::ALL {
        let s = merged.histo(path);
        if cli.json {
            lines.push(format!(
                "{{\"name\":{},\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{},\
                 \"max\":{}}}",
                jstr(path.name()),
                s.count,
                s.sum,
                s.quantile(0.50),
                s.quantile(0.90),
                s.quantile(0.99),
                s.max,
            ));
        } else {
            // Everything is a nanosecond distribution except the
            // frames-per-write count histogram.
            let render: fn(u64) -> String = if path == HistoPath::FramesPerWrite {
                |v| v.to_string()
            } else {
                fmt_ns
            };
            println!(
                "{:<26} n={:<6} p50={:<10} p90={:<10} p99={:<10} max={}",
                path.name(),
                s.count,
                render(s.quantile(0.50)),
                render(s.quantile(0.90)),
                render(s.quantile(0.99)),
                render(s.max),
            );
        }
    }
    if cli.json {
        println!("[{}]", lines.join(","));
    }
}

fn trace(cli: &Cli, rest: &[String]) {
    let jsonl = if rest.is_empty() {
        // Remote: concatenate every endpoint's merged export.
        let mut merged = String::new();
        for (_, resp) in cli.call_all(&ControlRequest::Trace) {
            let ControlResponse::Trace(j) = resp else {
                fail("unexpected response to trace");
            };
            merged.push_str(&j);
        }
        merged
    } else {
        let mut merged = String::new();
        for f in rest {
            match std::fs::read_to_string(f) {
                Ok(s) => merged.push_str(&s),
                Err(e) => fail(&format!("cannot read {f}: {e}")),
            }
        }
        merged
    };

    let records = match parse_jsonl(&jsonl) {
        Ok(r) => r,
        Err(e) => fail(&format!("parsing trace: {e}")),
    };
    let forest = TraceForest::build(records);
    let anomalies = scan_anomalies(&forest, RETRY_THRESHOLD);
    if cli.json {
        println!(
            "{{\"traces\":{},\"spans\":{},\"orphans\":{},\"revokes\":{},\"anomalies\":[{}]}}",
            forest.traces.len(),
            forest.span_count(),
            forest.orphan_count(),
            forest.revokes.len(),
            anomalies
                .iter()
                .map(|a| jstr(&a.to_string()))
                .collect::<Vec<_>>()
                .join(","),
        );
        return;
    }
    println!(
        "{} trace(s), {} span(s), {} orphan(s), {} revocation(s)\n",
        forest.traces.len(),
        forest.span_count(),
        forest.orphan_count(),
        forest.revokes.len()
    );
    for (trace, tree) in &forest.traces {
        print!("{}", render_tree(*trace, tree));
        // Per-trace rollup: what each phase of the tour cost.
        let mut retries = 0usize;
        let mut transfer_ns = 0u64;
        for s in &tree.spans {
            match s.kind {
                SpanKind::Retry => retries += 1,
                SpanKind::Transfer => transfer_ns += s.dur_ns,
                _ => {}
            }
        }
        println!(
            "  = {} spans, {} retries, {} cumulative transfer RTT\n",
            tree.spans.len(),
            retries,
            fmt_ns(transfer_ns)
        );
    }
    if anomalies.is_empty() {
        println!("no anomalies (retry threshold {RETRY_THRESHOLD})");
    } else {
        println!("{} anomalie(s):", anomalies.len());
        for a in &anomalies {
            println!("  {a}");
        }
    }
}

fn act(cli: &Cli, rest: &[String], verb: &str) {
    let Some(agent) = rest.first() else { usage() };
    let agent: ajanta_naming::Urn = agent
        .parse()
        .unwrap_or_else(|e| fail(&format!("bad agent urn: {e}")));
    let req = match verb {
        "hibernate" => ControlRequest::Hibernate {
            agent: agent.clone(),
        },
        _ => ControlRequest::Wake {
            agent: agent.clone(),
        },
    };
    for (endpoint, resp) in cli.call_all(&req) {
        let ControlResponse::Ack(ok) = resp else {
            fail(&format!("unexpected response to {verb}"));
        };
        if ok {
            if cli.json {
                println!("{{\"ok\":true,\"endpoint\":{}}}", jstr(&endpoint));
            } else {
                println!("{verb} {agent}: done (via {endpoint})");
            }
            return;
        }
    }
    if cli.json {
        println!("{{\"ok\":false}}");
    } else {
        eprintln!("ajantactl: {verb} {agent}: no endpoint could comply");
    }
    std::process::exit(1);
}

fn revoke(cli: &Cli, rest: &[String]) {
    let Some(resource) = rest.first() else {
        usage()
    };
    let resource: ajanta_naming::Urn = resource
        .parse()
        .unwrap_or_else(|e| fail(&format!("bad resource urn: {e}")));
    if cli.endpoints.is_empty() {
        fail("no control endpoint: pass --ctl or set AJANTA_CTL");
    }
    let addrs: Vec<_> = cli
        .endpoints
        .iter()
        .map(|e| {
            e.parse()
                .unwrap_or_else(|err: String| fail(&format!("bad endpoint {e}: {err}")))
        })
        .collect();
    match revoke_everywhere(&addrs, &resource) {
        Ok((proxies, servers)) => {
            if cli.json {
                println!(
                    "{{\"resource\":{},\"proxies\":{},\"servers\":{}}}",
                    jstr(&resource.to_string()),
                    proxies,
                    servers
                );
            } else {
                println!(
                    "revoked {resource}: {proxies} live prox(ies) invalidated across \
                     {servers} server(s)"
                );
            }
        }
        Err(e) => fail(&format!("revoke: {e}")),
    }
}
