//! `ajantad` — one agent-server process of a multi-process world.
//!
//! Two modes:
//!
//! * `ajantad child --index I --servers N --seed S --addr A
//!   --trace-out P [--agents K] [--loss F]` — run one server process,
//!   controlled over stdin/stdout (see `ajanta_runtime::multiproc` for
//!   the protocol). Spawned by a parent, not by hand.
//! * `ajantad --smoke [--servers N] [--agents K] [--loss F] [--tcp]
//!   [--seed S] [--timeout SECS] [--kill I --kill-after-ms MS
//!   --down-ms MS]` — orchestrate a full cross-process smoke run: spawn
//!   N child processes of this same binary over Unix-domain sockets (or
//!   TCP with `--tcp`), drive a lossy fault-injection tour, merge the
//!   per-process trace exports, and verify 100% resolution, zero
//!   duplicate admissions, and zero orphan spans. With `--kill`, child I
//!   is SIGKILLed mid-tour and restarted against its admission WAL — the
//!   same acceptance bars must hold, except the orphan-span check (the
//!   killed incarnation's journal dies with it). Exits non-zero on any
//!   violation. Set `AJANTA_SMOKE_TRACE` to also write the merged JSONL
//!   to a file.

use std::path::PathBuf;
use std::time::Duration;

use ajanta_net::NetAddr;
use ajanta_runtime::{run_child, run_parent, ChildOpts, KillPlan, SmokeOpts};

fn usage() -> ! {
    eprintln!(
        "usage: ajantad child --index I --servers N --seed S --addr A --trace-out P \
         [--agents K] [--loss F] [--wal P] [--ctl A]\n       ajantad --smoke [--servers N] \
         [--agents K] [--loss F] [--tcp] [--seed S] [--timeout SECS] \
         [--kill I --kill-after-ms MS --down-ms MS] [--ctl] [--ctl-transcript P]"
    );
    std::process::exit(2);
}

fn take_value(args: &mut std::iter::Peekable<std::env::Args>, flag: &str) -> String {
    match args.next() {
        Some(v) => v,
        None => {
            eprintln!("ajantad: {flag} needs a value");
            usage();
        }
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() {
    let mut args = std::env::args().peekable();
    let _argv0 = args.next();
    match args.peek().map(String::as_str) {
        Some("child") => {
            args.next();
            child_main(args);
        }
        Some("--smoke") => {
            args.next();
            smoke_main(args);
        }
        _ => usage(),
    }
}

fn child_main(mut args: std::iter::Peekable<std::env::Args>) {
    let mut index = None;
    let mut servers = None;
    let mut seed = None;
    let mut addr: Option<NetAddr> = None;
    let mut trace_out = None;
    let mut agents = 32usize;
    let mut loss = 0.0f64;
    let mut wal = None;
    let mut ctl: Option<NetAddr> = None;
    while let Some(flag) = args.next() {
        let v = take_value(&mut args, &flag);
        match flag.as_str() {
            "--index" => index = v.parse().ok(),
            "--servers" => servers = v.parse().ok(),
            "--seed" => seed = parse_u64(&v),
            "--addr" => addr = v.parse().ok(),
            "--trace-out" => trace_out = Some(PathBuf::from(v)),
            "--agents" => agents = v.parse().unwrap_or(agents),
            "--loss" => loss = v.parse().unwrap_or(loss),
            "--wal" => wal = Some(PathBuf::from(v)),
            "--ctl" => ctl = v.parse().ok(),
            _ => usage(),
        }
    }
    let (Some(index), Some(servers), Some(seed), Some(addr), Some(trace_out)) =
        (index, servers, seed, addr, trace_out)
    else {
        usage();
    };
    if let Err(e) = run_child(ChildOpts {
        index,
        servers,
        seed,
        addr,
        trace_out,
        agents,
        loss,
        wal,
        ctl,
    }) {
        eprintln!("ajantad child {index}: {e}");
        std::process::exit(1);
    }
}

fn smoke_main(mut args: std::iter::Peekable<std::env::Args>) {
    let mut servers = 3usize;
    let mut agents = 32usize;
    let mut loss = 0.20f64;
    let mut seed = 0xC055_10E5u64;
    let mut uds = true;
    let mut timeout = Duration::from_secs(300);
    let mut kill_victim: Option<usize> = None;
    let mut kill_after = Duration::from_millis(150);
    let mut down = Duration::from_millis(400);
    let mut ctl = false;
    let mut ctl_transcript: Option<PathBuf> = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--tcp" => uds = false,
            "--ctl" => ctl = true,
            "--ctl-transcript" => {
                ctl_transcript = Some(PathBuf::from(take_value(&mut args, &flag)))
            }
            "--servers" => servers = take_value(&mut args, &flag).parse().unwrap_or(servers),
            "--agents" => agents = take_value(&mut args, &flag).parse().unwrap_or(agents),
            "--loss" => loss = take_value(&mut args, &flag).parse().unwrap_or(loss),
            "--seed" => seed = parse_u64(&take_value(&mut args, &flag)).unwrap_or(seed),
            "--timeout" => {
                timeout = Duration::from_secs(
                    take_value(&mut args, &flag)
                        .parse()
                        .unwrap_or(timeout.as_secs()),
                )
            }
            "--kill" => kill_victim = take_value(&mut args, &flag).parse().ok(),
            "--kill-after-ms" => {
                kill_after = Duration::from_millis(
                    take_value(&mut args, &flag)
                        .parse()
                        .unwrap_or(kill_after.as_millis() as u64),
                )
            }
            "--down-ms" => {
                down = Duration::from_millis(
                    take_value(&mut args, &flag)
                        .parse()
                        .unwrap_or(down.as_millis() as u64),
                )
            }
            _ => usage(),
        }
    }
    let bin = std::env::current_exe().expect("resolving own binary path");
    let dir = std::env::temp_dir().join(format!("ajanta-smoke-{}", std::process::id()));
    let report = match run_parent(SmokeOpts {
        bin,
        servers,
        seed,
        agents,
        loss,
        uds,
        dir: dir.clone(),
        timeout,
        kill: kill_victim.map(|victim| KillPlan {
            victim,
            after: kill_after,
            down,
        }),
        ctl,
        ctl_transcript: ctl_transcript.clone(),
    }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ajantad --smoke: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "smoke: {} processes over {}, {} agents at {:.0}% loss: \
         reported={} completed={} dup_admissions={} traces={} spans={} orphans={} \
         restarts={} wal_replays={}",
        servers,
        if uds { "uds" } else { "tcp" },
        report.agents,
        loss * 100.0,
        report.reported,
        report.completed,
        report.duplicate_admissions,
        report.traces,
        report.spans,
        report.orphans,
        report.restarts,
        report.wal_replays,
    );
    if report.ctl_exercised {
        match &ctl_transcript {
            Some(p) => println!(
                "smoke: control plane exercised; transcript at {}",
                p.display()
            ),
            None => println!("smoke: control plane exercised"),
        }
    }
    if let Ok(path) = std::env::var("AJANTA_SMOKE_TRACE") {
        if let Err(e) = std::fs::write(&path, &report.merged_jsonl) {
            eprintln!("ajantad --smoke: writing {path}: {e}");
        } else {
            println!("smoke: merged trace written to {path}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    // A SIGKILLed incarnation takes its in-memory journal with it, so
    // spans it emitted before dying are absent from the merge: survivors'
    // child spans legitimately orphan, and whole traces can drop out of
    // the forest. The durability bars (every agent reported, no
    // duplicate admissions) hold regardless. The control-plane exercise
    // plants one sleeper agent, whose launch adds one trace to the tour's.
    let crashed = kill_victim.is_some();
    let expected_traces = report.agents + usize::from(ctl);
    let ok = report.reported == report.agents
        && report.duplicate_admissions == 0
        && (crashed || report.traces == expected_traces)
        && (crashed || report.orphans == 0)
        && report.completed > 0;
    if !ok {
        eprintln!("ajantad --smoke: FAILED acceptance checks");
        std::process::exit(1);
    }
}
