//! The control plane: a length-framed request/response protocol that
//! exposes the server-handle surface remotely — the operational face of
//! the paper's protected-resource model.
//!
//! The paper's mechanism (grants, meters, revocation, audit) only pays
//! off operationally if a host administrator can *see and act on* it at
//! runtime. This module serves exactly that over a UDS or TCP socket,
//! alongside the data plane:
//!
//! * **inventory** — `list`/`info` over every agent a server knows:
//!   resident (domain database), hibernated (bundle store), and
//!   in-flight (unresolved WAL custody on unacked frames);
//! * **telemetry** — the typed
//!   [`TelemetrySnapshot`](ajanta_core::telemetry::TelemetrySnapshot)
//!   (counters + histograms), shipped as values, not pre-rendered text,
//!   so clients can aggregate a fleet and render locally;
//! * **journal** — tail and follow with a cursor on the journal's dense
//!   global `seq`; eviction gaps are detectable exactly (the page
//!   reports the drop counter alongside);
//! * **actions** — `hibernate`/`wake` of individual agents and
//!   fleet-wide proxy revocation fanned out to every server this
//!   process fronts.
//!
//! Framing reuses [`ajanta_net::frame`] (varint length prefix, 16 MiB
//! cap); payloads are [`ajanta_wire::Wire`]-encoded [`ControlRequest`] /
//! [`ControlResponse`] values. One connection carries any number of
//! sequential request/response exchanges. The control socket is
//! **local-operator trusted** (a UDS path or loopback TCP port owned by
//! the host administrator): requests are not authenticated at this
//! layer, exactly like a container runtime's control socket.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ajanta_core::telemetry::TelemetrySnapshot;
use ajanta_naming::Urn;
use ajanta_net::frame::{encode_frame, FrameBuffer};
use ajanta_net::socket::NetAddr;
use ajanta_wire::{Decoder, Encoder, Wire, WireError};
use parking_lot::Mutex;

use crate::server::ControlView;

/// Protocol version served and expected. Bumped on any incompatible
/// change to the request/response encodings.
pub const CONTROL_VERSION: u64 = 1;

/// Sanity cap on collection lengths inside control responses.
const MAX_ITEMS: usize = 1 << 16;

/// Where an agent currently is, as far as one server knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentState {
    /// Admitted, holding a protection domain, schedulable.
    Resident,
    /// Resident but spilled to the bundle store (no interpreter, no
    /// scheduler task).
    Hibernated,
    /// Custody is on the wire: an unacked reliable frame carries its
    /// unresolved WAL admission.
    InFlight,
}

impl AgentState {
    /// Stable kebab-case label.
    pub fn as_str(self) -> &'static str {
        match self {
            AgentState::Resident => "resident",
            AgentState::Hibernated => "hibernated",
            AgentState::InFlight => "in-flight",
        }
    }
}

impl std::fmt::Display for AgentState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Wire for AgentState {
    fn encode(&self, e: &mut Encoder) {
        e.put_u8(*self as u8);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        match d.get_u8()? {
            0 => Ok(AgentState::Resident),
            1 => Ok(AgentState::Hibernated),
            2 => Ok(AgentState::InFlight),
            tag => Err(WireError::BadTag {
                ty: "AgentState",
                tag,
            }),
        }
    }
}

/// One row of the fleet-wide agent listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgentEntry {
    /// The server reporting this agent.
    pub server: Urn,
    /// The agent's global name.
    pub agent: Urn,
    /// Where it currently is.
    pub state: AgentState,
    /// The itinerary hop (in-flight entries; 0 when unknown).
    pub hop: u64,
    /// Its protection domain id (0 for non-resident states).
    pub domain: u64,
    /// Fuel consumed so far in this stay.
    pub fuel_used: u64,
    /// Live resource bindings.
    pub bindings: u64,
}

impl Wire for AgentEntry {
    fn encode(&self, e: &mut Encoder) {
        self.server.encode(e);
        self.agent.encode(e);
        self.state.encode(e);
        e.put_varint(self.hop);
        e.put_varint(self.domain);
        e.put_varint(self.fuel_used);
        e.put_varint(self.bindings);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(AgentEntry {
            server: Urn::decode(d)?,
            agent: Urn::decode(d)?,
            state: AgentState::decode(d)?,
            hop: d.get_varint()?,
            domain: d.get_varint()?,
            fuel_used: d.get_varint()?,
            bindings: d.get_varint()?,
        })
    }
}

/// Everything one server knows about one agent (the `info` op).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgentDetail {
    /// The listing row.
    pub entry: AgentEntry,
    /// Owning principal.
    pub owner: String,
    /// Creating principal.
    pub creator: String,
    /// Home site for reports.
    pub home: String,
    /// Fuel quota for the stay.
    pub fuel_limit: u64,
    /// Bytes allocated so far.
    pub alloc_bytes: u64,
    /// Resources this agent holds proxies to.
    pub bound_resources: Vec<String>,
}

impl Wire for AgentDetail {
    fn encode(&self, e: &mut Encoder) {
        self.entry.encode(e);
        e.put_str(&self.owner);
        e.put_str(&self.creator);
        e.put_str(&self.home);
        e.put_varint(self.fuel_limit);
        e.put_varint(self.alloc_bytes);
        e.put_varint(self.bound_resources.len() as u64);
        for r in &self.bound_resources {
            e.put_str(r);
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        let entry = AgentEntry::decode(d)?;
        let owner = d.get_str()?;
        let creator = d.get_str()?;
        let home = d.get_str()?;
        let fuel_limit = d.get_varint()?;
        let alloc_bytes = d.get_varint()?;
        let n = d.get_varint()? as usize;
        if n > MAX_ITEMS {
            return Err(WireError::TooLong(n as u64));
        }
        let mut bound_resources = Vec::with_capacity(n);
        for _ in 0..n {
            bound_resources.push(d.get_str()?);
        }
        Ok(AgentDetail {
            entry,
            owner,
            creator,
            home,
            fuel_limit,
            alloc_bytes,
            bound_resources,
        })
    }
}

/// One journal record, flattened for the wire: the typed `Event` enum
/// stays in-process (its `&'static str` fields don't travel); a client
/// gets the variant label, the subject agent, and a deterministic
/// rendering — identical to what `Event::label`/`Event::render` produce
/// locally, which is exactly what the remote/local parity test pins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Global sequence number (dense per server).
    pub seq: u64,
    /// Virtual-time stamp.
    pub at: u64,
    /// Severity index (see `Severity::from_index`).
    pub severity: u8,
    /// Variant label (`Event::label`).
    pub label: String,
    /// The subject agent, if the event is about one.
    pub agent: Option<String>,
    /// Rendered fields (`Event::render`).
    pub text: String,
}

impl Wire for JournalEntry {
    fn encode(&self, e: &mut Encoder) {
        e.put_varint(self.seq);
        e.put_varint(self.at);
        e.put_u8(self.severity);
        e.put_str(&self.label);
        self.agent.encode(e);
        e.put_str(&self.text);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(JournalEntry {
            seq: d.get_varint()?,
            at: d.get_varint()?,
            severity: d.get_u8()?,
            label: d.get_str()?,
            agent: Option::<String>::decode(d)?,
            text: d.get_str()?,
        })
    }
}

/// One server's page of journal records, with the cursor bookkeeping a
/// drop-aware follower needs: `next_cursor` resumes exactly after the
/// last returned record, and because sequence numbers are dense, a
/// follower comparing its cursor against the first returned `seq` sees
/// eviction gaps exactly; `dropped` says how much the ring has ever
/// evicted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalPage {
    /// The server whose journal this page is from.
    pub server: Urn,
    /// Records, oldest first.
    pub entries: Vec<JournalEntry>,
    /// Pass this as the next request's cursor to continue seamlessly.
    pub next_cursor: u64,
    /// Lifetime eviction count of the journal (drop-aware following).
    pub dropped: u64,
}

impl Wire for JournalPage {
    fn encode(&self, e: &mut Encoder) {
        self.server.encode(e);
        e.put_varint(self.entries.len() as u64);
        for entry in &self.entries {
            entry.encode(e);
        }
        e.put_varint(self.next_cursor);
        e.put_varint(self.dropped);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        let server = Urn::decode(d)?;
        let n = d.get_varint()? as usize;
        if n > MAX_ITEMS {
            return Err(WireError::TooLong(n as u64));
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push(JournalEntry::decode(d)?);
        }
        Ok(JournalPage {
            server,
            entries,
            next_cursor: d.get_varint()?,
            dropped: d.get_varint()?,
        })
    }
}

/// One server's liveness/occupancy summary (the `status` op).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStatus {
    /// The server.
    pub server: Urn,
    /// Resident agents (domain database size).
    pub resident: u64,
    /// Hibernated agents (bundle store size).
    pub hibernated: u64,
    /// Bytes the hibernated bundles occupy.
    pub hibernated_bytes: u64,
    /// Unresolved in-flight custody entries.
    pub in_flight: u64,
    /// Reliable sends awaiting an ack.
    pub pending_sends: u64,
    /// The journal's next sequence number.
    pub journal_next_seq: u64,
    /// The journal's lifetime eviction count.
    pub journal_dropped: u64,
}

impl Wire for ServerStatus {
    fn encode(&self, e: &mut Encoder) {
        self.server.encode(e);
        e.put_varint(self.resident);
        e.put_varint(self.hibernated);
        e.put_varint(self.hibernated_bytes);
        e.put_varint(self.in_flight);
        e.put_varint(self.pending_sends);
        e.put_varint(self.journal_next_seq);
        e.put_varint(self.journal_dropped);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ServerStatus {
            server: Urn::decode(d)?,
            resident: d.get_varint()?,
            hibernated: d.get_varint()?,
            hibernated_bytes: d.get_varint()?,
            in_flight: d.get_varint()?,
            pending_sends: d.get_varint()?,
            journal_next_seq: d.get_varint()?,
            journal_dropped: d.get_varint()?,
        })
    }
}

/// One request frame. Every op addresses all servers behind the socket
/// unless it names an agent/resource (then each server answers for what
/// it hosts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlRequest {
    /// Liveness + protocol version + the servers behind this socket.
    Health,
    /// Per-server occupancy summary.
    Status,
    /// Every agent every server knows: resident, hibernated, in-flight.
    ListAgents,
    /// Everything known about one agent.
    AgentInfo {
        /// The agent asked about.
        agent: Urn,
    },
    /// Typed counter/histogram snapshot of every server.
    Metrics,
    /// Journal page. `cursor: None` = the most recent `max` records;
    /// `Some(seq)` = records with `seq >= cursor`, capped at `max`
    /// oldest-first (the follow primitive).
    JournalTail {
        /// Resume point on the dense per-server sequence.
        cursor: Option<u64>,
        /// Page size cap.
        max: u64,
    },
    /// The follow primitive: per-server cursors (each journal has its
    /// own dense seq space). A server with an entry returns records
    /// `seq >= cursor`; a server absent from `cursors` is tailed
    /// (first contact). Both capped at `max` per server.
    JournalFollow {
        /// `(server, cursor)` resume points.
        cursors: Vec<(Urn, u64)>,
        /// Page size cap per server.
        max: u64,
    },
    /// The most recent `tail` agent log lines per server.
    Logs {
        /// Line cap per server.
        tail: u64,
    },
    /// Trace-relevant journal records of every server, as JSONL.
    Trace,
    /// Ask one agent to hibernate at its next safe yield point; waits
    /// briefly for the spill to land.
    Hibernate {
        /// The agent to spill.
        agent: Urn,
    },
    /// Wake one hibernated agent.
    Wake {
        /// The agent to revive.
        agent: Urn,
    },
    /// Revoke every live proxy for `resource` on every server behind
    /// this socket (one leg of a world-wide revocation).
    Revoke {
        /// The resource whose proxies die.
        resource: Urn,
    },
}

impl Wire for ControlRequest {
    fn encode(&self, e: &mut Encoder) {
        match self {
            ControlRequest::Health => e.put_u8(0),
            ControlRequest::Status => e.put_u8(1),
            ControlRequest::ListAgents => e.put_u8(2),
            ControlRequest::AgentInfo { agent } => {
                e.put_u8(3);
                agent.encode(e);
            }
            ControlRequest::Metrics => e.put_u8(4),
            ControlRequest::JournalTail { cursor, max } => {
                e.put_u8(5);
                cursor.encode(e);
                e.put_varint(*max);
            }
            ControlRequest::Logs { tail } => {
                e.put_u8(6);
                e.put_varint(*tail);
            }
            ControlRequest::Trace => e.put_u8(7),
            ControlRequest::Hibernate { agent } => {
                e.put_u8(8);
                agent.encode(e);
            }
            ControlRequest::Wake { agent } => {
                e.put_u8(9);
                agent.encode(e);
            }
            ControlRequest::Revoke { resource } => {
                e.put_u8(10);
                resource.encode(e);
            }
            ControlRequest::JournalFollow { cursors, max } => {
                e.put_u8(11);
                e.put_varint(cursors.len() as u64);
                for c in cursors {
                    c.encode(e);
                }
                e.put_varint(*max);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        match d.get_u8()? {
            0 => Ok(ControlRequest::Health),
            1 => Ok(ControlRequest::Status),
            2 => Ok(ControlRequest::ListAgents),
            3 => Ok(ControlRequest::AgentInfo {
                agent: Urn::decode(d)?,
            }),
            4 => Ok(ControlRequest::Metrics),
            5 => Ok(ControlRequest::JournalTail {
                cursor: Option::<u64>::decode(d)?,
                max: d.get_varint()?,
            }),
            6 => Ok(ControlRequest::Logs {
                tail: d.get_varint()?,
            }),
            7 => Ok(ControlRequest::Trace),
            8 => Ok(ControlRequest::Hibernate {
                agent: Urn::decode(d)?,
            }),
            9 => Ok(ControlRequest::Wake {
                agent: Urn::decode(d)?,
            }),
            10 => Ok(ControlRequest::Revoke {
                resource: Urn::decode(d)?,
            }),
            11 => {
                let n = d.get_varint()? as usize;
                if n > MAX_ITEMS {
                    return Err(WireError::TooLong(n as u64));
                }
                let mut cursors = Vec::with_capacity(n);
                for _ in 0..n {
                    cursors.push(<(Urn, u64)>::decode(d)?);
                }
                Ok(ControlRequest::JournalFollow {
                    cursors,
                    max: d.get_varint()?,
                })
            }
            tag => Err(WireError::BadTag {
                ty: "ControlRequest",
                tag,
            }),
        }
    }
}

/// One response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(clippy::large_enum_variant)] // transient, one per RPC; boxing buys nothing
pub enum ControlResponse {
    /// Liveness: protocol version + server names behind this socket.
    Health {
        /// [`CONTROL_VERSION`] of the serving side.
        version: u64,
        /// Servers this socket fronts.
        servers: Vec<Urn>,
    },
    /// Per-server occupancy.
    Status(Vec<ServerStatus>),
    /// The fleet-wide agent listing.
    Agents(Vec<AgentEntry>),
    /// One agent's detail (`None` = no server behind this socket knows
    /// it).
    Agent(Option<AgentDetail>),
    /// Typed telemetry per server.
    Metrics(Vec<(Urn, TelemetrySnapshot)>),
    /// Journal pages, one per server.
    Journal(Vec<JournalPage>),
    /// Agent log lines: `(server, agent, text)`, oldest first.
    Logs(Vec<(Urn, (Urn, String))>),
    /// Merged JSONL trace export of every server behind this socket.
    Trace(String),
    /// Outcome of a hibernate/wake action.
    Ack(bool),
    /// Outcome of a revocation leg: live proxies invalidated, servers
    /// that journaled the revocation.
    Revoked {
        /// Live proxies invalidated across the servers.
        proxies: u64,
        /// Servers that processed (and journaled) the revocation.
        servers: u64,
    },
    /// The request could not be served.
    Error(String),
}

impl Wire for ControlResponse {
    fn encode(&self, e: &mut Encoder) {
        match self {
            ControlResponse::Health { version, servers } => {
                e.put_u8(0);
                e.put_varint(*version);
                e.put_varint(servers.len() as u64);
                for s in servers {
                    s.encode(e);
                }
            }
            ControlResponse::Status(v) => {
                e.put_u8(1);
                e.put_varint(v.len() as u64);
                for s in v {
                    s.encode(e);
                }
            }
            ControlResponse::Agents(v) => {
                e.put_u8(2);
                e.put_varint(v.len() as u64);
                for a in v {
                    a.encode(e);
                }
            }
            ControlResponse::Agent(detail) => {
                e.put_u8(3);
                detail.encode(e);
            }
            ControlResponse::Metrics(v) => {
                e.put_u8(4);
                e.put_varint(v.len() as u64);
                for pair in v {
                    pair.encode(e);
                }
            }
            ControlResponse::Journal(v) => {
                e.put_u8(5);
                e.put_varint(v.len() as u64);
                for p in v {
                    p.encode(e);
                }
            }
            ControlResponse::Logs(v) => {
                e.put_u8(6);
                e.put_varint(v.len() as u64);
                for line in v {
                    line.encode(e);
                }
            }
            ControlResponse::Trace(jsonl) => {
                e.put_u8(7);
                e.put_str(jsonl);
            }
            ControlResponse::Ack(ok) => {
                e.put_u8(8);
                ok.encode(e);
            }
            ControlResponse::Revoked { proxies, servers } => {
                e.put_u8(9);
                e.put_varint(*proxies);
                e.put_varint(*servers);
            }
            ControlResponse::Error(msg) => {
                e.put_u8(10);
                e.put_str(msg);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        fn many<T: Wire>(d: &mut Decoder<'_>) -> Result<Vec<T>, WireError> {
            let n = d.get_varint()? as usize;
            if n > MAX_ITEMS {
                return Err(WireError::TooLong(n as u64));
            }
            let mut v = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                v.push(T::decode(d)?);
            }
            Ok(v)
        }
        match d.get_u8()? {
            0 => Ok(ControlResponse::Health {
                version: d.get_varint()?,
                servers: many(d)?,
            }),
            1 => Ok(ControlResponse::Status(many(d)?)),
            2 => Ok(ControlResponse::Agents(many(d)?)),
            3 => Ok(ControlResponse::Agent(Option::<AgentDetail>::decode(d)?)),
            4 => Ok(ControlResponse::Metrics(many(d)?)),
            5 => Ok(ControlResponse::Journal(many(d)?)),
            6 => Ok(ControlResponse::Logs(many(d)?)),
            7 => Ok(ControlResponse::Trace(d.get_str()?)),
            8 => Ok(ControlResponse::Ack(bool::decode(d)?)),
            9 => Ok(ControlResponse::Revoked {
                proxies: d.get_varint()?,
                servers: d.get_varint()?,
            }),
            10 => Ok(ControlResponse::Error(d.get_str()?)),
            tag => Err(WireError::BadTag {
                ty: "ControlResponse",
                tag,
            }),
        }
    }
}

/// How long a synchronous `Hibernate` op waits for the spill to land
/// before answering `Ack(false)`. The request stays queued either way —
/// the agent still hibernates at its next safe yield point.
const HIBERNATE_WAIT: Duration = Duration::from_secs(2);

/// Serves [`ControlRequest`]s against a set of [`ControlView`]s. Pure
/// logic, no I/O — [`ControlServer`] drives it from sockets, and tests
/// drive it directly to pin remote/local parity.
pub fn serve_request(views: &[ControlView], req: &ControlRequest) -> ControlResponse {
    match req {
        ControlRequest::Health => ControlResponse::Health {
            version: CONTROL_VERSION,
            servers: views.iter().map(|v| v.name().clone()).collect(),
        },
        ControlRequest::Status => ControlResponse::Status(
            views
                .iter()
                .map(|v| {
                    let journal = v.journal();
                    ServerStatus {
                        server: v.name().clone(),
                        resident: v.agent_records().len() as u64,
                        hibernated: v.hibernated_list().len() as u64,
                        hibernated_bytes: v.hibernated_bytes() as u64,
                        in_flight: v.in_flight_agents().len() as u64,
                        pending_sends: v.pending_send_count() as u64,
                        journal_next_seq: journal.next_seq(),
                        journal_dropped: journal.dropped(),
                    }
                })
                .collect(),
        ),
        ControlRequest::ListAgents => {
            let mut out = Vec::new();
            for v in views {
                out.extend(list_agents(v));
            }
            ControlResponse::Agents(out)
        }
        ControlRequest::AgentInfo { agent } => {
            for v in views {
                if let Some(detail) = agent_info(v, agent) {
                    return ControlResponse::Agent(Some(detail));
                }
            }
            ControlResponse::Agent(None)
        }
        ControlRequest::Metrics => ControlResponse::Metrics(
            views
                .iter()
                .map(|v| (v.name().clone(), v.telemetry()))
                .collect(),
        ),
        ControlRequest::JournalTail { cursor, max } => {
            let max = (*max as usize).min(MAX_ITEMS);
            ControlResponse::Journal(
                views
                    .iter()
                    .map(|v| journal_page(v, *cursor, max))
                    .collect(),
            )
        }
        ControlRequest::JournalFollow { cursors, max } => {
            let max = (*max as usize).min(MAX_ITEMS);
            ControlResponse::Journal(
                views
                    .iter()
                    .map(|v| {
                        let cursor = cursors.iter().find(|(s, _)| s == v.name()).map(|(_, c)| *c);
                        journal_page(v, cursor, max)
                    })
                    .collect(),
            )
        }
        ControlRequest::Logs { tail } => {
            let tail = (*tail as usize).min(MAX_ITEMS);
            let mut out = Vec::new();
            for v in views {
                let server = v.name().clone();
                out.extend(
                    v.logs_tail(tail)
                        .into_iter()
                        .map(|(agent, text)| (server.clone(), (agent, text))),
                );
            }
            ControlResponse::Logs(out)
        }
        ControlRequest::Trace => {
            let mut jsonl = String::new();
            for v in views {
                jsonl.push_str(&v.export_jsonl());
            }
            ControlResponse::Trace(jsonl)
        }
        ControlRequest::Hibernate { agent } => {
            let Some(view) = views.iter().find(|v| v.record_of(agent).is_some()) else {
                return ControlResponse::Ack(false);
            };
            if view.is_hibernated(agent) {
                return ControlResponse::Ack(true);
            }
            if !view.hibernate(agent) {
                return ControlResponse::Ack(false);
            }
            // The spill happens on the agent's own task at its next
            // yield; wait briefly so the common case answers done.
            let deadline = Instant::now() + HIBERNATE_WAIT;
            while Instant::now() < deadline {
                if view.is_hibernated(agent) {
                    return ControlResponse::Ack(true);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            ControlResponse::Ack(false)
        }
        ControlRequest::Wake { agent } => ControlResponse::Ack(views.iter().any(|v| v.wake(agent))),
        ControlRequest::Revoke { resource } => {
            let mut proxies = 0u64;
            for v in views {
                proxies += v.revoke_resource(resource) as u64;
            }
            ControlResponse::Revoked {
                proxies,
                servers: views.len() as u64,
            }
        }
    }
}

/// The three inventory sources of one server, merged: resident agents
/// (tagged hibernated when their bundle is stored) and in-flight
/// custody entries.
fn list_agents(v: &ControlView) -> Vec<AgentEntry> {
    let server = v.name().clone();
    let hibernated: std::collections::HashSet<Urn> = v.hibernated_list().into_iter().collect();
    let mut out: Vec<AgentEntry> = v
        .agent_records()
        .into_iter()
        .map(|r| AgentEntry {
            server: server.clone(),
            agent: r.agent.clone(),
            state: if hibernated.contains(&r.agent) {
                AgentState::Hibernated
            } else {
                AgentState::Resident
            },
            hop: 0,
            domain: r.domain.0,
            fuel_used: r.usage.fuel,
            bindings: r.usage.bindings as u64,
        })
        .collect();
    for (agent, hop) in v.in_flight_agents() {
        out.push(AgentEntry {
            server: server.clone(),
            agent,
            state: AgentState::InFlight,
            hop,
            domain: 0,
            fuel_used: 0,
            bindings: 0,
        });
    }
    out.sort_by(|a, b| a.agent.cmp(&b.agent));
    out
}

fn agent_info(v: &ControlView, agent: &Urn) -> Option<AgentDetail> {
    let r = v.record_of(agent)?;
    let state = if v.is_hibernated(agent) {
        AgentState::Hibernated
    } else {
        AgentState::Resident
    };
    Some(AgentDetail {
        entry: AgentEntry {
            server: v.name().clone(),
            agent: r.agent,
            state,
            hop: 0,
            domain: r.domain.0,
            fuel_used: r.usage.fuel,
            bindings: r.usage.bindings as u64,
        },
        owner: r.owner.to_string(),
        creator: r.creator.to_string(),
        home: r.home.to_string(),
        fuel_limit: r.limits.fuel,
        alloc_bytes: r.usage.alloc_bytes,
        bound_resources: r.bindings.iter().map(|b| b.to_string()).collect(),
    })
}

fn journal_page(v: &ControlView, cursor: Option<u64>, max: usize) -> JournalPage {
    let journal = v.journal();
    let records = match cursor {
        // Tail: the newest `max`.
        None => journal.recent(max),
        // Follow: oldest-first from the cursor, capped.
        Some(c) => {
            let mut r = journal.since(c);
            r.truncate(max);
            r
        }
    };
    let next_cursor = records
        .last()
        .map(|r| r.seq + 1)
        .unwrap_or_else(|| cursor.unwrap_or_else(|| journal.next_seq()));
    JournalPage {
        server: v.name().clone(),
        entries: records
            .into_iter()
            .map(|r| JournalEntry {
                seq: r.seq,
                at: r.at,
                severity: r.severity.index(),
                label: r.event.label().to_string(),
                agent: r.event.agent().map(|a| a.to_string()),
                text: r.event.render(),
            })
            .collect(),
        next_cursor,
        dropped: journal.dropped(),
    }
}

enum Listener {
    Tcp(TcpListener),
    Uds(UnixListener),
}

enum Stream {
    Tcp(TcpStream),
    Uds(UnixStream),
}

impl Stream {
    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(t),
            Stream::Uds(s) => s.set_read_timeout(t),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Uds(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Uds(s) => s.flush(),
        }
    }
}

/// The control socket server: an accept loop plus one thread per
/// connection, each answering framed [`ControlRequest`]s against the
/// same set of [`ControlView`]s until the peer hangs up or
/// [`ControlServer::shutdown`] is called.
pub struct ControlServer {
    addr: NetAddr,
    stop: Arc<AtomicBool>,
    accept_join: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl ControlServer {
    /// Binds `addr` and starts serving `views`. `tcp:127.0.0.1:0` binds
    /// an ephemeral port — read the effective address back with
    /// [`ControlServer::addr`]. A UDS path left behind by a dead process
    /// is removed before binding (the bind would otherwise fail), and
    /// removed again on shutdown.
    pub fn serve(addr: &NetAddr, views: Vec<ControlView>) -> io::Result<ControlServer> {
        let (listener, effective) = match addr {
            NetAddr::Tcp(a) => {
                let l = TcpListener::bind(a)?;
                let local = l.local_addr()?;
                (Listener::Tcp(l), NetAddr::Tcp(local))
            }
            NetAddr::Uds(path) => {
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                (Listener::Uds(l), NetAddr::Uds(path.clone()))
            }
        };
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_stop = Arc::clone(&stop);
        let accept_conns = Arc::clone(&conns);
        let views = Arc::new(views);
        let accept_join = std::thread::Builder::new()
            .name("ajanta-ctl-accept".into())
            .spawn(move || loop {
                let stream = match &listener {
                    Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
                    Listener::Uds(l) => l.accept().map(|(s, _)| Stream::Uds(s)),
                };
                if accept_stop.load(Ordering::Acquire) {
                    return;
                }
                let Ok(stream) = stream else { continue };
                let views = Arc::clone(&views);
                let conn_stop = Arc::clone(&accept_stop);
                if let Ok(handle) = std::thread::Builder::new()
                    .name("ajanta-ctl-conn".into())
                    .spawn(move || serve_connection(stream, &views, &conn_stop))
                {
                    let mut conns = accept_conns.lock();
                    conns.retain(|h| !h.is_finished());
                    conns.push(handle);
                }
            })
            .expect("spawning control accept thread");
        Ok(ControlServer {
            addr: effective,
            stop,
            accept_join: Some(accept_join),
            conns,
        })
    }

    /// The effective bound address (resolved ephemeral port included).
    pub fn addr(&self) -> &NetAddr {
        &self.addr
    }

    /// Stops accepting, disconnects idle handlers, joins all threads,
    /// and removes a UDS socket file.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        match &self.addr {
            NetAddr::Tcp(a) => {
                let _ = TcpStream::connect_timeout(a, Duration::from_millis(250));
            }
            NetAddr::Uds(p) => {
                let _ = UnixStream::connect(p);
            }
        }
        if let Some(join) = self.accept_join.take() {
            let _ = join.join();
        }
        for handle in std::mem::take(&mut *self.conns.lock()) {
            let _ = handle.join();
        }
        if let NetAddr::Uds(p) = &self.addr {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// One connection: framed sequential request/response until EOF, a
/// framing error, or server shutdown. Read timeouts let the handler
/// poll the stop flag while idle.
fn serve_connection(mut stream: Stream, views: &[ControlView], stop: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut fb = FrameBuffer::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        // Serve every complete frame already buffered.
        loop {
            match fb.next_frame() {
                Ok(Some(frame)) => {
                    let response = match ControlRequest::from_bytes(&frame) {
                        Ok(req) => serve_request(views, &req),
                        Err(e) => ControlResponse::Error(format!("bad request: {e}")),
                    };
                    if stream
                        .write_all(&encode_frame(&response.to_bytes()))
                        .is_err()
                    {
                        return;
                    }
                    let _ = stream.flush();
                }
                Ok(None) => break,
                // Framing lost: the only sane recovery is hanging up.
                Err(_) => return,
            }
        }
        if stop.load(Ordering::Acquire) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => fb.extend(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => return,
        }
    }
}

/// A blocking control-socket client: one connection, sequential
/// [`ControlClient::call`]s.
pub struct ControlClient {
    stream: Stream,
    fb: FrameBuffer,
}

impl ControlClient {
    /// Connects to a control socket.
    pub fn connect(addr: &NetAddr) -> io::Result<ControlClient> {
        let stream = match addr {
            NetAddr::Tcp(a) => Stream::Tcp(TcpStream::connect(a)?),
            NetAddr::Uds(p) => Stream::Uds(UnixStream::connect(p)?),
        };
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(ControlClient {
            stream,
            fb: FrameBuffer::new(),
        })
    }

    /// Parses `addr` (`uds:/path` or `tcp:host:port`) and connects.
    pub fn connect_str(addr: &str) -> io::Result<ControlClient> {
        let addr: NetAddr = addr
            .parse()
            .map_err(|e: String| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        ControlClient::connect(&addr)
    }

    /// Sends one request and blocks for its response.
    pub fn call(&mut self, req: &ControlRequest) -> io::Result<ControlResponse> {
        self.stream.write_all(&encode_frame(&req.to_bytes()))?;
        self.stream.flush()?;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.fb.next_frame() {
                Ok(Some(frame)) => {
                    return ControlResponse::from_bytes(&frame)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
                }
                Ok(None) => {}
                Err(e) => {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
                }
            }
            match self.stream.read(&mut chunk)? {
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "control connection closed mid-response",
                    ));
                }
                n => self.fb.extend(&chunk[..n]),
            }
        }
    }
}

/// Revokes `resource` across a whole world: one [`ControlRequest::Revoke`]
/// per endpoint, in the order given. Each endpoint fans out to every
/// server it fronts before the next endpoint is contacted, so after this
/// returns every server in the fleet has journaled the revocation.
/// Returns `(live proxies invalidated, servers reached)`.
pub fn revoke_everywhere(endpoints: &[NetAddr], resource: &Urn) -> io::Result<(u64, u64)> {
    let mut proxies = 0u64;
    let mut servers = 0u64;
    for addr in endpoints {
        let mut client = ControlClient::connect(addr)?;
        match client.call(&ControlRequest::Revoke {
            resource: resource.clone(),
        })? {
            ControlResponse::Revoked {
                proxies: p,
                servers: s,
            } => {
                proxies += p;
                servers += s;
            }
            ControlResponse::Error(e) => {
                return Err(io::Error::other(format!("revoke at {addr}: {e}")));
            }
            other => {
                return Err(io::Error::other(format!(
                    "revoke at {addr}: unexpected response {other:?}"
                )));
            }
        }
    }
    Ok((proxies, servers))
}

/// Client-side journal follower: per-server cursors over repeated
/// [`ControlRequest::JournalTail`] calls, verifying the no-gap invariant
/// (sequence numbers are dense, so `first.seq > cursor` means eviction —
/// tolerated only when the page's `dropped` account grew to cover it).
pub struct JournalFollower {
    cursors: HashMap<Urn, u64>,
    dropped_seen: HashMap<Urn, u64>,
    /// Gaps not covered by the drop counters (protocol bugs).
    pub unexplained_gaps: u64,
}

impl Default for JournalFollower {
    fn default() -> Self {
        JournalFollower::new()
    }
}

impl JournalFollower {
    /// A follower with no cursors (first poll tails, then follows).
    pub fn new() -> Self {
        JournalFollower {
            cursors: HashMap::new(),
            dropped_seen: HashMap::new(),
            unexplained_gaps: 0,
        }
    }

    /// The request to send next: every known server resumes at its own
    /// cursor, servers not yet seen are tailed.
    pub fn request(&self, max: u64) -> ControlRequest {
        let mut cursors: Vec<(Urn, u64)> =
            self.cursors.iter().map(|(s, c)| (s.clone(), *c)).collect();
        cursors.sort();
        ControlRequest::JournalFollow { cursors, max }
    }

    /// Ingests one page, advancing that server's cursor; returns the
    /// entries. Gap accounting: sequence numbers are dense per server,
    /// so a first-entry seq beyond the cursor, or a hole *inside* the
    /// page (shard eviction strikes anywhere in the retained range),
    /// is explained only by growth of the server's drop counter.
    pub fn ingest(&mut self, page: &JournalPage) -> Vec<JournalEntry> {
        let prev_dropped = self.dropped_seen.get(&page.server).copied().unwrap_or(0);
        let mut gaps = 0u64;
        if let (Some(cursor), Some(first)) = (
            self.cursors.get(&page.server).copied(),
            page.entries.first(),
        ) {
            if first.seq > cursor {
                gaps += first.seq - cursor;
            }
        }
        for pair in page.entries.windows(2) {
            gaps += pair[1].seq.saturating_sub(pair[0].seq + 1);
        }
        if gaps > 0 && page.dropped <= prev_dropped {
            self.unexplained_gaps += gaps;
        }
        self.cursors.insert(page.server.clone(), page.next_cursor);
        self.dropped_seen.insert(page.server.clone(), page.dropped);
        page.entries.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn urn(kind: &str, leaf: &str) -> Urn {
        match kind {
            "agent" => Urn::agent("x.org", [leaf]).unwrap(),
            "server" => Urn::server("x.org", [leaf]).unwrap(),
            _ => Urn::resource("x.org", [leaf]).unwrap(),
        }
    }

    #[test]
    fn requests_roundtrip_on_the_wire() {
        let reqs = [
            ControlRequest::Health,
            ControlRequest::Status,
            ControlRequest::ListAgents,
            ControlRequest::AgentInfo {
                agent: urn("agent", "a"),
            },
            ControlRequest::Metrics,
            ControlRequest::JournalTail {
                cursor: Some(42),
                max: 100,
            },
            ControlRequest::JournalTail {
                cursor: None,
                max: 10,
            },
            ControlRequest::JournalFollow {
                cursors: vec![(urn("server", "s"), 7)],
                max: 64,
            },
            ControlRequest::Logs { tail: 5 },
            ControlRequest::Trace,
            ControlRequest::Hibernate {
                agent: urn("agent", "a"),
            },
            ControlRequest::Wake {
                agent: urn("agent", "a"),
            },
            ControlRequest::Revoke {
                resource: urn("resource", "r"),
            },
        ];
        for req in reqs {
            let bytes = req.to_bytes();
            assert_eq!(ControlRequest::from_bytes(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn responses_roundtrip_on_the_wire() {
        let entry = AgentEntry {
            server: urn("server", "s"),
            agent: urn("agent", "a"),
            state: AgentState::Hibernated,
            hop: 3,
            domain: 7,
            fuel_used: 99,
            bindings: 1,
        };
        let responses = [
            ControlResponse::Health {
                version: CONTROL_VERSION,
                servers: vec![urn("server", "s")],
            },
            ControlResponse::Status(vec![ServerStatus {
                server: urn("server", "s"),
                resident: 1,
                hibernated: 2,
                hibernated_bytes: 3,
                in_flight: 4,
                pending_sends: 5,
                journal_next_seq: 6,
                journal_dropped: 7,
            }]),
            ControlResponse::Agents(vec![entry.clone()]),
            ControlResponse::Agent(Some(AgentDetail {
                entry,
                owner: "o".into(),
                creator: "c".into(),
                home: "h".into(),
                fuel_limit: 1000,
                alloc_bytes: 12,
                bound_resources: vec!["r".into()],
            })),
            ControlResponse::Agent(None),
            ControlResponse::Metrics(vec![(urn("server", "s"), TelemetrySnapshot::empty())]),
            ControlResponse::Journal(vec![JournalPage {
                server: urn("server", "s"),
                entries: vec![JournalEntry {
                    seq: 1,
                    at: 2,
                    severity: 1,
                    label: "rejected".into(),
                    agent: None,
                    text: "kind=replay detail=x".into(),
                }],
                next_cursor: 2,
                dropped: 0,
            }]),
            ControlResponse::Logs(vec![(
                urn("server", "s"),
                (urn("agent", "a"), "hello".into()),
            )]),
            ControlResponse::Trace("{}\n".into()),
            ControlResponse::Ack(true),
            ControlResponse::Revoked {
                proxies: 4,
                servers: 3,
            },
            ControlResponse::Error("nope".into()),
        ];
        for resp in responses {
            let bytes = resp.to_bytes();
            assert_eq!(ControlResponse::from_bytes(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn bad_tags_are_typed_errors() {
        assert!(matches!(
            ControlRequest::from_bytes(&[99]),
            Err(WireError::BadTag { .. })
        ));
        assert!(matches!(
            ControlResponse::from_bytes(&[99]),
            Err(WireError::BadTag { .. })
        ));
    }

    #[test]
    fn follower_accounts_gaps_against_drops() {
        let server = urn("server", "s");
        let mut f = JournalFollower::new();
        let page = |first_seq: u64, n: u64, dropped: u64| JournalPage {
            server: server.clone(),
            entries: (first_seq..first_seq + n)
                .map(|seq| JournalEntry {
                    seq,
                    at: 0,
                    severity: 0,
                    label: "agent-log".into(),
                    agent: None,
                    text: String::new(),
                })
                .collect(),
            next_cursor: first_seq + n,
            dropped,
        };
        // Tail establishes the cursor at 10.
        f.ingest(&page(5, 5, 0));
        // Seamless continuation: no gap.
        f.ingest(&page(10, 3, 0));
        assert_eq!(f.unexplained_gaps, 0);
        // Gap of 7 explained by the drop counter growing.
        f.ingest(&page(20, 2, 7));
        assert_eq!(f.unexplained_gaps, 0);
        // Gap with no new drops: flagged.
        f.ingest(&page(30, 1, 7));
        assert_eq!(f.unexplained_gaps, 8);
        // Hole inside a page with no new drops: also flagged.
        let mut holed = page(31, 2, 7);
        holed.entries[1].seq = 34;
        holed.next_cursor = 35;
        f.ingest(&holed);
        assert_eq!(f.unexplained_gaps, 10);
    }
}
