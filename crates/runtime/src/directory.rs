//! The server certificate directory.
//!
//! Sealed datagrams need the recipient's static public key; servers learn
//! each other's keys from certificates published in a shared directory —
//! the stand-in for the PKI / naming service the paper abstracts away
//! (Section 5.2 notes an on-line authentication service "may not always
//! be available", hence certificates are also carried inside credentials
//! and datagrams; the directory is only a *bootstrap* for recipient
//! keys).

use std::collections::BTreeMap;
use std::sync::Arc;

use ajanta_crypto::cert::Certificate;
use ajanta_crypto::sig::PublicKey;
use ajanta_crypto::RootOfTrust;
use ajanta_naming::Urn;
use parking_lot::RwLock;

/// A shared, thread-safe certificate directory. Cloning shares state.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    inner: Arc<RwLock<BTreeMap<Urn, Certificate>>>,
}

impl Directory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes (or replaces) a server's certificate.
    pub fn publish(&self, name: Urn, cert: Certificate) {
        self.inner.write().insert(name, cert);
    }

    /// The raw certificate for `name`.
    pub fn certificate(&self, name: &Urn) -> Option<Certificate> {
        self.inner.read().get(name).cloned()
    }

    /// The **verified** public key for `name`: the certificate is checked
    /// against `roots` at time `now` and its subject must match. Callers
    /// should always prefer this over [`Directory::certificate`].
    pub fn verified_key(&self, name: &Urn, roots: &RootOfTrust, now: u64) -> Option<PublicKey> {
        let cert = self.certificate(name)?;
        if cert.subject != name.to_string() {
            return None;
        }
        let chain = [cert];
        roots.verify_chain(&chain, now).ok().map(|(_, k)| k)
    }

    /// Number of published certificates.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajanta_crypto::{DetRng, KeyPair};

    #[test]
    fn publish_and_verify() {
        let mut rng = DetRng::new(8);
        let ca = KeyPair::generate(&mut rng);
        let mut roots = RootOfTrust::new();
        roots.trust("ca", ca.public);
        let name = Urn::server("x.org", ["s1"]).unwrap();
        let keys = KeyPair::generate(&mut rng);
        let cert = Certificate::issue(name.to_string(), keys.public, "ca", &ca, 1_000, 1, &mut rng);

        let dir = Directory::new();
        dir.publish(name.clone(), cert);
        assert_eq!(dir.verified_key(&name, &roots, 500), Some(keys.public));
        // Expired at 1001.
        assert_eq!(dir.verified_key(&name, &roots, 1_001), None);
        // Unknown name.
        let other = Urn::server("x.org", ["s2"]).unwrap();
        assert_eq!(dir.verified_key(&other, &roots, 0), None);
    }

    #[test]
    fn subject_mismatch_rejected() {
        let mut rng = DetRng::new(9);
        let ca = KeyPair::generate(&mut rng);
        let mut roots = RootOfTrust::new();
        roots.trust("ca", ca.public);
        let name = Urn::server("x.org", ["s1"]).unwrap();
        let keys = KeyPair::generate(&mut rng);
        // Certificate genuinely issued, but for a different subject.
        let cert = Certificate::issue("someone-else", keys.public, "ca", &ca, 1_000, 1, &mut rng);
        let dir = Directory::new();
        dir.publish(name.clone(), cert);
        assert_eq!(dir.verified_key(&name, &roots, 0), None);
    }

    #[test]
    fn clones_share_state() {
        let dir = Directory::new();
        let dir2 = dir.clone();
        let mut rng = DetRng::new(10);
        let keys = KeyPair::generate(&mut rng);
        let name = Urn::server("x.org", ["s"]).unwrap();
        let cert = Certificate::issue(name.to_string(), keys.public, "ca", &keys, 1, 1, &mut rng);
        dir.publish(name.clone(), cert);
        assert_eq!(dir2.len(), 1);
        assert!(dir2.certificate(&name).is_some());
    }
}
