//! One-call world construction for tests, examples and experiments: a
//! certificate authority, a network (simulated or real sockets), N
//! agent servers with published certificates, and owner principals.

use std::sync::Arc;

use ajanta_core::{
    HistoPath, HistoSnapshot, PrincipalPattern, Rights, SecurityPolicy, UsageLimits,
};
use ajanta_crypto::cert::Certificate;
use ajanta_crypto::{DetRng, KeyPair, RootOfTrust};
use ajanta_naming::Urn;
use ajanta_net::secure::ChannelIdentity;
use ajanta_net::{Adversary, LinkModel, NetAddr, SimNet, SocketConfig, SocketTransport, Transport};
use ajanta_vm::Limits;

use crate::directory::Directory;
use crate::owner::Owner;
use crate::sched::{self, Scheduler};
use crate::server::{AgentServer, RetryPolicy, ServerConfig, ServerHandle};

/// Per-server policy factory: (server index, server name) → policy.
type PolicyFactory = Box<dyn Fn(usize, &Urn) -> SecurityPolicy>;

/// Which network a world's servers communicate over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportMode {
    /// One in-process [`SimNet`] shared by every server (the default;
    /// deterministic virtual time, link models, injectable adversaries).
    #[default]
    Sim,
    /// Real TCP sockets on localhost: one [`SocketTransport`] per
    /// server, ephemeral ports, routes cross-registered at build time.
    Tcp,
    /// Real Unix-domain sockets in the system temp directory.
    Uds,
}

/// Builder for a [`World`].
pub struct WorldBuilder {
    servers: usize,
    link: LinkModel,
    seed: u64,
    transport: TransportMode,
    policy_fn: PolicyFactory,
    agent_limits: UsageLimits,
    vm_limits: Limits,
    agents_may_dispatch: bool,
    system_modules: Vec<std::sync::Arc<ajanta_vm::VerifiedModule>>,
    journal_capacity: usize,
    retry: RetryPolicy,
    workers: usize,
    hibernate_after_misses: Option<u32>,
    wal_dir: Option<std::path::PathBuf>,
}

impl WorldBuilder {
    /// Starts a builder for `servers` servers.
    pub fn new(servers: usize) -> Self {
        WorldBuilder {
            servers,
            link: LinkModel::default(),
            seed: 0x0A14_A17A,
            transport: TransportMode::Sim,
            // Default policy: every authenticated principal may use every
            // resource — examples override with real policies; the
            // delegation intersection still applies.
            policy_fn: Box::new(|_, _| {
                SecurityPolicy::new().allow(PrincipalPattern::Anyone, Rights::all())
            }),
            agent_limits: UsageLimits::default(),
            vm_limits: Limits::default(),
            agents_may_dispatch: true,
            system_modules: Vec::new(),
            journal_capacity: ajanta_core::telemetry::DEFAULT_CAPACITY,
            retry: RetryPolicy::default(),
            workers: sched::default_workers(),
            hibernate_after_misses: None,
            wal_dir: None,
        }
    }

    /// Enables hibernation on every server: agents that yield with
    /// `misses` consecutive empty mail polls (and no bindings or pending
    /// migration) spill to the bundle store until mail or an explicit
    /// wake revives them.
    pub fn hibernation(mut self, misses: u32) -> Self {
        self.hibernate_after_misses = Some(misses);
        self
    }

    /// Gives every server an admission write-ahead log under `dir`
    /// (`<dir>/site<i>.wal`), enabling crash recovery via replay.
    pub fn wal_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.wal_dir = Some(dir.into());
        self
    }

    /// Sets how many scheduler worker threads the world's shared pool
    /// runs (default: the machine's available parallelism). Every agent
    /// on every server executes on this pool, so the whole world costs
    /// `workers + servers` OS threads regardless of agent count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the transfer retry/backoff policy for every server.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Disables the fault-tolerant migration layer (fire-and-forget
    /// transfers, as before it existed) — the "strands agents" baseline
    /// of the fault-injection experiments.
    pub fn no_retry(mut self) -> Self {
        self.retry = RetryPolicy::disabled();
        self
    }

    /// Sets how many telemetry records each server's journal retains
    /// (aggregate counters stay exact past the bound).
    pub fn journal_capacity(mut self, capacity: usize) -> Self {
        self.journal_capacity = capacity;
        self
    }

    /// Sets the default link model.
    pub fn link(mut self, link: LinkModel) -> Self {
        self.link = link;
        self
    }

    /// Selects the network the servers communicate over (default:
    /// [`TransportMode::Sim`]). Socket modes give every server its own
    /// transport with routes to all its peers; link models do not apply
    /// (the real wire is the link).
    pub fn transport(mut self, mode: TransportMode) -> Self {
        self.transport = mode;
        self
    }

    /// Sets the deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-server policy factory (index, server name) → policy.
    pub fn policy(mut self, f: impl Fn(usize, &Urn) -> SecurityPolicy + 'static) -> Self {
        self.policy_fn = Box::new(f);
        self
    }

    /// Sets per-agent quotas.
    pub fn agent_limits(mut self, limits: UsageLimits) -> Self {
        self.agent_limits = limits;
        self
    }

    /// Sets interpreter limits.
    pub fn vm_limits(mut self, limits: Limits) -> Self {
        self.vm_limits = limits;
        self
    }

    /// Pre-loads these modules into every agent name-space (they can
    /// never be shadowed by agent code).
    pub fn system_modules(
        mut self,
        modules: Vec<std::sync::Arc<ajanta_vm::VerifiedModule>>,
    ) -> Self {
        self.system_modules = modules;
        self
    }

    /// Forbids agent-initiated dispatch on all servers.
    pub fn no_agent_dispatch(mut self) -> Self {
        self.agents_may_dispatch = false;
        self
    }

    /// Builds and starts the world.
    pub fn build(self) -> World {
        let mut rng = DetRng::new(self.seed);
        // The net seed is always the first draw, whatever the transport
        // mode, so identities (and everything minted after build) are
        // identical across modes for the same world seed — the loopback
        // equivalence tests rely on this.
        let net_seed = rng.next_u64();
        let ca = KeyPair::generate(&mut rng);
        let mut roots = RootOfTrust::new();
        roots.trust("ca.world", ca.public);
        let directory = Directory::new();
        let sched = Scheduler::new(self.workers);

        let mut configs = Vec::with_capacity(self.servers);
        let mut serial = 1;
        for i in 0..self.servers {
            let name = Urn::server(format!("site{i}.org"), ["s".to_string()])
                .expect("generated name is canonical");
            let keys = KeyPair::generate(&mut rng);
            let cert = Certificate::issue(
                name.to_string(),
                keys.public,
                "ca.world",
                &ca,
                u64::MAX,
                serial,
                &mut rng,
            );
            serial += 1;
            directory.publish(name.clone(), cert.clone());
            let identity = ChannelIdentity {
                name: name.clone(),
                keys: keys.clone(),
                chain: vec![cert],
            };
            configs.push(ServerConfig {
                name: name.clone(),
                identity,
                keys,
                roots: roots.clone(),
                directory: directory.clone(),
                policy: (self.policy_fn)(i, &name),
                system_modules: self.system_modules.clone(),
                agent_limits: self.agent_limits,
                vm_limits: self.vm_limits,
                agents_may_dispatch: self.agents_may_dispatch,
                replay_window_ns: u64::MAX / 4,
                retry: self.retry.clone(),
                seed: rng.next_u64(),
                journal_capacity: self.journal_capacity,
                scheduler: Some(Arc::clone(&sched)),
                wal: self
                    .wal_dir
                    .as_ref()
                    .map(|d| d.join(format!("site{i}.wal"))),
                hibernate_after_misses: self.hibernate_after_misses,
            });
        }

        let mut servers = Vec::with_capacity(self.servers);
        let transports: Vec<Arc<dyn Transport>> = match self.transport {
            TransportMode::Sim => {
                let net = SimNet::new(self.link, net_seed);
                for config in configs {
                    servers.push(AgentServer::spawn(&net, config));
                }
                vec![Arc::new(net)]
            }
            mode @ (TransportMode::Tcp | TransportMode::Uds) => {
                // One transport (listener) per server. Socket seeds are
                // derived from the net seed without consuming `rng`, so
                // the rng stream stays mode-independent.
                let names: Vec<Urn> = configs.iter().map(|c| c.name.clone()).collect();
                let transports: Vec<Arc<SocketTransport>> = configs
                    .iter()
                    .enumerate()
                    .map(|(i, config)| {
                        let addr = match mode {
                            TransportMode::Tcp => "tcp:127.0.0.1:0".parse().unwrap(),
                            _ => NetAddr::Uds(unique_uds_path(net_seed, i)),
                        };
                        let t = SocketTransport::bind(
                            &addr,
                            SocketConfig {
                                identity: config.identity.clone(),
                                roots: config.roots.clone(),
                                seed: net_seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                            },
                        )
                        .expect("binding world socket transport");
                        Arc::new(t)
                    })
                    .collect();
                for (i, t) in transports.iter().enumerate() {
                    for (j, peer) in transports.iter().enumerate() {
                        if i != j {
                            t.add_route(names[j].clone(), peer.local_addr());
                        }
                    }
                }
                for (config, t) in configs.into_iter().zip(&transports) {
                    let net: Arc<dyn Transport> = Arc::clone(t) as Arc<dyn Transport>;
                    servers.push(AgentServer::spawn_on(net, config));
                }
                transports
                    .into_iter()
                    .map(|t| t as Arc<dyn Transport>)
                    .collect()
            }
        };

        World {
            net: Arc::clone(&transports[0]),
            directory,
            roots,
            ca,
            servers,
            transports,
            sched,
            rng,
            owner_serial: serial,
        }
    }
}

/// A collision-free Unix-socket path in the temp directory: seed and
/// server index make concurrent worlds in one process distinct; the pid
/// and a process-wide counter make repeated builds (bench trials, test
/// binaries sharing a machine) distinct.
fn unique_uds_path(seed: u64, index: usize) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let path = std::env::temp_dir().join(format!(
        "ajanta-{:08x}-{}-{n}-{index}.sock",
        seed as u32,
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

/// A running multi-server world.
pub struct World {
    /// The network. In [`TransportMode::Sim`] this is the one shared
    /// [`SimNet`]; in socket modes it is server 0's transport (use
    /// [`World::transports`] or [`World::set_adversary`] to reach all
    /// of them).
    pub net: Arc<dyn Transport>,
    /// The shared certificate directory.
    pub directory: Directory,
    /// The trust roots every party uses.
    pub roots: RootOfTrust,
    ca: KeyPair,
    /// The running servers, in creation order.
    pub servers: Vec<ServerHandle>,
    /// Every transport backing the world, in server order (one element
    /// in sim mode).
    transports: Vec<Arc<dyn Transport>>,
    /// The shared scheduler every server's agents execute on.
    sched: std::sync::Arc<Scheduler>,
    rng: DetRng,
    owner_serial: u64,
}

impl World {
    /// A world with `n` servers, default links, default seed.
    pub fn new(n: usize) -> World {
        WorldBuilder::new(n).build()
    }

    /// A builder for customized worlds.
    pub fn builder(n: usize) -> WorldBuilder {
        WorldBuilder::new(n)
    }

    /// Server `i`'s handle.
    pub fn server(&self, i: usize) -> &ServerHandle {
        &self.servers[i]
    }

    /// Control-plane views of every server in this world — what a
    /// [`crate::control::ControlServer`] serves to expose the whole
    /// world over one socket.
    pub fn control_views(&self) -> Vec<crate::server::ControlView> {
        self.servers.iter().map(|s| s.control_view()).collect()
    }

    /// Mints an owner with a CA-issued certificate.
    pub fn owner(&mut self, tag: &str) -> Owner {
        let name = Urn::owner("users.org", [tag]).expect("canonical owner tag");
        let keys = KeyPair::generate(&mut self.rng);
        self.owner_serial += 1;
        let cert = Certificate::issue(
            name.to_string(),
            keys.public,
            "ca.world",
            &self.ca,
            u64::MAX,
            self.owner_serial,
            &mut self.rng,
        );
        Owner::new(name, keys, vec![cert], self.rng.next_u64())
    }

    /// Mints a CA-certified *server* identity that is published in the
    /// directory but runs no server loop — a rogue-but-certified peer for
    /// attack tests (it can seal datagrams other servers will
    /// authenticate, then misbehave at the protocol layer).
    pub fn certified_rogue(&mut self, tag: &str) -> (ajanta_net::secure::ChannelIdentity, KeyPair) {
        let name = Urn::server("rogue.org", [tag]).expect("canonical rogue tag");
        let keys = KeyPair::generate(&mut self.rng);
        self.owner_serial += 1;
        let cert = Certificate::issue(
            name.to_string(),
            keys.public,
            "ca.world",
            &self.ca,
            u64::MAX,
            self.owner_serial,
            &mut self.rng,
        );
        self.directory.publish(name.clone(), cert.clone());
        (
            ajanta_net::secure::ChannelIdentity {
                name,
                keys: keys.clone(),
                chain: vec![cert],
            },
            keys,
        )
    }

    /// Merges every server's trace-relevant journal records into one
    /// JSONL document — the input `ajanta_core::trace::parse_jsonl` (and
    /// the `tracectl` example) reconstructs causal trace trees from.
    pub fn export_traces(&self) -> String {
        let mut out = String::new();
        for server in &self.servers {
            out.push_str(&server.export_jsonl());
        }
        out
    }

    /// Latency histograms merged across every server in the world, per
    /// path — the tour-wide view of transfer RTTs, retry backoffs, and
    /// hop latencies that no single server's journal can give.
    pub fn merged_histos(&self, path: HistoPath) -> HistoSnapshot {
        let mut merged = HistoSnapshot::empty();
        for server in &self.servers {
            merged.merge(&server.journal().histos().get(path).snapshot());
        }
        merged
    }

    /// The world's shared scheduler (for queue-depth inspection).
    pub fn scheduler(&self) -> &std::sync::Arc<Scheduler> {
        &self.sched
    }

    /// Every transport backing the world, in server order. Sim mode has
    /// one; socket modes have one per server.
    pub fn transports(&self) -> &[Arc<dyn Transport>] {
        &self.transports
    }

    /// Installs (or clears) the network adversary on *every* transport
    /// in the world — on the simulation that is the one shared net; on
    /// socket worlds it reaches each server's send path.
    pub fn set_adversary(&self, adversary: Option<Arc<dyn Adversary>>) {
        for t in &self.transports {
            t.set_adversary(adversary.clone());
        }
    }

    /// Shuts the world down: first the scheduler drains — every queued
    /// agent runs to completion while all server loops are still alive
    /// to admit onward hops and record reports — then each server loop
    /// is stopped and joined, and finally the transports release their
    /// sockets and threads.
    pub fn shutdown(self) {
        self.sched.stop();
        for server in self.servers {
            server.shutdown();
        }
        for t in &self.transports {
            t.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_spins_up_and_down() {
        let world = World::new(3);
        assert_eq!(world.servers.len(), 3);
        assert_eq!(world.directory.len(), 3);
        // Names are distinct and resolvable.
        let keys: Vec<_> = world
            .servers
            .iter()
            .map(|s| {
                world
                    .directory
                    .verified_key(s.name(), &world.roots, 0)
                    .expect("published key verifies")
            })
            .collect();
        assert_eq!(keys.len(), 3);
        world.shutdown();
    }

    #[test]
    fn owners_are_certified() {
        let mut world = World::new(1);
        let owner = world.owner("alice");
        assert_eq!(owner.name().to_string(), "ajn://users.org/owner/alice");
        world.shutdown();
    }
}
