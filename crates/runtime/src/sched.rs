//! Cooperative fuel-sliced scheduler: a work-stealing pool of worker
//! threads that runs admitted agents as resumable tasks instead of one OS
//! thread each.
//!
//! The VM is fuel-metered, which gives a natural cooperative yield point:
//! [`ajanta_vm::Interpreter::run_slice`] executes a bounded fuel budget
//! and parks the call stack *inside the interpreter value* when the
//! budget runs out. The scheduler exploits that: an agent that exhausts
//! its slice is requeued as a plain heap object — no stack, no thread —
//! and a server hosting 100k resident agents holds `workers + 1` OS
//! threads, not 100k.
//!
//! Structure mirrors the rest of the runtime:
//!
//! * **16-way sharded run-queues** (matching the registry/mailbox
//!   sharding): enqueues round-robin across shards, so producers rarely
//!   contend, and each worker drains a *home shard* first.
//! * **Work stealing**: a worker whose home shard is empty scans the
//!   other shards and steals the oldest entry. Steals are counted
//!   ([`Counter::Steals`]) against the journal of the task stolen.
//! * **Fairness**: strict FIFO within a shard; a yielded task goes to
//!   the *back* of its requeue shard, so no agent can starve another by
//!   burning fuel — the slice budget bounds the time any task holds a
//!   worker.
//!
//! Telemetry lands in the journal of the server that admitted each task
//! (tasks carry their journal): [`Counter::SlicesRun`],
//! [`Counter::AgentsYielded`], [`Counter::Steals`], plus two log2
//! histograms — [`HistoPath::SliceDuration`] (wall time of one slice)
//! and [`HistoPath::ReadyDwell`] (how long a ready task waited in a
//! run-queue before a worker picked it up).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ajanta_core::telemetry::{Counter, HistoPath, Journal};
use parking_lot::{Condvar, Mutex};

/// Fuel budget one scheduler slice grants an agent. Large enough that
/// slice overhead (queue hops, telemetry) is noise against real work,
/// small enough that a fuel-burning agent cannot hold a worker hostage.
pub const DEFAULT_SLICE_FUEL: u64 = 65_536;

/// Run-queue shard count — matches the registry/mailbox sharding.
const SHARDS: usize = 16;

/// How long an idle worker sleeps before re-scanning; a plain condvar
/// wait would be racy against the sharded queues (no single lock guards
/// the "any work?" predicate), so waits are bounded.
const IDLE_WAIT: Duration = Duration::from_millis(5);

/// A resumable unit of agent execution. The server layer implements this
/// for its agent tasks; the scheduler knows nothing about admission,
/// credentials, or reports.
pub trait Task: Send {
    /// Runs one fuel slice. Returns `true` when the task has finished
    /// (completed, trapped, out of fuel, or migrated away) and must not
    /// be requeued.
    fn run_slice(&mut self) -> bool;

    /// The telemetry journal this task's scheduler events land in —
    /// normally the admitting server's.
    fn journal(&self) -> &Arc<Journal>;

    /// Whether the task holds a live interpreter (call stack resident)
    /// as opposed to only its serialized image. Cold tasks are what the
    /// "parked agents are cheap" invariant is about.
    fn is_warm(&self) -> bool;
}

/// One queued task plus the instant it became ready (for the
/// ready-dwell histogram).
struct Entry {
    task: Box<dyn Task>,
    ready_at: Instant,
}

/// Queue depths exposed by [`Scheduler::depths`] (and re-exported via
/// `ServerHandle::sched_depths`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedDepths {
    /// Tasks sitting in run-queues awaiting a worker.
    pub ready: usize,
    /// Tasks currently executing a slice on some worker.
    pub running: usize,
    /// The subset of `ready` that is cold — admitted or suspended
    /// agents holding only their VM image, no interpreter state.
    pub parked: usize,
}

/// The work-stealing pool. One per world (shared by all its servers) or
/// one per standalone server; cheap to share as `Arc<Scheduler>`.
pub struct Scheduler {
    shards: [Mutex<VecDeque<Entry>>; SHARDS],
    /// Total entries across all shards — the workers' "any work?" hint
    /// and the `ready` depth gauge.
    ready: AtomicUsize,
    /// Tasks currently inside `run_slice` on some worker.
    running: AtomicUsize,
    /// The subset of `ready` that is cold (image only).
    parked: AtomicUsize,
    /// Round-robin enqueue cursor.
    next_shard: AtomicUsize,
    shutdown: AtomicBool,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    worker_count: usize,
    slice_fuel: u64,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("workers", &self.worker_count)
            .field("depths", &self.depths())
            .finish()
    }
}

impl Scheduler {
    /// Starts a pool of `workers` threads (at least 1) with the default
    /// slice budget.
    pub fn new(workers: usize) -> Arc<Scheduler> {
        Scheduler::with_slice_fuel(workers, DEFAULT_SLICE_FUEL)
    }

    /// Starts a pool with an explicit per-slice fuel budget.
    pub fn with_slice_fuel(workers: usize, slice_fuel: u64) -> Arc<Scheduler> {
        let workers = workers.max(1);
        let sched = Arc::new(Scheduler {
            shards: std::array::from_fn(|_| Mutex::new(VecDeque::new())),
            ready: AtomicUsize::new(0),
            running: AtomicUsize::new(0),
            parked: AtomicUsize::new(0),
            next_shard: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
            workers: Mutex::new(Vec::with_capacity(workers)),
            worker_count: workers,
            slice_fuel: slice_fuel.max(1),
        });
        let mut handles = sched.workers.lock();
        for i in 0..workers {
            let s = Arc::clone(&sched);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("ajanta-sched-{i}"))
                    .spawn(move || worker_loop(s, i))
                    .expect("spawning scheduler worker"),
            );
        }
        drop(handles);
        sched
    }

    /// The number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// The fuel budget granted per slice.
    pub fn slice_fuel(&self) -> u64 {
        self.slice_fuel
    }

    /// Current queue depths.
    pub fn depths(&self) -> SchedDepths {
        SchedDepths {
            ready: self.ready.load(Ordering::Relaxed),
            running: self.running.load(Ordering::Relaxed),
            parked: self.parked.load(Ordering::Relaxed),
        }
    }

    /// Enqueues one ready task.
    pub fn spawn(&self, task: Box<dyn Task>) {
        self.enqueue(Entry {
            task,
            ready_at: Instant::now(),
        });
        self.idle_cv.notify_one();
    }

    /// Enqueues a batch of ready tasks with one wakeup — the server loop
    /// admits a whole delivery burst per tick through this.
    pub fn spawn_batch(&self, tasks: impl IntoIterator<Item = Box<dyn Task>>) {
        let now = Instant::now();
        let mut n = 0usize;
        for task in tasks {
            self.enqueue(Entry {
                task,
                ready_at: now,
            });
            n += 1;
        }
        if n > 0 {
            self.idle_cv.notify_all();
        }
    }

    fn enqueue(&self, entry: Entry) {
        if !entry.task.is_warm() {
            self.parked.fetch_add(1, Ordering::Relaxed);
        }
        let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % SHARDS;
        self.shards[shard].lock().push_back(entry);
        self.ready.fetch_add(1, Ordering::Relaxed);
    }

    /// Pops from `home` first, then steals the oldest entry from any
    /// other shard. Returns the entry and whether it was stolen.
    fn dequeue(&self, home: usize) -> Option<(Entry, bool)> {
        if self.ready.load(Ordering::Relaxed) == 0 {
            return None;
        }
        if let Some(e) = self.shards[home].lock().pop_front() {
            self.note_dequeued(&e);
            return Some((e, false));
        }
        for off in 1..SHARDS {
            let shard = (home + off) % SHARDS;
            if let Some(e) = self.shards[shard].lock().pop_front() {
                self.note_dequeued(&e);
                return Some((e, true));
            }
        }
        None
    }

    fn note_dequeued(&self, e: &Entry) {
        self.ready.fetch_sub(1, Ordering::Relaxed);
        if !e.task.is_warm() {
            self.parked.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Stops the pool: workers finish draining every queued task (and
    /// whatever those tasks enqueue while draining), then exit. Blocks
    /// until all workers have joined. Idempotent.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.idle_cv.notify_all();
        let handles = std::mem::take(&mut *self.workers.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(sched: Arc<Scheduler>, index: usize) {
    let home = index % SHARDS;
    loop {
        match sched.dequeue(home) {
            Some((mut entry, stolen)) => {
                sched.running.fetch_add(1, Ordering::Relaxed);
                let journal = Arc::clone(entry.task.journal());
                journal.histos().record(
                    HistoPath::ReadyDwell,
                    entry.ready_at.elapsed().as_nanos() as u64,
                );
                if stolen {
                    journal.counters().add(Counter::Steals, 1);
                }
                let t0 = Instant::now();
                // A panicking agent must not take a pool worker (and
                // every agent behind it) down with it; the per-agent
                // thread model got this isolation for free.
                let done = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    entry.task.run_slice()
                }))
                .unwrap_or(true);
                journal.counters().add(Counter::SlicesRun, 1);
                journal
                    .histos()
                    .record(HistoPath::SliceDuration, t0.elapsed().as_nanos() as u64);
                sched.running.fetch_sub(1, Ordering::Relaxed);
                if !done {
                    journal.counters().add(Counter::AgentsYielded, 1);
                    entry.ready_at = Instant::now();
                    sched.enqueue(entry);
                    sched.idle_cv.notify_one();
                }
            }
            None => {
                if sched.shutdown.load(Ordering::Acquire)
                    && sched.ready.load(Ordering::Relaxed) == 0
                    && sched.running.load(Ordering::Relaxed) == 0
                {
                    break;
                }
                // Bounded wait: the sharded queues have no single lock
                // guarding the "work available" predicate, so a missed
                // notify only costs one IDLE_WAIT, never a deadlock.
                let guard = sched.idle_lock.lock();
                if sched.ready.load(Ordering::Relaxed) == 0
                    && !sched.shutdown.load(Ordering::Acquire)
                {
                    let _ = sched.idle_cv.wait_timeout(guard, IDLE_WAIT);
                }
            }
        }
    }
}

/// The default pool width: the machine's available parallelism.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// A task that needs `slices` polls to finish.
    struct Counting {
        left: u32,
        warm_after_first: bool,
        polled: bool,
        hits: Arc<AtomicU64>,
        journal: Arc<Journal>,
    }

    impl Task for Counting {
        fn run_slice(&mut self) -> bool {
            self.polled = true;
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.left -= 1;
            self.left == 0
        }
        fn journal(&self) -> &Arc<Journal> {
            &self.journal
        }
        fn is_warm(&self) -> bool {
            self.polled && self.warm_after_first
        }
    }

    fn counting(slices: u32, hits: &Arc<AtomicU64>, journal: &Arc<Journal>) -> Box<dyn Task> {
        Box::new(Counting {
            left: slices,
            warm_after_first: true,
            polled: false,
            hits: Arc::clone(hits),
            journal: Arc::clone(journal),
        })
    }

    #[test]
    fn runs_every_task_to_completion() {
        let sched = Scheduler::new(4);
        let hits = Arc::new(AtomicU64::new(0));
        let journal = Arc::new(Journal::with_capacity(64));
        sched.spawn_batch((0..100).map(|i| counting(1 + (i % 5), &hits, &journal)));
        sched.stop();
        // 100 tasks, i%5 spread: sum of (1 + i%5) over 0..100 = 100 + 200.
        assert_eq!(hits.load(Ordering::Relaxed), 300);
        assert_eq!(sched.depths(), SchedDepths::default());
        // Every slice counted; yields = slices - tasks.
        assert_eq!(journal.counter(Counter::SlicesRun), 300);
        assert_eq!(journal.counter(Counter::AgentsYielded), 200);
    }

    #[test]
    fn parked_depth_tracks_cold_tasks() {
        // No workers consuming yet: use a stopped scheduler? Simpler —
        // enqueue against a 1-worker pool and read depths after stop.
        let sched = Scheduler::new(2);
        let hits = Arc::new(AtomicU64::new(0));
        let journal = Arc::new(Journal::with_capacity(64));
        sched.spawn(counting(3, &hits, &journal));
        sched.stop();
        assert_eq!(hits.load(Ordering::Relaxed), 3);
        assert_eq!(sched.depths().parked, 0);
        assert!(journal.histos().get(HistoPath::ReadyDwell).snapshot().count >= 1);
        assert!(
            journal
                .histos()
                .get(HistoPath::SliceDuration)
                .snapshot()
                .count
                >= 3
        );
    }

    #[test]
    fn panicking_task_does_not_kill_workers() {
        struct Bomb {
            journal: Arc<Journal>,
        }
        impl Task for Bomb {
            fn run_slice(&mut self) -> bool {
                panic!("agent bug");
            }
            fn journal(&self) -> &Arc<Journal> {
                &self.journal
            }
            fn is_warm(&self) -> bool {
                false
            }
        }
        let sched = Scheduler::new(1);
        let journal = Arc::new(Journal::with_capacity(64));
        let hits = Arc::new(AtomicU64::new(0));
        sched.spawn(Box::new(Bomb {
            journal: Arc::clone(&journal),
        }));
        sched.spawn(counting(2, &hits, &journal));
        sched.stop();
        // The task after the bomb still ran on the same (sole) worker.
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn stop_drains_tasks_spawned_while_draining() {
        struct Chain {
            sched: Arc<Scheduler>,
            depth: u32,
            hits: Arc<AtomicU64>,
            journal: Arc<Journal>,
        }
        impl Task for Chain {
            fn run_slice(&mut self) -> bool {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if self.depth > 0 {
                    self.sched.spawn(Box::new(Chain {
                        sched: Arc::clone(&self.sched),
                        depth: self.depth - 1,
                        hits: Arc::clone(&self.hits),
                        journal: Arc::clone(&self.journal),
                    }));
                }
                true
            }
            fn journal(&self) -> &Arc<Journal> {
                &self.journal
            }
            fn is_warm(&self) -> bool {
                true
            }
        }
        let sched = Scheduler::new(2);
        let hits = Arc::new(AtomicU64::new(0));
        let journal = Arc::new(Journal::with_capacity(64));
        sched.spawn(Box::new(Chain {
            sched: Arc::clone(&sched),
            depth: 9,
            hits: Arc::clone(&hits),
            journal,
        }));
        sched.stop();
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    /// The hibernate/wake lifecycle at the scheduler seam, under drain
    /// churn. A hibernating agent task spills its state and *completes
    /// its slot* (`run_slice` → true); a wake re-admits it as a fresh
    /// spawn. Two invariants the server's `try_hibernate`/`wake_agent`
    /// pair relies on: (1) a wake that lands while `stop` is draining
    /// still runs to completion, not left queued; (2) racing wakes
    /// admit the agent exactly once — taking the spilled state is the
    /// winner-picks-one gate, exactly like `BundleStore::take`.
    #[test]
    fn hibernated_task_woken_during_drain_resumes_exactly_once() {
        struct Sleeper {
            sched: Arc<Scheduler>,
            /// The "bundle store": `Some(state)` while hibernated.
            store: Arc<Mutex<Option<u32>>>,
            woken: bool,
            hits: Arc<AtomicU64>,
            journal: Arc<Journal>,
        }
        impl Task for Sleeper {
            fn run_slice(&mut self) -> bool {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if self.woken {
                    return true;
                }
                // First life: hibernate — spill state, free the slot.
                *self.store.lock() = Some(7);
                // Mail arrives while the pool is draining; two wakers
                // race for the bundle, exactly one may spawn.
                for _ in 0..2 {
                    if self.store.lock().take().is_some() {
                        self.sched.spawn(Box::new(Sleeper {
                            sched: Arc::clone(&self.sched),
                            store: Arc::clone(&self.store),
                            woken: true,
                            hits: Arc::clone(&self.hits),
                            journal: Arc::clone(&self.journal),
                        }));
                    }
                }
                true
            }
            fn journal(&self) -> &Arc<Journal> {
                &self.journal
            }
            fn is_warm(&self) -> bool {
                self.woken
            }
        }
        let sched = Scheduler::new(2);
        let hits = Arc::new(AtomicU64::new(0));
        let store = Arc::new(Mutex::new(None));
        let journal = Arc::new(Journal::with_capacity(64));
        sched.spawn(Box::new(Sleeper {
            sched: Arc::clone(&sched),
            store: Arc::clone(&store),
            woken: false,
            hits: Arc::clone(&hits),
            journal,
        }));
        sched.stop();
        // One slice per life: hibernation, then exactly one resume.
        assert_eq!(hits.load(Ordering::Relaxed), 2);
        assert!(store.lock().is_none(), "spilled state must be consumed");
        assert_eq!(sched.depths(), SchedDepths::default());
    }
}
