//! Multi-process worlds: N `ajantad` server processes joined over real
//! sockets into one world, driven by a line-oriented stdio protocol.
//!
//! Every process derives the *same* certificate authority, server
//! identities, and owner from one seed ([`derive_world`]) — only socket
//! addresses need exchanging at runtime. The parent ([`run_parent`])
//! spawns the children, wires their route tables (`PEER`), starts the
//! tour (`GO`), then collects per-process trace exports and duplicate-
//! admission counts (`STOP` … `DONE`) and merges the JSONL into one
//! causal forest — the cross-process analogue of
//! [`World::export_traces`](crate::World::export_traces).
//!
//! Protocol (child stdout → parent, parent stdin → child):
//!
//! ```text
//! child:  READY <addr>                     after binding its transport
//! parent: PEER <index> <addr>              one per remote peer
//! parent: GO                               child 0 launches the tour
//! child0: RESULT reported=<n> completed=<n> agents=<n>
//! parent: SLEEPER <idx>                    (--ctl) launch an idle resident toward server idx
//! child:  SLEEPER <urn>                    the launched sleeper's name
//! parent: PARITY <urn>                     (--ctl) assert remote/local control parity
//! child:  PARITY ok | PARITY fail: <why>   verdict, incl. hibernate/wake round trip
//! parent: STOP                             quiesce + export traces
//! child:  DONE dups=<n>
//! parent: EXIT                             shut down and exit
//! ```

use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ajanta_core::trace::{parse_jsonl, TraceForest};
use ajanta_core::{
    BoundedBuffer, Counter, Event, Guarded, PrincipalPattern, ProxyPolicy, Rights, SecurityPolicy,
    UsageLimits,
};
use ajanta_crypto::cert::Certificate;
use ajanta_crypto::{DetRng, KeyPair, RootOfTrust};
use ajanta_naming::Urn;
use ajanta_net::secure::ChannelIdentity;
use ajanta_net::{LinkFault, NetAddr, SocketConfig, SocketTransport, Transport};
use ajanta_vm::{assemble, AgentImage, Value};

use crate::directory::Directory;
use crate::itinerary::Itinerary;
use crate::owner::Owner;
use crate::server::{AgentServer, RetryPolicy, ServerConfig, ServerHandle};

/// The identities every process of a multi-process world derives from
/// the shared seed. Certificates, keys, and the owner are byte-identical
/// across processes; only socket addresses are exchanged at runtime.
pub struct DerivedWorld {
    /// The trust roots (the derived CA).
    pub roots: RootOfTrust,
    /// Server names, index-aligned with the process indices.
    pub names: Vec<Urn>,
    /// Per-server channel identities (keys + CA-issued chain).
    pub identities: Vec<ChannelIdentity>,
    /// Per-server long-term signing keys.
    pub keys: Vec<KeyPair>,
    /// Per-server config seeds (same stream in every process).
    pub server_seeds: Vec<u64>,
    /// A directory pre-published with every server's certificate.
    pub directory: Directory,
    /// The touring owner (only process 0 mints agents from it).
    pub owner: Owner,
}

/// Derives the whole world's identities from `seed`. Mirrors
/// [`WorldBuilder::build`](crate::world::WorldBuilder::build)'s rng
/// discipline so the derivation is stable and auditable.
pub fn derive_world(seed: u64, servers: usize) -> DerivedWorld {
    let mut rng = DetRng::new(seed);
    let _net_seed = rng.next_u64();
    let ca = KeyPair::generate(&mut rng);
    let mut roots = RootOfTrust::new();
    roots.trust("ca.world", ca.public);
    let directory = Directory::new();

    let mut names = Vec::with_capacity(servers);
    let mut identities = Vec::with_capacity(servers);
    let mut keys_v = Vec::with_capacity(servers);
    let mut server_seeds = Vec::with_capacity(servers);
    let mut serial = 1;
    for i in 0..servers {
        let name = Urn::server(format!("proc{i}.org"), ["s".to_string()])
            .expect("generated name is canonical");
        let keys = KeyPair::generate(&mut rng);
        let cert = Certificate::issue(
            name.to_string(),
            keys.public,
            "ca.world",
            &ca,
            u64::MAX,
            serial,
            &mut rng,
        );
        serial += 1;
        directory.publish(name.clone(), cert.clone());
        identities.push(ChannelIdentity {
            name: name.clone(),
            keys: keys.clone(),
            chain: vec![cert],
        });
        names.push(name);
        keys_v.push(keys);
        server_seeds.push(rng.next_u64());
    }

    let owner_name = Urn::owner("users.org", ["traveler"]).expect("canonical owner name");
    let owner_keys = KeyPair::generate(&mut rng);
    serial += 1;
    let owner_cert = Certificate::issue(
        owner_name.to_string(),
        owner_keys.public,
        "ca.world",
        &ca,
        u64::MAX,
        serial,
        &mut rng,
    );
    let owner = Owner::new(owner_name, owner_keys, vec![owner_cert], rng.next_u64());

    DerivedWorld {
        roots,
        names,
        identities,
        keys: keys_v,
        server_seeds,
        directory,
        owner,
    }
}

/// The touring agent the smoke tour runs: at every stop it binds the
/// local `jobs` buffer, puts one item, and moves on — exercising
/// transfer, admission, bind, and access spans on every process.
const TOURIST: &str = r#"
    module tracetour
    import env.go_tour (bytes, bytes) -> int
    import env.itin_tail (bytes) -> bytes
    import env.get_resource (bytes) -> int
    import env.invoke (int, bytes, bytes) -> bytes
    import env.args_b (bytes) -> bytes
    global itin: bytes
    global hops: int
    data entry = "run"
    data rname = "ajn://tour.org/resource/jobs"
    data mput = "put"
    data item = "trace-probe"

    func run(arg: bytes) -> int
      locals full: bytes, h: int
      gload hops
      push 1
      add
      gstore hops
      pushd rname
      hostcall env.get_resource
      store h
      load h
      pushd mput
      pushd item
      hostcall env.args_b
      hostcall env.invoke
      drop
      gload itin
      blen
      jz done
      gload itin
      store full
      gload itin
      hostcall env.itin_tail
      gstore itin
      load full
      pushd entry
      hostcall env.go_tour
      drop
      push 0
      ret
    done:
      gload hops
      ret
"#;

/// A deliberately idle resident: polls its mailbox forever (each empty
/// poll is a mail miss), terminating only if mail ever arrives. Yields
/// every slice, holds no bindings, plans no migration — the ideal
/// subject for a control-plane hibernate/wake round trip.
const SLEEPER: &str = r#"
    module sleeper
    import env.recv () -> bytes

    func run(arg: bytes) -> int
      wait:
      hostcall env.recv
      blen
      jz wait
      push 0
      ret
"#;

fn sleeper_image() -> AgentImage {
    let module = assemble(SLEEPER).expect("sleeper assembles");
    let image = AgentImage {
        globals: module.initial_globals(),
        module,
        entry: "run".into(),
    };
    image.validate().expect("sleeper image consistent");
    image
}

fn tourist_image(tour: &Itinerary) -> AgentImage {
    let (_, rest) = tour.clone().next_stop();
    let module = assemble(TOURIST).expect("tourist assembles");
    let image = AgentImage {
        module,
        globals: vec![Value::Bytes(rest.encode()), Value::Int(0)],
        entry: "run".into(),
    };
    image.validate().expect("tourist image consistent");
    image
}

/// One child server process's configuration.
pub struct ChildOpts {
    /// This process's server index in `0..servers`.
    pub index: usize,
    /// Total number of server processes in the world.
    pub servers: usize,
    /// The shared world seed.
    pub seed: u64,
    /// The address to listen on (`tcp:127.0.0.1:0` or `uds:<path>`).
    pub addr: NetAddr,
    /// Where to write this process's trace JSONL export on `STOP`.
    pub trace_out: PathBuf,
    /// How many agents process 0 launches on `GO`.
    pub agents: usize,
    /// Probabilistic frame loss injected on this process's send path.
    pub loss: f64,
    /// Admission write-ahead log path. A respawned child given the same
    /// path replays the admissions its previous incarnation had not
    /// resolved — the kill-and-restart smoke's durability mechanism.
    pub wal: Option<PathBuf>,
    /// Control-plane socket to serve alongside the data plane
    /// (`uds:<path>` or `tcp:127.0.0.1:<port>`). Enables the `PARITY`
    /// stdio verb.
    pub ctl: Option<NetAddr>,
}

/// Runs one child server process over stdin/stdout until `EXIT` (or
/// stdin closes). See the module docs for the protocol.
pub fn run_child(opts: ChildOpts) -> Result<(), String> {
    let derived = derive_world(opts.seed, opts.servers);
    let i = opts.index;
    if i >= opts.servers {
        return Err(format!(
            "index {i} out of range for {} servers",
            opts.servers
        ));
    }

    let transport = SocketTransport::bind(
        &opts.addr,
        SocketConfig {
            identity: derived.identities[i].clone(),
            roots: derived.roots.clone(),
            seed: opts.seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        },
    )
    .map_err(|e| format!("bind {}: {e}", opts.addr))?;
    let transport = Arc::new(transport);
    if opts.loss > 0.0 {
        let fault = LinkFault::new(opts.seed ^ 0xFA17_0000 ^ i as u64, opts.loss);
        transport.set_adversary(Some(Arc::new(fault)));
    }

    let server = AgentServer::spawn_on(
        Arc::clone(&transport) as Arc<dyn Transport>,
        ServerConfig {
            name: derived.names[i].clone(),
            identity: derived.identities[i].clone(),
            keys: derived.keys[i].clone(),
            roots: derived.roots.clone(),
            directory: derived.directory.clone(),
            policy: SecurityPolicy::new().allow(PrincipalPattern::Anyone, Rights::all()),
            system_modules: Vec::new(),
            // The PARITY sleeper busy-polls its mailbox between the
            // hibernate/wake round trips; under the default quota it
            // would burn its fuel and retire mid-exercise.
            agent_limits: if opts.ctl.is_some() {
                UsageLimits {
                    fuel: u64::MAX,
                    ..UsageLimits::default()
                }
            } else {
                UsageLimits::default()
            },
            vm_limits: ajanta_vm::Limits::default(),
            agents_may_dispatch: true,
            replay_window_ns: u64::MAX / 4,
            retry: RetryPolicy {
                max_attempts: 14,
                ack_grace: Duration::from_millis(10),
                ..RetryPolicy::default()
            },
            seed: derived.server_seeds[i],
            journal_capacity: 1 << 16,
            scheduler: None,
            wal: opts.wal.clone(),
            hibernate_after_misses: None,
        },
    );

    // Every stop hosts the tour's buffer; home (process 0) does not.
    if i > 0 {
        let buf = BoundedBuffer::new(
            Urn::resource("tour.org", ["jobs"]).unwrap(),
            Urn::owner("tour.org", ["admin"]).unwrap(),
            2 * opts.agents.max(1),
        );
        server
            .register_resource(Guarded::new(buf, ProxyPolicy::default()))
            .map_err(|e| format!("registering jobs buffer: {e}"))?;
    }

    // The control plane serves this server's handle surface over its
    // own socket, beside the data plane.
    let ctl = match &opts.ctl {
        Some(addr) => Some(
            crate::control::ControlServer::serve(addr, vec![server.control_view()])
                .map_err(|e| format!("binding control socket {addr}: {e}"))?,
        ),
        None => None,
    };

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(out, "READY {}", transport.local_addr())
        .and_then(|_| out.flush())
        .map_err(|e| e.to_string())?;

    let stdin = std::io::stdin();
    let lines = BufReader::new(stdin.lock()).lines();
    let mut owner = derived.owner;
    for line in lines {
        let line = line.map_err(|e| format!("reading control line: {e}"))?;
        let mut words = line.split_whitespace();
        match words.next() {
            Some("PEER") => {
                let idx: usize = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| format!("bad PEER line: {line}"))?;
                let addr: NetAddr = words
                    .next()
                    .ok_or_else(|| format!("bad PEER line: {line}"))?
                    .parse()?;
                transport.add_route(derived.names[idx].clone(), addr);
            }
            Some("GO") => {
                if i == 0 {
                    let (reported, completed) =
                        drive_tour(&server, &mut owner, &derived.names, opts.agents);
                    writeln!(
                        out,
                        "RESULT reported={reported} completed={completed} agents={}",
                        opts.agents
                    )
                    .and_then(|_| out.flush())
                    .map_err(|e| e.to_string())?;
                }
            }
            Some("STOP") => {
                quiesce(&server, Duration::from_secs(60));
                std::fs::write(&opts.trace_out, server.export_jsonl())
                    .map_err(|e| format!("writing {}: {e}", opts.trace_out.display()))?;
                let dups = duplicate_admissions(&server);
                let replays = server.journal().counter(Counter::WalReplays);
                writeln!(out, "DONE dups={dups} replays={replays}")
                    .and_then(|_| out.flush())
                    .map_err(|e| e.to_string())?;
            }
            Some("SLEEPER") => {
                // Launch one idle resident toward server `idx` — the
                // hibernate/wake subject for a later PARITY.
                let idx: usize = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .filter(|&n| n < opts.servers)
                    .ok_or_else(|| format!("bad SLEEPER line: {line}"))?;
                let agent = owner.next_agent_name("sleeper");
                let creds = owner.credentials(
                    agent.clone(),
                    derived.names[i].clone(),
                    Rights::all(),
                    u64::MAX,
                );
                server.launch(derived.names[idx].clone(), creds, sleeper_image());
                writeln!(out, "SLEEPER {agent}")
                    .and_then(|_| out.flush())
                    .map_err(|e| e.to_string())?;
            }
            Some("PARITY") => {
                let subject = words
                    .next()
                    .and_then(|w| w.parse::<Urn>().ok())
                    .ok_or_else(|| format!("bad PARITY line: {line}"))?;
                let verdict = match &opts.ctl {
                    None => Err("PARITY needs --ctl".to_string()),
                    Some(addr) => parity_check(&server, addr, &subject),
                };
                match verdict {
                    Ok(()) => writeln!(out, "PARITY ok"),
                    Err(e) => writeln!(out, "PARITY fail: {e}"),
                }
                .and_then(|_| out.flush())
                .map_err(|e| e.to_string())?;
            }
            Some("EXIT") | None => break,
            Some(other) => return Err(format!("unknown control verb {other:?}")),
        }
    }

    if let Some(ctl) = ctl {
        ctl.shutdown();
    }
    server.shutdown();
    transport.shutdown();
    Ok(())
}

/// The remote/local parity oracle: every control answer obtained over a
/// genuine socket round trip through this process's own control server
/// must equal the answer computed directly on the server's handle. Run
/// while a sleeper (see [`SLEEPER`]) is resident so the hibernate/wake
/// round trip has a subject.
fn parity_check(server: &ServerHandle, ctl: &NetAddr, sleeper: &Urn) -> Result<(), String> {
    use crate::control::{serve_request, ControlClient, ControlRequest, ControlResponse};
    let views = vec![server.control_view()];
    let mut client = ControlClient::connect(ctl).map_err(|e| format!("connecting {ctl}: {e}"))?;

    // Park the resident sleeper in the bundle store first: a running
    // agent moves the very state being compared (fuel, slice counters,
    // journal), so parity is asserted on the quiescent server. The
    // hibernate itself IS the remote half of the round trip.
    if views[0].record_of(sleeper).is_none() {
        return Err(format!("sleeper {sleeper} is not resident here"));
    }
    let sleeper = sleeper.clone();
    match client.call(&ControlRequest::Hibernate {
        agent: sleeper.clone(),
    }) {
        Ok(ControlResponse::Ack(true)) => {}
        Ok(other) => return Err(format!("remote hibernate answered {other:?}")),
        Err(e) => return Err(format!("remote hibernate: {e}")),
    }
    if !views[0].is_hibernated(&sleeper) {
        return Err("remote hibernate acked but no bundle is stored locally".into());
    }

    // Remote and local answers must be identical. Journal appends from
    // the spill (event + latency histogram) can still be landing, so
    // each comparison retries briefly before declaring a mismatch.
    let mut agree = |req: ControlRequest| -> Result<ControlResponse, String> {
        let mut last = String::new();
        for _ in 0..100 {
            let remote = client.call(&req).map_err(|e| e.to_string())?;
            let local = serve_request(&views, &req);
            if remote == local {
                return Ok(remote);
            }
            last = format!("remote {remote:?} != local {local:?}");
            std::thread::sleep(Duration::from_millis(10));
        }
        Err(format!("{req:?}: {last}"))
    };
    let ControlResponse::Agents(agents) = agree(ControlRequest::ListAgents)? else {
        return Err("unexpected ListAgents response shape".into());
    };
    if !agents
        .iter()
        .any(|a| a.agent == sleeper && a.state == crate::control::AgentState::Hibernated)
    {
        return Err("agent list does not show the sleeper as hibernated".into());
    }
    agree(ControlRequest::Metrics)?;
    agree(ControlRequest::JournalTail {
        cursor: None,
        max: 50,
    })?;
    agree(ControlRequest::Status)?;

    // Wake over the socket; the local handle must see it resident again.
    match client.call(&ControlRequest::Wake {
        agent: sleeper.clone(),
    }) {
        Ok(ControlResponse::Ack(true)) => {}
        Ok(other) => return Err(format!("remote wake answered {other:?}")),
        Err(e) => return Err(format!("remote wake: {e}")),
    }
    if views[0].is_hibernated(&sleeper) {
        return Err("woken sleeper still sits in the bundle store".into());
    }
    if views[0].record_of(&sleeper).is_none() {
        return Err("woken sleeper is no longer resident".into());
    }
    Ok(())
}

/// Launches `agents` tourists around all remote stops and waits for
/// every one of them to report home. Returns (distinct reporters,
/// completed tours).
fn drive_tour(
    server: &ServerHandle,
    owner: &mut Owner,
    names: &[Urn],
    agents: usize,
) -> (usize, usize) {
    let home = server.name().clone();
    let tour = Itinerary::new(names[1..].iter().cloned());
    for _ in 0..agents {
        let agent = owner.next_agent_name("tourist");
        let creds = owner.credentials(agent, home.clone(), Rights::all(), u64::MAX);
        server.launch_tour(&tour, creds, tourist_image(&tour));
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut want = agents;
    loop {
        let reports = server.wait_reports(want, deadline.saturating_duration_since(Instant::now()));
        let distinct: HashSet<_> = reports.iter().map(|r| r.agent.clone()).collect();
        if distinct.len() >= agents || Instant::now() >= deadline {
            let completed = reports
                .iter()
                .filter(|r| matches!(r.status, crate::messages::ReportStatus::Completed(_)))
                .count();
            return (distinct.len(), completed);
        }
        want = reports.len() + 1;
    }
}

/// Waits until this process's reliable-send layer has drained and its
/// journal has stopped recording spans (same discipline as the
/// in-process trace-tour suite: the pending count alone can lie for a
/// beat between an ack landing and its span being appended).
fn quiesce(server: &ServerHandle, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        let pending = server.pending_send_count();
        let spans = server.journal().counter(Counter::SpansRecorded);
        std::thread::sleep(Duration::from_millis(20));
        let pending_after = server.pending_send_count();
        let spans_after = server.journal().counter(Counter::SpansRecorded);
        if (pending == 0 && pending_after == 0 && spans == spans_after)
            || Instant::now() >= deadline
        {
            return;
        }
    }
}

/// Counts (agent, hop) pairs this server's journal admitted more than
/// once — zero under the idempotent-admission invariant, no matter how
/// many retry copies the sockets carried.
fn duplicate_admissions(server: &ServerHandle) -> usize {
    let mut seen = HashSet::new();
    let mut dups = 0;
    for record in server.journal().snapshot() {
        if let Event::AgentAdmitted { agent, hop, .. } = record.event {
            if !seen.insert((agent, hop)) {
                dups += 1;
            }
        }
    }
    dups
}

/// Parent-side configuration for a cross-process smoke run.
pub struct SmokeOpts {
    /// Path to the `ajantad` binary to spawn.
    pub bin: PathBuf,
    /// Number of server processes (≥ 2: home plus at least one stop).
    pub servers: usize,
    /// The shared world seed.
    pub seed: u64,
    /// Number of touring agents.
    pub agents: usize,
    /// Injected frame loss on every process's send path.
    pub loss: f64,
    /// `true` for Unix-domain sockets, `false` for TCP on localhost.
    pub uds: bool,
    /// Scratch directory for socket paths and trace exports.
    pub dir: PathBuf,
    /// Hard deadline for the whole run; children are killed past it.
    pub timeout: Duration,
    /// Crash-fault injection: kill and restart one child mid-tour.
    pub kill: Option<KillPlan>,
    /// Serve a control socket (UDS, under `dir`) per child and exercise
    /// the control plane after the tour: sleeper + `PARITY` on child 1,
    /// then an `ajantactl` session (list/metrics/journal/revoke, built
    /// next to `bin`) whose fleet-wide revocation must be visible in
    /// every child's journal.
    pub ctl: bool,
    /// Where to write the `ajantactl` session transcript (CI artifact).
    pub ctl_transcript: Option<PathBuf>,
}

/// Kill-and-restart fault plan for [`run_parent`]: SIGKILL one child
/// mid-tour, keep it down for a window, then respawn it with the same
/// identity and WAL so replay (plus the peers' retry layer) must deliver
/// every agent anyway.
pub struct KillPlan {
    /// Which child to kill (must be ≥ 1 — child 0 drives the tour).
    pub victim: usize,
    /// How long after `GO` the kill lands.
    pub after: Duration,
    /// How long the victim stays down before the respawn.
    pub down: Duration,
}

/// What a cross-process smoke run proved.
pub struct SmokeReport {
    /// Agents launched.
    pub agents: usize,
    /// Distinct agents that reported home.
    pub reported: usize,
    /// Tours that completed cleanly (vs failed/refused).
    pub completed: usize,
    /// Total duplicate (agent, hop) admissions across all processes.
    pub duplicate_admissions: usize,
    /// Trace trees in the merged forest.
    pub traces: usize,
    /// Spans in the merged forest.
    pub spans: usize,
    /// Spans whose parent is missing from the merge.
    pub orphans: usize,
    /// Children killed and successfully restarted mid-run.
    pub restarts: usize,
    /// Agents re-admitted from an admission WAL across all processes.
    pub wal_replays: usize,
    /// Whether the control-plane exercise (PARITY + `ajantactl`
    /// session) ran and passed.
    pub ctl_exercised: bool,
    /// The merged JSONL document itself (for artifact upload).
    pub merged_jsonl: String,
}

/// Spawns `servers` child processes of `bin`, joins them into one world,
/// drives the tour, and merges the per-process trace exports. Kills
/// every child and errors if anything times out.
pub fn run_parent(opts: SmokeOpts) -> Result<SmokeReport, String> {
    std::fs::create_dir_all(&opts.dir).map_err(|e| format!("mkdir {}: {e}", opts.dir.display()))?;
    if let Some(plan) = &opts.kill {
        if plan.victim == 0 || plan.victim >= opts.servers {
            return Err(format!(
                "kill victim {} out of range (need 1..{})",
                plan.victim, opts.servers
            ));
        }
        if !opts.uds {
            return Err("kill-and-restart needs UDS (the respawn rebinds the same path)".into());
        }
    }
    let deadline = Instant::now() + opts.timeout;

    let trace_paths: Vec<PathBuf> = (0..opts.servers)
        .map(|i| opts.dir.join(format!("trace-{i}.jsonl")))
        .collect();
    // Every child gets a WAL when a crash is planned, so the victim's
    // respawn has admissions to replay.
    let wal_paths: Vec<Option<PathBuf>> = (0..opts.servers)
        .map(|i| {
            opts.kill
                .as_ref()
                .map(|_| opts.dir.join(format!("wal-{i}.log")))
        })
        .collect();
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, String)>();

    let cleanup = |children: &mut Vec<Child>| {
        for c in children.iter_mut() {
            let _ = c.kill();
            let _ = c.wait();
        }
    };

    // Control sockets are UDS under the scratch dir regardless of the
    // data plane's transport (the control plane is local-operator
    // trusted), and a pure function of the index so a respawned victim
    // rebinds the same path.
    let ctl_addrs: Vec<String> = (0..opts.servers)
        .map(|i| format!("uds:{}", opts.dir.join(format!("ctl{i}.sock")).display()))
        .collect();

    // Spawning is reused by the restart phase, so the argv (identity,
    // seed, address, WAL path) must be a pure function of the index.
    let spawn_child = |i: usize| -> Result<(Child, std::process::ChildStdin), String> {
        let addr = if opts.uds {
            format!("uds:{}", opts.dir.join(format!("s{i}.sock")).display())
        } else {
            "tcp:127.0.0.1:0".to_string()
        };
        let mut cmd = Command::new(&opts.bin);
        cmd.arg("child")
            .args(["--index", &i.to_string()])
            .args(["--servers", &opts.servers.to_string()])
            .args(["--seed", &format!("{:#x}", opts.seed)])
            .args(["--addr", &addr])
            .args(["--trace-out", &trace_paths[i].display().to_string()])
            .args(["--agents", &opts.agents.to_string()])
            .args(["--loss", &opts.loss.to_string()])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        if opts.ctl {
            cmd.args(["--ctl", &ctl_addrs[i]]);
        }
        if let Some(wal) = &wal_paths[i] {
            cmd.args(["--wal", &wal.display().to_string()]);
        }
        let mut child = cmd
            .spawn()
            .map_err(|e| format!("spawning {}: {e}", opts.bin.display()))?;
        let sin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let tx = tx.clone();
        std::thread::Builder::new()
            .name(format!("ajantad-out-{i}"))
            .spawn(move || {
                for line in BufReader::new(stdout).lines() {
                    match line {
                        Ok(l) => {
                            if tx.send((i, l)).is_err() {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawning child reader");
        Ok((child, sin))
    };

    let mut children: Vec<Child> = Vec::new();
    let mut stdins = Vec::new();
    for i in 0..opts.servers {
        match spawn_child(i) {
            Ok((child, sin)) => {
                children.push(child);
                stdins.push(sin);
            }
            Err(e) => {
                cleanup(&mut children);
                return Err(e);
            }
        }
    }

    // Phase 1: collect READY <addr> from every child.
    let mut addrs: HashMap<usize, String> = HashMap::new();
    while addrs.len() < opts.servers {
        let (i, line) = match rx.recv_timeout(deadline.saturating_duration_since(Instant::now())) {
            Ok(m) => m,
            Err(_) => {
                cleanup(&mut children);
                return Err("timed out waiting for children to bind".into());
            }
        };
        match line.strip_prefix("READY ") {
            Some(addr) => {
                addrs.insert(i, addr.to_string());
            }
            None => {
                cleanup(&mut children);
                return Err(format!("child {i}: expected READY, got {line:?}"));
            }
        }
    }

    // Phase 2: cross-register routes, then start the tour.
    let send_all = |msg: &str, stdins: &mut [std::process::ChildStdin]| -> Result<(), String> {
        for (i, sin) in stdins.iter_mut().enumerate() {
            writeln!(sin, "{msg}")
                .and_then(|_| sin.flush())
                .map_err(|e| format!("child {i} stdin: {e}"))?;
        }
        Ok(())
    };
    for (i, sin) in stdins.iter_mut().enumerate() {
        for (j, addr) in &addrs {
            if i != *j {
                if let Err(e) = writeln!(sin, "PEER {j} {addr}") {
                    cleanup(&mut children);
                    return Err(format!("child {i} stdin: {e}"));
                }
            }
        }
    }
    if let Err(e) = send_all("GO", &mut stdins) {
        cleanup(&mut children);
        return Err(e);
    }

    // Phase 3a: crash-fault injection. SIGKILL the victim mid-tour, wait
    // out the down window, then respawn it on the same UDS path with the
    // same identity and WAL. Peers keep retrying into the outage; the
    // respawn replays its WAL, so every admitted agent must still arrive.
    let mut restarts = 0usize;
    let mut parked: Vec<(usize, String)> = Vec::new();
    if let Some(plan) = &opts.kill {
        let victim = plan.victim;
        std::thread::sleep(plan.after);
        let _ = children[victim].kill();
        let _ = children[victim].wait();
        std::thread::sleep(plan.down);
        // The SIGKILLed process left its socket file behind; the rebind
        // needs the path free.
        let _ = std::fs::remove_file(opts.dir.join(format!("s{victim}.sock")));
        match spawn_child(victim) {
            Ok((child, sin)) => {
                children[victim] = child;
                stdins[victim] = sin;
            }
            Err(e) => {
                cleanup(&mut children);
                return Err(format!("respawning child {victim}: {e}"));
            }
        }
        // Wait for the reborn child's READY, parking unrelated lines
        // (child 0's RESULT may already be in flight).
        loop {
            let (i, line) =
                match rx.recv_timeout(deadline.saturating_duration_since(Instant::now())) {
                    Ok(m) => m,
                    Err(_) => {
                        cleanup(&mut children);
                        return Err("timed out waiting for the restarted child to bind".into());
                    }
                };
            if i == victim {
                if let Some(addr) = line.strip_prefix("READY ") {
                    addrs.insert(victim, addr.to_string());
                    break;
                }
            }
            parked.push((i, line));
        }
        // Re-teach the reborn child its routes (its table died with the
        // old process) and refresh the survivors' route to it.
        for (j, addr) in &addrs {
            if *j != victim {
                if let Err(e) = writeln!(stdins[victim], "PEER {j} {addr}") {
                    cleanup(&mut children);
                    return Err(format!("child {victim} stdin: {e}"));
                }
            }
        }
        let victim_addr = addrs[&victim].clone();
        for (i, sin) in stdins.iter_mut().enumerate() {
            if i != victim {
                if let Err(e) = writeln!(sin, "PEER {victim} {victim_addr}") {
                    cleanup(&mut children);
                    return Err(format!("child {i} stdin: {e}"));
                }
            }
        }
        if let Err(e) = stdins[victim].flush() {
            cleanup(&mut children);
            return Err(format!("child {victim} stdin: {e}"));
        }
        restarts = 1;
    }

    // Phase 3: wait for child 0's RESULT.
    let (mut reported, mut completed) = (0usize, 0usize);
    loop {
        let (i, line) = if parked.is_empty() {
            match rx.recv_timeout(deadline.saturating_duration_since(Instant::now())) {
                Ok(m) => m,
                Err(_) => {
                    cleanup(&mut children);
                    return Err("timed out waiting for the tour to resolve".into());
                }
            }
        } else {
            parked.remove(0)
        };
        if i == 0 && line.starts_with("RESULT ") {
            for word in line.split_whitespace().skip(1) {
                if let Some(v) = word.strip_prefix("reported=") {
                    reported = v.parse().unwrap_or(0);
                } else if let Some(v) = word.strip_prefix("completed=") {
                    completed = v.parse().unwrap_or(0);
                }
            }
            break;
        }
    }

    // Phase 3b: control-plane exercise. With the tour resolved, plant a
    // sleeper on child 1, assert remote/local parity inside that child,
    // then drive an `ajantactl` session against every child's control
    // socket — including a fleet-wide revocation that must surface in
    // every journal.
    let mut ctl_exercised = false;
    if opts.ctl {
        match control_phase(&opts, &ctl_addrs, &mut stdins, &rx, &mut parked, deadline) {
            Ok(()) => ctl_exercised = true,
            Err(e) => {
                cleanup(&mut children);
                return Err(format!("control-plane exercise: {e}"));
            }
        }
    }

    // Phase 4: quiesce every process and collect DONE + dup counts.
    if let Err(e) = send_all("STOP", &mut stdins) {
        cleanup(&mut children);
        return Err(e);
    }
    let mut dups_total = 0usize;
    let mut replays_total = 0usize;
    let mut done: HashSet<usize> = HashSet::new();
    while done.len() < opts.servers {
        let (i, line) = match rx.recv_timeout(deadline.saturating_duration_since(Instant::now())) {
            Ok(m) => m,
            Err(_) => {
                cleanup(&mut children);
                return Err("timed out waiting for children to quiesce".into());
            }
        };
        if let Some(rest) = line.strip_prefix("DONE ") {
            done.insert(i);
            for word in rest.split_whitespace() {
                if let Some(v) = word.strip_prefix("dups=") {
                    dups_total += v.parse::<usize>().unwrap_or(0);
                } else if let Some(v) = word.strip_prefix("replays=") {
                    replays_total += v.parse::<usize>().unwrap_or(0);
                }
            }
        }
    }

    // Phase 5: clean exit.
    let _ = send_all("EXIT", &mut stdins);
    drop(stdins);
    for (i, mut child) in children.into_iter().enumerate() {
        while Instant::now() < deadline {
            match child.try_wait() {
                Ok(Some(status)) => {
                    if !status.success() {
                        return Err(format!("child {i} exited with {status}"));
                    }
                    break;
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(20)),
                Err(e) => return Err(format!("waiting for child {i}: {e}")),
            }
        }
        if child.try_wait().ok().flatten().is_none() {
            let _ = child.kill();
            let _ = child.wait();
            return Err(format!("child {i} never exited"));
        }
    }

    // Phase 6: merge the per-process exports into one causal forest.
    let mut merged = String::new();
    for path in &trace_paths {
        merged.push_str(
            &std::fs::read_to_string(path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?,
        );
    }
    let records = parse_jsonl(&merged).map_err(|e| format!("merged JSONL does not parse: {e}"))?;
    let forest = TraceForest::build(records);

    Ok(SmokeReport {
        agents: opts.agents,
        reported,
        completed,
        duplicate_admissions: dups_total,
        traces: forest.traces.len(),
        spans: forest.span_count(),
        orphans: forest.orphan_count(),
        restarts,
        wal_replays: replays_total,
        ctl_exercised,
        merged_jsonl: merged,
    })
}

/// Drives the post-tour control-plane exercise (see phase 3b).
fn control_phase(
    opts: &SmokeOpts,
    ctl_addrs: &[String],
    stdins: &mut [std::process::ChildStdin],
    rx: &crossbeam::channel::Receiver<(usize, String)>,
    parked: &mut Vec<(usize, String)>,
    deadline: Instant,
) -> Result<(), String> {
    use crate::control::{AgentState, ControlClient, ControlRequest, ControlResponse};

    let mut recv_from = |want: usize, prefix: &str| -> Result<String, String> {
        if let Some(pos) = parked
            .iter()
            .position(|(i, l)| *i == want && l.starts_with(prefix))
        {
            return Ok(parked.remove(pos).1);
        }
        loop {
            match rx.recv_timeout(deadline.saturating_duration_since(Instant::now())) {
                Ok((i, line)) if i == want && line.starts_with(prefix) => return Ok(line),
                Ok(other) => parked.push(other),
                Err(_) => {
                    return Err(format!(
                        "timed out waiting for {prefix:?} from child {want}"
                    ))
                }
            }
        }
    };

    // Plant the hibernation subject: child 0 launches a sleeper to
    // child 1, and the parent watches child 1's control socket until
    // the admission lands.
    writeln!(stdins[0], "SLEEPER 1")
        .and_then(|_| stdins[0].flush())
        .map_err(|e| format!("child 0 stdin: {e}"))?;
    let line = recv_from(0, "SLEEPER ")?;
    let sleeper = line.trim_start_matches("SLEEPER ").trim().to_string();
    let mut client = loop {
        match ControlClient::connect_str(&ctl_addrs[1]) {
            Ok(c) => break c,
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(format!("connecting {}: {e}", ctl_addrs[1]));
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    };
    loop {
        let resident = match client.call(&ControlRequest::ListAgents) {
            Ok(ControlResponse::Agents(list)) => list
                .iter()
                .any(|a| a.agent.to_string() == sleeper && a.state == AgentState::Resident),
            Ok(_) => false,
            Err(e) => return Err(format!("listing agents on {}: {e}", ctl_addrs[1])),
        };
        if resident {
            break;
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "sleeper {sleeper} never became resident on child 1"
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(client);

    // Remote/local parity, asserted inside child 1 against its own
    // control socket (including the hibernate/wake round trip).
    writeln!(stdins[1], "PARITY {sleeper}")
        .and_then(|_| stdins[1].flush())
        .map_err(|e| format!("child 1 stdin: {e}"))?;
    let verdict = recv_from(1, "PARITY")?;
    if verdict != "PARITY ok" {
        return Err(format!("child 1: {verdict}"));
    }

    // The ajantactl session. Transcript is written even when a step
    // fails, so CI keeps the evidence either way.
    let ajantactl = opts.bin.with_file_name("ajantactl");
    if !ajantactl.exists() {
        return Err(format!("{} not built", ajantactl.display()));
    }
    let mut transcript = String::new();
    let result = ctl_session(&ajantactl, ctl_addrs, opts.agents, &mut transcript);
    if let Some(path) = &opts.ctl_transcript {
        std::fs::write(path, &transcript)
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }

    // Park the sleeper for good: it would otherwise busy-poll its
    // mailbox through quiesce and shutdown. Best effort — the exercise
    // verdict is already decided.
    if let (Ok(mut client), Ok(urn)) = (
        ControlClient::connect_str(&ctl_addrs[1]),
        sleeper.parse::<Urn>(),
    ) {
        let _ = client.call(&ControlRequest::Hibernate { agent: urn });
    }
    result
}

/// Runs the `ajantactl` binary through the acceptance session: health,
/// list, metrics, histograms, a gap-checked journal follow, the tour's
/// full admission history, and a fleet-wide revocation visible in every
/// server's journal. Every invocation must exit 0 with non-empty
/// output; everything is appended to `transcript`.
fn ctl_session(
    bin: &std::path::Path,
    endpoints: &[String],
    agents: usize,
    transcript: &mut String,
) -> Result<(), String> {
    let run = |ctls: &[String], extra: &[&str], transcript: &mut String| {
        let mut args: Vec<String> = Vec::new();
        for e in ctls {
            args.push("--ctl".into());
            args.push(e.clone());
        }
        args.extend(extra.iter().map(|s| s.to_string()));
        let out = Command::new(bin)
            .args(&args)
            .output()
            .map_err(|e| format!("spawning ajantactl: {e}"))?;
        transcript.push_str(&format!("$ ajantactl {}\n", args.join(" ")));
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        transcript.push_str(&stdout);
        let stderr = String::from_utf8_lossy(&out.stderr);
        if !stderr.is_empty() {
            transcript.push_str(&stderr);
        }
        transcript.push('\n');
        if !out.status.success() {
            return Err(format!(
                "ajantactl {} exited {}",
                extra.join(" "),
                out.status
            ));
        }
        if stdout.trim().is_empty() {
            return Err(format!("ajantactl {} produced no output", extra.join(" ")));
        }
        Ok(stdout)
    };

    run(endpoints, &["--json", "health"], transcript)?;
    run(endpoints, &["--json", "list"], transcript)?;
    run(endpoints, &["--json", "metrics"], transcript)?;
    run(endpoints, &["--json", "histo"], transcript)?;
    run(endpoints, &["--json", "status"], transcript)?;
    // The follower's drop-aware gap accounting over the whole retained
    // journal: exits non-zero on any hole the drop counters don't cover.
    run(
        endpoints,
        &["follow", "--for-ms", "300", "--max", "100000"],
        transcript,
    )?;
    // Every touring agent must be visible in the control plane's
    // admission history.
    let journal = run(
        endpoints,
        &["--json", "journal", "--tail", "100000"],
        transcript,
    )?;
    let mut admitted: HashSet<&str> = HashSet::new();
    for chunk in journal.split("\"label\":\"agent-admitted\"").skip(1) {
        if let Some(agent) = chunk
            .split("\"agent\":\"")
            .nth(1)
            .and_then(|r| r.split('"').next())
        {
            if agent.contains("/tourist") {
                admitted.insert(agent);
            }
        }
    }
    if admitted.len() < agents {
        return Err(format!(
            "journal shows {} distinct touring agents, expected {agents}",
            admitted.len()
        ));
    }
    // Fleet-wide revocation, then its mark in every server's journal.
    run(
        endpoints,
        &["--json", "revoke", "ajn://tour.org/resource/jobs"],
        transcript,
    )?;
    for e in endpoints {
        let page = run(
            std::slice::from_ref(e),
            &["--json", "journal", "--tail", "50"],
            transcript,
        )?;
        if !page.contains("\"label\":\"proxy-revoke\"") {
            return Err(format!("revocation not visible in the journal via {e}"));
        }
    }
    Ok(())
}
