//! Resources implemented by agent bytecode — dynamic server extension.
//!
//! Paper Section 5.5: *"A service provider can dispatch an agent at any
//! time, to install new resources dynamically. The agent can carry
//! resource objects, each of which encapsulates a customized access
//! control protocol, proxy creation mechanism, etc. ... Having done so,
//! the agent thread may terminate, leaving the passive resource objects
//! behind."*
//!
//! In the Java original the carried resource is a Java object; here it is
//! a verified AgentScript [`Module`]: each exported function becomes a
//! resource method, and every invocation runs in a fresh fuel-bounded
//! interpreter over the resource's **own persistent globals** — so an
//! installed resource keeps state between calls, exactly like a passive
//! object left behind.

use std::sync::Arc;

use ajanta_naming::Urn;
use ajanta_vm::{ExecOutcome, Interpreter, Limits, Module, NoHost, Value, VerifiedModule};
use parking_lot::Mutex;

use ajanta_core::{MethodSpec, Resource, ResourceError};

/// A resource whose implementation is mobile code.
pub struct VmResource {
    name: Urn,
    owner: Urn,
    module: Arc<VerifiedModule>,
    /// Persistent state across invocations.
    globals: Mutex<Vec<Value>>,
    /// Fuel/allocation budget per invocation — the host protects itself
    /// from a hostile installed resource the same way it does from a
    /// hostile agent.
    limits: Limits,
}

impl VmResource {
    /// Verifies `module` and wraps it as a resource. Every function in
    /// the module becomes an invocable method.
    pub fn install(
        name: Urn,
        owner: Urn,
        module: Module,
        limits: Limits,
    ) -> Result<Arc<Self>, ajanta_vm::VerifyError> {
        let module = Arc::new(ajanta_vm::verify(module)?);
        let globals = module.module().initial_globals();
        Ok(Arc::new(VmResource {
            name,
            owner,
            module,
            globals: Mutex::new(globals),
            limits,
        }))
    }

    /// The verified implementation module.
    pub fn module(&self) -> &Arc<VerifiedModule> {
        &self.module
    }
}

impl Resource for VmResource {
    fn name(&self) -> &Urn {
        &self.name
    }
    fn owner(&self) -> &Urn {
        &self.owner
    }
    fn methods(&self) -> Vec<MethodSpec> {
        self.module
            .module()
            .functions
            .iter()
            .map(|f| MethodSpec::new(f.name.clone(), f.params.clone(), f.ret))
            .collect()
    }
    fn invoke(&self, method: &str, args: &[Value]) -> Result<Value, ResourceError> {
        self.check_args(method, args)?;
        // Hold the state lock for the whole call: resource methods are
        // synchronized, like the paper's `synchronized` buffer methods.
        let mut globals = self.globals.lock();
        let mut interp = Interpreter::new(Arc::clone(&self.module), self.limits);
        if !interp.restore_globals(globals.clone()) {
            return Err(ResourceError::Failed("resource state corrupt".into()));
        }
        match interp.run(method, args.to_vec(), &mut NoHost) {
            ExecOutcome::Finished(v) => {
                *globals = interp.globals().to_vec();
                Ok(v)
            }
            ExecOutcome::Trapped { kind, .. } => {
                // State is NOT committed on failure: invocations are
                // all-or-nothing.
                Err(ResourceError::Failed(format!(
                    "resource code trapped: {kind}"
                )))
            }
            ExecOutcome::OutOfFuel => Err(ResourceError::Failed(
                "resource code exceeded its fuel budget".into(),
            )),
            ExecOutcome::HostStopped { .. } => unreachable!("NoHost cannot stop execution"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajanta_vm::{ModuleBuilder, Op, Ty};

    /// A counter service: `bump(n) -> new_total`, `total() -> total`.
    fn counter_module() -> Module {
        let mut b = ModuleBuilder::new("counter-svc");
        let g = b.global(Ty::Int);
        b.function(
            "bump",
            [Ty::Int],
            [],
            Ty::Int,
            vec![
                Op::GLoad(g),
                Op::Load(0),
                Op::Add,
                Op::GStore(g),
                Op::GLoad(g),
                Op::Ret,
            ],
        );
        b.function("total", [], [], Ty::Int, vec![Op::GLoad(g), Op::Ret]);
        b.function(
            "boom",
            [],
            [],
            Ty::Int,
            vec![
                Op::GLoad(g),
                Op::PushI(1),
                Op::GStore(g),
                Op::PushI(0),
                Op::PushI(0),
                Op::Div,
                Op::Ret,
            ],
        );
        b.build()
    }

    fn install() -> Arc<VmResource> {
        VmResource::install(
            Urn::resource("x.org", ["counter-svc"]).unwrap(),
            Urn::owner("x.org", ["installer"]).unwrap(),
            counter_module(),
            Limits::default(),
        )
        .unwrap()
    }

    #[test]
    fn functions_become_methods() {
        let r = install();
        let methods = r.methods();
        assert_eq!(methods.len(), 3);
        assert_eq!(methods[0].name, "bump");
        assert_eq!(methods[0].params, vec![Ty::Int]);
    }

    #[test]
    fn state_persists_across_invocations() {
        let r = install();
        assert_eq!(r.invoke("bump", &[Value::Int(5)]).unwrap(), Value::Int(5));
        assert_eq!(r.invoke("bump", &[Value::Int(3)]).unwrap(), Value::Int(8));
        assert_eq!(r.invoke("total", &[]).unwrap(), Value::Int(8));
    }

    #[test]
    fn unverifiable_module_refused_at_install() {
        let mut b = ModuleBuilder::new("bad");
        b.function("f", [], [], Ty::Int, vec![Op::Add, Op::Ret]);
        assert!(VmResource::install(
            Urn::resource("x.org", ["bad"]).unwrap(),
            Urn::owner("x.org", ["i"]).unwrap(),
            b.build(),
            Limits::default(),
        )
        .is_err());
    }

    #[test]
    fn trapping_method_reports_failure_and_rolls_back() {
        let r = install();
        r.invoke("bump", &[Value::Int(7)]).unwrap();
        // `boom` first writes the global then divides by zero; the write
        // must not be committed.
        let err = r.invoke("boom", &[]).unwrap_err();
        assert!(matches!(err, ResourceError::Failed(_)));
        assert_eq!(r.invoke("total", &[]).unwrap(), Value::Int(7));
    }

    #[test]
    fn fuel_budget_bounds_hostile_resources() {
        let mut b = ModuleBuilder::new("spin");
        b.function("spin", [], [], Ty::Int, vec![Op::Jump(0)]);
        let r = VmResource::install(
            Urn::resource("x.org", ["spin"]).unwrap(),
            Urn::owner("x.org", ["i"]).unwrap(),
            b.build(),
            Limits {
                fuel: 1_000,
                ..Limits::default()
            },
        )
        .unwrap();
        let err = r.invoke("spin", &[]).unwrap_err();
        assert!(matches!(err, ResourceError::Failed(m) if m.contains("fuel")));
    }

    #[test]
    fn bad_arguments_rejected_before_execution() {
        let r = install();
        assert!(matches!(
            r.invoke("bump", &[Value::str("not an int")]),
            Err(ResourceError::BadArguments { .. })
        ));
        assert!(matches!(
            r.invoke("ghost", &[]),
            Err(ResourceError::NoSuchMethod(_))
        ));
    }

    #[test]
    fn concurrent_invocations_are_serialized() {
        let r = install();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    for _ in 0..50 {
                        r.invoke("bump", &[Value::Int(1)]).unwrap();
                    }
                });
            }
        });
        assert_eq!(r.invoke("total", &[]).unwrap(), Value::Int(200));
    }
}
