//! The admission write-ahead log: crash-safe agent custody.
//!
//! Once a server acks a `Transfer`, it owns that agent — the sender
//! stops retrying and deletes its copy. If the server process then dies,
//! the agent is gone. The WAL closes that window: every admission is
//! appended (as an [`AgentBundle`]) *before* the admission ack leaves
//! the process, and every resolution (the agent completed, failed, or
//! was forwarded on) is appended when custody ends. A restarted server
//! replays the log: resolved `(agent, hop)` keys seed the duplicate-
//! admission filter (so a peer retrying an old frame is acked and
//! dropped, exactly as if the server had never restarted), and
//! unresolved admissions are re-admitted through the normal pipeline —
//! idempotently, because admission dedups on the same `(agent, hop)`
//! key. Replaying the same log twice therefore admits each key once.
//!
//! Records are length-prefixed canonical bytes. Appends flush to the OS
//! before returning, which survives `SIGKILL` (only the machine dying
//! can lose a buffered record). Replay is total: a torn final record —
//! the normal result of a crash mid-append — ends the scan cleanly.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use ajanta_naming::Urn;
use ajanta_wire::{Decoder, Encoder, Wire, WireError};

use crate::bundle::AgentBundle;

/// One WAL entry: custody taken or custody ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// The server admitted this agent (logged before the ack flushes).
    Admit(Box<AgentBundle>),
    /// The server resolved `(agent, hop)`: the agent reported, was
    /// forwarded to its next hop, or was refused — custody ended.
    Resolve {
        /// The resolved agent.
        agent: Urn,
        /// The hop whose admission is now settled.
        hop: u64,
    },
}

impl Wire for WalRecord {
    fn encode(&self, e: &mut Encoder) {
        match self {
            WalRecord::Admit(bundle) => {
                e.put_u8(0);
                bundle.encode(e);
            }
            WalRecord::Resolve { agent, hop } => {
                e.put_u8(1);
                agent.encode(e);
                e.put_varint(*hop);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        match d.get_u8()? {
            0 => Ok(WalRecord::Admit(Box::new(AgentBundle::decode(d)?))),
            1 => Ok(WalRecord::Resolve {
                agent: Urn::decode(d)?,
                hop: d.get_varint()?,
            }),
            tag => Err(WireError::BadTag {
                ty: "WalRecord",
                tag,
            }),
        }
    }
}

/// An append-only admission log at a fixed path.
#[derive(Debug)]
pub struct AdmissionWal {
    file: Mutex<File>,
    path: PathBuf,
}

impl AdmissionWal {
    /// Opens (creating if missing) the log at `path` for appending.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(AdmissionWal {
            file: Mutex::new(file),
            path,
        })
    }

    /// The path this log lives at.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and flushes it to the OS. The record is
    /// length-prefixed so replay can detect a torn tail.
    pub fn append(&self, record: &WalRecord) -> io::Result<()> {
        let mut e = Encoder::new();
        e.put_bytes(&record.to_bytes());
        let mut file = self.file.lock().expect("wal file poisoned");
        file.write_all(e.as_slice())?;
        file.flush()
    }

    /// Reads every intact record from the log at `path`. A missing file
    /// is an empty log. A torn or corrupt tail ends the scan at the last
    /// intact record — replay never fails on a crash artifact.
    pub fn replay(path: impl AsRef<Path>) -> io::Result<Vec<WalRecord>> {
        let bytes = match std::fs::read(path.as_ref()) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut records = Vec::new();
        let mut d = Decoder::new(&bytes);
        while d.remaining() > 0 {
            let Ok(frame) = d.get_bytes() else { break };
            let Ok(record) = WalRecord::from_bytes(&frame) else {
                break;
            };
            records.push(record);
        }
        Ok(records)
    }

    /// Splits replayed records into settled keys and still-open
    /// admissions: every `(agent, hop)` that ever appeared (admissions
    /// *and* resolutions — both must seed the duplicate filter), plus
    /// the admissions with no matching resolution, in log order.
    pub fn recover(records: Vec<WalRecord>) -> WalRecovery {
        let mut resolved: Vec<(Urn, u64)> = Vec::new();
        let mut admitted: Vec<AgentBundle> = Vec::new();
        for record in records {
            match record {
                WalRecord::Admit(bundle) => {
                    // Re-admission of a key (same agent re-logged after
                    // its own restart replay) keeps the newest bundle.
                    admitted.retain(|b| !(b.agent == bundle.agent && b.hop == bundle.hop));
                    admitted.push(*bundle);
                }
                WalRecord::Resolve { agent, hop } => {
                    admitted.retain(|b| !(b.agent == agent && b.hop == hop));
                    if !resolved.iter().any(|(a, h)| *a == agent && *h == hop) {
                        resolved.push((agent, hop));
                    }
                }
            }
        }
        WalRecovery {
            resolved,
            unresolved: admitted,
        }
    }
}

/// What a restarted server learns from its log (see
/// [`AdmissionWal::recover`]).
#[derive(Debug)]
pub struct WalRecovery {
    /// Keys whose custody ended — seed the duplicate-admission filter
    /// with these so peer retries are acked and dropped.
    pub resolved: Vec<(Urn, u64)>,
    /// Admissions still in flight at the crash — re-admit these.
    pub unresolved: Vec<AgentBundle>,
}
