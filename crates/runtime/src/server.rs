//! The agent server (paper Fig. 1), as a thread with a control handle.
//!
//! One [`AgentServer`] owns: a network endpoint, the reference monitor,
//! the resource registry, the domain database, a security policy, the
//! system module set, and its cryptographic identity. Visiting agents
//! execute on worker threads, each confined to its own protection domain
//! and talking to the server only through [`crate::env::AgentEnv`].
//!
//! Admission pipeline for an arriving transfer (Section 5.2's problem
//! list, in order): datagram authentication → credential verification →
//! byte-code verification in a fresh name-space → policy authorization →
//! domain creation → execution under quotas.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};

use ajanta_core::{
    AccessProtocol, BindError, Credentials, DomainDatabase, DomainId, Event, Guarded, HostMonitor,
    Journal, ProxyPolicy, RejectKind, Requester, ResourceProxy, ResourceRegistry, Rights,
    SecurityPolicy, SystemOp, UsageLimits,
};
use ajanta_crypto::{DetRng, KeyPair, RootOfTrust};
use ajanta_naming::Urn;
use ajanta_net::secure::ChannelIdentity;
use ajanta_net::{Delivery, Endpoint, ReplayGuard, SealedDatagram, SimNet};
use ajanta_vm::{
    AgentImage, ExecOutcome, Interpreter, Limits, Module, Namespace, Value, VerifiedModule,
};
use ajanta_wire::Wire;

use crate::directory::Directory;
use crate::env::AgentEnv;
use crate::messages::{AgentStatus, Message, Report, ReportStatus};
use crate::vmres::VmResource;

/// A recorded security-relevant rejection (experiment X11's raw data) —
/// a projection of the journal's [`Event::Rejected`] records, kept as a
/// convenience view; the journal itself is reachable via
/// [`ServerHandle::journal`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecurityEvent {
    /// Virtual time of the event.
    pub at: u64,
    /// Typed category (formerly a `&'static str`; `kind.as_str()` yields
    /// the old kebab-case label).
    pub kind: RejectKind,
    /// Human-readable detail.
    pub detail: String,
}

/// Aggregate counters exposed by [`ServerHandle::stats`].
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Agents admitted and executed.
    pub agents_hosted: AtomicU64,
    /// Transfers sent onward (migrations out + launches).
    pub transfers_out: AtomicU64,
    /// Reports received (as a home site).
    pub reports_in: AtomicU64,
    /// Mail messages delivered to local agents.
    pub mail_delivered: AtomicU64,
}

/// Snapshot of [`ServerStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Agents admitted and executed.
    pub agents_hosted: u64,
    /// Transfers sent onward.
    pub transfers_out: u64,
    /// Reports received.
    pub reports_in: u64,
    /// Mail messages delivered.
    pub mail_delivered: u64,
}

/// Configuration for one server.
pub struct ServerConfig {
    /// The server's global name.
    pub name: Urn,
    /// Its signing identity (certificate chain should be published in the
    /// directory by the caller).
    pub identity: ChannelIdentity,
    /// Full key pair (the identity holds the same keys; kept explicitly
    /// for datagram decryption).
    pub keys: KeyPair,
    /// Trusted certificate roots.
    pub roots: RootOfTrust,
    /// The shared server directory.
    pub directory: Directory,
    /// Authorization policy.
    pub policy: SecurityPolicy,
    /// Modules every agent name-space is pre-populated with.
    pub system_modules: Vec<Arc<VerifiedModule>>,
    /// Per-agent quotas recorded in the domain database.
    pub agent_limits: UsageLimits,
    /// Interpreter limits per agent execution.
    pub vm_limits: Limits,
    /// Whether visiting agents may dispatch further agents.
    pub agents_may_dispatch: bool,
    /// Replay-guard freshness window (virtual ns).
    pub replay_window_ns: u64,
    /// Seed for this server's nonce/ephemeral randomness.
    pub seed: u64,
    /// Total records the telemetry journal retains (audit decisions,
    /// rejections, agent log lines, lifecycle and charge events share
    /// this bound; aggregate counters stay exact past it).
    pub journal_capacity: usize,
}

/// Queued (sender, payload) mail for one agent.
type Mailbox = VecDeque<(Urn, Vec<u8>)>;

/// Lock shards for the mailbox map. Mail delivery and pickup for
/// different agents contend only within a shard, so many agent worker
/// threads exchange mail without serializing on one map-wide lock.
const MAILBOX_SHARDS: usize = 16;

fn mailbox_shard_of(agent: &Urn) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    agent.hash(&mut h);
    (h.finish() as usize) % MAILBOX_SHARDS
}

/// State shared between the server loop, agent worker threads, and the
/// control handle.
pub struct Shared {
    name: Urn,
    identity: ChannelIdentity,
    keys: KeyPair,
    roots: RootOfTrust,
    directory: Directory,
    net: SimNet,
    monitor: HostMonitor,
    registry: ResourceRegistry,
    /// Internally sharded; every method takes `&self`, so agent worker
    /// threads admit/charge/evict concurrently (the old outer `Mutex`
    /// serialized all of them and capped multi-agent throughput).
    domains: DomainDatabase,
    policy: RwLock<SecurityPolicy>,
    system_modules: Vec<Arc<VerifiedModule>>,
    agent_limits: UsageLimits,
    vm_limits: Limits,
    mailboxes: [Mutex<HashMap<Urn, Mailbox>>; MAILBOX_SHARDS],
    /// The one telemetry sink: audit decisions (via the monitor),
    /// rejections, agent log lines, lifecycle and proxy/meter events.
    /// Bounded; replaces the old unbounded `logs`/`events` vectors.
    journal: Arc<Journal>,
    reports: Mutex<Vec<Report>>,
    rng: Mutex<DetRng>,
    guard: Mutex<ReplayGuard>,
    stats: ServerStats,
    pending_queries: Mutex<BTreeMap<u64, crossbeam::channel::Sender<AgentStatus>>>,
    next_query_id: AtomicU64,
}

impl Shared {
    /// The server's name.
    pub fn name(&self) -> &Urn {
        &self.name
    }

    fn mailbox_shard(&self, agent: &Urn) -> &Mutex<HashMap<Urn, Mailbox>> {
        &self.mailboxes[mailbox_shard_of(agent)]
    }

    /// Current virtual time.
    pub fn clock_now(&self) -> u64 {
        self.net.clock().now()
    }

    /// The server's telemetry journal.
    pub fn journal(&self) -> &Arc<Journal> {
        &self.journal
    }

    /// Appends to the per-agent log (journaled, hence bounded: a
    /// long-running agent can no longer grow server memory without limit).
    pub fn log(&self, agent: &Urn, text: String) {
        self.journal.append(Event::AgentLog {
            agent: agent.clone(),
            text,
        });
    }

    /// Journals one security-relevant rejection.
    fn reject(&self, kind: RejectKind, detail: String) {
        self.journal.append(Event::Rejected { kind, detail });
    }

    /// Fig. 6 steps 2–5 on behalf of an agent, with domain-database
    /// bookkeeping.
    pub fn bind_resource(
        &self,
        requester: &Requester,
        name: &Urn,
        now: u64,
    ) -> Result<ResourceProxy, String> {
        // Binding quota first.
        self.domains
            .add_binding(DomainId::SERVER, requester.domain, name.clone())
            .map_err(|e| {
                self.journal.append(Event::ProxyDeny {
                    resource: name.clone(),
                    holder: requester.domain,
                    detail: e.to_string(),
                });
                e.to_string()
            })?;
        match self.registry.bind(requester, name, now) {
            Ok(proxy) => {
                // Proxy telemetry rides the server journal from here on:
                // meter charges, revocations, and expiries of this grant
                // all land in the same stream as the grant itself.
                proxy
                    .control()
                    .attach_journal(Arc::clone(&self.journal), name.clone());
                self.journal.append(Event::ProxyGrant {
                    resource: name.clone(),
                    holder: requester.domain,
                });
                Ok(proxy)
            }
            Err(e) => {
                let _ = self
                    .domains
                    .remove_binding(DomainId::SERVER, requester.domain, name);
                let detail = match e {
                    BindError::NotFound(n) => format!("no resource {n}"),
                    other => other.to_string(),
                };
                self.journal.append(Event::ProxyDeny {
                    resource: name.clone(),
                    holder: requester.domain,
                    detail: detail.clone(),
                });
                Err(detail)
            }
        }
    }

    /// Delivers mail to a co-located agent's mailbox. Returns whether the
    /// recipient is resident here.
    pub fn local_mail(&self, from: Urn, to: Urn, data: Vec<u8>) -> bool {
        let resident = self.domains.domain_of(&to).is_some();
        if !resident {
            return false;
        }
        self.mailbox_shard(&to)
            .lock()
            .entry(to)
            .or_default()
            .push_back((from, data));
        self.stats.mail_delivered.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Sends mail to an agent on another server.
    pub fn remote_mail(&self, from: Urn, server: Urn, to: Urn, data: Vec<u8>) -> Result<(), String> {
        self.send_message(&server, &Message::AgentMail { from, to, data })
    }

    /// Takes the oldest mail item for `agent`.
    pub fn take_mail(&self, agent: &Urn) -> Option<(Urn, Vec<u8>)> {
        self.mailbox_shard(agent).lock().get_mut(agent)?.pop_front()
    }

    /// Dynamic extension: installs an agent-supplied module as a resource
    /// (paper Section 5.5), guarded by the monitor and registry ownership.
    pub fn install_vm_resource(
        &self,
        caller: DomainId,
        installer: &Urn,
        name: Urn,
        module: Module,
    ) -> Result<(), String> {
        let res = VmResource::install(name, installer.clone(), module, self.vm_limits)
            .map_err(|e| format!("module rejected: {e}"))?;
        let guarded = Guarded::new(res, ProxyPolicy::default());
        self.registry
            .register(&self.monitor, caller, installer, guarded)
            .map_err(|e| e.to_string())
    }

    /// Dispatches a child agent on behalf of `parent` (paper Section 4:
    /// agents can create child agents; Section 2: the creator may be
    /// another agent). The child runs under the parent's credentials with
    /// a name inside the parent's subtree; the reference monitor gates
    /// agent-initiated dispatch.
    #[allow(clippy::too_many_arguments)]
    pub fn dispatch_child(
        &self,
        caller: DomainId,
        parent: &Urn,
        credentials: &Credentials,
        module: Module,
        dest: &Urn,
        entry: String,
        payload: Vec<u8>,
        seq: u64,
    ) -> Result<Urn, String> {
        self.monitor
            .check(caller, SystemOp::DispatchAgent)
            .map_err(|v| v.to_string())?;
        let child = parent
            .child(format!("child-{seq}"))
            .map_err(|e| e.to_string())?;
        let globals = module.initial_globals();
        let image = AgentImage {
            module,
            globals,
            entry,
        };
        image
            .validate()
            .map_err(|e| format!("child image invalid: {e}"))?;
        self.stats.transfers_out.fetch_add(1, Ordering::Relaxed);
        self.journal.append(Event::AgentDispatched {
            agent: child.clone(),
            dest: dest.clone(),
        });
        let msg = Message::Transfer {
            run_as: child.clone(),
            credentials: credentials.clone(),
            image,
            hop: 0,
            arg: payload,
        };
        self.send_message(dest, &msg)?;
        Ok(child)
    }

    /// Seals and sends one protocol message to a peer server.
    pub fn send_message(&self, to: &Urn, msg: &Message) -> Result<(), String> {
        let now = self.clock_now();
        let key = self
            .directory
            .verified_key(to, &self.roots, now)
            .ok_or_else(|| format!("no verified directory entry for {to}"))?;
        let payload = msg.to_bytes();
        let datagram = {
            let mut rng = self.rng.lock();
            SealedDatagram::seal(&self.identity, to, key, &payload, now, &mut rng)
        };
        self.net
            .send_as(&self.name, to, datagram.to_bytes())
            .map_err(|e| e.to_string())
    }

    /// Records a report arriving at this (home) server, journaling the
    /// agent's outcome.
    fn record_report(&self, report: Report) {
        self.stats.reports_in.fetch_add(1, Ordering::Relaxed);
        self.journal.append(Event::AgentReported {
            agent: report.agent.clone(),
            status: match report.status {
                ReportStatus::Completed(_) => "completed",
                ReportStatus::Failed(_) => "failed",
                ReportStatus::QuotaExceeded(_) => "quota",
                ReportStatus::Refused(_) => "refused",
            },
        });
        self.reports.lock().push(report);
    }

    fn report_home(&self, run_as: &Urn, credentials: &Credentials, status: ReportStatus) {
        let report = Report {
            agent: run_as.clone(),
            server: self.name.clone(),
            status,
            at: self.clock_now(),
        };
        if credentials.home == self.name {
            self.record_report(report);
            return;
        }
        if let Err(e) = self.send_message(&credentials.home.clone(), &Message::Report(report)) {
            self.reject(RejectKind::ReportUndeliverable, e);
        }
    }
}

/// Control-channel commands. (`Launch` carries a whole agent; boxing
/// would only obscure the one-shot hand-off.)
#[allow(clippy::large_enum_variant)]
enum Control {
    Launch {
        dest: Urn,
        credentials: Credentials,
        image: AgentImage,
    },
    QueryStatus {
        server: Urn,
        agent: Urn,
        reply: crossbeam::channel::Sender<AgentStatus>,
    },
    Shutdown,
}

/// The running server's control handle. Dropping it does **not** stop the
/// server; call [`ServerHandle::shutdown`].
pub struct ServerHandle {
    name: Urn,
    shared: Arc<Shared>,
    ctrl: Sender<Control>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The server's name.
    pub fn name(&self) -> &Urn {
        &self.name
    }

    /// Launches an agent from this (home) server toward `dest`.
    pub fn launch(&self, dest: Urn, credentials: Credentials, image: AgentImage) {
        let _ = self.ctrl.send(Control::Launch {
            dest,
            credentials,
            image,
        });
    }

    /// Registers a resource in this server's registry (server domain).
    pub fn register_resource(&self, resource: Arc<dyn AccessProtocol>) -> Result<(), String> {
        let registrar = self.name.clone();
        self.shared
            .registry
            .register(&self.shared.monitor, DomainId::SERVER, &registrar, resource)
            .map_err(|e| e.to_string())
    }

    /// Runs `f` against the server's policy (e.g. to add rules at
    /// runtime — Section 5.1's dynamically modified policies).
    pub fn with_policy<R>(&self, f: impl FnOnce(&mut SecurityPolicy) -> R) -> R {
        f(&mut self.shared.policy.write())
    }

    /// Snapshot of reports received here as a home site.
    pub fn reports(&self) -> Vec<Report> {
        self.shared.reports.lock().clone()
    }

    /// Blocks (real time) until at least `n` reports have arrived or the
    /// timeout elapses; returns the snapshot either way.
    pub fn wait_reports(&self, n: usize, timeout: std::time::Duration) -> Vec<Report> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let reports = self.reports();
            if reports.len() >= n || std::time::Instant::now() >= deadline {
                return reports;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }

    /// Asks `server`'s domain database about `agent` over the network —
    /// paper Section 4: the domain database "responds to status queries
    /// from their owners". Returns `None` on timeout or send failure.
    pub fn query_status(
        &self,
        server: &Urn,
        agent: &Urn,
        timeout: std::time::Duration,
    ) -> Option<AgentStatus> {
        let (reply_tx, reply_rx) = crossbeam::channel::bounded(1);
        self.ctrl
            .send(Control::QueryStatus {
                server: server.clone(),
                agent: agent.clone(),
                reply: reply_tx,
            })
            .ok()?;
        reply_rx.recv_timeout(timeout).ok()
    }

    /// Per-agent log lines — a filtered view of the journal's
    /// [`Event::AgentLog`] records. Bounded by the journal capacity; the
    /// exact lifetime count (including evicted lines) is the journal's
    /// `LogLines` counter.
    pub fn logs(&self) -> Vec<(Urn, String)> {
        self.shared
            .journal
            .snapshot()
            .into_iter()
            .filter_map(|r| match r.event {
                Event::AgentLog { agent, text } => Some((agent, text)),
                _ => None,
            })
            .collect()
    }

    /// Security events recorded by this server — a filtered view of the
    /// journal's [`Event::Rejected`] records.
    pub fn security_events(&self) -> Vec<SecurityEvent> {
        self.shared
            .journal
            .snapshot()
            .into_iter()
            .filter_map(|r| match r.event {
                Event::Rejected { kind, detail } => Some(SecurityEvent {
                    at: r.at,
                    kind,
                    detail,
                }),
                _ => None,
            })
            .collect()
    }

    /// The server's telemetry journal: typed events, aggregate counters,
    /// and the Prometheus-style snapshot.
    pub fn journal(&self) -> Arc<Journal> {
        Arc::clone(&self.shared.journal)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            agents_hosted: self.shared.stats.agents_hosted.load(Ordering::Relaxed),
            transfers_out: self.shared.stats.transfers_out.load(Ordering::Relaxed),
            reports_in: self.shared.stats.reports_in.load(Ordering::Relaxed),
            mail_delivered: self.shared.stats.mail_delivered.load(Ordering::Relaxed),
        }
    }

    /// Number of currently resident agents.
    pub fn resident_agents(&self) -> usize {
        self.shared.domains.len()
    }

    /// Names in the resource registry.
    pub fn resources(&self) -> Vec<Urn> {
        self.shared.registry.list()
    }

    /// The monitor's audit-log length (X12 instrumentation) — an O(1)
    /// counter read; the old implementation cloned the whole log to count
    /// it.
    pub fn audit_len(&self) -> usize {
        self.shared.monitor.audit_len()
    }

    /// Stops the server loop and joins all threads.
    pub fn shutdown(mut self) {
        let _ = self.ctrl.send(Control::Shutdown);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// The agent server. Construct with [`AgentServer::spawn`].
pub struct AgentServer;

impl AgentServer {
    /// Starts a server thread attached to `net` and returns its handle.
    ///
    /// # Panics
    /// Panics if the server name is already attached to the network.
    pub fn spawn(net: &SimNet, config: ServerConfig) -> ServerHandle {
        let endpoint = net
            .attach(config.name.clone())
            .expect("server name already attached");
        // One journal per server, stamped with the network's virtual
        // clock; the monitor audits into it, so the audit trail shares
        // the stream (and the bound) with everything else.
        let clock = net.clock().clone();
        let journal = Arc::new(
            Journal::with_capacity(config.journal_capacity).with_clock(move || clock.now()),
        );
        let monitor = HostMonitor::with_journal(Arc::clone(&journal), config.agents_may_dispatch);
        let shared = Arc::new(Shared {
            name: config.name.clone(),
            identity: config.identity,
            keys: config.keys,
            roots: config.roots,
            directory: config.directory,
            net: net.clone(),
            monitor,
            registry: ResourceRegistry::new(),
            domains: DomainDatabase::new(),
            policy: RwLock::new(config.policy),
            system_modules: config.system_modules,
            agent_limits: config.agent_limits,
            vm_limits: config.vm_limits,
            mailboxes: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            journal,
            reports: Mutex::new(Vec::new()),
            rng: Mutex::new(DetRng::new(config.seed)),
            guard: Mutex::new(ReplayGuard::new(config.replay_window_ns)),
            stats: ServerStats::default(),
            pending_queries: Mutex::new(BTreeMap::new()),
            next_query_id: AtomicU64::new(1),
        });

        let (ctrl_tx, ctrl_rx) = unbounded();
        let loop_shared = Arc::clone(&shared);
        let join = std::thread::Builder::new()
            .name(format!("ajanta-{}", config.name.leaf()))
            .spawn(move || server_loop(loop_shared, endpoint, ctrl_rx))
            .expect("spawning server thread");

        ServerHandle {
            name: config.name,
            shared,
            ctrl: ctrl_tx,
            join: Some(join),
        }
    }
}

fn server_loop(shared: Arc<Shared>, endpoint: Endpoint, ctrl: Receiver<Control>) {
    let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        crossbeam::channel::select! {
            recv(ctrl) -> cmd => match cmd {
                Ok(Control::Launch { dest, credentials, image }) => {
                    shared.stats.transfers_out.fetch_add(1, Ordering::Relaxed);
                    shared.journal.append(Event::AgentDispatched {
                        agent: credentials.agent.clone(),
                        dest: dest.clone(),
                    });
                    let msg = Message::Transfer {
                        run_as: credentials.agent.clone(),
                        credentials: credentials.clone(),
                        image,
                        hop: 0,
                        arg: Vec::new(),
                    };
                    if let Err(e) = shared.send_message(&dest, &msg) {
                        shared.report_home(&credentials.agent.clone(), &credentials, ReportStatus::Refused(
                            format!("launch toward {dest} failed: {e}"),
                        ));
                    }
                }
                Ok(Control::QueryStatus { server, agent, reply }) => {
                    let query_id = shared.next_query_id.fetch_add(1, Ordering::Relaxed);
                    shared.pending_queries.lock().insert(query_id, reply);
                    let msg = Message::StatusQuery { query_id, agent };
                    if shared.send_message(&server, &msg).is_err() {
                        // Drop the pending entry; the caller times out.
                        shared.pending_queries.lock().remove(&query_id);
                    }
                }
                Ok(Control::Shutdown) | Err(_) => break,
            },
            recv(endpoint.receiver()) -> delivery => match delivery {
                Ok(d) => {
                    shared.net.clock().advance_to(d.arrival_ns);
                    handle_delivery(&shared, d, &mut workers);
                }
                Err(_) => break,
            },
        }
        // Reap finished workers so the vector stays bounded.
        workers.retain(|w| !w.is_finished());
    }
    for w in workers {
        let _ = w.join();
    }
}

fn handle_delivery(shared: &Arc<Shared>, delivery: Delivery, workers: &mut Vec<std::thread::JoinHandle<()>>) {
    let now = shared.clock_now();
    let datagram = match SealedDatagram::from_bytes(&delivery.payload) {
        Ok(d) => d,
        Err(e) => {
            shared.reject(RejectKind::BadDatagram, format!("undecodable: {e}"));
            return;
        }
    };
    let opened = {
        let mut guard = shared.guard.lock();
        datagram.open(&shared.identity, &shared.keys, &shared.roots, now, &mut guard)
    };
    let (sender, plaintext) = match opened {
        Ok(x) => x,
        Err(e) => {
            // Replay-class failures (stale timestamp, reused nonce) get
            // their own typed category; everything else is tampering or
            // decode trouble.
            let kind = if e.is_replay() {
                RejectKind::Replay
            } else {
                RejectKind::BadDatagram
            };
            shared.reject(kind, e.to_string());
            return;
        }
    };
    let message = match Message::from_bytes(&plaintext) {
        Ok(m) => m,
        Err(e) => {
            shared.reject(
                RejectKind::BadDatagram,
                format!("bad message from {sender}: {e}"),
            );
            return;
        }
    };
    match message {
        Message::Transfer {
            credentials,
            image,
            hop,
            run_as,
            arg,
        } => handle_transfer(shared, credentials, image, hop, run_as, arg, workers),
        Message::Report(report) => {
            shared.record_report(report);
        }
        Message::AgentMail { from, to, data } => {
            if !shared.local_mail(from.clone(), to.clone(), data) {
                shared.reject(
                    RejectKind::MailDenied,
                    format!("no resident agent {to} (mail from {from})"),
                );
            }
        }
        Message::StatusQuery { query_id, agent } => {
            let status = match shared.domains.record_of(&agent) {
                Some(rec) => AgentStatus::Resident {
                    owner: rec.owner,
                    creator: rec.creator,
                    fuel_used: rec.usage.fuel,
                    bindings: rec.bindings,
                },
                None => AgentStatus::NotResident,
            };
            let reply = Message::StatusReply {
                query_id,
                agent,
                status,
            };
            if let Err(e) = shared.send_message(&sender, &reply) {
                shared.reject(RejectKind::ReportUndeliverable, e);
            }
        }
        Message::StatusReply { query_id, status, .. } => {
            if let Some(reply) = shared.pending_queries.lock().remove(&query_id) {
                let _ = reply.send(status);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_transfer(
    shared: &Arc<Shared>,
    credentials: Credentials,
    image: AgentImage,
    hop: u64,
    run_as: Urn,
    arg: Vec<u8>,
    workers: &mut Vec<std::thread::JoinHandle<()>>,
) {
    let now = shared.clock_now();

    // 1. Credentials: tamper-evidence, expiry, certification.
    let delegated = match credentials.verify(&shared.roots, now) {
        Ok(rights) => rights,
        Err(e) => {
            shared.reject(
                RejectKind::BadCredentials,
                format!("{}: {e}", credentials.agent),
            );
            return; // nothing about the sender can be trusted; drop.
        }
    };

    // 1b. The executing identity must be the credentialed agent or a
    // child within its name subtree (Section 2: an agent's creator may be
    // another agent). Anything else is an identity-forgery attempt.
    if run_as != credentials.agent && !run_as.is_within(&credentials.agent) {
        shared.reject(
            RejectKind::BadIdentity,
            format!("{} is not within {}", run_as, credentials.agent),
        );
        return;
    }

    // 2. Code: fresh name-space, re-verification, impostor refusal.
    let mut namespace = match Namespace::with_system(&shared.system_modules) {
        Ok(ns) => ns,
        Err(e) => {
            shared.reject(RejectKind::BadImage, format!("system namespace: {e}"));
            return;
        }
    };
    if image.validate().is_err() {
        shared.reject(RejectKind::BadImage, format!("{run_as}: inconsistent image"));
        shared.report_home(&run_as, &credentials, ReportStatus::Refused("inconsistent image".into()));
        return;
    }
    let verified = match namespace.load(image.module.clone()) {
        Ok(v) => v,
        Err(e) => {
            let kind = if matches!(e, ajanta_vm::LoadError::ShadowsSystemModule(_)) {
                RejectKind::ImpostorModule
            } else {
                RejectKind::BadImage
            };
            shared.reject(kind, format!("{run_as}: {e}"));
            shared.report_home(&run_as, &credentials, ReportStatus::Refused(e.to_string()));
            return;
        }
    };

    // 3. Authorization: server policy ∩ owner delegation.
    let authorization = shared
        .policy
        .read()
        .authorize(&credentials.agent, &credentials.owner, &delegated);

    // 4. Domain creation. For a dispatched child, the creator is the
    // parent agent; otherwise the credentialed creator.
    let creator = if run_as == credentials.agent {
        credentials.creator.clone()
    } else {
        credentials.agent.clone()
    };
    let domain = match shared.domains.admit(
        DomainId::SERVER,
        run_as.clone(),
        credentials.owner.clone(),
        creator,
        credentials.home.clone(),
        authorization.clone(),
        shared.agent_limits,
    ) {
        Ok(d) => d,
        Err(e) => {
            shared.reject(RejectKind::DuplicateAgent, e.to_string());
            shared.report_home(&run_as, &credentials, ReportStatus::Refused(e.to_string()));
            return;
        }
    };
    shared.journal.append(Event::AgentAdmitted {
        agent: run_as.clone(),
        domain,
    });

    // Thread creation for the agent's domain — mediated by the monitor
    // (Section 5.3: thread-group manipulation is privileged).
    if shared
        .monitor
        .check(DomainId::SERVER, SystemOp::CreateThread { target: domain })
        .is_err()
    {
        return; // unreachable with the default policy; defensive.
    }

    shared.stats.agents_hosted.fetch_add(1, Ordering::Relaxed);
    let shared = Arc::clone(shared);
    let worker = std::thread::Builder::new()
        .name(format!("agent-{}", run_as.leaf()))
        .spawn(move || {
            run_agent(
                shared,
                domain,
                credentials,
                verified,
                image,
                hop,
                run_as,
                arg,
                authorization,
            );
        })
        .expect("spawning agent thread");
    workers.push(worker);
}

#[allow(clippy::too_many_arguments)]
fn run_agent(
    shared: Arc<Shared>,
    domain: DomainId,
    credentials: Credentials,
    verified: Arc<VerifiedModule>,
    image: AgentImage,
    hop: u64,
    run_as: Urn,
    arg: Vec<u8>,
    authorization: Rights,
) {
    let mut env = AgentEnv::new(
        Arc::clone(&shared),
        domain,
        run_as.clone(),
        credentials.clone(),
        authorization,
    );
    env.set_module(Arc::clone(&verified));
    let mut interp = Interpreter::new(&verified, shared.vm_limits);
    if !interp.restore_globals(image.globals.clone()) {
        // Evict before reporting: once the home site sees a report, this
        // server must already show no residue for the agent.
        let _ = shared.domains.evict(DomainId::SERVER, domain);
        shared.report_home(&run_as, &credentials, ReportStatus::Refused("global mismatch".into()));
        return;
    }

    // By convention an empty entry argument means "the current server's
    // name"; a dispatching parent may have chosen a payload instead.
    let entry_arg = if arg.is_empty() {
        Value::str(shared.name().to_string())
    } else {
        Value::Bytes(arg)
    };
    let outcome = interp.run(&image.entry, vec![entry_arg], &mut env);

    // Account fuel against the domain quota (for status queries; the
    // interpreter's own limit already bounded the run).
    let _ = shared
        .domains
        .charge_fuel(DomainId::SERVER, domain, interp.fuel_used());

    // Departure happens BEFORE any completion report or onward transfer:
    // the home site (or next hop) learning the agent's fate must
    // happen-after this server has cleared its residue, so "all reports
    // in" implies "no domains left" — the isolation invariant X12 checks.
    // Installed resources stay.
    shared.mailbox_shard(&run_as).lock().remove(&run_as);
    let _ = shared.domains.evict(DomainId::SERVER, domain);

    match outcome {
        ExecOutcome::Finished(v) => {
            shared.report_home(&run_as, &credentials, ReportStatus::Completed(v.display_lossy()));
        }
        ExecOutcome::HostStopped { .. } => {
            let pending = env.pending_go().cloned();
            match pending {
                Some(go) => {
                    // Re-package: same code, current globals, new entry.
                    let image = AgentImage {
                        module: image.module,
                        globals: interp.globals().to_vec(),
                        entry: go.entry,
                    };
                    if image.validate().is_err() {
                        shared.report_home(
                            &run_as,
                            &credentials,
                            ReportStatus::Failed(format!(
                                "go: entry {:?} missing or misshapen",
                                image.entry
                            )),
                        );
                    } else {
                        shared.stats.transfers_out.fetch_add(1, Ordering::Relaxed);
                        shared.journal.append(Event::AgentDispatched {
                            agent: run_as.clone(),
                            dest: go.dest.clone(),
                        });
                        let msg = Message::Transfer {
                            run_as: run_as.clone(),
                            credentials: credentials.clone(),
                            image,
                            hop: hop + 1,
                            arg: Vec::new(),
                        };
                        if let Err(e) = shared.send_message(&go.dest, &msg) {
                            shared.report_home(
                                &run_as,
                                &credentials,
                                ReportStatus::Failed(format!("go toward {} failed: {e}", go.dest)),
                            );
                        }
                    }
                }
                None => {
                    shared.report_home(
                        &run_as,
                        &credentials,
                        ReportStatus::Failed("host stop without destination".into()),
                    );
                }
            }
        }
        ExecOutcome::Trapped { kind, func, ip } => {
            shared.report_home(
                &run_as,
                &credentials,
                ReportStatus::Failed(format!("trap at fn#{func}@{ip}: {kind}")),
            );
        }
        ExecOutcome::OutOfFuel => {
            shared.report_home(
                &run_as,
                &credentials,
                ReportStatus::QuotaExceeded("instruction fuel exhausted".into()),
            );
        }
    }
}
