//! The agent server (paper Fig. 1), as a thread with a control handle.
//!
//! One [`AgentServer`] owns: a network endpoint, the reference monitor,
//! the resource registry, the domain database, a security policy, the
//! system module set, and its cryptographic identity. Visiting agents
//! execute as resumable fuel-sliced tasks on the cooperative scheduler
//! ([`crate::sched`]), each confined to its own protection domain and
//! talking to the server only through [`crate::env::AgentEnv`].
//!
//! Admission pipeline for an arriving transfer (Section 5.2's problem
//! list, in order): datagram authentication → credential verification →
//! byte-code verification in a fresh name-space → policy authorization →
//! domain creation → execution under quotas.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex, RwLock};

use ajanta_core::{
    AccessProtocol, BindError, Counter, Credentials, DomainDatabase, DomainId, Event, Guarded,
    HistoPath, HostMonitor, Journal, ProxyPolicy, RejectKind, Requester, ResourceProxy,
    ResourceRegistry, Rights, SecurityPolicy, SpanContext, SpanId, SpanKind, SystemOp, TraceId,
    UsageLimits,
};
use ajanta_crypto::{DetRng, KeyPair, RootOfTrust};
use ajanta_naming::Urn;
use ajanta_net::secure::ChannelIdentity;
use ajanta_net::{Delivery, NetEndpoint, ReplayGuard, SealedDatagram, SimNet, Transport};
use ajanta_vm::{
    AgentImage, ExecOutcome, Interpreter, Limits, Module, Namespace, SliceOutcome, Value,
    VerifiedModule,
};
use ajanta_wire::Wire;

use crate::directory::Directory;
use crate::env::AgentEnv;
use crate::itinerary::Itinerary;
use crate::messages::{Ack, AgentStatus, Message, Report, ReportStatus};
use crate::sched::{SchedDepths, Scheduler, Task};
use crate::vmres::VmResource;

/// Retry/backoff policy for the fault-tolerant migration layer.
///
/// Reliable frames (agent transfers and home-bound reports) are tracked
/// until the receiver's delivery ack arrives; a frame still unacked after
/// [`RetryPolicy::ack_grace`] of *real* time is re-sent, with each retry
/// modeled at a capped-exponential-backoff instant of **virtual** time
/// (optionally jittered from the server's deterministic RNG). After
/// [`RetryPolicy::max_attempts`] total attempts the frame dead-stops:
/// transfers consult their itinerary fallbacks (skip the unreachable
/// stop) or report `Failed(hop)` home — no orphans either way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total send attempts per destination (1 = fire-and-forget).
    pub max_attempts: u32,
    /// Backoff before the first retry (virtual ns); doubles per attempt.
    pub base_delay_ns: u64,
    /// Backoff ceiling (virtual ns).
    pub max_delay_ns: u64,
    /// Jitter each delay uniformly over `[delay/2, delay]`.
    pub jitter: bool,
    /// Real-time grace before an unacked *first* attempt counts as
    /// lost; each later attempt doubles it, so a healthy-but-busy
    /// receiver whose acks lag (a burst of admissions queued on its
    /// loop) wins the race long before attempts exhaust. Healthy acks
    /// beat the grace comfortably, so fault-free runs never force the
    /// virtual clock forward and timing experiments are undisturbed.
    pub ack_grace: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay_ns: 50 * ajanta_net::time::MILLIS,
            max_delay_ns: 800 * ajanta_net::time::MILLIS,
            jitter: true,
            ack_grace: Duration::from_millis(25),
        }
    }
}

impl RetryPolicy {
    /// The pre-fault-tolerance behavior: one attempt, no tracking, no
    /// acks — a dropped transfer strands the agent.
    pub fn disabled() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Whether the reliable-delivery layer is active.
    pub fn enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// Backoff after `attempt` total attempts: capped exponential, with
    /// optional deterministic jitter.
    fn delay_ns(&self, attempt: u32, rng: &mut DetRng) -> u64 {
        let exp = attempt.saturating_sub(1).min(16);
        let full = self
            .base_delay_ns
            .saturating_mul(1u64 << exp)
            .min(self.max_delay_ns)
            .max(1);
        if self.jitter {
            full / 2 + rng.below(full - full / 2 + 1)
        } else {
            full
        }
    }

    /// Real-time ack grace for a frame on its `attempt`-th attempt:
    /// doubles per attempt so transient receiver backlog is outwaited,
    /// saturating at [`MAX_ACK_GRACE`]. The multiplication saturates too:
    /// a large configured `ack_grace` times `2^10` must clamp, not panic
    /// (`Duration * u32` overflow aborts in both debug and release).
    fn grace(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(10);
        self.ack_grace
            .checked_mul(factor)
            .unwrap_or(MAX_ACK_GRACE)
            .min(MAX_ACK_GRACE)
    }
}

/// Ceiling on the per-attempt ack grace: no backoff doubling waits more
/// than a minute of real time before a frame is declared lost.
const MAX_ACK_GRACE: Duration = Duration::from_secs(60);

/// Why [`ServerHandle::query_status`] failed — a dead/unreachable server
/// is now distinguishable from a server that replied "not resident".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query could not even be sent (no directory entry, detached
    /// endpoint, or the local server is shut down).
    Unreachable(String),
    /// No reply arrived within the timeout — the server may be down.
    Timeout,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Unreachable(e) => write!(f, "status query unreachable: {e}"),
            QueryError::Timeout => write!(f, "status query timed out"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A recorded security-relevant rejection (experiment X11's raw data) —
/// a projection of the journal's [`Event::Rejected`] records, kept as a
/// convenience view; the journal itself is reachable via
/// [`ServerHandle::journal`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecurityEvent {
    /// Virtual time of the event.
    pub at: u64,
    /// Typed category (formerly a `&'static str`; `kind.as_str()` yields
    /// the old kebab-case label).
    pub kind: RejectKind,
    /// Human-readable detail.
    pub detail: String,
}

/// Aggregate counters exposed by [`ServerHandle::stats`].
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Agents admitted and executed.
    pub agents_hosted: AtomicU64,
    /// Transfers sent onward (migrations out + launches).
    pub transfers_out: AtomicU64,
    /// Reports received (as a home site).
    pub reports_in: AtomicU64,
    /// Mail messages delivered to local agents.
    pub mail_delivered: AtomicU64,
}

/// Snapshot of [`ServerStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Agents admitted and executed.
    pub agents_hosted: u64,
    /// Transfers sent onward.
    pub transfers_out: u64,
    /// Reports received.
    pub reports_in: u64,
    /// Mail messages delivered.
    pub mail_delivered: u64,
}

/// Configuration for one server.
pub struct ServerConfig {
    /// The server's global name.
    pub name: Urn,
    /// Its signing identity (certificate chain should be published in the
    /// directory by the caller).
    pub identity: ChannelIdentity,
    /// Full key pair (the identity holds the same keys; kept explicitly
    /// for datagram decryption).
    pub keys: KeyPair,
    /// Trusted certificate roots.
    pub roots: RootOfTrust,
    /// The shared server directory.
    pub directory: Directory,
    /// Authorization policy.
    pub policy: SecurityPolicy,
    /// Modules every agent name-space is pre-populated with.
    pub system_modules: Vec<Arc<VerifiedModule>>,
    /// Per-agent quotas recorded in the domain database.
    pub agent_limits: UsageLimits,
    /// Interpreter limits per agent execution.
    pub vm_limits: Limits,
    /// Whether visiting agents may dispatch further agents.
    pub agents_may_dispatch: bool,
    /// Replay-guard freshness window (virtual ns).
    pub replay_window_ns: u64,
    /// Retry/backoff policy for transfers and reports.
    pub retry: RetryPolicy,
    /// Seed for this server's nonce/ephemeral randomness.
    pub seed: u64,
    /// Total records the telemetry journal retains (audit decisions,
    /// rejections, agent log lines, lifecycle and charge events share
    /// this bound; aggregate counters stay exact past it).
    pub journal_capacity: usize,
    /// The cooperative scheduler agents execute on. `None` makes the
    /// server start (and own) a private pool sized to the machine's
    /// parallelism; a [`crate::World`] passes one shared pool to every
    /// server so the whole world runs on `workers` threads.
    pub scheduler: Option<Arc<Scheduler>>,
    /// Path of the admission write-ahead log, or `None` for a purely
    /// in-memory server. With a WAL, every admission is logged before its
    /// ack leaves and a restarted server replays unresolved admissions —
    /// see [`crate::wal`].
    pub wal: Option<std::path::PathBuf>,
    /// Hibernation trigger: an agent that yields with this many
    /// consecutive empty `env.recv` polls (and no bindings or pending
    /// migration) is serialized to the bundle store and its scheduler
    /// task freed, until mail or an explicit wake revives it. `None`
    /// disables hibernation.
    pub hibernate_after_misses: Option<u32>,
}

/// Queued (sender, payload) mail for one agent.
type Mailbox = VecDeque<(Urn, Vec<u8>)>;

/// The idempotency key of a reliable frame.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum FrameKey {
    /// Admission idempotency (ISSUE tentpole 2): `(agent URN, hop)`,
    /// deliberately sender-agnostic — the same hop arriving twice from
    /// *anywhere* (retry, replay, dual-path failover) is admitted once.
    Transfer {
        /// The executing identity.
        agent: Urn,
        /// The hop sequence number carried in the transfer.
        hop: u64,
    },
    /// Report dedup: scoped to the reporting server, whose private
    /// sequence counter numbers its own reports.
    Report {
        /// The reporting server.
        from: Urn,
        /// The reported-on agent.
        agent: Urn,
        /// The reporter's delivery sequence.
        seq: u64,
    },
}

/// Bounded memory of already-processed reliable frames. FIFO-evicted at
/// `SEEN_CAP`, so an adversary hammering retries cannot grow it without
/// bound; the window is far larger than any plausible retry horizon.
#[derive(Default)]
struct SeenFrames {
    set: HashSet<FrameKey>,
    order: VecDeque<FrameKey>,
}

const SEEN_CAP: usize = 8192;

impl SeenFrames {
    /// Returns true when `key` is fresh (first sighting).
    fn insert(&mut self, key: FrameKey) -> bool {
        if !self.set.insert(key.clone()) {
            return false;
        }
        self.order.push_back(key);
        if self.order.len() > SEEN_CAP {
            if let Some(old) = self.order.pop_front() {
                self.set.remove(&old);
            }
        }
        true
    }
}

/// A transfer's recovery plan, consulted when retries toward its current
/// destination exhaust.
struct Recovery {
    /// Credentials for the `Failed(hop)` home report of last resort.
    credentials: Credentials,
    /// Remaining itinerary stops to fall back to, in order.
    fallbacks: Vec<Urn>,
}

/// One reliable frame awaiting its delivery ack.
struct PendingSend {
    dest: Urn,
    msg: Message,
    /// Send attempts so far (≥ 1).
    attempt: u32,
    /// Virtual instant the next retry is modeled at.
    due_ns: u64,
    /// Real instant of the last attempt; the retry ticker only acts once
    /// [`RetryPolicy::ack_grace`] of real time has passed without an ack.
    sent_real: Instant,
    /// `Some` for transfers (dead-stop recovery), `None` for reports.
    recovery: Option<Recovery>,
    /// The frame's span (transfer leg or report journey); retries journal
    /// as its children, and a transfer's span is emitted when its first
    /// ack resolves it.
    ctx: SpanContext,
    /// Virtual time of the very first send — the transfer-RTT and
    /// hop-latency baseline. Never updated by retries or fallbacks.
    first_sent_ns: u64,
    /// Virtual time of the most recent attempt, so each retry span can
    /// report the backoff actually waited.
    last_sent_ns: u64,
    /// The WAL admission this frame settles: when the ack for this frame
    /// arrives, custody of `(agent, hop)` has passed to the receiver (or
    /// home) and a `Resolve` record is appended. Custody must ride the
    /// pending-send entry — resolving at *send* time would drop the
    /// admission from the log while the frame could still be lost.
    custody: Option<(Urn, u64)>,
}

/// Lock shards for the mailbox map. Mail delivery and pickup for
/// different agents contend only within a shard, so many agent worker
/// threads exchange mail without serializing on one map-wide lock.
const MAILBOX_SHARDS: usize = 16;

fn mailbox_shard_of(agent: &Urn) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    agent.hash(&mut h);
    (h.finish() as usize) % MAILBOX_SHARDS
}

/// State shared between the server loop, agent worker threads, and the
/// control handle.
pub struct Shared {
    name: Urn,
    identity: ChannelIdentity,
    keys: KeyPair,
    roots: RootOfTrust,
    directory: Directory,
    net: Arc<dyn Transport>,
    monitor: HostMonitor,
    registry: ResourceRegistry,
    /// Internally sharded; every method takes `&self`, so agent worker
    /// threads admit/charge/evict concurrently (the old outer `Mutex`
    /// serialized all of them and capped multi-agent throughput).
    domains: DomainDatabase,
    policy: RwLock<SecurityPolicy>,
    system_modules: Vec<Arc<VerifiedModule>>,
    agent_limits: UsageLimits,
    vm_limits: Limits,
    /// The worker pool agents execute on (possibly shared world-wide).
    sched: Arc<Scheduler>,
    mailboxes: [Mutex<HashMap<Urn, Mailbox>>; MAILBOX_SHARDS],
    /// The one telemetry sink: audit decisions (via the monitor),
    /// rejections, agent log lines, lifecycle and proxy/meter events.
    /// Bounded; replaces the old unbounded `logs`/`events` vectors.
    pub(crate) journal: Arc<Journal>,
    reports: Mutex<Vec<Report>>,
    /// Signalled on every report arrival; `wait_reports` blocks here
    /// instead of busy-polling.
    reports_cv: Condvar,
    rng: Mutex<DetRng>,
    guard: Mutex<ReplayGuard>,
    stats: ServerStats,
    pending_queries:
        Mutex<BTreeMap<u64, crossbeam::channel::Sender<Result<AgentStatus, QueryError>>>>,
    next_query_id: AtomicU64,
    /// The fault-tolerant migration layer's state: policy, unacked
    /// frames, the ticker's wakeup, and the receive-side dedup memory.
    retry: RetryPolicy,
    pending_sends: Mutex<HashMap<(u8, Urn, u64), PendingSend>>,
    retry_cv: Condvar,
    retry_shutdown: AtomicBool,
    seen: Mutex<SeenFrames>,
    next_report_seq: AtomicU64,
    /// Hibernated agents, serialized (tentpole: durability). Present on
    /// every server; empty unless `hibernate_after_misses` is set.
    bundles: crate::bundle::BundleStore,
    /// The admission write-ahead log, when configured.
    wal: Option<crate::wal::AdmissionWal>,
    /// See [`ServerConfig::hibernate_after_misses`].
    hibernate_after_misses: Option<u32>,
    /// Every live proxy grant this server issued at bind time, held
    /// weakly so a dropped proxy costs nothing. The control plane's
    /// fleet-wide revocation walks this list; dead entries are pruned
    /// as they are encountered.
    grants: Mutex<Vec<GrantEntry>>,
    /// Agents an administrator asked to hibernate at their next safe
    /// yield point (control plane `hibernate` op). A request bypasses
    /// the idle-miss threshold but never the safety gates (no live
    /// proxies, no pending migration).
    hibernate_requests: Mutex<HashSet<Urn>>,
}

/// One proxy grant tracked for control-plane revocation.
struct GrantEntry {
    resource: Urn,
    control: std::sync::Weak<ajanta_core::ProxyControl>,
}

impl Shared {
    /// The server's name.
    pub fn name(&self) -> &Urn {
        &self.name
    }

    fn mailbox_shard(&self, agent: &Urn) -> &Mutex<HashMap<Urn, Mailbox>> {
        &self.mailboxes[mailbox_shard_of(agent)]
    }

    /// Current virtual time.
    pub fn clock_now(&self) -> u64 {
        self.net.clock().now()
    }

    /// The server's telemetry journal.
    pub fn journal(&self) -> &Arc<Journal> {
        &self.journal
    }

    /// Appends to the per-agent log (journaled, hence bounded: a
    /// long-running agent can no longer grow server memory without limit).
    pub fn log(&self, agent: &Urn, text: String) {
        self.journal.append(Event::AgentLog {
            agent: agent.clone(),
            text,
        });
    }

    /// Journals one security-relevant rejection.
    fn reject(&self, kind: RejectKind, detail: String) {
        self.journal.append(Event::Rejected { kind, detail });
    }

    /// Journals one completed trace span.
    pub(crate) fn emit_span(
        &self,
        ctx: SpanContext,
        kind: SpanKind,
        agent: &Urn,
        detail: String,
        start_ns: u64,
        dur_ns: u64,
    ) {
        self.journal.append(Event::Span {
            ctx,
            kind,
            agent: agent.clone(),
            detail,
            start_ns,
            dur_ns,
        });
    }

    /// Fig. 6 steps 2–5 on behalf of an agent, with domain-database
    /// bookkeeping. When the caller supplies its trace coordinates
    /// (`tracing` = trace id + the stay's admission span), the whole
    /// protocol run is journaled as a `Bind` span; the latency lands in
    /// the `Bind` histogram either way.
    pub fn bind_resource(
        &self,
        requester: &Requester,
        name: &Urn,
        now: u64,
        tracing: Option<(TraceId, SpanId)>,
    ) -> Result<ResourceProxy, String> {
        let t0 = Instant::now();
        let result = self.bind_resource_inner(requester, name, now);
        let dt = t0.elapsed().as_nanos() as u64;
        self.journal.histos().record(HistoPath::Bind, dt);
        if let Some((trace, parent)) = tracing {
            let ctx = SpanContext {
                trace,
                span: self.journal.mint_span(),
                parent: Some(parent),
            };
            let outcome = match &result {
                Ok(_) => "ok".to_string(),
                Err(e) => format!("denied: {e}"),
            };
            self.emit_span(
                ctx,
                SpanKind::Bind,
                &requester.agent,
                format!("{name} {outcome}"),
                now,
                dt,
            );
        }
        result
    }

    fn bind_resource_inner(
        &self,
        requester: &Requester,
        name: &Urn,
        now: u64,
    ) -> Result<ResourceProxy, String> {
        // Binding quota first.
        self.domains
            .add_binding(DomainId::SERVER, requester.domain, name.clone())
            .map_err(|e| {
                self.journal.append(Event::ProxyDeny {
                    resource: name.clone(),
                    holder: requester.domain,
                    detail: e.to_string(),
                });
                e.to_string()
            })?;
        match self.registry.bind(requester, name, now) {
            Ok(proxy) => {
                // Proxy telemetry rides the server journal from here on:
                // meter charges, revocations, and expiries of this grant
                // all land in the same stream as the grant itself.
                proxy
                    .control()
                    .attach_journal(Arc::clone(&self.journal), name.clone());
                self.grants.lock().push(GrantEntry {
                    resource: name.clone(),
                    control: Arc::downgrade(proxy.control()),
                });
                self.journal.append(Event::ProxyGrant {
                    resource: name.clone(),
                    holder: requester.domain,
                });
                Ok(proxy)
            }
            Err(e) => {
                let _ = self
                    .domains
                    .remove_binding(DomainId::SERVER, requester.domain, name);
                let detail = match e {
                    BindError::NotFound(n) => format!("no resource {n}"),
                    other => other.to_string(),
                };
                self.journal.append(Event::ProxyDeny {
                    resource: name.clone(),
                    holder: requester.domain,
                    detail: detail.clone(),
                });
                Err(detail)
            }
        }
    }

    /// Delivers mail to a co-located agent's mailbox. Returns whether the
    /// recipient is resident here. A hibernated recipient (still
    /// resident — its domain survives the spill) is woken to read it.
    pub fn local_mail(self: &Arc<Self>, from: Urn, to: Urn, data: Vec<u8>) -> bool {
        let resident = self.domains.domain_of(&to).is_some();
        if !resident {
            return false;
        }
        self.mailbox_shard(&to)
            .lock()
            .entry(to.clone())
            .or_default()
            .push_back((from, data));
        self.stats.mail_delivered.fetch_add(1, Ordering::Relaxed);
        if self.bundles.contains(&to) {
            self.wake_agent(&to);
        }
        true
    }

    /// Whether any mail is queued for `agent`.
    fn has_mail(&self, agent: &Urn) -> bool {
        self.mailbox_shard(agent)
            .lock()
            .get(agent)
            .is_some_and(|m| !m.is_empty())
    }

    /// Sends mail to an agent on another server.
    pub fn remote_mail(
        &self,
        from: Urn,
        server: Urn,
        to: Urn,
        data: Vec<u8>,
    ) -> Result<(), String> {
        self.send_message(&server, &Message::AgentMail { from, to, data })
    }

    /// Takes the oldest mail item for `agent`.
    pub fn take_mail(&self, agent: &Urn) -> Option<(Urn, Vec<u8>)> {
        self.mailbox_shard(agent).lock().get_mut(agent)?.pop_front()
    }

    /// Dynamic extension: installs an agent-supplied module as a resource
    /// (paper Section 5.5), guarded by the monitor and registry ownership.
    pub fn install_vm_resource(
        &self,
        caller: DomainId,
        installer: &Urn,
        name: Urn,
        module: Module,
    ) -> Result<(), String> {
        let res = VmResource::install(name, installer.clone(), module, self.vm_limits)
            .map_err(|e| format!("module rejected: {e}"))?;
        let guarded = Guarded::new(res, ProxyPolicy::default());
        self.registry
            .register(&self.monitor, caller, installer, guarded)
            .map_err(|e| e.to_string())
    }

    /// Dispatches a child agent on behalf of `parent` (paper Section 4:
    /// agents can create child agents; Section 2: the creator may be
    /// another agent). The child runs under the parent's credentials with
    /// a name inside the parent's subtree; the reference monitor gates
    /// agent-initiated dispatch.
    #[allow(clippy::too_many_arguments)]
    pub fn dispatch_child(
        &self,
        caller: DomainId,
        parent: &Urn,
        credentials: &Credentials,
        module: Module,
        dest: &Urn,
        entry: String,
        payload: Vec<u8>,
        seq: u64,
        tracing: Option<(TraceId, SpanId)>,
    ) -> Result<Urn, String> {
        self.monitor
            .check(caller, SystemOp::DispatchAgent)
            .map_err(|v| v.to_string())?;
        let child = parent
            .child(format!("child-{seq}"))
            .map_err(|e| e.to_string())?;
        let globals = module.initial_globals();
        let image = AgentImage {
            module,
            globals,
            entry,
        };
        image
            .validate()
            .map_err(|e| format!("child image invalid: {e}"))?;
        self.stats.transfers_out.fetch_add(1, Ordering::Relaxed);
        self.journal.append(Event::AgentDispatched {
            agent: child.clone(),
            dest: dest.clone(),
        });
        // The dispatch joins the parent's tour as a child of the stay
        // that asked; a caller without coordinates roots a fresh trace.
        let now = self.clock_now();
        let dispatch_ctx = match tracing {
            Some((trace, parent_span)) => SpanContext {
                trace,
                span: self.journal.mint_span(),
                parent: Some(parent_span),
            },
            None => SpanContext::root(self.journal.mint_trace(), self.journal.mint_span()),
        };
        self.emit_span(
            dispatch_ctx,
            SpanKind::Dispatch,
            &child,
            format!("child toward {dest}"),
            now,
            0,
        );
        let msg = Message::Transfer {
            run_as: child.clone(),
            credentials: credentials.clone(),
            image,
            hop: 0,
            arg: payload,
            ctx: dispatch_ctx.child(self.journal.mint_span()),
            sent_ns: now,
        };
        // Children travel on the reliable layer too: if the destination
        // stays dark, the dead-stop path reports `Failed(0)` to the
        // family's home site instead of losing the child silently.
        self.send_transfer(
            dest,
            msg,
            child.clone(),
            0,
            Vec::new(),
            credentials.clone(),
            None,
        )?;
        Ok(child)
    }

    /// Seals and sends one protocol message to a peer server.
    pub fn send_message(&self, to: &Urn, msg: &Message) -> Result<(), String> {
        let now = self.clock_now();
        let key = self
            .directory
            .verified_key(to, &self.roots, now)
            .ok_or_else(|| format!("no verified directory entry for {to}"))?;
        let payload = msg.to_bytes();
        let datagram = {
            let mut rng = self.rng.lock();
            SealedDatagram::seal(&self.identity, to, key, &payload, now, &mut rng)
        };
        self.net
            .send_as(&self.name, to, datagram.to_bytes())
            .map_err(|e| e.to_string())
    }

    /// Records a report arriving at this (home) server, journaling the
    /// agent's outcome and waking any [`ServerHandle::wait_reports`].
    /// `ctx` is the sender's report span for a report that crossed the
    /// network (the home-side record journals as its child); local
    /// reports pass `None` — their report span was journaled in
    /// [`Shared::report_home`] already.
    fn record_report(&self, report: Report, ctx: Option<SpanContext>) {
        self.stats.reports_in.fetch_add(1, Ordering::Relaxed);
        if let Some(ctx) = ctx {
            self.emit_span(
                ctx.child(self.journal.mint_span()),
                SpanKind::Report,
                &report.agent,
                "recorded".into(),
                self.clock_now(),
                0,
            );
        }
        self.journal.append(Event::AgentReported {
            agent: report.agent.clone(),
            status: match report.status {
                ReportStatus::Completed(_) => "completed",
                ReportStatus::Failed(_) => "failed",
                ReportStatus::QuotaExceeded(_) => "quota",
                ReportStatus::Refused(_) => "refused",
            },
        });
        self.reports.lock().push(report);
        self.reports_cv.notify_all();
    }

    /// Reports `status` to the agent's home site. `parent` anchors the
    /// report's span in the tour: the stay's admission span for normal
    /// outcomes, the lost transfer's span for dead-stop recovery. `None`
    /// (a refusal before any trace context existed) roots a fresh trace,
    /// so even pre-launch refusals are reconstructible. `custody` is the
    /// WAL admission this report settles: resolved immediately for a
    /// local (home == here) report, else when the report's ack arrives.
    fn report_home(
        &self,
        run_as: &Urn,
        credentials: &Credentials,
        status: ReportStatus,
        parent: Option<(TraceId, SpanId)>,
        custody: Option<(Urn, u64)>,
    ) {
        let now = self.clock_now();
        let ctx = match parent {
            Some((trace, parent_span)) => SpanContext {
                trace,
                span: self.journal.mint_span(),
                parent: Some(parent_span),
            },
            None => SpanContext::root(self.journal.mint_trace(), self.journal.mint_span()),
        };
        let status_label = match &status {
            ReportStatus::Completed(_) => "completed",
            ReportStatus::Failed(_) => "failed",
            ReportStatus::QuotaExceeded(_) => "quota",
            ReportStatus::Refused(_) => "refused",
        };
        self.emit_span(
            ctx,
            SpanKind::Report,
            run_as,
            format!("{status_label} toward {}", credentials.home),
            now,
            0,
        );
        let report = Report {
            agent: run_as.clone(),
            server: self.name.clone(),
            status,
            at: now,
        };
        if credentials.home == self.name {
            self.record_report(report, None);
            if let Some((agent, hop)) = custody {
                self.wal_resolve(&agent, hop);
            }
            return;
        }
        // Reports ride the reliable layer as well — under 20% loss the
        // tour would otherwise survive only for the home site to miss the
        // outcome. No recovery plan: a report about an undeliverable
        // report must not recurse.
        let seq = self.next_report_seq.fetch_add(1, Ordering::Relaxed);
        let home = credentials.home.clone();
        let msg = Message::Report { report, seq, ctx };
        if let Err(e) =
            self.send_reliable(&home, msg, Ack::REPORT, run_as.clone(), seq, None, custody)
        {
            self.reject(RejectKind::ReportUndeliverable, e);
        }
    }

    /// Sends an agent transfer with at-least-once delivery and a
    /// dead-stop recovery plan (`fallbacks` = remaining itinerary).
    /// `custody` names the local WAL admission the transfer's ack will
    /// settle (the departing agent's own `(agent, hop)` for a `go`;
    /// `None` for launches and child dispatches, which were never
    /// admitted here).
    #[allow(clippy::too_many_arguments)]
    fn send_transfer(
        &self,
        dest: &Urn,
        msg: Message,
        agent: Urn,
        hop: u64,
        fallbacks: Vec<Urn>,
        credentials: Credentials,
        custody: Option<(Urn, u64)>,
    ) -> Result<(), String> {
        let recovery = Recovery {
            credentials,
            fallbacks,
        };
        self.send_reliable(
            dest,
            msg,
            Ack::TRANSFER,
            agent,
            hop,
            Some(recovery),
            custody,
        )
    }

    /// At-least-once delivery: tracks the frame under `(kind, agent,
    /// seq)` until the peer's [`Message::Ack`] clears it; the retry
    /// ticker re-sends and eventually dead-stops it. With retries
    /// disabled this degenerates to the legacy fire-and-forget
    /// `send_message`, surfacing the send error to the caller.
    #[allow(clippy::too_many_arguments)]
    fn send_reliable(
        &self,
        dest: &Urn,
        msg: Message,
        kind: u8,
        agent: Urn,
        seq: u64,
        recovery: Option<Recovery>,
        custody: Option<(Urn, u64)>,
    ) -> Result<(), String> {
        // The frame carries its own span context; the pending entry
        // remembers it so acks and retries can attach to the same span.
        let (ctx, first_sent_ns) = match &msg {
            Message::Transfer { ctx, sent_ns, .. } => (*ctx, *sent_ns),
            Message::Report { ctx, .. } => (*ctx, self.clock_now()),
            _ => (SpanContext::root(TraceId(0), SpanId(0)), self.clock_now()),
        };
        if !self.retry.enabled() {
            // Fire-and-forget: there will never be an ack to resolve a
            // transfer's span, so close it at the send — the receiver's
            // admission span still needs a journaled parent.
            if kind == Ack::TRANSFER {
                self.emit_span(
                    ctx,
                    SpanKind::Transfer,
                    &agent,
                    format!("to {dest} (fire-and-forget)"),
                    first_sent_ns,
                    0,
                );
            }
            let result = self.send_message(dest, &msg);
            // No ack will ever settle this frame; resolve the admission
            // now so the WAL does not replay an agent we chose to treat
            // as handed off.
            if let Some((agent, hop)) = custody {
                self.wal_resolve(&agent, hop);
            }
            return result;
        }
        // A failed first send (unknown peer, detached endpoint) is just
        // a lost attempt: the ticker retries it and the dead-stop path
        // eventually resolves the agent's fate.
        let _ = self.send_message(dest, &msg);
        let due_ns = {
            let mut rng = self.rng.lock();
            self.clock_now() + self.retry.delay_ns(1, &mut rng)
        };
        let entry = PendingSend {
            dest: dest.clone(),
            msg,
            attempt: 1,
            due_ns,
            sent_real: Instant::now(),
            recovery,
            ctx,
            first_sent_ns,
            last_sent_ns: first_sent_ns,
            custody,
        };
        self.pending_sends.lock().insert((kind, agent, seq), entry);
        self.retry_cv.notify_all();
        Ok(())
    }

    /// One retry-ticker pass: re-send every frame whose real-time ack
    /// grace has lapsed, dead-stopping those out of attempts.
    fn service_pending(&self) {
        let now_real = Instant::now();
        let due: Vec<((u8, Urn, u64), PendingSend)> = {
            let mut pending = self.pending_sends.lock();
            let keys: Vec<_> = pending
                .iter()
                .filter(|(_, e)| {
                    now_real.duration_since(e.sent_real) >= self.retry.grace(e.attempt)
                })
                .map(|(k, _)| k.clone())
                .collect();
            keys.into_iter()
                .filter_map(|k| pending.remove(&k).map(|e| (k, e)))
                .collect()
        };
        for ((kind, agent, seq), entry) in due {
            if entry.attempt >= self.retry.max_attempts {
                self.dead_stop(kind, agent, seq, entry);
            } else {
                self.resend(kind, agent, seq, entry);
            }
        }
    }

    fn resend(&self, kind: u8, agent: Urn, seq: u64, mut entry: PendingSend) {
        // The retry is *modeled* at its backoff instant: advance the
        // virtual clock to the due time (a no-op when other traffic has
        // already passed it) so retry latency is visible in virtual-time
        // metrics, exactly like link transit is.
        self.net.clock().advance_to(entry.due_ns);
        entry.attempt += 1;
        if kind == Ack::TRANSFER {
            self.journal.append(Event::TransferRetried {
                agent: agent.clone(),
                dest: entry.dest.clone(),
                hop: seq,
                attempt: entry.attempt,
            });
        }
        // Each retry journals as a child span of the frame it re-sends;
        // its duration is the backoff actually waited since the previous
        // attempt, which also feeds the RetryBackoff histogram.
        let now = self.clock_now();
        let waited = now.saturating_sub(entry.last_sent_ns);
        self.journal
            .histos()
            .record(HistoPath::RetryBackoff, waited);
        self.emit_span(
            entry.ctx.child(self.journal.mint_span()),
            SpanKind::Retry,
            &agent,
            format!("attempt {} toward {}", entry.attempt, entry.dest),
            entry.last_sent_ns,
            waited,
        );
        entry.last_sent_ns = now;
        let _ = self.send_message(&entry.dest, &entry.msg);
        let delay = {
            let mut rng = self.rng.lock();
            self.retry.delay_ns(entry.attempt, &mut rng)
        };
        entry.due_ns = self.clock_now() + delay;
        entry.sent_real = Instant::now();
        self.pending_sends.lock().insert((kind, agent, seq), entry);
        // If the ack raced the re-insert it cleared the old entry only;
        // harmless — the receiver acks every duplicate copy too, so the
        // re-sent frame's own ack clears this one.
    }

    /// Retries exhausted. Transfers consult the itinerary: skip the dead
    /// stop if a fallback exists, else report `Failed(hop)` home — the
    /// home site always learns the agent's fate. Reports just journal;
    /// there is nothing left to escalate to.
    fn dead_stop(&self, kind: u8, agent: Urn, seq: u64, entry: PendingSend) {
        let Some(mut recovery) = entry.recovery else {
            self.reject(
                RejectKind::ReportUndeliverable,
                format!(
                    "report {seq} about {agent} toward {} lost after {} attempts",
                    entry.dest, entry.attempt
                ),
            );
            return;
        };
        let hop = seq;
        if recovery.fallbacks.is_empty() {
            self.journal.append(Event::AgentRecovered {
                agent: agent.clone(),
                hop,
                disposition: "sent-home",
            });
            // No fallback ends the leg: close the transfer span as lost
            // (the Failed report journals as its child), so the tour's
            // tree still accounts for the agent's whole fate.
            self.emit_span(
                entry.ctx,
                SpanKind::Transfer,
                &agent,
                format!("to {} lost after {} attempts", entry.dest, entry.attempt),
                entry.first_sent_ns,
                self.clock_now().saturating_sub(entry.first_sent_ns),
            );
            let credentials = recovery.credentials;
            // Custody passes to the Failed report: the home site learning
            // the fate is what settles the admission.
            self.report_home(
                &agent,
                &credentials,
                ReportStatus::Failed(format!(
                    "hop {hop}: transfer to {} lost after {} attempts",
                    entry.dest, entry.attempt
                )),
                Some((entry.ctx.trace, entry.ctx.span)),
                entry.custody,
            );
            return;
        }
        let next = recovery.fallbacks.remove(0);
        self.journal.append(Event::HopSkipped {
            agent: agent.clone(),
            skipped: entry.dest.clone(),
            next: next.clone(),
            hop,
        });
        self.journal.append(Event::AgentRecovered {
            agent: agent.clone(),
            hop,
            disposition: "skipped",
        });
        // Same frame, same hop — the idempotency key is unchanged, so if
        // the "dead" stop actually admitted the agent and only its acks
        // were lost, the fallback copy can at worst duplicate-admit at a
        // *different* server, never the same one twice.
        let _ = self.send_message(&next, &entry.msg);
        let due_ns = {
            let mut rng = self.rng.lock();
            self.clock_now() + self.retry.delay_ns(1, &mut rng)
        };
        // The span context and first-send baseline carry over: a skip is
        // the *same* transfer leg finding another door, and its eventual
        // RTT should include the time burned on the dead stop.
        let fresh = PendingSend {
            dest: next,
            msg: entry.msg,
            attempt: 1,
            due_ns,
            sent_real: Instant::now(),
            recovery: Some(recovery),
            ctx: entry.ctx,
            first_sent_ns: entry.first_sent_ns,
            last_sent_ns: self.clock_now(),
            custody: entry.custody,
        };
        self.pending_sends.lock().insert((kind, agent, seq), fresh);
    }

    /// Appends an [`crate::wal::WalRecord::Admit`] for `bundle` — called
    /// on the server loop inside `handle_transfer`, which runs (and
    /// flushes) *before* the loop flushes the tick's outbox, so the
    /// admission is durable before its ack can physically leave.
    fn wal_admit(&self, bundle: crate::bundle::AgentBundle) {
        if let Some(wal) = &self.wal {
            let record = crate::wal::WalRecord::Admit(Box::new(bundle));
            if wal.append(&record).is_ok() {
                self.journal.counters().add(Counter::WalAppends, 1);
            }
        }
    }

    /// Appends an [`crate::wal::WalRecord::Resolve`] for `(agent, hop)`:
    /// custody ended (the onward transfer or home report was acked, or
    /// the outcome was recorded locally).
    fn wal_resolve(&self, agent: &Urn, hop: u64) {
        if let Some(wal) = &self.wal {
            let record = crate::wal::WalRecord::Resolve {
                agent: agent.clone(),
                hop,
            };
            if wal.append(&record).is_ok() {
                self.journal.counters().add(Counter::WalAppends, 1);
            }
        }
    }

    /// Revives a hibernated agent: takes its bundle (atomically — exactly
    /// one concurrent wake wins), re-verifies its credentials, rebuilds
    /// interpreter and environment, and hands a fresh task to the
    /// scheduler. Returns whether a bundle was found and revived.
    pub(crate) fn wake_agent(self: &Arc<Self>, agent: &Urn) -> bool {
        let t0 = Instant::now();
        let Some(bundle) = self.bundles.take(agent) else {
            return false;
        };
        let Some(domain) = self.domains.domain_of(agent) else {
            // Evicted while hibernated (a shutdown or kill raced the
            // wake); there is no stay to resume.
            return false;
        };
        let now = self.clock_now();
        let hop = bundle.hop;
        let delegated = match bundle.credentials.verify(&self.roots, now) {
            Ok(rights) => rights,
            Err(e) => {
                self.wake_fail(
                    agent,
                    domain,
                    &bundle,
                    format!("credentials no longer verify: {e}"),
                );
                return true;
            }
        };
        let rights = self.policy.read().authorize(
            &bundle.credentials.agent,
            &bundle.credentials.owner,
            &delegated,
        );
        let mut namespace = match Namespace::with_system(&self.system_modules) {
            Ok(ns) => ns,
            Err(e) => {
                self.wake_fail(agent, domain, &bundle, format!("system namespace: {e}"));
                return true;
            }
        };
        let verified = match namespace.load(bundle.image.module.clone()) {
            Ok(v) => v,
            Err(e) => {
                self.wake_fail(
                    agent,
                    domain,
                    &bundle,
                    format!("module no longer loads: {e}"),
                );
                return true;
            }
        };
        let state = match bundle.warm.clone() {
            Some(warm) => {
                let mut env = AgentEnv::new(
                    Arc::clone(self),
                    domain,
                    agent.clone(),
                    bundle.credentials.clone(),
                    rights,
                    bundle.ctx,
                );
                env.set_module(Arc::clone(&verified));
                env.restore_session(warm.rng_state, warm.children, warm.last_sender);
                let Some(interp) = Interpreter::import_state(verified, self.vm_limits, warm.interp)
                else {
                    self.wake_fail(
                        agent,
                        domain,
                        &bundle,
                        "hibernated state inconsistent with module".into(),
                    );
                    return true;
                };
                TaskState::Warm {
                    env: Box::new(env),
                    interp: Box::new(interp),
                }
            }
            // A cold bundle (never ran here) restarts from its entry.
            None => TaskState::Cold {
                verified,
                globals: bundle.image.globals,
                arg: bundle.arg,
                authorization: rights,
            },
        };
        self.journal.append(Event::AgentWoken {
            agent: agent.clone(),
            hop,
        });
        self.journal
            .histos()
            .record(HistoPath::WakeLatency, t0.elapsed().as_nanos() as u64);
        self.sched.spawn(Box::new(AgentTask {
            shared: Arc::clone(self),
            domain,
            credentials: bundle.credentials,
            entry: bundle.image.entry,
            module: bundle.image.module,
            hop,
            run_as: agent.clone(),
            admission_ctx: bundle.ctx,
            state,
        }));
        true
    }

    /// Revokes every live proxy for `resource` that this server issued
    /// (Section 5.5 revocation, driven administratively). Each live grant
    /// is invalidated through its [`ajanta_core::ProxyControl`] — which
    /// journals a per-holder `ProxyRevoke` through its attached hook —
    /// and dead grant entries are pruned in the same pass. An
    /// administrative `ProxyRevoke { holder: SERVER }` record is always
    /// appended, so the revocation *decision* is visible in this server's
    /// journal even when every holder has already departed. Returns the
    /// number of live proxies invalidated.
    pub fn revoke_resource(&self, resource: &Urn) -> usize {
        let mut revoked = 0usize;
        self.grants.lock().retain(|g| {
            let Some(control) = g.control.upgrade() else {
                return false;
            };
            if g.resource == *resource {
                if control.revoke(DomainId::SERVER).is_ok() {
                    revoked += 1;
                }
                false
            } else {
                true
            }
        });
        self.journal.append(Event::ProxyRevoke {
            resource: resource.clone(),
            holder: DomainId::SERVER,
        });
        revoked
    }

    /// Asks a resident, non-hibernated agent to hibernate at its next
    /// safe yield point (control plane `hibernate` op). Returns whether
    /// the request was accepted — the spill itself happens when the
    /// agent's task next yields with no live bindings and no pending
    /// migration.
    pub fn request_hibernate(&self, agent: &Urn) -> bool {
        if self.domains.domain_of(agent).is_none() || self.bundles.contains(agent) {
            return false;
        }
        self.hibernate_requests.lock().insert(agent.clone());
        true
    }

    /// Whether `agent` currently sits in the bundle store.
    pub fn is_hibernated(&self, agent: &Urn) -> bool {
        self.bundles.contains(agent)
    }

    /// A failed revival must leave no residue and must still settle the
    /// agent's fate — the same obligations `AgentTask::complete` meets.
    fn wake_fail(
        &self,
        agent: &Urn,
        domain: DomainId,
        bundle: &crate::bundle::AgentBundle,
        detail: String,
    ) {
        self.reject(
            RejectKind::BadCredentials,
            format!("wake {agent}: {detail}"),
        );
        self.mailbox_shard(agent).lock().remove(agent);
        let _ = self.domains.evict(DomainId::SERVER, domain);
        self.report_home(
            agent,
            &bundle.credentials,
            ReportStatus::Failed(format!("wake failed: {detail}")),
            Some((bundle.ctx.trace, bundle.ctx.span)),
            Some((agent.clone(), bundle.hop)),
        );
    }
}

/// The retry ticker: parks while nothing is pending, then services the
/// unacked set every millisecond until shutdown.
fn retry_loop(shared: Arc<Shared>) {
    loop {
        {
            let mut pending = shared.pending_sends.lock();
            while pending.is_empty() && !shared.retry_shutdown.load(Ordering::Acquire) {
                // The timeout is only a backstop against a lost wakeup.
                let (g, _) = shared
                    .retry_cv
                    .wait_timeout(pending, Duration::from_millis(25));
                pending = g;
            }
        }
        if shared.retry_shutdown.load(Ordering::Acquire) {
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
        shared.service_pending();
    }
}

/// Control-channel commands. (`Launch` carries a whole agent; boxing
/// would only obscure the one-shot hand-off.)
#[allow(clippy::large_enum_variant)]
enum Control {
    Launch {
        dest: Urn,
        credentials: Credentials,
        image: AgentImage,
        /// Itinerary stops after `dest`, for dead-stop recovery.
        fallbacks: Vec<Urn>,
    },
    QueryStatus {
        server: Urn,
        agent: Urn,
        reply: crossbeam::channel::Sender<Result<AgentStatus, QueryError>>,
    },
    Shutdown,
}

/// The running server's control handle. Dropping it does **not** stop the
/// server; call [`ServerHandle::shutdown`].
pub struct ServerHandle {
    name: Urn,
    shared: Arc<Shared>,
    ctrl: Sender<Control>,
    join: Option<std::thread::JoinHandle<()>>,
    retry_join: Option<std::thread::JoinHandle<()>>,
    /// Whether this handle started (and must stop) a private scheduler,
    /// as opposed to borrowing a world-shared one.
    owns_sched: bool,
}

impl ServerHandle {
    /// The server's name.
    pub fn name(&self) -> &Urn {
        &self.name
    }

    /// Launches an agent from this (home) server toward `dest`.
    pub fn launch(&self, dest: Urn, credentials: Credentials, image: AgentImage) {
        let _ = self.ctrl.send(Control::Launch {
            dest,
            credentials,
            image,
            fallbacks: Vec::new(),
        });
    }

    /// Launches an agent along `itinerary`: toward its first stop, with
    /// the remaining stops registered as dead-stop fallbacks, so even the
    /// launch leg survives an unreachable first server. An empty
    /// itinerary is refused immediately (local report).
    pub fn launch_tour(&self, itinerary: &Itinerary, credentials: Credentials, image: AgentImage) {
        let (dest, rest) = itinerary.clone().next_stop();
        let Some(dest) = dest else {
            self.shared.report_home(
                &credentials.agent.clone(),
                &credentials,
                ReportStatus::Refused("launch with empty itinerary".into()),
                None,
                None,
            );
            return;
        };
        let _ = self.ctrl.send(Control::Launch {
            dest,
            credentials,
            image,
            fallbacks: rest.stops().to_vec(),
        });
    }

    /// Registers a resource in this server's registry (server domain).
    pub fn register_resource(&self, resource: Arc<dyn AccessProtocol>) -> Result<(), String> {
        let registrar = self.name.clone();
        self.shared
            .registry
            .register(&self.shared.monitor, DomainId::SERVER, &registrar, resource)
            .map_err(|e| e.to_string())
    }

    /// Runs `f` against the server's policy (e.g. to add rules at
    /// runtime — Section 5.1's dynamically modified policies).
    pub fn with_policy<R>(&self, f: impl FnOnce(&mut SecurityPolicy) -> R) -> R {
        f(&mut self.shared.policy.write())
    }

    /// Snapshot of reports received here as a home site.
    pub fn reports(&self) -> Vec<Report> {
        self.shared.reports.lock().clone()
    }

    /// Blocks (real time) until at least `n` reports have arrived or the
    /// timeout elapses; returns the snapshot either way. Waiters park on
    /// a condvar signalled per arrival — no busy-poll, no 2 ms stairs.
    pub fn wait_reports(&self, n: usize, timeout: std::time::Duration) -> Vec<Report> {
        let deadline = Instant::now() + timeout;
        let mut reports = self.shared.reports.lock();
        loop {
            if reports.len() >= n {
                return reports.clone();
            }
            let now = Instant::now();
            if now >= deadline {
                return reports.clone();
            }
            let (g, _) = self.shared.reports_cv.wait_timeout(reports, deadline - now);
            reports = g;
        }
    }

    /// Asks `server`'s domain database about `agent` over the network —
    /// paper Section 4: the domain database "responds to status queries
    /// from their owners".
    ///
    /// The error distinguishes a server that could not be asked or never
    /// answered ([`QueryError::Unreachable`] / [`QueryError::Timeout`])
    /// from one that answered "not resident" — callers can now tell a
    /// dead server from a completed agent.
    pub fn query_status(
        &self,
        server: &Urn,
        agent: &Urn,
        timeout: std::time::Duration,
    ) -> Result<AgentStatus, QueryError> {
        let (reply_tx, reply_rx) = crossbeam::channel::bounded(1);
        if self
            .ctrl
            .send(Control::QueryStatus {
                server: server.clone(),
                agent: agent.clone(),
                reply: reply_tx,
            })
            .is_err()
        {
            return Err(QueryError::Unreachable("local server is shut down".into()));
        }
        match reply_rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(_) => Err(QueryError::Timeout),
        }
    }

    /// Per-agent log lines — a filtered view of the journal's
    /// [`Event::AgentLog`] records. Bounded by the journal capacity; the
    /// exact lifetime count (including evicted lines) is the journal's
    /// `LogLines` counter.
    pub fn logs(&self) -> Vec<(Urn, String)> {
        self.logs_tail(usize::MAX)
    }

    /// The `n` most recent per-agent log lines, oldest first — the
    /// bounded variant the control plane serves, so one request can't
    /// clone an unbounded log vector.
    pub fn logs_tail(&self, n: usize) -> Vec<(Urn, String)> {
        logs_tail_of(&self.shared.journal, n)
    }

    /// Security events recorded by this server — a filtered view of the
    /// journal's [`Event::Rejected`] records.
    pub fn security_events(&self) -> Vec<SecurityEvent> {
        self.shared
            .journal
            .snapshot()
            .into_iter()
            .filter_map(|r| match r.event {
                Event::Rejected { kind, detail } => Some(SecurityEvent {
                    at: r.at,
                    kind,
                    detail,
                }),
                _ => None,
            })
            .collect()
    }

    /// The server's telemetry journal: typed events, aggregate counters,
    /// and the Prometheus-style snapshot.
    pub fn journal(&self) -> Arc<Journal> {
        Arc::clone(&self.shared.journal)
    }

    /// Number of reliable sends still awaiting an ack (or their
    /// dead-stop). A trace export is only guaranteed orphan-free once
    /// every server reports zero here: the Transfer span for a leg is
    /// journaled when the leg *resolves*, so exporting mid-flight can
    /// miss parents of already-journaled Retry and Admission spans.
    pub fn pending_send_count(&self) -> usize {
        self.shared.pending_sends.lock().len()
    }

    /// Exports this server's trace-relevant journal records as JSONL for
    /// offline merging (`ajanta_core::trace::parse_jsonl`, `tracectl`).
    pub fn export_jsonl(&self) -> String {
        ajanta_core::trace::export_journal(
            &self.shared.name().to_string(),
            &self.shared.journal.snapshot(),
        )
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            agents_hosted: self.shared.stats.agents_hosted.load(Ordering::Relaxed),
            transfers_out: self.shared.stats.transfers_out.load(Ordering::Relaxed),
            reports_in: self.shared.stats.reports_in.load(Ordering::Relaxed),
            mail_delivered: self.shared.stats.mail_delivered.load(Ordering::Relaxed),
        }
    }

    /// Number of currently resident agents.
    pub fn resident_agents(&self) -> usize {
        self.shared.domains.len()
    }

    /// Names in the resource registry.
    pub fn resources(&self) -> Vec<Urn> {
        self.shared.registry.list()
    }

    /// The monitor's audit-log length (X12 instrumentation) — an O(1)
    /// counter read; the old implementation cloned the whole log to count
    /// it.
    pub fn audit_len(&self) -> usize {
        self.shared.monitor.audit_len()
    }

    /// Scheduler queue depths as seen from this server's pool: tasks
    /// ready (queued), running (on a worker this instant), and parked
    /// (ready but cold — holding only their VM image, no stack). With a
    /// world-shared pool the depths span every server on it.
    pub fn sched_depths(&self) -> SchedDepths {
        self.shared.sched.depths()
    }

    /// The worker pool this server's agents execute on.
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.shared.sched
    }

    /// Number of agents currently hibernated (resident but spilled to
    /// the bundle store, holding no interpreter or scheduler task).
    pub fn hibernated_agents(&self) -> usize {
        self.shared.bundles.len()
    }

    /// Total encoded bytes the hibernated agents occupy — the entire
    /// per-agent footprint while asleep, versus a warm agent's live
    /// interpreter ([`ajanta_vm::Interpreter`] memory) plus environment.
    pub fn hibernated_bytes(&self) -> usize {
        self.shared.bundles.stored_bytes()
    }

    /// Explicitly wakes a hibernated agent (the tour-resume wake path;
    /// mail arrival wakes implicitly). Returns whether a bundle was
    /// found and revived.
    pub fn wake(&self, agent: &Urn) -> bool {
        self.shared.wake_agent(agent)
    }

    /// Asks a resident agent to hibernate at its next safe yield point
    /// (see [`Shared::request_hibernate`]).
    pub fn hibernate(&self, agent: &Urn) -> bool {
        self.shared.request_hibernate(agent)
    }

    /// Revokes every live proxy this server issued for `resource` (see
    /// [`Shared::revoke_resource`]). Returns the live proxies
    /// invalidated.
    pub fn revoke_resource(&self, resource: &Urn) -> usize {
        self.shared.revoke_resource(resource)
    }

    /// Domain-database records of every resident agent (including
    /// hibernated ones — their domains survive the spill).
    pub fn agent_records(&self) -> Vec<ajanta_core::AgentRecord> {
        self.shared.domains.iter().collect()
    }

    /// Names of the agents currently hibernated in the bundle store.
    pub fn hibernated_list(&self) -> Vec<Urn> {
        self.shared.bundles.list()
    }

    /// `(agent, hop)` pairs whose custody is still in flight: reliable
    /// frames carrying a WAL admission that has not been resolved by an
    /// ack yet.
    pub fn in_flight_agents(&self) -> Vec<(Urn, u64)> {
        let mut v: Vec<(Urn, u64)> = self
            .shared
            .pending_sends
            .lock()
            .values()
            .filter_map(|p| p.custody.clone())
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// A cheap, cloneable view of this server for the control plane —
    /// everything `runtime::control` serves, without owning the server's
    /// lifecycle.
    pub fn control_view(&self) -> ControlView {
        ControlView {
            name: self.name.clone(),
            shared: Arc::clone(&self.shared),
        }
    }

    /// Delivers local mail from the control plane (tests, tools) as if a
    /// co-located agent had sent it.
    pub fn deliver_mail(&self, from: Urn, to: Urn, data: Vec<u8>) -> bool {
        self.shared.local_mail(from, to, data)
    }

    /// Stops the server loop and joins all threads. A privately owned
    /// scheduler is drained and stopped too; a world-shared one is left
    /// to [`crate::World::shutdown`].
    pub fn shutdown(mut self) {
        let _ = self.ctrl.send(Control::Shutdown);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
        self.shared.retry_shutdown.store(true, Ordering::Release);
        self.shared.retry_cv.notify_all();
        if let Some(join) = self.retry_join.take() {
            let _ = join.join();
        }
        if self.owns_sched {
            self.shared.sched.stop();
        }
    }
}

/// The `n` most recent [`Event::AgentLog`] lines in `journal`, oldest
/// first.
fn logs_tail_of(journal: &Journal, n: usize) -> Vec<(Urn, String)> {
    let mut lines: Vec<(Urn, String)> = journal
        .snapshot()
        .into_iter()
        .filter_map(|r| match r.event {
            Event::AgentLog { agent, text } => Some((agent, text)),
            _ => None,
        })
        .collect();
    if n < lines.len() {
        lines.drain(..lines.len() - n);
    }
    lines
}

/// A cheap, cloneable, read-mostly view of one server for the control
/// plane: everything `runtime::control` serves — agent inventory,
/// telemetry, journal pages, logs, trace export, hibernate/wake, and
/// proxy revocation — without owning the server's lifecycle (no
/// shutdown, no join handles). Obtained from
/// [`ServerHandle::control_view`].
#[derive(Clone)]
pub struct ControlView {
    name: Urn,
    shared: Arc<Shared>,
}

impl ControlView {
    /// The server's name.
    pub fn name(&self) -> &Urn {
        &self.name
    }

    /// The server's telemetry journal.
    pub fn journal(&self) -> Arc<Journal> {
        Arc::clone(&self.shared.journal)
    }

    /// A typed copy of every counter and histogram (see
    /// [`Journal::telemetry_snapshot`]).
    pub fn telemetry(&self) -> ajanta_core::telemetry::TelemetrySnapshot {
        self.shared.journal.telemetry_snapshot()
    }

    /// Domain-database records of every resident agent.
    pub fn agent_records(&self) -> Vec<ajanta_core::AgentRecord> {
        self.shared.domains.iter().collect()
    }

    /// The record of one resident agent, if present.
    pub fn record_of(&self, agent: &Urn) -> Option<ajanta_core::AgentRecord> {
        self.shared.domains.record_of(agent)
    }

    /// Names of the agents currently hibernated in the bundle store.
    pub fn hibernated_list(&self) -> Vec<Urn> {
        self.shared.bundles.list()
    }

    /// Whether `agent` currently sits in the bundle store.
    pub fn is_hibernated(&self, agent: &Urn) -> bool {
        self.shared.is_hibernated(agent)
    }

    /// `(agent, hop)` pairs whose custody is still in flight (unacked
    /// reliable frames carrying a WAL admission).
    pub fn in_flight_agents(&self) -> Vec<(Urn, u64)> {
        let mut v: Vec<(Urn, u64)> = self
            .shared
            .pending_sends
            .lock()
            .values()
            .filter_map(|p| p.custody.clone())
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// The `n` most recent per-agent log lines, oldest first.
    pub fn logs_tail(&self, n: usize) -> Vec<(Urn, String)> {
        logs_tail_of(&self.shared.journal, n)
    }

    /// Bytes the hibernated bundles currently occupy.
    pub fn hibernated_bytes(&self) -> usize {
        self.shared.bundles.stored_bytes()
    }

    /// Names in the resource registry.
    pub fn resources(&self) -> Vec<Urn> {
        self.shared.registry.list()
    }

    /// Reliable sends still awaiting an ack.
    pub fn pending_send_count(&self) -> usize {
        self.shared.pending_sends.lock().len()
    }

    /// Trace-relevant journal records as JSONL (see
    /// [`ServerHandle::export_jsonl`]).
    pub fn export_jsonl(&self) -> String {
        ajanta_core::trace::export_journal(&self.name.to_string(), &self.shared.journal.snapshot())
    }

    /// Asks a resident agent to hibernate at its next safe yield point.
    pub fn hibernate(&self, agent: &Urn) -> bool {
        self.shared.request_hibernate(agent)
    }

    /// Wakes a hibernated agent. Returns whether a bundle was revived.
    pub fn wake(&self, agent: &Urn) -> bool {
        self.shared.wake_agent(agent)
    }

    /// Revokes every live proxy this server issued for `resource`;
    /// returns how many were invalidated.
    pub fn revoke_resource(&self, resource: &Urn) -> usize {
        self.shared.revoke_resource(resource)
    }
}

/// The agent server. Construct with [`AgentServer::spawn`].
pub struct AgentServer;

impl AgentServer {
    /// Starts a server thread attached to the simulated network and
    /// returns its handle. Convenience wrapper over [`Self::spawn_on`]
    /// for the single-process worlds every experiment started from.
    ///
    /// # Panics
    /// Panics if the server name is already attached to the network.
    pub fn spawn(net: &SimNet, config: ServerConfig) -> ServerHandle {
        Self::spawn_on(Arc::new(net.clone()), config)
    }

    /// Starts a server thread attached to any [`Transport`] — the
    /// simulation or a real socket transport — and returns its handle.
    ///
    /// # Panics
    /// Panics if the server name is already attached to the transport.
    pub fn spawn_on(net: Arc<dyn Transport>, config: ServerConfig) -> ServerHandle {
        let endpoint = net
            .attach(config.name.clone())
            .expect("server name already attached");
        // One journal per server, stamped with the network's virtual
        // clock; the monitor audits into it, so the audit trail shares
        // the stream (and the bound) with everything else. The span tag
        // is a hash of the server name so span ids minted on different
        // servers never collide when journals are merged for tracing.
        let clock = net.clock().clone();
        let tag = {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            config.name.hash(&mut h);
            h.finish() as u32
        };
        let journal = Arc::new(
            Journal::with_capacity(config.journal_capacity)
                .with_clock(move || clock.now())
                .with_span_tag(tag),
        );
        let monitor = HostMonitor::with_journal(Arc::clone(&journal), config.agents_may_dispatch);
        let (sched, owns_sched) = match config.scheduler {
            Some(s) => (s, false),
            None => (Scheduler::new(crate::sched::default_workers()), true),
        };
        // Crash recovery happens before the loop starts: read whatever
        // log a previous incarnation left, then reopen it for appending.
        // Resolved keys pre-seed the duplicate filter (peer retries of
        // settled frames are acked and dropped); unresolved admissions
        // are re-admitted once the loop is live.
        let (wal, recovery) = match &config.wal {
            Some(path) => {
                let records = crate::wal::AdmissionWal::replay(path).unwrap_or_default();
                let recovery = crate::wal::AdmissionWal::recover(records);
                (crate::wal::AdmissionWal::open(path).ok(), Some(recovery))
            }
            None => (None, None),
        };
        let mut seen = SeenFrames::default();
        let mut replay_bundles = Vec::new();
        if let Some(recovery) = recovery {
            for (agent, hop) in recovery.resolved {
                seen.insert(FrameKey::Transfer { agent, hop });
            }
            replay_bundles = recovery.unresolved;
        }
        let shared = Arc::new(Shared {
            name: config.name.clone(),
            identity: config.identity,
            keys: config.keys,
            roots: config.roots,
            directory: config.directory,
            net: Arc::clone(&net),
            monitor,
            registry: ResourceRegistry::new(),
            domains: DomainDatabase::new(),
            policy: RwLock::new(config.policy),
            system_modules: config.system_modules,
            agent_limits: config.agent_limits,
            vm_limits: config.vm_limits,
            sched,
            mailboxes: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            journal,
            reports: Mutex::new(Vec::new()),
            reports_cv: Condvar::new(),
            rng: Mutex::new(DetRng::new(config.seed)),
            guard: Mutex::new(ReplayGuard::new(config.replay_window_ns)),
            stats: ServerStats::default(),
            pending_queries: Mutex::new(BTreeMap::new()),
            next_query_id: AtomicU64::new(1),
            retry: config.retry,
            pending_sends: Mutex::new(HashMap::new()),
            retry_cv: Condvar::new(),
            retry_shutdown: AtomicBool::new(false),
            seen: Mutex::new(seen),
            next_report_seq: AtomicU64::new(1),
            bundles: crate::bundle::BundleStore::in_memory(),
            wal,
            hibernate_after_misses: config.hibernate_after_misses,
            grants: Mutex::new(Vec::new()),
            hibernate_requests: Mutex::new(HashSet::new()),
        });

        // Transport-level frame rejections (undecodable bytes, failed
        // handshakes, oversize lengths) land in the same journal as
        // datagram-level ones. The simulation never produces any; a
        // socket transport facing a hostile peer does.
        {
            let journal = Arc::clone(&shared.journal);
            net.on_frame_reject(Arc::new(move |detail: &str| {
                journal.append(Event::Rejected {
                    kind: RejectKind::BadDatagram,
                    detail: format!("transport: {detail}"),
                });
            }));
        }
        // Write-batch observations from the socket data plane: each
        // coalesced stream write lands one sample in the frames-per-write
        // histogram plus the two coalescing counters. The simulation
        // issues no writes, so on a SimNet this hook never fires.
        {
            let journal = Arc::clone(&shared.journal);
            net.on_write_batch(Arc::new(move |frames: u64| {
                journal.histos().record(HistoPath::FramesPerWrite, frames);
                journal.counters().add(Counter::FramesCoalesced, frames);
                journal.counters().add(Counter::WriteSyscalls, 1);
            }));
        }

        let (ctrl_tx, ctrl_rx) = unbounded();
        let loop_shared = Arc::clone(&shared);
        let join = std::thread::Builder::new()
            .name(format!("ajanta-{}", config.name.leaf()))
            .spawn(move || server_loop(loop_shared, endpoint, ctrl_rx, replay_bundles))
            .expect("spawning server thread");
        let retry_join = if shared.retry.enabled() {
            let retry_shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name(format!("ajanta-retry-{}", config.name.leaf()))
                    .spawn(move || retry_loop(retry_shared))
                    .expect("spawning retry thread"),
            )
        } else {
            None
        };

        ServerHandle {
            name: config.name,
            shared,
            ctrl: ctrl_tx,
            join: Some(join),
            retry_join,
            owns_sched,
        }
    }
}

fn server_loop(
    shared: Arc<Shared>,
    endpoint: Box<dyn NetEndpoint>,
    ctrl: Receiver<Control>,
    replay: Vec<crate::bundle::AgentBundle>,
) {
    // Admitted agents collected this tick; handed to the scheduler as
    // one batch so a delivery burst costs one queue wakeup, not N.
    let mut batch: Vec<Box<dyn Task>> = Vec::new();
    // WAL replay (tentpole): re-admit every agent a previous incarnation
    // owned but had not resolved, through the normal admission pipeline.
    // The `seen` insert makes the replay idempotent against the peer's
    // own retry of the same frame arriving later — and `wal_log: false`
    // keeps the replay from re-logging admissions that are already in
    // the log unresolved.
    for bundle in replay {
        let fresh = shared.seen.lock().insert(FrameKey::Transfer {
            agent: bundle.agent.clone(),
            hop: bundle.hop,
        });
        if !fresh {
            continue;
        }
        shared.journal.append(Event::WalReplayed {
            agent: bundle.agent.clone(),
            hop: bundle.hop,
        });
        let sent_ns = shared.clock_now();
        handle_transfer(
            &shared,
            bundle.credentials,
            bundle.image,
            bundle.hop,
            bundle.agent,
            bundle.arg,
            bundle.ctx,
            sent_ns,
            false,
            &mut batch,
        );
    }
    if !batch.is_empty() {
        shared.sched.spawn_batch(batch.drain(..));
    }
    // Ack/report-ack frames owed for this tick's deliveries. Collected
    // here and sent after the burst drain so a burst of N transfers
    // hands the transport N back-to-back acks in one go — which the
    // socket writer then coalesces into few writes. Only the flush
    // granularity moves: each ack is still decided (and ordered) at the
    // same point in handle_delivery it always was, before the dedup
    // check, so "ack first, even duplicates" is unchanged.
    let mut outbox: Vec<(Urn, Message)> = Vec::new();
    loop {
        crossbeam::channel::select! {
            recv(ctrl) -> cmd => match cmd {
                Ok(Control::Launch { dest, credentials, image, fallbacks }) => {
                    shared.stats.transfers_out.fetch_add(1, Ordering::Relaxed);
                    shared.journal.append(Event::AgentDispatched {
                        agent: credentials.agent.clone(),
                        dest: dest.clone(),
                    });
                    let agent = credentials.agent.clone();
                    // Every launch roots a fresh trace: a Dispatch span
                    // with no parent, whose id every later span of the
                    // tour transitively descends from.
                    let now = shared.clock_now();
                    let root = SpanContext::root(
                        shared.journal.mint_trace(),
                        shared.journal.mint_span(),
                    );
                    shared.emit_span(
                        root,
                        SpanKind::Dispatch,
                        &agent,
                        format!("launch toward {dest}"),
                        now,
                        0,
                    );
                    let msg = Message::Transfer {
                        run_as: agent.clone(),
                        credentials: credentials.clone(),
                        image,
                        hop: 0,
                        arg: Vec::new(),
                        ctx: root.child(shared.journal.mint_span()),
                        sent_ns: now,
                    };
                    if let Err(e) = shared.send_transfer(
                        &dest, msg, agent, 0, fallbacks, credentials.clone(), None,
                    ) {
                        shared.report_home(&credentials.agent.clone(), &credentials, ReportStatus::Refused(
                            format!("launch toward {dest} failed: {e}"),
                        ), Some((root.trace, root.span)), None);
                    }
                }
                Ok(Control::QueryStatus { server, agent, reply }) => {
                    let query_id = shared.next_query_id.fetch_add(1, Ordering::Relaxed);
                    shared.pending_queries.lock().insert(query_id, reply);
                    let msg = Message::StatusQuery { query_id, agent };
                    if let Err(e) = shared.send_message(&server, &msg) {
                        // Tell the caller *why* instead of letting it
                        // time out against a server that was never asked.
                        if let Some(reply) = shared.pending_queries.lock().remove(&query_id) {
                            let _ = reply.send(Err(QueryError::Unreachable(e)));
                        }
                    }
                }
                Ok(Control::Shutdown) | Err(_) => break,
            },
            recv(endpoint.receiver()) -> delivery => match delivery {
                Ok(d) => {
                    shared.net.clock().advance_to(d.arrival_ns);
                    handle_delivery(&shared, d, &mut batch, &mut outbox);
                }
                Err(_) => break,
            },
        }
        // Drain the rest of the burst without blocking, then enqueue
        // the whole tick's admissions at once.
        while let Ok(d) = endpoint.receiver().try_recv() {
            shared.net.clock().advance_to(d.arrival_ns);
            handle_delivery(&shared, d, &mut batch, &mut outbox);
        }
        for (dest, msg) in outbox.drain(..) {
            let _ = shared.send_message(&dest, &msg);
        }
        if !batch.is_empty() {
            shared.sched.spawn_batch(batch.drain(..));
        }
    }
    // A shutdown racing a delivery burst must not strand admitted (and
    // domain-registered) agents: flush, then let the scheduler's own
    // drain-on-stop run them. Acks owed for that last burst go out
    // first — a peer must not re-send a transfer this server admitted.
    for (dest, msg) in outbox.drain(..) {
        let _ = shared.send_message(&dest, &msg);
    }
    if !batch.is_empty() {
        shared.sched.spawn_batch(batch.drain(..));
    }
}

fn handle_delivery(
    shared: &Arc<Shared>,
    delivery: Delivery,
    batch: &mut Vec<Box<dyn Task>>,
    outbox: &mut Vec<(Urn, Message)>,
) {
    let now = shared.clock_now();
    let datagram = match SealedDatagram::from_bytes(&delivery.payload) {
        Ok(d) => d,
        Err(e) => {
            shared.reject(RejectKind::BadDatagram, format!("undecodable: {e}"));
            return;
        }
    };
    let opened = {
        let mut guard = shared.guard.lock();
        datagram.open(
            &shared.identity,
            &shared.keys,
            &shared.roots,
            now,
            &mut guard,
        )
    };
    let (sender, plaintext) = match opened {
        Ok(x) => x,
        Err(e) => {
            // Replay-class failures (stale timestamp, reused nonce) get
            // their own typed category; everything else is tampering or
            // decode trouble.
            let kind = if e.is_replay() {
                RejectKind::Replay
            } else {
                RejectKind::BadDatagram
            };
            shared.reject(kind, e.to_string());
            return;
        }
    };
    let message = match Message::from_bytes(&plaintext) {
        Ok(m) => m,
        Err(e) => {
            shared.reject(
                RejectKind::BadDatagram,
                format!("bad message from {sender}: {e}"),
            );
            return;
        }
    };
    match message {
        Message::Transfer {
            credentials,
            image,
            hop,
            run_as,
            arg,
            ctx,
            sent_ns,
        } => {
            if shared.retry.enabled() {
                // Ack first — even duplicates: "acknowledged but not
                // re-admitted". The admission decision itself hinges on
                // the idempotency key (agent, hop): a retried or
                // replayed copy of an already-seen hop goes no further.
                let ack = Message::Ack {
                    kind: Ack::TRANSFER,
                    agent: run_as.clone(),
                    seq: hop,
                };
                outbox.push((sender.clone(), ack));
            }
            let fresh = shared.seen.lock().insert(FrameKey::Transfer {
                agent: run_as.clone(),
                hop,
            });
            if !fresh {
                shared.reject(
                    RejectKind::DuplicateHop,
                    format!("transfer of {run_as} hop {hop} already processed"),
                );
                return;
            }
            handle_transfer(
                shared,
                credentials,
                image,
                hop,
                run_as,
                arg,
                ctx,
                sent_ns,
                true,
                batch,
            );
        }
        Message::Report { report, seq, ctx } => {
            if shared.retry.enabled() {
                let ack = Message::Ack {
                    kind: Ack::REPORT,
                    agent: report.agent.clone(),
                    seq,
                };
                outbox.push((sender.clone(), ack));
            }
            let fresh = shared.seen.lock().insert(FrameKey::Report {
                from: sender.clone(),
                agent: report.agent.clone(),
                seq,
            });
            if !fresh {
                shared.reject(
                    RejectKind::DuplicateHop,
                    format!("report {seq} from {sender} already recorded"),
                );
                return;
            }
            shared.record_report(report, Some(ctx));
        }
        Message::Ack { kind, agent, seq } => {
            // The first ack resolves the frame; duplicates find nothing
            // pending and do nothing (so no span is journaled twice). A
            // resolved transfer closes its Transfer span with the full
            // virtual round trip since the *first* send — retry backoffs
            // included, which is exactly the tail the histogram is for.
            let entry = shared
                .pending_sends
                .lock()
                .remove(&(kind, agent.clone(), seq));
            if let Some(entry) = entry {
                if kind == Ack::TRANSFER {
                    let rtt = shared.clock_now().saturating_sub(entry.first_sent_ns);
                    shared.journal.histos().record(HistoPath::TransferRtt, rtt);
                    shared.emit_span(
                        entry.ctx,
                        SpanKind::Transfer,
                        &agent,
                        format!("to {} acked after {} attempt(s)", entry.dest, entry.attempt),
                        entry.first_sent_ns,
                        rtt,
                    );
                }
                // The ack is the custody hand-off: the receiver (or the
                // home site) now durably owns the agent's fate, so the
                // local WAL admission is settled.
                if let Some((custody_agent, custody_hop)) = entry.custody {
                    shared.wal_resolve(&custody_agent, custody_hop);
                }
            }
        }
        Message::AgentMail { from, to, data } => {
            if !shared.local_mail(from.clone(), to.clone(), data) {
                shared.reject(
                    RejectKind::MailDenied,
                    format!("no resident agent {to} (mail from {from})"),
                );
            }
        }
        Message::StatusQuery { query_id, agent } => {
            let status = match shared.domains.record_of(&agent) {
                Some(rec) => AgentStatus::Resident {
                    owner: rec.owner,
                    creator: rec.creator,
                    fuel_used: rec.usage.fuel,
                    bindings: rec.bindings,
                },
                None => AgentStatus::NotResident,
            };
            let reply = Message::StatusReply {
                query_id,
                agent,
                status,
            };
            if let Err(e) = shared.send_message(&sender, &reply) {
                shared.reject(RejectKind::ReportUndeliverable, e);
            }
        }
        Message::StatusReply {
            query_id, status, ..
        } => {
            if let Some(reply) = shared.pending_queries.lock().remove(&query_id) {
                let _ = reply.send(Ok(status));
            }
        }
    }
}

/// `wal_log = false` only on the WAL-replay path: the admission being
/// replayed already has an unresolved `Admit` record in the log, so
/// re-appending would only grow it.
#[allow(clippy::too_many_arguments)]
fn handle_transfer(
    shared: &Arc<Shared>,
    credentials: Credentials,
    image: AgentImage,
    hop: u64,
    run_as: Urn,
    arg: Vec<u8>,
    ctx: SpanContext,
    sent_ns: u64,
    wal_log: bool,
    batch: &mut Vec<Box<dyn Task>>,
) {
    // Real-time start of the admission pipeline (credential verification
    // through domain creation) — the Admission span's duration.
    let pipeline_t0 = Instant::now();
    let now = shared.clock_now();

    // 1. Credentials: tamper-evidence, expiry, certification.
    let delegated = match credentials.verify(&shared.roots, now) {
        Ok(rights) => rights,
        Err(e) => {
            shared.reject(
                RejectKind::BadCredentials,
                format!("{}: {e}", credentials.agent),
            );
            return; // nothing about the sender can be trusted; drop.
        }
    };

    // 1b. The executing identity must be the credentialed agent or a
    // child within its name subtree (Section 2: an agent's creator may be
    // another agent). Anything else is an identity-forgery attempt.
    if run_as != credentials.agent && !run_as.is_within(&credentials.agent) {
        shared.reject(
            RejectKind::BadIdentity,
            format!("{} is not within {}", run_as, credentials.agent),
        );
        return;
    }

    // 2. Code: fresh name-space, re-verification, impostor refusal.
    let mut namespace = match Namespace::with_system(&shared.system_modules) {
        Ok(ns) => ns,
        Err(e) => {
            shared.reject(RejectKind::BadImage, format!("system namespace: {e}"));
            return;
        }
    };
    if image.validate().is_err() {
        shared.reject(
            RejectKind::BadImage,
            format!("{run_as}: inconsistent image"),
        );
        shared.report_home(
            &run_as,
            &credentials,
            ReportStatus::Refused("inconsistent image".into()),
            Some((ctx.trace, ctx.span)),
            None,
        );
        return;
    }
    let verified = match namespace.load(image.module.clone()) {
        Ok(v) => v,
        Err(e) => {
            let kind = if matches!(e, ajanta_vm::LoadError::ShadowsSystemModule(_)) {
                RejectKind::ImpostorModule
            } else {
                RejectKind::BadImage
            };
            shared.reject(kind, format!("{run_as}: {e}"));
            shared.report_home(
                &run_as,
                &credentials,
                ReportStatus::Refused(e.to_string()),
                Some((ctx.trace, ctx.span)),
                None,
            );
            return;
        }
    };

    // 3. Authorization: server policy ∩ owner delegation.
    let authorization =
        shared
            .policy
            .read()
            .authorize(&credentials.agent, &credentials.owner, &delegated);

    // 4. Domain creation. For a dispatched child, the creator is the
    // parent agent; otherwise the credentialed creator.
    let creator = if run_as == credentials.agent {
        credentials.creator.clone()
    } else {
        credentials.agent.clone()
    };
    let domain = match shared.domains.admit(
        DomainId::SERVER,
        run_as.clone(),
        credentials.owner.clone(),
        creator,
        credentials.home.clone(),
        authorization.clone(),
        shared.agent_limits,
    ) {
        Ok(d) => d,
        Err(e) => {
            shared.reject(RejectKind::DuplicateAgent, e.to_string());
            shared.report_home(
                &run_as,
                &credentials,
                ReportStatus::Refused(e.to_string()),
                Some((ctx.trace, ctx.span)),
                None,
            );
            return;
        }
    };
    shared.journal.append(Event::AgentAdmitted {
        agent: run_as.clone(),
        domain,
        hop,
    });
    // Durability point (tentpole): log the admission before this tick's
    // outbox — carrying the ack queued above — is flushed. After this
    // line a crash cannot lose the agent: either the ack never left (the
    // sender retries) or the WAL replays it.
    if wal_log && shared.wal.is_some() {
        shared.wal_admit(crate::bundle::AgentBundle {
            agent: run_as.clone(),
            hop,
            credentials: credentials.clone(),
            image: image.clone(),
            arg: arg.clone(),
            ctx,
            warm: None,
        });
    }

    // End-to-end hop latency on the virtual clock: from the sender's
    // first transmission to successful admission here — includes every
    // retry and fallback redirection the frame survived.
    shared
        .journal
        .histos()
        .record(HistoPath::HopLatency, now.saturating_sub(sent_ns));
    // The Admission span is a child of the transfer that delivered the
    // agent; everything the agent does on this server descends from it.
    let admission_ctx = SpanContext {
        trace: ctx.trace,
        span: shared.journal.mint_span(),
        parent: Some(ctx.span),
    };
    shared.emit_span(
        admission_ctx,
        SpanKind::Admission,
        &run_as,
        format!("hop {hop}"),
        now,
        pipeline_t0.elapsed().as_nanos() as u64,
    );

    // Scheduling the agent's domain — still mediated by the monitor
    // (Section 5.3: thread-group manipulation is privileged), though the
    // "thread" is now a cooperative task on the shared worker pool.
    if shared
        .monitor
        .check(DomainId::SERVER, SystemOp::CreateThread { target: domain })
        .is_err()
    {
        return; // unreachable with the default policy; defensive.
    }

    shared.stats.agents_hosted.fetch_add(1, Ordering::Relaxed);
    batch.push(Box::new(AgentTask {
        shared: Arc::clone(shared),
        domain,
        credentials,
        entry: image.entry.clone(),
        module: image.module.clone(),
        hop,
        run_as,
        admission_ctx,
        state: TaskState::Cold {
            verified,
            globals: image.globals,
            arg,
            authorization,
        },
    }));
}

/// One admitted agent as a resumable scheduler task.
///
/// Admission leaves the agent **cold**: the serialized image plus its
/// admission artifacts, no interpreter, no stack — that is all a parked
/// agent costs, which is what lets a server hold 100k of them. The first
/// slice warms it up (environment + interpreter + entry frame); every
/// slice after that resumes the parked call stack inside the
/// interpreter. When a slice returns [`SliceOutcome::Done`] the task
/// performs exactly what the old per-agent thread did after `run()`:
/// fuel accounting, eviction-before-report, and the outcome dispatch.
struct AgentTask {
    shared: Arc<Shared>,
    domain: DomainId,
    credentials: Credentials,
    /// Entry function name (from the image; needed for error texts).
    entry: String,
    /// The unverified module, kept for re-packaging on `go`.
    module: Module,
    hop: u64,
    run_as: Urn,
    admission_ctx: SpanContext,
    state: TaskState,
}

enum TaskState {
    /// Admitted, never run: image-only residency.
    Cold {
        verified: Arc<VerifiedModule>,
        globals: Vec<Value>,
        arg: Vec<u8>,
        authorization: Rights,
    },
    /// Executing or suspended mid-run; the interpreter holds the parked
    /// call stack between slices.
    Warm {
        env: Box<AgentEnv>,
        interp: Box<Interpreter>,
    },
    /// Finished (reported/migrated); only observed transiently.
    Done,
}

impl Task for AgentTask {
    fn run_slice(&mut self) -> bool {
        if matches!(self.state, TaskState::Cold { .. }) {
            let TaskState::Cold {
                verified,
                globals,
                arg,
                authorization,
            } = std::mem::replace(&mut self.state, TaskState::Done)
            else {
                unreachable!("state checked above");
            };
            let mut env = AgentEnv::new(
                Arc::clone(&self.shared),
                self.domain,
                self.run_as.clone(),
                self.credentials.clone(),
                authorization,
                self.admission_ctx,
            );
            env.set_module(Arc::clone(&verified));
            let mut interp = Interpreter::new(verified, self.shared.vm_limits);
            if !interp.restore_globals(globals) {
                // Evict before reporting: once the home site sees a
                // report, this server must already show no residue for
                // the agent.
                let _ = self.shared.domains.evict(DomainId::SERVER, self.domain);
                self.shared.report_home(
                    &self.run_as,
                    &self.credentials,
                    ReportStatus::Refused("global mismatch".into()),
                    self.parent(),
                    Some((self.run_as.clone(), self.hop)),
                );
                return true;
            }
            // By convention an empty entry argument means "the current
            // server's name"; a dispatching parent may have chosen a
            // payload instead.
            let entry_arg = if arg.is_empty() {
                Value::str(self.shared.name().to_string())
            } else {
                Value::Bytes(arg)
            };
            interp.start(&self.entry, vec![entry_arg]);
            self.state = TaskState::Warm {
                env: Box::new(env),
                interp: Box::new(interp),
            };
        }
        let slice_fuel = self.shared.sched.slice_fuel();
        let TaskState::Warm { env, interp } = &mut self.state else {
            return true; // Done: defensive, a finished task is never requeued
        };
        match interp.run_slice(slice_fuel, &mut **env) {
            SliceOutcome::Yielded => self.try_hibernate(),
            SliceOutcome::Done(outcome) => {
                let TaskState::Warm { env, interp } =
                    std::mem::replace(&mut self.state, TaskState::Done)
                else {
                    unreachable!("state checked above");
                };
                self.complete(*env, *interp, outcome);
                true
            }
        }
    }

    fn journal(&self) -> &Arc<Journal> {
        &self.shared.journal
    }

    fn is_warm(&self) -> bool {
        matches!(self.state, TaskState::Warm { .. })
    }
}

impl AgentTask {
    fn parent(&self) -> Option<(TraceId, SpanId)> {
        Some((self.admission_ctx.trace, self.admission_ctx.span))
    }

    /// Spills this agent to the bundle store when it is demonstrably
    /// idle — enough consecutive empty mail polls, no live proxies whose
    /// leases would silently expire, no pending migration. Returns `true`
    /// (task done, never requeued) when the agent hibernated; the bundle
    /// holds everything [`Shared::wake_agent`] needs, the domain stays
    /// admitted (the agent is still *resident*, just not *running*), and
    /// the mailbox stays so late mail queues across the gap.
    fn try_hibernate(&mut self) -> bool {
        let requested = self.shared.hibernate_requests.lock().contains(&self.run_as);
        {
            let TaskState::Warm { env, .. } = &self.state else {
                return false;
            };
            // Safety gates apply unconditionally: live proxies would
            // silently expire in the bundle, and a pending migration
            // must run to completion.
            if env.binding_count() != 0 || env.pending_go().is_some() {
                return false;
            }
            // A control-plane request bypasses the idle-miss threshold
            // (and works even when auto-hibernation is off); otherwise
            // the agent must be demonstrably idle.
            if !requested {
                let Some(threshold) = self.shared.hibernate_after_misses else {
                    return false;
                };
                if env.mail_misses() < threshold {
                    return false;
                }
            }
        }
        let t0 = Instant::now();
        let TaskState::Warm { env, interp } = std::mem::replace(&mut self.state, TaskState::Done)
        else {
            unreachable!("state checked above");
        };
        let (rng_state, children, last_sender) = env.export_session();
        let bundle = crate::bundle::AgentBundle {
            agent: self.run_as.clone(),
            hop: self.hop,
            credentials: self.credentials.clone(),
            image: AgentImage {
                module: self.module.clone(),
                globals: interp.globals().to_vec(),
                entry: self.entry.clone(),
            },
            arg: Vec::new(),
            ctx: self.admission_ctx,
            warm: Some(crate::bundle::WarmState {
                interp: interp.export_state(),
                rng_state,
                children,
                last_sender,
            }),
        };
        match self.shared.bundles.put(&bundle) {
            Ok(bytes) => {
                self.shared.hibernate_requests.lock().remove(&self.run_as);
                self.shared.journal.append(Event::AgentHibernated {
                    agent: self.run_as.clone(),
                    hop: self.hop,
                    bytes: bytes as u64,
                });
                self.shared
                    .journal
                    .histos()
                    .record(HistoPath::HibernateLatency, t0.elapsed().as_nanos() as u64);
                // Mail may have been delivered between the last empty
                // poll and the spill: re-check now that the bundle is
                // visible. `take` is atomic, so this self-wake and any
                // concurrent deliverer's wake revive exactly one copy.
                if self.shared.has_mail(&self.run_as) {
                    self.shared.wake_agent(&self.run_as);
                }
                true
            }
            Err(_) => {
                // Spill failed (disk store trouble): keep running warm.
                self.state = TaskState::Warm { env, interp };
                false
            }
        }
    }

    /// Everything that happens after the agent's last instruction:
    /// identical to the tail of the old per-agent-thread `run_agent`.
    fn complete(&self, env: AgentEnv, interp: Interpreter, outcome: ExecOutcome) {
        let shared = &self.shared;
        let credentials = &self.credentials;
        let run_as = &self.run_as;
        let (domain, hop) = (self.domain, self.hop);
        let parent = self.parent();
        // The WAL admission this stay's outcome settles, resolved when
        // the outcome's frame (report or onward transfer) is acked.
        let custody = || Some((run_as.clone(), hop));

        // Account fuel against the domain quota (for status queries; the
        // interpreter's own limit already bounded the run).
        let _ = shared
            .domains
            .charge_fuel(DomainId::SERVER, domain, interp.fuel_used());

        // Departure happens BEFORE any completion report or onward transfer:
        // the home site (or next hop) learning the agent's fate must
        // happen-after this server has cleared its residue, so "all reports
        // in" implies "no domains left" — the isolation invariant X12 checks.
        // Installed resources stay.
        shared.mailbox_shard(run_as).lock().remove(run_as);
        let _ = shared.domains.evict(DomainId::SERVER, domain);

        match outcome {
            ExecOutcome::Finished(v) => {
                shared.report_home(
                    run_as,
                    credentials,
                    ReportStatus::Completed(v.display_lossy()),
                    parent,
                    custody(),
                );
            }
            ExecOutcome::HostStopped { .. } => {
                let pending = env.pending_go().cloned();
                match pending {
                    Some(go) => {
                        // Re-package: same code, current globals, new entry.
                        let image = AgentImage {
                            module: self.module.clone(),
                            globals: interp.globals().to_vec(),
                            entry: go.entry,
                        };
                        if image.validate().is_err() {
                            shared.report_home(
                                run_as,
                                credentials,
                                ReportStatus::Failed(format!(
                                    "go: entry {:?} missing or misshapen",
                                    image.entry
                                )),
                                parent,
                                custody(),
                            );
                        } else {
                            shared.stats.transfers_out.fetch_add(1, Ordering::Relaxed);
                            shared.journal.append(Event::AgentDispatched {
                                agent: run_as.clone(),
                                dest: go.dest.clone(),
                            });
                            // The onward leg is a sibling of the agent's
                            // other on-server spans: a fresh transfer span
                            // under this hop's admission.
                            let msg = Message::Transfer {
                                run_as: run_as.clone(),
                                credentials: credentials.clone(),
                                image,
                                hop: hop + 1,
                                arg: Vec::new(),
                                ctx: self.admission_ctx.child(shared.journal.mint_span()),
                                sent_ns: shared.clock_now(),
                            };
                            // go_tour's itinerary tail rides along as the
                            // dead-stop recovery plan; plain go has none.
                            if let Err(e) = shared.send_transfer(
                                &go.dest,
                                msg,
                                run_as.clone(),
                                hop + 1,
                                go.fallbacks.clone(),
                                credentials.clone(),
                                custody(),
                            ) {
                                shared.report_home(
                                    run_as,
                                    credentials,
                                    ReportStatus::Failed(format!(
                                        "go toward {} failed: {e}",
                                        go.dest
                                    )),
                                    parent,
                                    custody(),
                                );
                            }
                        }
                    }
                    None => {
                        shared.report_home(
                            run_as,
                            credentials,
                            ReportStatus::Failed("host stop without destination".into()),
                            parent,
                            custody(),
                        );
                    }
                }
            }
            ExecOutcome::Trapped { kind, func, ip } => {
                shared.report_home(
                    run_as,
                    credentials,
                    ReportStatus::Failed(format!("trap at fn#{func}@{ip}: {kind}")),
                    parent,
                    custody(),
                );
            }
            ExecOutcome::OutOfFuel => {
                shared.report_home(
                    run_as,
                    credentials,
                    ReportStatus::QuotaExceeded("instruction fuel exhausted".into()),
                    parent,
                    custody(),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: `Duration * u32` aborts on overflow in both debug and
    /// release. A generously configured `ack_grace` crossed with the
    /// per-attempt doubling used to do exactly that around attempt 11;
    /// now both the multiplication and the result saturate at the
    /// ceiling.
    #[test]
    fn ack_grace_backoff_saturates_instead_of_panicking() {
        let policy = RetryPolicy {
            ack_grace: Duration::from_secs(u64::MAX / 2),
            ..RetryPolicy::default()
        };
        for attempt in [0, 1, 2, 10, 11, 12, 31, 32, 64, u32::MAX] {
            assert_eq!(policy.grace(attempt), MAX_ACK_GRACE);
        }
    }

    /// The intended shape below the ceiling: doubles per attempt, factor
    /// capped at 2^10, absolute wait capped at [`MAX_ACK_GRACE`].
    #[test]
    fn ack_grace_doubles_then_hits_both_ceilings() {
        let policy = RetryPolicy {
            ack_grace: Duration::from_millis(10),
            ..RetryPolicy::default()
        };
        assert_eq!(policy.grace(1), Duration::from_millis(10));
        assert_eq!(policy.grace(2), Duration::from_millis(20));
        assert_eq!(policy.grace(5), Duration::from_millis(160));
        // The doubling factor freezes at 2^10...
        assert_eq!(policy.grace(11), Duration::from_millis(10_240));
        assert_eq!(policy.grace(64), Duration::from_millis(10_240));
        // ...and a wider base clamps to the one-minute ceiling instead.
        let wide = RetryPolicy {
            ack_grace: Duration::from_secs(1),
            ..RetryPolicy::default()
        };
        assert_eq!(wide.grace(10), MAX_ACK_GRACE);
    }
}
