//! The Ajanta agent-server runtime: hosting, migration, itineraries.
//!
//! This crate assembles the paper's Fig. 1 out of the lower layers: an
//! [`AgentServer`] runs as a thread, accepts agents over the simulated
//! network, gives each a protection domain and an **agent environment**
//! (the `host` reference of Section 4), and executes it under the
//! server's reference monitor, policy, and quotas.
//!
//! * [`messages`] — the server-to-server protocol messages (transfer,
//!   reports, agent-to-agent mail), carried in sealed datagrams.
//! * [`directory`] — the certificate directory servers use to find each
//!   other's keys (the PKI lookup the paper abstracts).
//! * [`vmres`] — resources implemented *by agent bytecode*: what makes
//!   the paper's dynamic server extension (Section 5.5) real — an agent
//!   installs a resource, dies, and later agents call it.
//! * [`env`] — the agent environment: `go`, `get_resource`, proxy
//!   invocation, messaging, logging — every primitive mediated.
//! * [`bundle`] — durable agent state: the serialized bundle and the
//!   store hibernated agents spill to.
//! * [`wal`] — the admission write-ahead log a restarted server replays
//!   so in-flight agents survive a crash.
//! * [`server`] — the server proper plus its control handle.
//! * [`owner`] — the owner-side application endpoint that mints
//!   credentials and launches agents.
//! * [`itinerary`] — helpers for the itinerary encoding agents carry.
//! * [`world`] — a test/experiment harness that wires up a CA, N servers,
//!   a directory and owners in one call.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bundle;
pub mod control;
pub mod directory;
pub mod env;
pub mod itinerary;
pub mod messages;
pub mod multiproc;
pub mod owner;
pub mod sched;
pub mod server;
pub mod vmres;
pub mod wal;
pub mod world;

pub use bundle::{AgentBundle, BundleStore, WarmState, BUNDLE_VERSION};
pub use control::{
    AgentDetail, AgentEntry, AgentState, ControlClient, ControlRequest, ControlResponse,
    ControlServer, JournalEntry, JournalFollower, JournalPage, ServerStatus, CONTROL_VERSION,
};
pub use directory::Directory;
pub use itinerary::{Itinerary, ItineraryError};
pub use messages::{AgentStatus, Message, Report, ReportStatus};
pub use multiproc::{
    derive_world, run_child, run_parent, ChildOpts, KillPlan, SmokeOpts, SmokeReport,
};
pub use owner::Owner;
pub use sched::{SchedDepths, Scheduler, DEFAULT_SLICE_FUEL};
pub use server::{
    AgentServer, ControlView, QueryError, RetryPolicy, SecurityEvent, ServerConfig, ServerHandle,
};
pub use vmres::VmResource;
pub use wal::{AdmissionWal, WalRecord, WalRecovery};
pub use world::{TransportMode, World};

// Telemetry types surface through the runtime so experiments and
// examples can match on journal events without a direct core import.
pub use ajanta_core::telemetry::{
    Counter, CountersSnapshot, Event, Histo, HistoPath, HistoSet, HistoSnapshot, Journal, Record,
    RejectKind, Severity, SpanContext, SpanId, SpanKind, TelemetrySnapshot, TraceId,
};
pub use ajanta_core::trace::{scan_anomalies, Anomaly, SpanRec, TraceForest, TraceRecord};
