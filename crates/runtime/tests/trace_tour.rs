//! Acceptance test for the causal tracing layer: a 32-agent tour over a
//! link dropping 20% of all frames must still reconstruct into complete
//! trace trees — every span reachable from its tour's root dispatch,
//! zero orphans — with retries attached as children of the transfer
//! they re-drove, and all five latency histograms non-degenerate.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ajanta_core::{BoundedBuffer, Guarded, ProxyPolicy, Rights};
use ajanta_naming::Urn;
use ajanta_net::LinkFault;
use ajanta_runtime::itinerary::Itinerary;
use ajanta_runtime::{
    scan_anomalies, Anomaly, Counter, HistoPath, ReportStatus, RetryPolicy, SpanKind, TraceForest,
    World,
};
use ajanta_vm::{assemble, AgentImage, Value};

/// A touring agent that, at every stop, binds the local `jobs` buffer,
/// puts one item into it, and moves on — so each hop produces Bind and
/// Access spans under that hop's Admission, not just transfer traffic.
const TRACED_TOURIST: &str = r#"
    module tracetour
    import env.go_tour (bytes, bytes) -> int
    import env.itin_tail (bytes) -> bytes
    import env.get_resource (bytes) -> int
    import env.invoke (int, bytes, bytes) -> bytes
    import env.args_b (bytes) -> bytes
    global itin: bytes
    global hops: int
    data entry = "run"
    data rname = "ajn://tour.org/resource/jobs"
    data mput = "put"
    data item = "trace-probe"

    func run(arg: bytes) -> int
      locals full: bytes, h: int
      gload hops
      push 1
      add
      gstore hops
      pushd rname
      hostcall env.get_resource
      store h
      load h
      pushd mput
      pushd item
      hostcall env.args_b
      hostcall env.invoke
      drop
      gload itin
      blen
      jz done
      gload itin
      store full
      gload itin
      hostcall env.itin_tail
      gstore itin
      load full
      pushd entry
      hostcall env.go_tour
      drop
      push 0
      ret
    done:
      gload hops
      ret
"#;

fn tourist_image(tour: &Itinerary) -> AgentImage {
    let (_, rest) = tour.clone().next_stop();
    let module = assemble(TRACED_TOURIST).expect("tourist assembles");
    let image = AgentImage {
        module,
        globals: vec![Value::Bytes(rest.encode()), Value::Int(0)],
        entry: "run".into(),
    };
    image.validate().expect("tourist image consistent");
    image
}

/// Collects reports at `home` until `agents` distinct agents have
/// reported or the deadline passes.
fn wait_distinct(
    home: &ajanta_runtime::ServerHandle,
    agents: usize,
    timeout: Duration,
) -> Vec<ajanta_runtime::Report> {
    let deadline = Instant::now() + timeout;
    let mut want = agents;
    loop {
        let reports = home.wait_reports(want, deadline.saturating_duration_since(Instant::now()));
        let distinct: HashSet<_> = reports.iter().map(|r| r.agent.clone()).collect();
        if distinct.len() >= agents || Instant::now() >= deadline {
            return reports;
        }
        want = reports.len() + 1;
    }
}

#[test]
fn lossy_tour_reconstructs_complete_trace_trees() {
    const AGENTS: usize = 32;
    const STOPS: usize = 5;
    let mut world = World::builder(6)
        .retry(RetryPolicy {
            max_attempts: 14,
            ack_grace: Duration::from_millis(10),
            ..RetryPolicy::default()
        })
        .journal_capacity(1 << 16)
        .build();
    let fault = Arc::new(LinkFault::new(0xFA17_0001, 0.20));
    world.net.set_adversary(Some(fault.clone()));

    // Every visited server hosts its own `jobs` buffer under the same
    // URN, so the carried resource name resolves at each stop.
    for i in 1..=STOPS {
        let buf = BoundedBuffer::new(
            Urn::resource("tour.org", ["jobs"]).unwrap(),
            Urn::owner("tour.org", ["admin"]).unwrap(),
            2 * AGENTS,
        );
        world
            .server(i)
            .register_resource(Guarded::new(buf, ProxyPolicy::default()))
            .unwrap();
    }

    let mut owner = world.owner("traveler");
    let home = world.server(0).name().clone();
    let tour = Itinerary::new((1..=STOPS).map(|i| world.server(i).name().clone()));
    let mut launched = HashSet::new();
    for _ in 0..AGENTS {
        let agent = owner.next_agent_name("tracer");
        launched.insert(agent.clone());
        let creds = owner.credentials(agent, home.clone(), Rights::all(), u64::MAX);
        world
            .server(0)
            .launch_tour(&tour, creds, tourist_image(&tour));
    }

    let reports = wait_distinct(world.server(0), AGENTS, Duration::from_secs(120));
    let reported: HashSet<_> = reports.iter().map(|r| r.agent.clone()).collect();
    assert_eq!(reported, launched, "every agent must report home");
    let completed = reports
        .iter()
        .filter(|r| matches!(r.status, ReportStatus::Completed(_)))
        .count();
    assert!(completed > 0, "at least some tours must complete cleanly");
    assert!(fault.dropped_count() > 0, "adversary never dropped a frame");

    // Quiesce before exporting: a Transfer span is journaled when its
    // leg resolves (ack or dead-stop), so wait for every in-flight
    // reliable send to drain — otherwise the export can race a leg whose
    // Retry spans are journaled but whose Transfer span is still open.
    // Quiescence = zero pending sends AND no new spans across a settle
    // window (an entry leaves the pending map a beat before its span is
    // appended, so the count alone can lie for a few microseconds).
    let drain_deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let pending: usize = world.servers.iter().map(|s| s.pending_send_count()).sum();
        let spans: u64 = world
            .servers
            .iter()
            .map(|s| s.journal().counter(Counter::SpansRecorded))
            .sum();
        std::thread::sleep(Duration::from_millis(10));
        let pending_after: usize = world.servers.iter().map(|s| s.pending_send_count()).sum();
        let spans_after: u64 = world
            .servers
            .iter()
            .map(|s| s.journal().counter(Counter::SpansRecorded))
            .sum();
        if pending == 0 && pending_after == 0 && spans == spans_after {
            break;
        }
        assert!(
            Instant::now() < drain_deadline,
            "reliable sends never drained"
        );
    }

    // Reconstruct: merge every server's JSONL export and build the
    // forest, exactly as `tracectl` would offline.
    let jsonl = world.export_traces();
    let records = ajanta_core::trace::parse_jsonl(&jsonl).expect("exported JSONL parses");
    let forest = TraceForest::build(records);

    // One trace per launched agent, and — the tentpole invariant — every
    // span in every journal links back to its root: zero orphans.
    assert_eq!(forest.traces.len(), AGENTS, "one trace per tour");
    for (trace, tree) in &forest.traces {
        for &i in &tree.orphans {
            let s = &tree.spans[i];
            eprintln!(
                "ORPHAN trace={trace} span={} parent={:?} kind={} server={} detail={}",
                s.span, s.parent, s.kind, s.server, s.detail
            );
        }
    }
    assert_eq!(
        forest.orphan_count(),
        0,
        "a complete journal merge must leave no orphan spans"
    );
    for anomaly in scan_anomalies(&forest, 14) {
        assert!(
            !matches!(anomaly, Anomaly::OrphanSpan { .. }),
            "unexpected orphan anomaly: {anomaly}"
        );
    }

    // Retries must have fired under 20% loss, and every Retry span must
    // hang off the Transfer leg it re-drove.
    let mut retries = 0usize;
    for tree in forest.traces.values() {
        for span in &tree.spans {
            if span.kind == SpanKind::Retry {
                retries += 1;
                let parent = span.parent.expect("retry spans are never roots");
                let parent = tree.span(parent).expect("retry parent resolves");
                assert!(
                    matches!(parent.kind, SpanKind::Transfer | SpanKind::Report),
                    "retry must be a child of the leg it re-drove, got {}",
                    parent.kind
                );
            }
        }
    }
    assert!(retries > 0, "20% loss must produce Retry spans");

    // Every trace saw admissions, binds, and accesses along the tour.
    for (trace, tree) in &forest.traces {
        let kinds: HashSet<SpanKind> = tree.spans.iter().map(|s| s.kind).collect();
        for want in [
            SpanKind::Dispatch,
            SpanKind::Transfer,
            SpanKind::Admission,
            SpanKind::Bind,
            SpanKind::Access,
            SpanKind::Report,
        ] {
            assert!(kinds.contains(&want), "trace {trace} is missing {want}");
        }
    }

    // All five hot-path histograms are non-degenerate once merged across
    // the world: populated, ordered quantiles, a real maximum.
    for path in [
        HistoPath::ProxyCheck,
        HistoPath::Bind,
        HistoPath::TransferRtt,
        HistoPath::RetryBackoff,
        HistoPath::HopLatency,
    ] {
        let snap = world.merged_histos(path);
        let (p50, p99) = (snap.quantile(0.50), snap.quantile(0.99));
        assert!(snap.count > 0, "{} histogram is empty", path.name());
        assert!(snap.max > 0, "{} histogram max is zero", path.name());
        assert!(p50 > 0, "{} p50 degenerate", path.name());
        assert!(
            p99 >= p50,
            "{} quantiles out of order: p99 {p99} < p50 {p50}",
            path.name()
        );
    }
    world.shutdown();
}
