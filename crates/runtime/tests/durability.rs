//! Durable-agent integration tests: hibernation (idle agents spill to
//! the bundle store and wake on mail), and the admission WAL (custody
//! resolves on ack; a restarted server replays unresolved admissions
//! and loses no agents).

use std::path::PathBuf;
use std::time::Duration;

use ajanta_core::Rights;
use ajanta_naming::Urn;
use ajanta_runtime::wal::{AdmissionWal, WalRecord};
use ajanta_runtime::{AgentBundle, WalRecovery};
use ajanta_runtime::{Counter, Event, ReportStatus, SpanContext, SpanId, TraceId, World};
use ajanta_vm::{assemble, AgentImage, Value};

const WAIT: Duration = Duration::from_secs(20);

fn image(src: &str, globals: Vec<Value>, entry: &str) -> AgentImage {
    let module = assemble(src).expect("test agent assembles");
    let image = AgentImage {
        module,
        globals,
        entry: entry.into(),
    };
    image.validate().expect("test agent image is consistent");
    image
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ajanta-durability-{tag}-{}", std::process::id()))
}

/// An agent that polls its mailbox until something arrives, then
/// returns the payload length. With hibernation enabled it idles
/// through enough empty polls to be spilled.
const MAIL_WAITER: &str = r#"
    module waiter
    import env.recv () -> bytes
    global tries: int

    func run(arg: bytes) -> int
      locals msg: bytes
    loop:
      hostcall env.recv
      store msg
      load msg
      blen
      jz again
      load msg
      blen
      ret
    again:
      gload tries
      push 1
      add
      gstore tries
      gload tries
      push 5000000
      lt
      jz giveup
      jump loop
    giveup:
      push -1
      ret
"#;

#[test]
fn idle_agent_hibernates_and_wakes_on_mail() {
    let mut world = World::builder(2).hibernation(16).build();
    let mut owner = world.owner("kay");
    let agent = owner.next_agent_name("waiter");
    let home = world.server(0).name().clone();
    let creds = owner.credentials(agent.clone(), home, Rights::all(), u64::MAX);
    world.server(0).launch(
        world.server(1).name().clone(),
        creds,
        image(MAIL_WAITER, vec![Value::Int(0)], "run"),
    );

    // The waiter polls an empty mailbox; after its first yielded slice
    // (with well over 16 misses accumulated) it must spill.
    let deadline = std::time::Instant::now() + WAIT;
    while world.server(1).hibernated_agents() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(
        world.server(1).hibernated_agents(),
        1,
        "idle mail-poller must hibernate"
    );
    assert!(
        world.server(1).hibernated_bytes() > 0,
        "a hibernated agent has a serialized footprint"
    );
    // The agent is still resident (its stay, domain, and mailbox
    // survive hibernation) — only its scheduler presence is gone.
    assert_eq!(world.server(1).resident_agents(), 1);

    // Mail wakes it: the bundle is consumed, the interpreter resumes
    // mid-loop, recv returns the payload, and the agent completes.
    let from = Urn::agent("users.org", ["kay", "0"]).unwrap();
    assert!(world
        .server(1)
        .deliver_mail(from, agent.clone(), b"wake up!".to_vec()));

    let reports = world.server(0).wait_reports(1, WAIT);
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].agent, agent);
    assert_eq!(
        reports[0].status,
        ReportStatus::Completed("8".into()),
        "the woken agent must resume exactly where it slept and read the mail"
    );

    // Exactly one hibernate/wake cycle; a second wake finds no bundle.
    assert_eq!(world.server(1).hibernated_agents(), 0);
    assert!(!world.server(1).wake(&agent), "double wake must be a no-op");
    let journal = world.server(1).journal();
    assert_eq!(journal.counter(Counter::AgentsHibernated), 1);
    assert_eq!(journal.counter(Counter::AgentsWoken), 1);
    let snapshot = journal.snapshot();
    assert!(snapshot
        .iter()
        .any(|r| matches!(&r.event, Event::AgentHibernated { agent: a, .. } if *a == agent)));
    assert!(snapshot
        .iter()
        .any(|r| matches!(&r.event, Event::AgentWoken { agent: a, .. } if *a == agent)));
    world.shutdown();
}

/// With a WAL enabled, a completed visit leaves the log fully settled:
/// at least one `Admit` (logged before the admission ack left) and a
/// matching `Resolve` (logged when the report ack arrived), with
/// nothing unresolved.
#[test]
fn wal_settles_admit_and_resolve_for_a_completed_visit() {
    let dir = scratch("settle");
    let _ = std::fs::remove_dir_all(&dir);
    let src = r#"
        module hello
        func run(arg: bytes) -> int
          push 41
          push 1
          add
          ret
    "#;
    let mut world = World::builder(2).wal_dir(&dir).build();
    let mut owner = world.owner("kay");
    let agent = owner.next_agent_name("hello");
    let home = world.server(0).name().clone();
    let creds = owner.credentials(agent.clone(), home, Rights::all(), u64::MAX);
    world.server(0).launch(
        world.server(1).name().clone(),
        creds,
        image(src, vec![], "run"),
    );
    let reports = world.server(0).wait_reports(1, WAIT);
    assert_eq!(reports[0].status, ReportStatus::Completed("42".into()));

    // The Resolve lands when the report ack makes it back — poll for
    // the log to settle rather than racing it.
    let wal_path = dir.join("site1.wal");
    let deadline = std::time::Instant::now() + WAIT;
    let recovery = loop {
        let records = AdmissionWal::replay(&wal_path).expect("wal replays");
        let has_admit = records.iter().any(|r| matches!(r, WalRecord::Admit(_)));
        let recovery = AdmissionWal::recover(records);
        if (has_admit && recovery.unresolved.is_empty()) || std::time::Instant::now() >= deadline {
            break recovery;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    assert!(
        recovery.resolved.iter().any(|(a, _)| *a == agent),
        "custody for {agent} must resolve once its report is acked"
    );
    assert!(
        recovery.unresolved.is_empty(),
        "a clean run leaves no unresolved admissions: {:?}",
        recovery.unresolved.len()
    );
    world.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The crash-recovery half, in-process and fully deterministic: a WAL
/// holding an unresolved `Admit` (written as if by a previous
/// incarnation that died before handing the agent on) is replayed at
/// server startup — the agent is re-admitted through the normal
/// pipeline, runs, and reports home. Zero lost agents, and replay is
/// visible as `WalReplayed` telemetry.
#[test]
fn wal_replay_readmits_unresolved_agents_on_restart() {
    let dir = scratch("replay");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let src = r#"
        module phoenix
        func run(arg: bytes) -> int
          push 7
          ret
    "#;

    // Incarnation one: same builder seed as the restart below, so the
    // credentials it minted verify against the restarted world's roots.
    // It "crashes" having admitted the agent but never resolved it.
    let (agent, bundle_bytes) = {
        let mut world = World::builder(2).build();
        let mut owner = world.owner("kay");
        let agent = owner.next_agent_name("phoenix");
        let home = world.server(0).name().clone();
        let creds = owner.credentials(agent.clone(), home, Rights::all(), u64::MAX);
        let bundle = AgentBundle {
            agent: agent.clone(),
            hop: 1,
            credentials: creds,
            image: image(src, vec![], "run"),
            arg: Vec::new(),
            ctx: SpanContext::root(TraceId(0xD00D), SpanId(1)),
            warm: None,
        };
        world.shutdown();
        (agent, bundle)
    };
    let wal = AdmissionWal::open(dir.join("site1.wal")).expect("wal opens");
    wal.append(&WalRecord::Admit(Box::new(bundle_bytes)))
        .expect("admit appends");
    drop(wal);

    // Incarnation two: same seed, now with the WAL — startup replay
    // must re-admit the agent, which runs and reports home.
    let world = World::builder(2).wal_dir(&dir).build();
    let reports = world.server(0).wait_reports(1, WAIT);
    assert_eq!(reports.len(), 1, "the replayed agent must not be lost");
    assert_eq!(reports[0].agent, agent);
    assert_eq!(reports[0].status, ReportStatus::Completed("7".into()));
    let journal = world.server(1).journal();
    assert_eq!(journal.counter(Counter::WalReplays), 1);
    assert!(journal
        .snapshot()
        .iter()
        .any(|r| matches!(&r.event, Event::WalReplayed { agent: a, hop: 1 } if *a == agent)));

    // And the log settles: the replayed admission resolves on the
    // report ack, so a second restart would replay nothing.
    let deadline = std::time::Instant::now() + WAIT;
    loop {
        let records = AdmissionWal::replay(dir.join("site1.wal")).expect("wal replays");
        let WalRecovery { unresolved, .. } = AdmissionWal::recover(records);
        if unresolved.is_empty() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "replayed admission never resolved"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    world.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
