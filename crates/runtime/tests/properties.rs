//! Property tests for the runtime's migration plumbing: the itinerary
//! encoding is total and round-trips, and admission stays idempotent no
//! matter how aggressively the network duplicates transfer frames.

use std::sync::Arc;
use std::time::Duration;

use ajanta_core::Rights;
use ajanta_naming::Urn;
use ajanta_net::Replayer;
use ajanta_runtime::itinerary::Itinerary;
use ajanta_runtime::{Counter, Event, World};
use ajanta_vm::{assemble, AgentImage};
use proptest::prelude::*;

/// A strategy for canonical server URNs: lowercase hostnames, short path.
fn server_urn() -> impl Strategy<Value = Urn> {
    ("[a-z]{1,8}", "[a-z]{1,6}").prop_map(|(host, seg)| {
        Urn::server(format!("{host}.org"), [seg]).expect("generated server urn is canonical")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode ∘ decode is the identity on any itinerary, including after
    /// an arbitrary number of stops have been consumed.
    #[test]
    fn itinerary_roundtrips(stops in proptest::collection::vec(server_urn(), 0..8),
                            consumed in 0usize..10) {
        let mut it = Itinerary::new(stops);
        for _ in 0..consumed.min(it.stops().len()) {
            let (_, rest) = it.next_stop();
            it = rest;
        }
        let decoded = Itinerary::decode(&it.encode()).expect("own encoding decodes");
        prop_assert_eq!(decoded, it);
    }

    /// decode is total: arbitrary bytes either parse or produce a typed
    /// error naming the failing line — never a panic, and whatever parses
    /// re-encodes to something that parses identically.
    #[test]
    fn itinerary_decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        match Itinerary::decode(&bytes) {
            Ok(it) => {
                let again = Itinerary::decode(&it.encode()).expect("re-encoding decodes");
                prop_assert_eq!(again, it);
            }
            Err(e) => {
                // The error is renderable and names a cause.
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }

    /// Appending garbage after a valid itinerary is reported against the
    /// first garbage line, not blamed on the valid prefix.
    #[test]
    fn trailing_garbage_is_located(stops in proptest::collection::vec(server_urn(), 1..5)) {
        let good = stops.len();
        let mut bytes = Itinerary::new(stops).encode();
        bytes.extend_from_slice(b"\n@@not-a-urn@@");
        match Itinerary::decode(&bytes) {
            Err(ajanta_runtime::ItineraryError::BadStop { line, .. }) => {
                prop_assert_eq!(line, good);
            }
            other => prop_assert!(false, "expected BadStop, got {:?}", other),
        }
    }
}

proptest! {
    // Full-world cases are expensive (key generation, threads); a few
    // seeds exercise distinct frame interleavings.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A network that re-injects every frame a second time (the
    /// `InjectAfter` replayer) never causes a double admission or a
    /// duplicate report: retried/replayed copies of a (agent, hop)
    /// transfer are acknowledged but not re-admitted.
    #[test]
    fn replayed_transfers_admit_and_report_once(seed in any::<u64>()) {
        let mut world = World::builder(2).seed(seed).build();
        let replayer = Arc::new(Replayer::new());
        world.net.set_adversary(Some(replayer.clone()));

        let src = r#"
            module once
            func run(arg: bytes) -> int
              push 7
              ret
        "#;
        let module = assemble(src).expect("assembles");
        let image = AgentImage { module, globals: vec![], entry: "run".into() };
        image.validate().expect("image consistent");

        let mut owner = world.owner("echo");
        let agent = owner.next_agent_name("once");
        let home = world.server(0).name().clone();
        let creds = owner.credentials(agent.clone(), home, Rights::all(), u64::MAX);
        world.server(0).launch(world.server(1).name().clone(), creds, image);

        let reports = world.server(0).wait_reports(1, Duration::from_secs(20));
        prop_assert_eq!(reports.len(), 1);
        prop_assert_eq!(&reports[0].agent, &agent);
        // Let any lagging replayed copies land before auditing.
        std::thread::sleep(Duration::from_millis(100));
        prop_assert!(replayer.replayed_count() > 0, "replayer saw traffic");
        prop_assert_eq!(world.server(1).journal().counter(Counter::AgentsAdmitted), 1);
        let mut admissions = Vec::new();
        for record in world.server(1).journal().snapshot() {
            if let Event::AgentAdmitted { agent, hop, .. } = record.event {
                admissions.push((agent, hop));
            }
        }
        prop_assert_eq!(admissions.len(), 1);
        prop_assert_eq!(world.server(0).reports().len(), 1);
        world.shutdown();
    }
}
