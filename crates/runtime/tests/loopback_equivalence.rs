//! Transport-seam equivalence: the same seeded tour produces identical
//! agent outcomes and equivalent journal lifecycles whether the world
//! runs over the in-process simulation or over real TCP sockets on
//! localhost. Timing (virtual vs wall nanoseconds) differs by design;
//! *what happened* must not.

use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

use ajanta_core::{BoundedBuffer, Guarded, ProxyPolicy, Rights};
use ajanta_naming::Urn;
use ajanta_runtime::itinerary::Itinerary;
use ajanta_runtime::{Event, RetryPolicy, TransportMode, World};
use ajanta_vm::{assemble, AgentImage, Value};

const AGENTS: usize = 8;
const STOPS: usize = 3;
const SEED: u64 = 0x10_0B_AC_4E;

/// Same touring agent as the trace-tour suite: binds the local `jobs`
/// buffer at every stop, puts one item, moves on, and returns its hop
/// count from the last stop — so the equivalence check covers transfer,
/// admission, bind, and access paths, not just migration.
const TOURIST: &str = r#"
    module tracetour
    import env.go_tour (bytes, bytes) -> int
    import env.itin_tail (bytes) -> bytes
    import env.get_resource (bytes) -> int
    import env.invoke (int, bytes, bytes) -> bytes
    import env.args_b (bytes) -> bytes
    global itin: bytes
    global hops: int
    data entry = "run"
    data rname = "ajn://tour.org/resource/jobs"
    data mput = "put"
    data item = "trace-probe"

    func run(arg: bytes) -> int
      locals full: bytes, h: int
      gload hops
      push 1
      add
      gstore hops
      pushd rname
      hostcall env.get_resource
      store h
      load h
      pushd mput
      pushd item
      hostcall env.args_b
      hostcall env.invoke
      drop
      gload itin
      blen
      jz done
      gload itin
      store full
      gload itin
      hostcall env.itin_tail
      gstore itin
      load full
      pushd entry
      hostcall env.go_tour
      drop
      push 0
      ret
    done:
      gload hops
      ret
"#;

fn tourist_image(tour: &Itinerary) -> AgentImage {
    let (_, rest) = tour.clone().next_stop();
    let module = assemble(TOURIST).expect("tourist assembles");
    let image = AgentImage {
        module,
        globals: vec![Value::Bytes(rest.encode()), Value::Int(0)],
        entry: "run".into(),
    };
    image.validate().expect("tourist image consistent");
    image
}

/// What one world run *did*, stripped of all timing: per-agent report
/// statuses, and per-agent sorted lifecycle events tagged with the
/// server that journaled them.
struct RunShape {
    outcomes: BTreeMap<String, Vec<String>>,
    lifecycle: BTreeMap<String, BTreeSet<String>>,
}

fn run_tour(mode: TransportMode) -> RunShape {
    let mut world = World::builder(STOPS + 1)
        .seed(SEED)
        .transport(mode)
        // Generous ack grace: neither virtual nor wall-clock latency
        // should ever trip a spurious dead-stop in a lossless run.
        .retry(RetryPolicy {
            ack_grace: Duration::from_millis(500),
            ..RetryPolicy::default()
        })
        .journal_capacity(1 << 14)
        .build();

    for i in 1..=STOPS {
        let buf = BoundedBuffer::new(
            Urn::resource("tour.org", ["jobs"]).unwrap(),
            Urn::owner("tour.org", ["admin"]).unwrap(),
            2 * AGENTS,
        );
        world
            .server(i)
            .register_resource(Guarded::new(buf, ProxyPolicy::default()))
            .unwrap();
    }

    let mut owner = world.owner("traveler");
    let home = world.server(0).name().clone();
    let tour = Itinerary::new((1..=STOPS).map(|i| world.server(i).name().clone()));
    let mut launched = BTreeSet::new();
    for _ in 0..AGENTS {
        let agent = owner.next_agent_name("hopper");
        launched.insert(agent.clone());
        let creds = owner.credentials(agent, home.clone(), Rights::all(), u64::MAX);
        world
            .server(0)
            .launch_tour(&tour, creds, tourist_image(&tour));
    }

    let deadline = Instant::now() + Duration::from_secs(90);
    let reports = loop {
        let reports = world
            .server(0)
            .wait_reports(AGENTS, deadline.saturating_duration_since(Instant::now()));
        let distinct: BTreeSet<_> = reports.iter().map(|r| r.agent.to_string()).collect();
        if distinct.len() >= AGENTS || Instant::now() >= deadline {
            break reports;
        }
    };

    let mut outcomes: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for r in &reports {
        outcomes
            .entry(r.agent.to_string())
            .or_default()
            .push(format!("{:?}", r.status));
    }
    for statuses in outcomes.values_mut() {
        statuses.sort();
    }

    // Project every server's journal down to the mode-independent
    // lifecycle facts: who was dispatched where, who was admitted at
    // which hop, who reported — each tagged with the journaling server.
    let mut lifecycle: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut push = |agent: &Urn, what: String| {
        lifecycle.entry(agent.to_string()).or_default().insert(what);
    };
    for server in &world.servers {
        let at = server.name().clone();
        for record in server.journal().snapshot() {
            match &record.event {
                Event::AgentDispatched { agent, dest } => {
                    push(agent, format!("{at} dispatched toward {dest}"));
                }
                Event::AgentAdmitted { agent, hop, .. } => {
                    push(agent, format!("{at} admitted hop {hop}"));
                }
                Event::AgentReported { agent, .. } => {
                    push(agent, format!("{at} recorded report"));
                }
                _ => {}
            }
        }
    }
    lifecycle.retain(|agent, _| launched.contains(&agent.parse::<Urn>().unwrap()));

    world.shutdown();
    RunShape {
        outcomes,
        lifecycle,
    }
}

#[test]
fn sim_and_tcp_worlds_agree_on_the_same_seeded_tour() {
    let sim = run_tour(TransportMode::Sim);
    let tcp = run_tour(TransportMode::Tcp);

    assert_eq!(sim.outcomes.len(), AGENTS, "sim world lost reports");
    assert_eq!(
        sim.outcomes, tcp.outcomes,
        "agent outcomes must not depend on the transport"
    );
    assert_eq!(
        sim.lifecycle, tcp.lifecycle,
        "journal lifecycles must not depend on the transport"
    );
    // And the shape is the expected one: every agent admitted once per
    // stop, dispatched from home, reported back home.
    for (agent, events) in &sim.lifecycle {
        let admissions = events.iter().filter(|e| e.contains("admitted")).count();
        assert_eq!(admissions, STOPS, "{agent}: {events:?}");
        assert!(events.iter().any(|e| e.contains("recorded report")));
    }
}
