//! Property tests for the durability layer: the `AgentBundle` encoding
//! round-trips exactly (warm or cold), decoding arbitrary bytes is
//! total, and WAL recovery is idempotent — replaying a log any number
//! of times admits each `(agent, hop)` at most once and never
//! resurrects a resolved admission. A torn tail (the crash the WAL
//! exists for) loses only the torn record, never the intact prefix.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use ajanta_core::credentials::CredentialsBuilder;
use ajanta_core::Rights;
use ajanta_crypto::cert::Certificate;
use ajanta_crypto::{DetRng, KeyPair};
use ajanta_naming::Urn;
use ajanta_runtime::wal::{AdmissionWal, WalRecord};
use ajanta_runtime::{AgentBundle, SpanContext, SpanId, TraceId, WarmState, BUNDLE_VERSION};
use ajanta_vm::{assemble, AgentImage, FrameState, InterpState, Value};
use ajanta_wire::Wire;
use proptest::prelude::*;

/// A fresh scratch path per proptest case (cases run concurrently).
fn scratch() -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("ajanta-wal-props-{}-{n}.log", std::process::id()))
}

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        proptest::collection::vec(any::<u8>(), 0..24).prop_map(Value::Bytes),
    ]
}

fn frame() -> impl Strategy<Value = FrameState> {
    (
        any::<u32>(),
        any::<u32>(),
        proptest::collection::vec(value(), 0..4),
        proptest::collection::vec(value(), 0..4),
    )
        .prop_map(|(func, ip, locals, stack)| FrameState {
            func,
            ip,
            locals,
            stack,
        })
}

fn warm_state() -> impl Strategy<Value = WarmState> {
    (
        proptest::collection::vec(value(), 0..4),
        proptest::collection::vec(frame(), 0..3),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec(any::<u8>(), 0..32),
    )
        .prop_map(
            |(
                globals,
                frames,
                (fuel_used, alloc_used, host_calls),
                rng_state,
                children,
                last_sender,
            )| {
                WarmState {
                    interp: InterpState {
                        globals,
                        fuel_used,
                        alloc_used,
                        host_calls,
                        frames,
                    },
                    rng_state,
                    children,
                    last_sender,
                }
            },
        )
}

/// A structurally valid bundle: real signed credentials (the decoder
/// parses the signature layout even though round-trip never verifies
/// it), a tiny assembled module, and arbitrary dynamic state.
fn bundle() -> impl Strategy<Value = AgentBundle> {
    (
        any::<u64>(),
        "[a-z]{1,8}",
        1u64..1000,
        proptest::collection::vec(any::<u8>(), 0..32),
        (any::<u64>(), any::<u64>()),
        proptest::option::of(warm_state()),
    )
        .prop_map(|(seed, name, hop, arg, (trace, span), warm)| {
            let mut rng = DetRng::new(seed);
            let ca = KeyPair::generate(&mut rng);
            let keys = KeyPair::generate(&mut rng);
            let owner = Urn::owner("x.org", [name.as_str()]).unwrap();
            let cert = Certificate::issue(
                owner.to_string(),
                keys.public,
                "ca",
                &ca,
                u64::MAX,
                1,
                &mut rng,
            );
            let credentials =
                CredentialsBuilder::new(Urn::agent("x.org", [name.as_str(), "0"]).unwrap(), owner)
                    .owner_chain(vec![cert])
                    .delegate(Rights::all())
                    .sign(&keys, &mut rng);
            let module = assemble(
                r#"
                    module tiny
                    func run(arg: bytes) -> int
                      push 1
                      ret
                "#,
            )
            .expect("fixture assembles");
            AgentBundle {
                agent: Urn::agent("x.org", [name.as_str(), "0"]).unwrap(),
                hop,
                credentials,
                image: AgentImage {
                    module,
                    globals: vec![],
                    entry: "run".into(),
                },
                arg,
                ctx: SpanContext::root(TraceId(trace), SpanId(span)),
                warm,
            }
        })
}

fn key(b: &AgentBundle) -> (Urn, u64) {
    (b.agent.clone(), b.hop)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// encode ∘ decode is the identity on any bundle — warm or cold,
    /// mid-call-stack or idle. This is the contract hibernation and
    /// WAL replay both stand on.
    #[test]
    fn agent_bundle_roundtrips(b in bundle()) {
        let bytes = b.to_bytes();
        let decoded = AgentBundle::from_bytes(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &b);
        // Re-encoding is canonical.
        prop_assert_eq!(decoded.to_bytes(), bytes);
    }

    /// Decoding is total: arbitrary bytes either parse or produce a
    /// typed error — never a panic.
    #[test]
    fn agent_bundle_decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        match AgentBundle::from_bytes(&bytes) {
            Ok(b) => {
                let again = AgentBundle::from_bytes(&b.to_bytes()).expect("re-encoding decodes");
                prop_assert_eq!(again, b);
            }
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    /// An unknown version byte is rejected up front with an error that
    /// names the version, not misparsed as the current layout.
    #[test]
    fn agent_bundle_rejects_unknown_versions(b in bundle(), v in any::<u8>()) {
        prop_assume!(v != BUNDLE_VERSION);
        let mut bytes = b.to_bytes();
        bytes[0] = v;
        match AgentBundle::from_bytes(&bytes) {
            Err(ajanta_wire::WireError::BadTag { ty, tag }) => {
                prop_assert!(ty.contains("version"), "error names the version field: {ty}");
                prop_assert_eq!(tag, v);
            }
            other => prop_assert!(false, "expected BadTag, got {:?}", other.map(|_| "Ok")),
        }
    }
}

proptest! {
    // Each case touches the filesystem; fewer, richer cases.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Recovery is idempotent under arbitrary log duplication: a log
    /// whose whole record sequence was appended `copies` times (the
    /// crash-during-replay shape) recovers each `(agent, hop)` at most
    /// once, and resolved keys never come back as unresolved.
    #[test]
    fn wal_recovery_is_idempotent(
        bundles in proptest::collection::vec(bundle(), 1..4),
        resolve_mask in proptest::collection::vec(any::<bool>(), 4),
        copies in 1usize..4,
    ) {
        // Distinct (agent, hop) keys; duplicate generated keys collapse.
        let mut seen = std::collections::BTreeSet::new();
        let bundles: Vec<_> = bundles
            .into_iter()
            .filter(|b| seen.insert(key(b)))
            .collect();

        let path = scratch();
        let wal = AdmissionWal::open(&path).expect("wal opens");
        for _ in 0..copies {
            for (i, b) in bundles.iter().enumerate() {
                wal.append(&WalRecord::Admit(Box::new(b.clone()))).expect("admit appends");
                if resolve_mask[i] {
                    let (agent, hop) = key(b);
                    wal.append(&WalRecord::Resolve { agent, hop }).expect("resolve appends");
                }
            }
        }
        drop(wal);

        let recovery = AdmissionWal::recover(AdmissionWal::replay(&path).expect("replays"));
        let unresolved: Vec<_> = recovery.unresolved.iter().map(key).collect();
        let resolved: std::collections::BTreeSet<_> = recovery.resolved.iter().cloned().collect();
        for (i, b) in bundles.iter().enumerate() {
            let k = key(b);
            if resolve_mask[i] {
                prop_assert!(resolved.contains(&k), "resolved key survives recovery");
                prop_assert!(!unresolved.contains(&k), "resolved key must not replay");
            } else {
                // An unresolved key replays exactly once no matter how
                // many copies of the log were concatenated.
                prop_assert_eq!(unresolved.iter().filter(|u| **u == k).count(), 1);
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    /// A torn tail — the file cut mid-record by a crash — loses only
    /// the torn record: replay still returns every intact record.
    #[test]
    fn wal_replay_tolerates_torn_tail(
        bundles in proptest::collection::vec(bundle(), 2..4),
        cut_seed in any::<usize>(),
    ) {
        let path = scratch();
        let wal = AdmissionWal::open(&path).expect("wal opens");
        let mut last_start = 0u64;
        for b in &bundles {
            last_start = std::fs::metadata(&path).expect("stat").len();
            wal.append(&WalRecord::Admit(Box::new(b.clone()))).expect("appends");
        }
        drop(wal);

        let full = std::fs::read(&path).expect("read log");
        let tail = full.len() - last_start as usize;
        // Cut somewhere inside the final record (1..tail bytes short).
        let cut = 1 + cut_seed % tail.max(1);
        let torn = &full[..full.len() - cut.min(tail)];
        std::fs::write(&path, torn).expect("write torn log");

        let records = AdmissionWal::replay(&path).expect("torn log still replays");
        // Only the torn record is lost.
        prop_assert_eq!(records.len(), bundles.len() - 1);
        for (record, b) in records.iter().zip(&bundles) {
            match record {
                WalRecord::Admit(got) => prop_assert_eq!(got.as_ref(), b),
                other => prop_assert!(false, "expected Admit, got {other:?}"),
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}
