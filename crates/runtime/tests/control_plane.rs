//! In-process control-plane integration: a two-server `World` fronted
//! by one `ControlServer` on an ephemeral TCP port. Every answer
//! obtained over the socket must match `serve_request` computed
//! directly on the same views, the journal must page through the
//! cursor protocol without unexplained gaps, and a revocation issued
//! through `revoke_everywhere` must land in every server's journal.
//! (The UDS flavor of the listener is exercised end-to-end by the
//! cross-process suite.)

use std::net::{IpAddr, Ipv4Addr, SocketAddr};
use std::time::{Duration, Instant};

use ajanta_core::Rights;
use ajanta_naming::Urn;
use ajanta_net::NetAddr;
use ajanta_runtime::control::serve_request;
use ajanta_runtime::{
    AgentState, ControlClient, ControlRequest, ControlResponse, ControlServer, JournalFollower,
    World, CONTROL_VERSION,
};
use ajanta_vm::{assemble, AgentImage};

const WAIT: Duration = Duration::from_secs(20);

/// Polls its mailbox until something arrives — idle enough to
/// auto-hibernate under the world's miss threshold, and the subject of
/// the remote hibernate/wake round trip either way.
const WAITER: &str = r#"
    module waiter
    import env.recv () -> bytes

    func run(arg: bytes) -> int
      wait:
      hostcall env.recv
      blen
      jz wait
      push 0
      ret
"#;

fn waiter_image() -> AgentImage {
    let module = assemble(WAITER).expect("waiter assembles");
    let image = AgentImage {
        globals: module.initial_globals(),
        module,
        entry: "run".into(),
    };
    image.validate().expect("waiter image is consistent");
    image
}

#[test]
fn control_socket_over_tcp_matches_in_process_answers() {
    let mut world = World::builder(2).hibernation(16).build();
    let mut owner = world.owner("ops");
    let agent = owner.next_agent_name("waiter");
    let home = world.server(0).name().clone();
    let creds = owner.credentials(agent.clone(), home, Rights::all(), u64::MAX);
    world
        .server(0)
        .launch(world.server(1).name().clone(), creds, waiter_image());

    let views = world.control_views();
    let ctl = ControlServer::serve(
        &NetAddr::Tcp(SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0)),
        views.clone(),
    )
    .expect("bind control socket on an ephemeral port");
    let mut client = ControlClient::connect(ctl.addr()).expect("connect to control socket");

    // Health names every server behind the socket.
    match client.call(&ControlRequest::Health).unwrap() {
        ControlResponse::Health { version, servers } => {
            assert_eq!(version, CONTROL_VERSION);
            assert_eq!(servers.len(), 2);
            assert!(servers.contains(world.server(0).name()));
            assert!(servers.contains(world.server(1).name()));
        }
        other => panic!("unexpected health response {other:?}"),
    }

    // The waiter idles through the miss threshold and spills; once
    // hibernated the world is quiescent and answers are stable.
    let deadline = Instant::now() + WAIT;
    loop {
        let listed = match client.call(&ControlRequest::ListAgents).unwrap() {
            ControlResponse::Agents(list) => list,
            other => panic!("unexpected list response {other:?}"),
        };
        if listed
            .iter()
            .any(|a| a.agent == agent && a.state == AgentState::Hibernated)
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "waiter never hibernated; last listing: {listed:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Remote answers equal local `serve_request` answers verbatim.
    for req in [
        ControlRequest::ListAgents,
        ControlRequest::Status,
        ControlRequest::Metrics,
        ControlRequest::AgentInfo {
            agent: agent.clone(),
        },
        ControlRequest::JournalTail {
            cursor: None,
            max: 1000,
        },
        ControlRequest::Logs { tail: 10 },
    ] {
        let remote = client.call(&req).unwrap();
        let local = serve_request(&views, &req);
        assert_eq!(remote, local, "remote/local mismatch for {req:?}");
    }

    // The detail record reflects the launch.
    match client
        .call(&ControlRequest::AgentInfo {
            agent: agent.clone(),
        })
        .unwrap()
    {
        ControlResponse::Agent(Some(detail)) => {
            assert_eq!(detail.entry.agent, agent);
            assert_eq!(detail.entry.server, *world.server(1).name());
        }
        other => panic!("unexpected info response {other:?}"),
    }
    let ghost: Urn = "ajn://users.org/agent/ops/nobody".parse().unwrap();
    assert_eq!(
        client
            .call(&ControlRequest::AgentInfo { agent: ghost })
            .unwrap(),
        ControlResponse::Agent(None)
    );

    // Page the whole journal through the cursor protocol: dense seq
    // per server, zero unexplained gaps, and the next page after
    // exhaustion is empty.
    let mut follower = JournalFollower::new();
    let mut entries = 0usize;
    loop {
        let pages = match client.call(&follower.request(64)).unwrap() {
            ControlResponse::Journal(pages) => pages,
            other => panic!("unexpected journal response {other:?}"),
        };
        let mut fresh = 0usize;
        for page in &pages {
            fresh += follower.ingest(page).len();
        }
        if fresh == 0 {
            break;
        }
        entries += fresh;
    }
    assert_eq!(follower.unexplained_gaps, 0, "journal seq must be dense");
    assert!(entries > 0, "the launch must have journaled something");

    // Hibernate is idempotent on an already-spilled agent; wake restores
    // residency, then mail retires the waiter for good.
    assert_eq!(
        client
            .call(&ControlRequest::Hibernate {
                agent: agent.clone(),
            })
            .unwrap(),
        ControlResponse::Ack(true)
    );
    assert_eq!(
        client
            .call(&ControlRequest::Wake {
                agent: agent.clone(),
            })
            .unwrap(),
        ControlResponse::Ack(true)
    );
    assert_eq!(world.server(1).hibernated_agents(), 0);
    assert_eq!(world.server(1).resident_agents(), 1);

    // Fleet-wide revocation reaches every server's journal, live grants
    // or not.
    let resource: Urn = "ajn://tour.org/resource/jobs".parse().unwrap();
    let (_proxies, servers) =
        ajanta_runtime::control::revoke_everywhere(std::slice::from_ref(ctl.addr()), &resource)
            .expect("revocation fan-out");
    assert_eq!(servers, 2, "both servers must process the revocation");
    let pages = match client
        .call(&ControlRequest::JournalTail {
            cursor: None,
            max: 100,
        })
        .unwrap()
    {
        ControlResponse::Journal(pages) => pages,
        other => panic!("unexpected journal response {other:?}"),
    };
    assert_eq!(pages.len(), 2);
    for page in &pages {
        assert!(
            page.entries.iter().any(|e| e.label == "proxy-revoke"),
            "server {} journal must record the revocation",
            page.server
        );
    }

    ctl.shutdown();
    world.shutdown();
}
