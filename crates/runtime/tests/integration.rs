//! End-to-end runtime tests: the full pipeline of paper Fig. 1 —
//! launch, secure transfer, admission, protection domains, proxy-mediated
//! resource access, migration, reports, attacks.

use std::sync::Arc;
use std::time::Duration;

use ajanta_core::{
    BoundedBuffer, Buffer, Guarded, PrincipalPattern, ProxyPolicy, Rights, SecurityPolicy,
    UsageLimits,
};
use ajanta_naming::Urn;
use ajanta_net::Tamperer;
use ajanta_runtime::itinerary::Itinerary;
use ajanta_runtime::{RejectKind, ReportStatus, World};
use ajanta_vm::{assemble, AgentImage, Limits, Value};
use ajanta_wire::Wire;

const WAIT: Duration = Duration::from_secs(10);

/// Builds an image from assembly source and initial globals.
fn image(src: &str, globals: Vec<Value>, entry: &str) -> AgentImage {
    let module = assemble(src).expect("test agent assembles");
    let image = AgentImage {
        module,
        globals,
        entry: entry.into(),
    };
    image.validate().expect("test agent image is consistent");
    image
}

/// A trivial agent: logs a greeting and returns 7.
const HELLO: &str = r#"
    module hello
    import env.log (bytes) -> int
    import env.here () -> bytes
    data greeting = "hello from "

    func run(arg: bytes) -> int
      pushd greeting
      hostcall env.here
      bconcat
      hostcall env.log
      drop
      push 7
      ret
"#;

#[test]
fn launch_execute_report() {
    let mut world = World::new(2);
    let mut owner = world.owner("alice");
    let agent = owner.next_agent_name("hello");
    let home = world.server(0).name().clone();
    let dest = world.server(1).name().clone();
    let creds = owner.credentials(agent.clone(), home, Rights::all(), u64::MAX);

    world
        .server(0)
        .launch(dest, creds, image(HELLO, vec![], "run"));

    let reports = world.server(0).wait_reports(1, WAIT);
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].agent, agent);
    assert_eq!(reports[0].server, *world.server(1).name());
    assert_eq!(reports[0].status, ReportStatus::Completed("7".into()));

    // The greeting was logged at server 1 under the agent's name.
    let logs = world.server(1).logs();
    assert_eq!(logs.len(), 1);
    assert_eq!(logs[0].0, agent);
    assert!(logs[0].1.starts_with("hello from ajn://site1.org"));

    // The visiting agent has departed; no residue.
    assert_eq!(world.server(1).resident_agents(), 0);
    assert_eq!(world.server(1).stats().agents_hosted, 1);
    world.shutdown();
}

/// A touring agent: counts hops, following an itinerary carried in a
/// global, then reports the hop count from the final stop.
const TOUR: &str = r#"
    module tour
    import env.log (bytes) -> int
    import env.here () -> bytes
    import env.go (bytes, bytes) -> int
    import env.itin_head (bytes) -> bytes
    import env.itin_tail (bytes) -> bytes
    global itin: bytes
    global hops: int
    data entry = "run"

    func run(arg: bytes) -> int
      locals next: bytes
      hostcall env.here
      hostcall env.log
      drop
      gload hops
      push 1
      add
      gstore hops
      gload itin
      blen
      jz done
      gload itin
      hostcall env.itin_head
      store next
      gload itin
      hostcall env.itin_tail
      gstore itin
      load next
      pushd entry
      hostcall env.go
      drop
      push 0
      ret
    done:
      gload hops
      ret
"#;

#[test]
fn itinerary_tour_visits_every_server() {
    let mut world = World::new(4);
    let mut owner = world.owner("bob");
    let agent = owner.next_agent_name("tour");
    let home = world.server(0).name().clone();
    let creds = owner.credentials(agent.clone(), home, Rights::all(), u64::MAX);

    // First hop is server 1; the carried itinerary continues 2 → 3.
    let rest = Itinerary::new([
        world.server(2).name().clone(),
        world.server(3).name().clone(),
    ]);
    let globals = vec![Value::Bytes(rest.encode()), Value::Int(0)];
    world.server(0).launch(
        world.server(1).name().clone(),
        creds,
        image(TOUR, globals, "run"),
    );

    let reports = world.server(0).wait_reports(1, WAIT);
    assert_eq!(reports.len(), 1);
    // Three servers visited → hops == 3, reported from the last stop.
    assert_eq!(reports[0].status, ReportStatus::Completed("3".into()));
    assert_eq!(reports[0].server, *world.server(3).name());

    // Each stop logged exactly once, in order of the tour.
    for i in [1usize, 2, 3] {
        let logs = world.server(i).logs();
        assert_eq!(logs.len(), 1, "server {i} should have one log line");
    }
    world.shutdown();
}

/// An agent that uses a buffer resource through a proxy.
const BUFFER_USER: &str = r#"
    module bufuser
    import env.get_resource (bytes) -> int
    import env.invoke (int, bytes, bytes) -> bytes
    import env.args0 () -> bytes
    import env.args_b (bytes) -> bytes
    import env.res_int (bytes) -> int
    data rname = "ajn://site1.org/resource/jobs"
    data mput = "put"
    data msize = "size"
    data item = "job-payload"

    func run(arg: bytes) -> int
      locals h: int
      pushd rname
      hostcall env.get_resource
      store h
      load h
      pushd mput
      pushd item
      hostcall env.args_b
      hostcall env.invoke
      drop
      load h
      pushd msize
      hostcall env.args0
      hostcall env.invoke
      hostcall env.res_int
      ret
"#;

fn buffer_resource(site: &str) -> Arc<Guarded<BoundedBuffer>> {
    let buf = BoundedBuffer::new(
        Urn::resource(site, ["jobs"]).unwrap(),
        Urn::owner(site, ["admin"]).unwrap(),
        16,
    );
    Guarded::new(buf, ProxyPolicy::default())
}

#[test]
fn agent_uses_resource_via_proxy() {
    let mut world = World::new(2);
    let resource = buffer_resource("site1.org");
    world.server(1).register_resource(resource.clone()).unwrap();

    let mut owner = world.owner("carol");
    let agent = owner.next_agent_name("bufuser");
    let home = world.server(0).name().clone();
    let creds = owner.credentials(agent, home, Rights::all(), u64::MAX);
    world.server(0).launch(
        world.server(1).name().clone(),
        creds,
        image(BUFFER_USER, vec![], "run"),
    );

    let reports = world.server(0).wait_reports(1, WAIT);
    // put succeeded, size == 1.
    assert_eq!(reports[0].status, ReportStatus::Completed("1".into()));
    // The item really landed in the server-side buffer.
    assert_eq!(resource.inner().size(), 1);
    world.shutdown();
}

#[test]
fn delegation_restricts_resource_access() {
    // The owner delegates NO rights: the server policy would allow, but
    // the intersection is empty — get_resource raises the security
    // exception and the agent dies with a Failed report.
    let mut world = World::new(2);
    world
        .server(1)
        .register_resource(buffer_resource("site1.org"))
        .unwrap();

    let mut owner = world.owner("dave");
    let agent = owner.next_agent_name("bufuser");
    let home = world.server(0).name().clone();
    let creds = owner.credentials(agent, home, Rights::none(), u64::MAX);
    world.server(0).launch(
        world.server(1).name().clone(),
        creds,
        image(BUFFER_USER, vec![], "run"),
    );

    let reports = world.server(0).wait_reports(1, WAIT);
    match &reports[0].status {
        ReportStatus::Failed(msg) => assert!(msg.contains("security exception"), "{msg}"),
        other => panic!("expected failure, got {other:?}"),
    }
    world.shutdown();
}

#[test]
fn server_policy_restricts_methods_per_agent() {
    // Server policy: anyone may only call `size` — puts are refused even
    // though the owner delegated everything.
    let mut world = World::builder(2)
        .policy(|i, _name| {
            if i == 1 {
                SecurityPolicy::new().allow(
                    PrincipalPattern::Anyone,
                    Rights::none()
                        .grant_method(Urn::resource("site1.org", ["jobs"]).unwrap(), "size"),
                )
            } else {
                SecurityPolicy::new().allow(PrincipalPattern::Anyone, Rights::all())
            }
        })
        .build();
    world
        .server(1)
        .register_resource(buffer_resource("site1.org"))
        .unwrap();

    let mut owner = world.owner("erin");
    let agent = owner.next_agent_name("bufuser");
    let home = world.server(0).name().clone();
    let creds = owner.credentials(agent, home, Rights::all(), u64::MAX);
    world.server(0).launch(
        world.server(1).name().clone(),
        creds,
        image(BUFFER_USER, vec![], "run"),
    );

    let reports = world.server(0).wait_reports(1, WAIT);
    match &reports[0].status {
        // The agent's `put` hits a disabled method -> security exception.
        ReportStatus::Failed(msg) => assert!(msg.contains("method disabled"), "{msg}"),
        other => panic!("expected failure, got {other:?}"),
    }
    world.shutdown();
}

#[test]
fn dynamic_extension_agent_installs_resource() {
    // Byte-level hex decoding in assembly is painful; instead of the
    // text-embedding route, drive the installation through a tiny agent
    // whose data pool carries the *wire-encoded module bytes directly*.
    use ajanta_vm::{ModuleBuilder, Op, Ty};

    // The service module the agent carries (a stateful counter).
    let mut svc = ModuleBuilder::new("counter-svc");
    let g = svc.global(Ty::Int);
    svc.function(
        "bump",
        [Ty::Int],
        [],
        Ty::Int,
        vec![
            Op::GLoad(g),
            Op::Load(0),
            Op::Add,
            Op::GStore(g),
            Op::GLoad(g),
            Op::Ret,
        ],
    );
    let svc_bytes = svc.build().to_bytes();

    // The installer agent, built with the ModuleBuilder so the raw module
    // bytes can live in the data pool.
    let mut b = ModuleBuilder::new("installer");
    let install = b.import("env.install_resource", [Ty::Bytes, Ty::Bytes], Ty::Int);
    let getres = b.import("env.get_resource", [Ty::Bytes], Ty::Int);
    let invoke = b.import("env.invoke", [Ty::Int, Ty::Bytes, Ty::Bytes], Ty::Bytes);
    let args_i = b.import("env.args_i", [Ty::Int], Ty::Bytes);
    let res_int = b.import("env.res_int", [Ty::Bytes], Ty::Int);
    let svc_name = b.str_data("ajn://site1.org/resource/counter-svc");
    let svc_mod = b.data(svc_bytes);
    let mbump = b.str_data("bump");
    b.function(
        "run",
        [Ty::Bytes],
        [Ty::Int],
        Ty::Int,
        vec![
            Op::PushD(svc_name),
            Op::PushD(svc_mod),
            Op::HostCall(install),
            Op::Drop,
            Op::PushD(svc_name),
            Op::HostCall(getres),
            Op::Store(1),
            Op::Load(1),
            Op::PushD(mbump),
            Op::PushI(5),
            Op::HostCall(args_i),
            Op::HostCall(invoke),
            Op::HostCall(res_int),
            Op::Ret,
        ],
    );
    let installer = b.build();

    let mut world = World::new(2);
    let mut owner = world.owner("frank");
    let agent = owner.next_agent_name("installer");
    let home = world.server(0).name().clone();
    let creds = owner.credentials(agent, home, Rights::all(), u64::MAX);
    let img = AgentImage {
        globals: installer.initial_globals(),
        module: installer,
        entry: "run".into(),
    };
    world
        .server(0)
        .launch(world.server(1).name().clone(), creds, img);

    let reports = world.server(0).wait_reports(1, WAIT);
    assert_eq!(reports[0].status, ReportStatus::Completed("5".into()));

    // The installer is gone but its resource remains registered…
    assert_eq!(world.server(1).resident_agents(), 0);
    let resources = world.server(1).resources();
    assert!(resources
        .iter()
        .any(|r| r.to_string() == "ajn://site1.org/resource/counter-svc"));

    // …and a later agent can keep using it (state persisted: 5 + 3 = 8).
    let mut b = ajanta_vm::ModuleBuilder::new("user2");
    let getres = b.import(
        "env.get_resource",
        [ajanta_vm::Ty::Bytes],
        ajanta_vm::Ty::Int,
    );
    let invoke = b.import(
        "env.invoke",
        [
            ajanta_vm::Ty::Int,
            ajanta_vm::Ty::Bytes,
            ajanta_vm::Ty::Bytes,
        ],
        ajanta_vm::Ty::Bytes,
    );
    let args_i = b.import("env.args_i", [ajanta_vm::Ty::Int], ajanta_vm::Ty::Bytes);
    let res_int = b.import("env.res_int", [ajanta_vm::Ty::Bytes], ajanta_vm::Ty::Int);
    let svc_name = b.str_data("ajn://site1.org/resource/counter-svc");
    let mbump = b.str_data("bump");
    b.function(
        "run",
        [ajanta_vm::Ty::Bytes],
        [ajanta_vm::Ty::Int],
        ajanta_vm::Ty::Int,
        vec![
            ajanta_vm::Op::PushD(svc_name),
            ajanta_vm::Op::HostCall(getres),
            ajanta_vm::Op::Store(1),
            ajanta_vm::Op::Load(1),
            ajanta_vm::Op::PushD(mbump),
            ajanta_vm::Op::PushI(3),
            ajanta_vm::Op::HostCall(args_i),
            ajanta_vm::Op::HostCall(invoke),
            ajanta_vm::Op::HostCall(res_int),
            ajanta_vm::Op::Ret,
        ],
    );
    let user2 = b.build();
    let agent2 = owner.next_agent_name("user2");
    let home = world.server(0).name().clone();
    let creds2 = owner.credentials(agent2, home, Rights::all(), u64::MAX);
    let img2 = AgentImage {
        globals: user2.initial_globals(),
        module: user2,
        entry: "run".into(),
    };
    world
        .server(0)
        .launch(world.server(1).name().clone(), creds2, img2);
    let reports = world.server(0).wait_reports(2, WAIT);
    assert_eq!(reports[1].status, ReportStatus::Completed("8".into()));
    world.shutdown();
}

#[test]
fn runaway_agent_hits_fuel_quota() {
    let mut world = World::builder(2)
        .vm_limits(Limits {
            fuel: 10_000,
            ..Limits::default()
        })
        .build();
    let mut owner = world.owner("grace");
    let agent = owner.next_agent_name("spin");
    let home = world.server(0).name().clone();
    let creds = owner.credentials(agent, home, Rights::all(), u64::MAX);

    let src = r#"
        module spin
        func run(arg: bytes) -> int
        loop:
          jump loop
    "#;
    world.server(0).launch(
        world.server(1).name().clone(),
        creds,
        image(src, vec![], "run"),
    );

    let reports = world.server(0).wait_reports(1, WAIT);
    assert!(matches!(reports[0].status, ReportStatus::QuotaExceeded(_)));
    // The server survived and is still responsive.
    assert_eq!(world.server(1).resident_agents(), 0);
    world.shutdown();
}

#[test]
fn impostor_system_module_refused() {
    use ajanta_vm::{ModuleBuilder, Op, Ty};
    // The world's servers pre-load a system module `sys.lib`.
    let mut sys = ModuleBuilder::new("sys.lib");
    sys.function("id", [Ty::Int], [], Ty::Int, vec![Op::Load(0), Op::Ret]);
    let sys = Arc::new(ajanta_vm::verify(sys.build()).unwrap());

    let mut world = World::builder(2).system_modules(vec![sys]).build();
    let mut owner = world.owner("heidi");
    let agent = owner.next_agent_name("impostor");
    let home = world.server(0).name().clone();
    let creds = owner.credentials(agent, home, Rights::all(), u64::MAX);

    // A malicious agent names its module `sys.lib`.
    let mut evil = ModuleBuilder::new("sys.lib");
    evil.function(
        "run",
        [Ty::Bytes],
        [],
        Ty::Int,
        vec![Op::PushI(666), Op::Ret],
    );
    let evil = evil.build();
    let img = AgentImage {
        globals: evil.initial_globals(),
        module: evil,
        entry: "run".into(),
    };
    world
        .server(0)
        .launch(world.server(1).name().clone(), creds, img);

    let reports = world.server(0).wait_reports(1, WAIT);
    assert!(matches!(reports[0].status, ReportStatus::Refused(_)));
    let events = world.server(1).security_events();
    assert!(events.iter().any(|e| e.kind == RejectKind::ImpostorModule));
    assert_eq!(world.server(1).stats().agents_hosted, 0);
    world.shutdown();
}

#[test]
fn tampered_transfers_are_rejected() {
    let mut world = World::new(2);
    // Active attacker modifying every message on the wire.
    world
        .net
        .set_adversary(Some(Arc::new(Tamperer::new(7, 1.0))));

    let mut owner = world.owner("ivan");
    let agent = owner.next_agent_name("hello");
    let home = world.server(0).name().clone();
    let creds = owner.credentials(agent, home, Rights::all(), u64::MAX);
    world.server(0).launch(
        world.server(1).name().clone(),
        creds,
        image(HELLO, vec![], "run"),
    );

    // Give the network a moment; then: no agent hosted, tampering logged.
    let deadline = std::time::Instant::now() + WAIT;
    while world.server(1).security_events().is_empty() && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let events = world.server(1).security_events();
    assert!(
        events.iter().any(|e| e.kind == RejectKind::BadDatagram),
        "expected tamper detection, got {events:?}"
    );
    assert_eq!(world.server(1).stats().agents_hosted, 0);
    world.shutdown();
}

#[test]
fn expired_credentials_refused() {
    let mut world = World::new(2);
    // Advance virtual time past the credential expiry before launching.
    world.net.clock().advance_to(1_000_000);

    let mut owner = world.owner("judy");
    let agent = owner.next_agent_name("stale");
    let home = world.server(0).name().clone();
    let creds = owner.credentials(agent, home, Rights::all(), 500_000);
    world.server(0).launch(
        world.server(1).name().clone(),
        creds,
        image(HELLO, vec![], "run"),
    );

    let deadline = std::time::Instant::now() + WAIT;
    while world.server(1).security_events().is_empty() && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let events = world.server(1).security_events();
    assert!(events.iter().any(|e| e.kind == RejectKind::BadCredentials));
    assert_eq!(world.server(1).stats().agents_hosted, 0);
    world.shutdown();
}

#[test]
fn binding_quota_limits_proxies() {
    let mut world = World::builder(2)
        .agent_limits(UsageLimits {
            max_bindings: 1,
            ..Default::default()
        })
        .build();
    world
        .server(1)
        .register_resource(buffer_resource("site1.org"))
        .unwrap();

    // Agent binds the same resource twice: second bind exceeds the quota.
    let src = r#"
        module greedy
        import env.get_resource (bytes) -> int
        data rname = "ajn://site1.org/resource/jobs"

        func run(arg: bytes) -> int
          pushd rname
          hostcall env.get_resource
          drop
          pushd rname
          hostcall env.get_resource
          ret
    "#;
    let mut owner = world.owner("kim");
    let agent = owner.next_agent_name("greedy");
    let home = world.server(0).name().clone();
    let creds = owner.credentials(agent, home, Rights::all(), u64::MAX);
    world.server(0).launch(
        world.server(1).name().clone(),
        creds,
        image(src, vec![], "run"),
    );

    let reports = world.server(0).wait_reports(1, WAIT);
    match &reports[0].status {
        ReportStatus::Failed(msg) => assert!(msg.contains("quota"), "{msg}"),
        other => panic!("expected quota failure, got {other:?}"),
    }
    world.shutdown();
}

#[test]
fn colocated_agents_exchange_mail() {
    // Two agents meet at server 1: a "greeter" waits for mail in a spin
    // loop (bounded); a "visitor" sends it a message.
    let mut world = World::new(2);
    let mut owner = world.owner("lara");

    let greeter_src = r#"
        module greeter
        import env.recv () -> bytes
        import env.log (bytes) -> int
        global tries: int

        func run(arg: bytes) -> int
          locals msg: bytes
        loop:
          hostcall env.recv
          store msg
          load msg
          blen
          jz again
          load msg
          hostcall env.log
          drop
          load msg
          blen
          ret
        again:
          gload tries
          push 1
          add
          gstore tries
          gload tries
          push 200000
          lt
          jz giveup
          jump loop
        giveup:
          push -1
          ret
    "#;

    let greeter_name = owner.next_agent_name("greeter");
    let home = world.server(0).name().clone();
    let creds_g = owner.credentials(greeter_name.clone(), home.clone(), Rights::all(), u64::MAX);
    world.server(0).launch(
        world.server(1).name().clone(),
        creds_g,
        image(greeter_src, vec![Value::Int(0)], "run"),
    );

    // Wait until the greeter is resident.
    let deadline = std::time::Instant::now() + WAIT;
    while world.server(1).resident_agents() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }

    let visitor_src = format!(
        r#"
        module visitor
        import env.send (bytes, bytes) -> int
        data target = "{greeter_name}"
        data payload = "greetings!"

        func run(arg: bytes) -> int
          pushd target
          pushd payload
          hostcall env.send
          ret
    "#
    );
    let visitor_name = owner.next_agent_name("visitor");
    let creds_v = owner.credentials(visitor_name, home, Rights::all(), u64::MAX);
    world.server(0).launch(
        world.server(1).name().clone(),
        creds_v,
        image(&visitor_src, vec![], "run"),
    );

    let reports = world.server(0).wait_reports(2, WAIT);
    let statuses: Vec<&ReportStatus> = reports.iter().map(|r| &r.status).collect();
    // Visitor delivered (returns 1); greeter got 10 bytes of mail.
    assert!(
        statuses.contains(&&ReportStatus::Completed("1".into())),
        "{statuses:?}"
    );
    assert!(
        statuses.contains(&&ReportStatus::Completed("10".into())),
        "{statuses:?}"
    );
    world.shutdown();
}

#[test]
fn status_queries_cross_the_network() {
    use ajanta_runtime::messages::AgentStatus;
    // A lingering agent at server 1; the home server (0) queries the
    // domain database over the wire.
    let mut world = World::new(2);
    let src = r#"
        module idler
        import env.recv () -> bytes
        global tries: int

        func run(arg: bytes) -> int
        loop:
          hostcall env.recv
          blen
          jz again
          push 1
          ret
        again:
          gload tries
          push 1
          add
          gstore tries
          gload tries
          push 500000
          lt
          jz giveup
          jump loop
        giveup:
          push 0
          ret
    "#;
    let mut owner = world.owner("mona");
    let agent = owner.next_agent_name("idler");
    let home = world.server(0).name().clone();
    let creds = owner.credentials(agent.clone(), home, Rights::all(), u64::MAX);
    world.server(0).launch(
        world.server(1).name().clone(),
        creds,
        image(src, vec![Value::Int(0)], "run"),
    );

    // Wait for residence, then query.
    let deadline = std::time::Instant::now() + WAIT;
    while world.server(1).resident_agents() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    let status = world
        .server(0)
        .query_status(world.server(1).name(), &agent, WAIT)
        .expect("status reply arrives");
    match status {
        AgentStatus::Resident { owner: o, .. } => assert_eq!(o, *owner.name()),
        other => panic!("expected resident, got {other:?}"),
    }

    // A query about a ghost returns NotResident.
    let ghost = Urn::agent("users.org", ["nobody", "9"]).unwrap();
    assert_eq!(
        world
            .server(0)
            .query_status(world.server(1).name(), &ghost, WAIT),
        Ok(AgentStatus::NotResident)
    );

    // Let the idler finish and drain.
    world.server(0).wait_reports(1, WAIT);
    world.shutdown();
}

#[test]
fn parent_dispatches_children_that_report_home() {
    // A coordinator lands at server 1 and dispatches two children to
    // server 2 ("map" phase); each child computes from its payload and
    // reports home. The children run under the parent's credentials with
    // subtree names; their creator is the parent.
    let mut world = World::new(3);
    let src = r#"
        module fleet
        import env.dispatch (bytes, bytes, bytes) -> bytes
        global dest: bytes

        func run(arg: bytes) -> int
          gload dest
          pushd entry_child
          pushd payload_a
          hostcall env.dispatch
          drop
          gload dest
          pushd entry_child
          pushd payload_b
          hostcall env.dispatch
          drop
          push 2
          ret

        # children resume here, with the parent-chosen payload as arg
        func child(arg: bytes) -> int
          load arg
          atoi
          push 10
          mul
          ret

        data entry_child = "child"
        data payload_a = "3"
        data payload_b = "4"
    "#;
    let mut owner = world.owner("nina");
    let agent = owner.next_agent_name("fleet");
    let home = world.server(0).name().clone();
    let creds = owner.credentials(agent.clone(), home, Rights::all(), u64::MAX);
    let dest2 = world.server(2).name().to_string();
    world.server(0).launch(
        world.server(1).name().clone(),
        creds,
        image(src, vec![Value::str(&dest2)], "run"),
    );

    // Three reports home: the parent (2) and both children (30, 40).
    let reports = world.server(0).wait_reports(3, WAIT);
    assert_eq!(reports.len(), 3, "{reports:?}");
    let mut answers: Vec<String> = reports
        .iter()
        .map(|r| match &r.status {
            ReportStatus::Completed(v) => v.clone(),
            other => panic!("unexpected: {other:?}"),
        })
        .collect();
    answers.sort();
    assert_eq!(answers, ["2", "30", "40"]);

    // Children are named inside the parent's subtree.
    let child_reports: Vec<_> = reports.iter().filter(|r| r.agent != agent).collect();
    assert_eq!(child_reports.len(), 2);
    for r in child_reports {
        assert!(r.agent.is_within(&agent), "{} not within {agent}", r.agent);
        assert_eq!(r.server, *world.server(2).name());
    }
    world.shutdown();
}

#[test]
fn dispatch_is_refused_when_policy_forbids_it() {
    let mut world = World::builder(2).no_agent_dispatch().build();
    let src = r#"
        module sneaky
        import env.dispatch (bytes, bytes, bytes) -> bytes
        data entry = "run"
        data payload = "x"

        func run(arg: bytes) -> int
          load arg
          pushd entry
          pushd payload
          hostcall env.dispatch
          blen
          ret
    "#;
    let mut owner = world.owner("oscar");
    let agent = owner.next_agent_name("sneaky");
    let home = world.server(0).name().clone();
    let creds = owner.credentials(agent, home, Rights::all(), u64::MAX);
    world.server(0).launch(
        world.server(1).name().clone(),
        creds,
        image(src, vec![], "run"),
    );
    let reports = world.server(0).wait_reports(1, WAIT);
    match &reports[0].status {
        ReportStatus::Failed(msg) => {
            assert!(msg.contains("security exception"), "{msg}");
            assert!(msg.contains("dispatch"), "{msg}");
        }
        other => panic!("expected dispatch denial, got {other:?}"),
    }
    world.shutdown();
}

#[test]
fn forged_child_identity_outside_subtree_is_rejected() {
    // A certified-but-rogue peer seals a Transfer whose run_as is NOT
    // within the credentialed agent's subtree. The datagram authenticates
    // (the rogue is certified), but the receiving server must refuse the
    // identity claim and record a `bad-identity` event.
    use ajanta_net::SealedDatagram;
    use ajanta_runtime::messages::Message;
    use ajanta_wire::Wire as _;

    let mut world = World::new(2);
    let mut owner = world.owner("pete");
    let agent = owner.next_agent_name("honest");
    let home = world.server(0).name().clone();
    let creds = owner.credentials(agent, home, Rights::all(), u64::MAX);
    let module = assemble("module m\nfunc run(arg: bytes) -> int\n  push 666\n  ret").unwrap();
    let img = AgentImage {
        globals: vec![],
        module,
        entry: "run".into(),
    };
    let msg = Message::Transfer {
        run_as: Urn::agent("evil.org", ["somebody", "else"]).unwrap(),
        credentials: creds,
        image: img,
        hop: 0,
        arg: vec![],
        ctx: ajanta_core::SpanContext::root(ajanta_core::TraceId(1), ajanta_core::SpanId(1)),
        sent_ns: 0,
    };

    let (rogue_id, _rogue_keys) = world.certified_rogue("mitm");
    let endpoint = world.net.attach(rogue_id.name.clone()).unwrap();
    let dest = world.server(1).name().clone();
    let dest_key = world
        .directory
        .verified_key(&dest, &world.roots, 0)
        .unwrap();
    let mut rng = ajanta_crypto::DetRng::new(0xE11);
    let dg = SealedDatagram::seal(
        &rogue_id,
        &dest,
        dest_key,
        &msg.to_bytes(),
        world.net.clock().now(),
        &mut rng,
    );
    endpoint.send(&dest, dg.to_bytes()).unwrap();

    let deadline = std::time::Instant::now() + WAIT;
    while world.server(1).security_events().is_empty() && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let events = world.server(1).security_events();
    assert!(
        events.iter().any(|e| e.kind == RejectKind::BadIdentity),
        "expected bad-identity, got {events:?}"
    );
    // The forged agent never ran.
    assert_eq!(world.server(1).stats().agents_hosted, 0);
    world.shutdown();
}
