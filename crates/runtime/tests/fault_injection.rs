//! Fault-injection tests for the fault-tolerant migration layer: agent
//! tours under probabilistic frame loss and per-host blackouts.
//!
//! The invariants under test are the paper's "no orphans" obligations:
//! every launched agent eventually produces a home report (success or
//! `Failed(hop)`), no server ever admits the same (agent, hop) twice no
//! matter how many retry copies arrive, and unreachable itinerary stops
//! are skipped or the agent is recovered home — all visible in the typed
//! telemetry journal. A control test shows the pre-recovery behavior:
//! with retries disabled, a lossy link simply strands agents.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ajanta_core::Rights;
use ajanta_net::LinkFault;
use ajanta_runtime::itinerary::Itinerary;
use ajanta_runtime::{Counter, Event, ReportStatus, RetryPolicy, World};
use ajanta_vm::{assemble, AgentImage, Value};

/// A touring agent that migrates with `env.go_tour`, so the runtime
/// knows its remaining stops and can skip unreachable ones. Returns its
/// activation (hop) count from the last stop.
const TOURIST: &str = r#"
    module tourist
    import env.go_tour (bytes, bytes) -> int
    import env.itin_tail (bytes) -> bytes
    global itin: bytes
    global hops: int
    data entry = "run"

    func run(arg: bytes) -> int
      locals full: bytes
      gload hops
      push 1
      add
      gstore hops
      gload itin
      blen
      jz done
      gload itin
      store full
      gload itin
      hostcall env.itin_tail
      gstore itin
      load full
      pushd entry
      hostcall env.go_tour
      drop
      push 0
      ret
    done:
      gload hops
      ret
"#;

/// Builds a tourist image whose carried itinerary is everything *after*
/// the launch leg of `tour` (the runtime drives the launch leg itself).
fn tourist_image(tour: &Itinerary) -> AgentImage {
    let (_, rest) = tour.clone().next_stop();
    let module = assemble(TOURIST).expect("tourist assembles");
    let image = AgentImage {
        module,
        globals: vec![Value::Bytes(rest.encode()), Value::Int(0)],
        entry: "run".into(),
    };
    image.validate().expect("tourist image consistent");
    image
}

/// Collects reports at `home` until `agents` distinct agents have
/// reported or the deadline passes; returns the final snapshot.
fn wait_distinct(
    home: &ajanta_runtime::ServerHandle,
    agents: usize,
    timeout: Duration,
) -> Vec<ajanta_runtime::Report> {
    let deadline = Instant::now() + timeout;
    let mut want = agents;
    loop {
        let reports = home.wait_reports(want, deadline.saturating_duration_since(Instant::now()));
        let distinct: HashSet<_> = reports.iter().map(|r| r.agent.clone()).collect();
        if distinct.len() >= agents || Instant::now() >= deadline {
            return reports;
        }
        // Duplicates (conflicting verdicts for a false dead-stop) can
        // pad the count; wait for strictly more raw reports next round.
        want = reports.len() + 1;
    }
}

/// Asserts that `server`'s journal never admitted the same (agent, hop)
/// pair twice — the idempotent-admission invariant.
fn assert_no_duplicate_admissions(server: &ajanta_runtime::ServerHandle) {
    let mut seen = HashSet::new();
    for record in server.journal().snapshot() {
        if let Event::AgentAdmitted { agent, hop, .. } = record.event {
            assert!(
                seen.insert((agent.clone(), hop)),
                "{}: duplicate admission of {agent} hop {hop}",
                server.name()
            );
        }
    }
}

/// The acceptance scenario: 32 agents tour 5 stops over a link dropping
/// 20% of all frames. Every agent must still report home, no server may
/// double-admit a hop, and the journals must show the recovery machinery
/// actually firing.
#[test]
fn tour_survives_twenty_percent_frame_loss() {
    const AGENTS: usize = 32;
    let mut world = World::builder(6)
        .retry(RetryPolicy {
            // Deep retry budget: with 20% loss an attempt goes unacked
            // with p = 0.36, so 14 attempts make a spurious dead-stop
            // astronomically unlikely while the grace doubling keeps the
            // common path fast.
            max_attempts: 14,
            ack_grace: Duration::from_millis(10),
            ..RetryPolicy::default()
        })
        .journal_capacity(1 << 16)
        .build();
    let fault = Arc::new(LinkFault::new(0xFA17_0001, 0.20));
    world.net.set_adversary(Some(fault.clone()));

    let mut owner = world.owner("traveler");
    let home = world.server(0).name().clone();
    let tour = Itinerary::new((1..=5).map(|i| world.server(i).name().clone()));
    let mut launched = HashSet::new();
    for _ in 0..AGENTS {
        let agent = owner.next_agent_name("tourist");
        launched.insert(agent.clone());
        let creds = owner.credentials(agent, home.clone(), Rights::all(), u64::MAX);
        world
            .server(0)
            .launch_tour(&tour, creds, tourist_image(&tour));
    }

    let reports = wait_distinct(world.server(0), AGENTS, Duration::from_secs(120));
    let reported: HashSet<_> = reports.iter().map(|r| r.agent.clone()).collect();
    assert_eq!(
        reported,
        launched,
        "every launched agent must report home (got {}/{AGENTS})",
        reported.len()
    );

    // The fault actually fired, and the recovery layer visibly worked.
    assert!(fault.dropped_count() > 0, "adversary never dropped a frame");
    let retried: u64 = world
        .servers
        .iter()
        .map(|s| s.journal().counter(Counter::TransfersRetried))
        .sum();
    assert!(retried > 0, "20% loss must force transfer retries");

    // Idempotent admission: no server ever admitted an (agent, hop) twice.
    for server in &world.servers {
        assert_no_duplicate_admissions(server);
    }
    world.shutdown();
}

/// A blacked-out stop in the middle of the tour is skipped: the transfer
/// dead-stops after its retry budget and the agent is forwarded to the
/// next itinerary stop instead of orphaning.
#[test]
fn blackout_stop_is_skipped_not_fatal() {
    const AGENTS: usize = 4;
    let mut world = World::builder(4)
        .retry(RetryPolicy {
            max_attempts: 4,
            ack_grace: Duration::from_millis(10),
            ..RetryPolicy::default()
        })
        .journal_capacity(1 << 14)
        .build();
    let fault = Arc::new(LinkFault::new(0xFA17_0002, 0.0).with_clock(world.net.clock().clone()));
    // Server 2 is unreachable for the whole run (both directions).
    fault.blackout(world.server(2).name().clone(), 0, u64::MAX);
    world.net.set_adversary(Some(fault.clone()));

    let mut owner = world.owner("detour");
    let home = world.server(0).name().clone();
    let tour = Itinerary::new([
        world.server(1).name().clone(),
        world.server(2).name().clone(),
        world.server(3).name().clone(),
    ]);
    let mut launched = HashSet::new();
    for _ in 0..AGENTS {
        let agent = owner.next_agent_name("tourist");
        launched.insert(agent.clone());
        let creds = owner.credentials(agent, home.clone(), Rights::all(), u64::MAX);
        world
            .server(0)
            .launch_tour(&tour, creds, tourist_image(&tour));
    }

    let reports = wait_distinct(world.server(0), AGENTS, Duration::from_secs(60));
    let reported: HashSet<_> = reports.iter().map(|r| r.agent.clone()).collect();
    assert_eq!(
        reported, launched,
        "every agent reports despite the blackout"
    );

    // The dead stop admitted nobody; the skip machinery journaled.
    assert_eq!(
        world.server(2).journal().counter(Counter::AgentsAdmitted),
        0,
        "blacked-out server must not admit agents"
    );
    assert!(fault.blackout_dropped_count() > 0);
    let skipped: u64 = world
        .servers
        .iter()
        .map(|s| s.journal().counter(Counter::HopsSkipped))
        .sum();
    let recovered: u64 = world
        .servers
        .iter()
        .map(|s| s.journal().counter(Counter::AgentsRecovered))
        .sum();
    assert!(skipped >= AGENTS as u64, "each agent skips the dead stop");
    assert!(recovered >= AGENTS as u64, "each skip journals a recovery");
    for server in &world.servers {
        assert_no_duplicate_admissions(server);
    }
    world.shutdown();
}

/// When the unreachable stop is the *last* one there is nothing to skip
/// to: the agent is recovered home with `Failed(hop)` naming the leg.
#[test]
fn unreachable_final_stop_reports_failed_home() {
    let mut world = World::builder(3)
        .retry(RetryPolicy {
            max_attempts: 3,
            ack_grace: Duration::from_millis(10),
            ..RetryPolicy::default()
        })
        .build();
    let fault = Arc::new(LinkFault::new(0xFA17_0003, 0.0).with_clock(world.net.clock().clone()));
    fault.blackout(world.server(2).name().clone(), 0, u64::MAX);
    world.net.set_adversary(Some(fault));

    let mut owner = world.owner("stranded");
    let home = world.server(0).name().clone();
    let agent = owner.next_agent_name("tourist");
    let creds = owner.credentials(agent.clone(), home, Rights::all(), u64::MAX);
    let tour = Itinerary::new([
        world.server(1).name().clone(),
        world.server(2).name().clone(),
    ]);
    world
        .server(0)
        .launch_tour(&tour, creds, tourist_image(&tour));

    let reports = world.server(0).wait_reports(1, Duration::from_secs(30));
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].agent, agent);
    match &reports[0].status {
        ReportStatus::Failed(detail) => {
            assert!(
                detail.contains("hop 1") && detail.contains("lost after"),
                "failure names the dead leg: {detail}"
            );
        }
        other => panic!("expected Failed(hop) report, got {other:?}"),
    }
    // The recovery was journaled where the dead-stop happened (server 1).
    assert_eq!(
        world.server(1).journal().counter(Counter::AgentsRecovered),
        1
    );
    world.shutdown();
}

/// The control experiment: the same lossy link with retries disabled
/// demonstrably strands agents — no reports, no recovery, no trace —
/// while the recovering world resolves every agent's fate.
#[test]
fn disabled_retries_strand_agents_on_a_lossy_link() {
    const AGENTS: usize = 4;
    // World A: fire-and-forget transfers over a link that drops all.
    let mut world = World::builder(2).no_retry().build();
    let fault = Arc::new(LinkFault::new(0xFA17_0004, 1.0));
    world.net.set_adversary(Some(fault.clone()));
    let mut owner = world.owner("ghost");
    let home = world.server(0).name().clone();
    for _ in 0..AGENTS {
        let agent = owner.next_agent_name("noop");
        let creds = owner.credentials(agent, home.clone(), Rights::all(), u64::MAX);
        world.server(0).launch(
            world.server(1).name().clone(),
            creds,
            tourist_image(&Itinerary::new([world.server(1).name().clone()])),
        );
    }
    let reports = world.server(0).wait_reports(1, Duration::from_millis(1500));
    assert!(
        reports.is_empty(),
        "without retries a lossy link strands agents silently"
    );
    assert!(fault.dropped_count() >= AGENTS as u64);
    assert_eq!(world.server(1).resident_agents(), 0);
    assert_eq!(
        world
            .servers
            .iter()
            .map(|s| s.journal().counter(Counter::TransfersRetried))
            .sum::<u64>(),
        0
    );
    world.shutdown();

    // World B: identical faults, retries on — every agent's fate resolves
    // as a Failed(hop 0) report recorded at the home server itself.
    let mut world = World::builder(2)
        .retry(RetryPolicy {
            max_attempts: 3,
            ack_grace: Duration::from_millis(10),
            ..RetryPolicy::default()
        })
        .build();
    world
        .net
        .set_adversary(Some(Arc::new(LinkFault::new(0xFA17_0005, 1.0))));
    let mut owner = world.owner("phoenix");
    let home = world.server(0).name().clone();
    let mut launched = HashSet::new();
    for _ in 0..AGENTS {
        let agent = owner.next_agent_name("noop");
        launched.insert(agent.clone());
        let creds = owner.credentials(agent, home.clone(), Rights::all(), u64::MAX);
        world.server(0).launch(
            world.server(1).name().clone(),
            creds,
            tourist_image(&Itinerary::new([world.server(1).name().clone()])),
        );
    }
    let reports = wait_distinct(world.server(0), AGENTS, Duration::from_secs(30));
    let reported: HashSet<_> = reports.iter().map(|r| r.agent.clone()).collect();
    assert_eq!(reported, launched);
    for report in &reports {
        assert!(
            matches!(&report.status, ReportStatus::Failed(d) if d.contains("hop 0")),
            "total loss resolves as Failed(hop 0): {:?}",
            report.status
        );
    }
    assert_eq!(
        world.server(0).journal().counter(Counter::AgentsRecovered),
        AGENTS as u64
    );
    world.shutdown();
}
