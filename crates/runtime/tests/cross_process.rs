//! The tentpole acceptance test run for real: a world spanning multiple
//! OS processes joined over Unix-domain sockets, a 32-agent tour under
//! 20% injected frame loss, and the per-process trace exports merged
//! into one causal forest — 100% resolution, zero duplicate admissions,
//! zero orphan spans.

use std::path::PathBuf;
use std::time::Duration;

use ajanta_runtime::{run_parent, KillPlan, SmokeOpts};

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ajanta-xproc-{tag}-{}", std::process::id()))
}

#[cfg(unix)]
#[test]
fn three_process_world_survives_lossy_tour_over_uds() {
    let dir = scratch("uds");
    let report = run_parent(SmokeOpts {
        bin: PathBuf::from(env!("CARGO_BIN_EXE_ajantad")),
        servers: 3,
        seed: 0xC055_10E5,
        agents: 32,
        loss: 0.20,
        uds: true,
        dir: dir.clone(),
        timeout: Duration::from_secs(240),
        kill: None,
        ctl: false,
        ctl_transcript: None,
    })
    .expect("cross-process run must resolve");
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(report.reported, 32, "every agent must report home");
    assert_eq!(
        report.duplicate_admissions, 0,
        "no process may admit the same (agent, hop) twice"
    );
    assert_eq!(report.traces, 32, "one merged trace tree per tour");
    assert_eq!(
        report.orphans, 0,
        "every span must link to its root across process boundaries"
    );
    assert!(report.completed > 0, "some tours must complete cleanly");
    assert!(
        report.spans > 32 * 3,
        "a 3-stop tour with retries journals many spans, got {}",
        report.spans
    );
}

/// The durability acceptance run: one of the three server processes is
/// SIGKILLed mid-tour and restarted against its admission WAL. Agents
/// the dead process had admitted but not handed off replay on restart;
/// agents still in flight toward it are re-delivered by the peers'
/// retry layer (and deduplicated by the replay filter the WAL re-seeds).
/// Zero agents may be lost, and no (agent, hop) may be admitted twice.
#[cfg(unix)]
#[test]
fn kill_and_restart_loses_no_agents_over_uds() {
    let dir = scratch("kill");
    let report = run_parent(SmokeOpts {
        bin: PathBuf::from(env!("CARGO_BIN_EXE_ajantad")),
        servers: 3,
        seed: 0xD0_0D1E,
        agents: 32,
        loss: 0.20,
        uds: true,
        dir: dir.clone(),
        timeout: Duration::from_secs(240),
        kill: Some(KillPlan {
            victim: 1,
            after: Duration::from_millis(150),
            down: Duration::from_millis(400),
        }),
        ctl: false,
        ctl_transcript: None,
    })
    .expect("kill-and-restart run must resolve");
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(report.restarts, 1, "the victim must be restarted");
    assert_eq!(
        report.reported, 32,
        "zero lost agents: every agent must report home across the crash"
    );
    assert_eq!(
        report.duplicate_admissions, 0,
        "WAL replay plus the re-seeded dedup filter must keep admission idempotent"
    );
    assert!(report.completed > 0, "some tours must complete cleanly");
    // No orphan-span assertion here: the killed incarnation's in-memory
    // journal dies with it, so spans it parented are legitimately absent
    // from the merged forest.
}

/// The control-plane parity run: the same 3-process UDS world, but each
/// child also serves a control socket. Between the tour resolving and
/// shutdown, the parent (a) has child 0 launch a sleeper agent onto
/// child 1, (b) asks child 1 to compare — over a genuine socket round
/// trip — every control query against the in-process `serve_request`
/// answers, including a hibernate + wake round trip of the sleeper, and
/// (c) drives the real `ajantactl` binary through a full session:
/// list/metrics/histo/status, a gap-checked journal follow, an
/// admission-history check covering all 32 tourists, and a fleet-wide
/// proxy revocation that must surface in every server's journal.
#[cfg(unix)]
#[test]
fn control_plane_answers_match_in_process_queries_over_uds() {
    // Referenced so cargo builds the CLI binary this test shells out to.
    let ajantactl = PathBuf::from(env!("CARGO_BIN_EXE_ajantactl"));
    assert!(ajantactl.exists(), "ajantactl must be built for this test");

    let dir = scratch("ctl");
    let transcript = dir.join("ctl-transcript.txt");
    let report = run_parent(SmokeOpts {
        bin: PathBuf::from(env!("CARGO_BIN_EXE_ajantad")),
        servers: 3,
        seed: 0x0C71_0C71,
        agents: 32,
        loss: 0.10,
        uds: true,
        dir: dir.clone(),
        timeout: Duration::from_secs(240),
        kill: None,
        ctl: true,
        ctl_transcript: Some(transcript.clone()),
    })
    .expect("control-plane parity run must resolve");

    let session = std::fs::read_to_string(&transcript).expect("transcript must be written");
    let _ = std::fs::remove_dir_all(&dir);

    assert!(report.ctl_exercised, "control phase must have run");
    assert_eq!(report.reported, 32, "every agent must report home");
    assert_eq!(report.duplicate_admissions, 0);
    assert!(
        session.contains("$ ajantactl"),
        "transcript must record the CLI session"
    );
    assert!(
        session.contains("proxy-revoke"),
        "transcript must show the revocation landing in journals"
    );
}

#[test]
fn multi_process_world_works_over_tcp_localhost() {
    let dir = scratch("tcp");
    let report = run_parent(SmokeOpts {
        bin: PathBuf::from(env!("CARGO_BIN_EXE_ajantad")),
        servers: 3,
        seed: 0x7C9_0001,
        agents: 12,
        loss: 0.10,
        uds: false,
        dir: dir.clone(),
        timeout: Duration::from_secs(240),
        kill: None,
        ctl: false,
        ctl_transcript: None,
    })
    .expect("cross-process run must resolve");
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(report.reported, 12);
    assert_eq!(report.duplicate_admissions, 0);
    assert_eq!(report.traces, 12);
    assert_eq!(report.orphans, 0);
}
