//! The `ajn:` URN type and its grammar.
//!
//! Grammar (all lowercase, canonical on construction):
//!
//! ```text
//! urn       := "ajn://" authority "/" kind ( "/" segment )+
//! authority := label ( "." label )*
//! kind      := "agent" | "server" | "resource" | "group" | "owner"
//! label     := [a-z0-9] [a-z0-9-]*
//! segment   := [a-z0-9._-]+
//! ```

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::NameError;

/// The kind of object a [`Urn`] names.
///
/// The paper's principal taxonomy (Section 2) includes agents, their owners,
/// service providers (servers), groups representing roles, and the resources
/// themselves (Section 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NameKind {
    /// A mobile agent instance.
    Agent,
    /// An agent server process.
    Server,
    /// An application-level resource hosted by a server.
    Resource,
    /// A group of principals aggregated under a common role.
    Group,
    /// A human principal: the owner of agents, resources or servers.
    Owner,
}

impl NameKind {
    /// Canonical lowercase spelling used in the URN text form.
    pub fn as_str(self) -> &'static str {
        match self {
            NameKind::Agent => "agent",
            NameKind::Server => "server",
            NameKind::Resource => "resource",
            NameKind::Group => "group",
            NameKind::Owner => "owner",
        }
    }

    /// All kinds, in canonical order. Useful for exhaustive tests.
    pub const ALL: [NameKind; 5] = [
        NameKind::Agent,
        NameKind::Server,
        NameKind::Resource,
        NameKind::Group,
        NameKind::Owner,
    ];
}

impl FromStr for NameKind {
    type Err = NameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "agent" => Ok(NameKind::Agent),
            "server" => Ok(NameKind::Server),
            "resource" => Ok(NameKind::Resource),
            "group" => Ok(NameKind::Group),
            "owner" => Ok(NameKind::Owner),
            other => Err(NameError::BadKind(other.to_string())),
        }
    }
}

impl fmt::Display for NameKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A global, location-independent name.
///
/// `Urn` is the identity currency of the whole system: credentials bind
/// agent URNs to owner URNs, the resource registry is keyed by resource
/// URNs, and access-control policy is expressed over URNs and group URNs.
///
/// Instances are canonical by construction — parsing and the builder
/// constructors reject anything outside the grammar, so two equal names
/// always have identical text forms.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Urn {
    authority: String,
    kind: NameKind,
    path: Vec<String>,
}

impl Urn {
    /// Builds a name after validating every component.
    pub fn new<A, I, S>(authority: A, kind: NameKind, path: I) -> Result<Self, NameError>
    where
        A: AsRef<str>,
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let authority = authority.as_ref();
        validate_authority(authority)?;
        let path: Vec<String> = path
            .into_iter()
            .map(|s| {
                let s = s.as_ref();
                validate_segment(s).map(|_| s.to_string())
            })
            .collect::<Result<_, _>>()?;
        if path.is_empty() {
            return Err(NameError::EmptyPath);
        }
        Ok(Urn {
            authority: authority.to_string(),
            kind,
            path,
        })
    }

    /// Convenience constructor for [`NameKind::Agent`] names.
    pub fn agent<A: AsRef<str>, I: IntoIterator<Item = S>, S: AsRef<str>>(
        authority: A,
        path: I,
    ) -> Result<Self, NameError> {
        Self::new(authority, NameKind::Agent, path)
    }

    /// Convenience constructor for [`NameKind::Server`] names.
    pub fn server<A: AsRef<str>, I: IntoIterator<Item = S>, S: AsRef<str>>(
        authority: A,
        path: I,
    ) -> Result<Self, NameError> {
        Self::new(authority, NameKind::Server, path)
    }

    /// Convenience constructor for [`NameKind::Resource`] names.
    pub fn resource<A: AsRef<str>, I: IntoIterator<Item = S>, S: AsRef<str>>(
        authority: A,
        path: I,
    ) -> Result<Self, NameError> {
        Self::new(authority, NameKind::Resource, path)
    }

    /// Convenience constructor for [`NameKind::Group`] names.
    pub fn group<A: AsRef<str>, I: IntoIterator<Item = S>, S: AsRef<str>>(
        authority: A,
        path: I,
    ) -> Result<Self, NameError> {
        Self::new(authority, NameKind::Group, path)
    }

    /// Convenience constructor for [`NameKind::Owner`] names.
    pub fn owner<A: AsRef<str>, I: IntoIterator<Item = S>, S: AsRef<str>>(
        authority: A,
        path: I,
    ) -> Result<Self, NameError> {
        Self::new(authority, NameKind::Owner, path)
    }

    /// The registering organization, e.g. `umn.edu`.
    pub fn authority(&self) -> &str {
        &self.authority
    }

    /// The kind tag.
    pub fn kind(&self) -> NameKind {
        self.kind
    }

    /// Path segments below the kind, always non-empty.
    pub fn path(&self) -> &[String] {
        &self.path
    }

    /// The final path segment — the object's local name.
    pub fn leaf(&self) -> &str {
        self.path.last().expect("path is never empty")
    }

    /// Derives a child name by appending one segment, e.g. naming the
    /// `i`-th clone of an agent.
    pub fn child<S: AsRef<str>>(&self, segment: S) -> Result<Self, NameError> {
        let s = segment.as_ref();
        validate_segment(s)?;
        let mut path = self.path.clone();
        path.push(s.to_string());
        Ok(Urn {
            authority: self.authority.clone(),
            kind: self.kind,
            path,
        })
    }

    /// True when `self` names an object inside `ancestor`'s subtree
    /// (same authority and kind, `ancestor.path` a strict or equal prefix).
    ///
    /// Used by policies granting rights over whole name subtrees.
    pub fn is_within(&self, ancestor: &Urn) -> bool {
        self.authority == ancestor.authority
            && self.kind == ancestor.kind
            && self.path.len() >= ancestor.path.len()
            && self.path[..ancestor.path.len()] == ancestor.path[..]
    }
}

impl fmt::Display for Urn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ajn://{}/{}", self.authority, self.kind)?;
        for seg in &self.path {
            write!(f, "/{seg}")?;
        }
        Ok(())
    }
}

impl FromStr for Urn {
    type Err = NameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let rest = s.strip_prefix("ajn://").ok_or(NameError::BadScheme)?;
        let mut parts = rest.split('/');
        let authority = parts.next().unwrap_or_default();
        validate_authority(authority)?;
        let kind: NameKind = parts
            .next()
            .ok_or(NameError::EmptyPath)?
            .parse::<NameKind>()?;
        let path: Vec<String> = parts
            .map(|seg| validate_segment(seg).map(|_| seg.to_string()))
            .collect::<Result<_, _>>()?;
        if path.is_empty() {
            return Err(NameError::EmptyPath);
        }
        Ok(Urn {
            authority: authority.to_string(),
            kind,
            path,
        })
    }
}

fn validate_authority(a: &str) -> Result<(), NameError> {
    if a.is_empty() {
        return Err(NameError::BadAuthority(a.to_string()));
    }
    for label in a.split('.') {
        let ok = !label.is_empty()
            && label
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
            && !label.starts_with('-')
            && !label.ends_with('-');
        if !ok {
            return Err(NameError::BadAuthority(a.to_string()));
        }
    }
    Ok(())
}

fn validate_segment(s: &str) -> Result<(), NameError> {
    let ok = !s.is_empty()
        && s.bytes().all(|b| {
            b.is_ascii_lowercase() || b.is_ascii_digit() || matches!(b, b'.' | b'_' | b'-')
        });
    if ok {
        Ok(())
    } else {
        Err(NameError::BadSegment(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip_simple() {
        let text = "ajn://umn.edu/agent/shopper/42";
        let urn: Urn = text.parse().unwrap();
        assert_eq!(urn.authority(), "umn.edu");
        assert_eq!(urn.kind(), NameKind::Agent);
        assert_eq!(urn.path(), ["shopper".to_string(), "42".to_string()]);
        assert_eq!(urn.leaf(), "42");
        assert_eq!(urn.to_string(), text);
    }

    #[test]
    fn builder_equals_parser() {
        let built = Urn::resource("acme.com", ["catalog", "books"]).unwrap();
        let parsed: Urn = "ajn://acme.com/resource/catalog/books".parse().unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn all_kinds_parse() {
        for kind in NameKind::ALL {
            let text = format!("ajn://x.org/{kind}/leaf");
            let urn: Urn = text.parse().unwrap();
            assert_eq!(urn.kind(), kind);
        }
    }

    #[test]
    fn rejects_missing_scheme() {
        assert_eq!(
            "http://x.org/agent/a".parse::<Urn>(),
            Err(NameError::BadScheme)
        );
        assert_eq!(
            "ajn:/x.org/agent/a".parse::<Urn>(),
            Err(NameError::BadScheme)
        );
    }

    #[test]
    fn rejects_bad_authority() {
        for bad in [
            "ajn:///agent/a",
            "ajn://UPPER/agent/a",
            "ajn://-x/agent/a",
            "ajn://x./agent/a",
        ] {
            assert!(
                matches!(bad.parse::<Urn>(), Err(NameError::BadAuthority(_))),
                "{bad}"
            );
        }
    }

    #[test]
    fn rejects_bad_kind() {
        assert!(matches!(
            "ajn://x.org/applet/a".parse::<Urn>(),
            Err(NameError::BadKind(_))
        ));
    }

    #[test]
    fn rejects_empty_path() {
        assert_eq!(
            "ajn://x.org/agent".parse::<Urn>(),
            Err(NameError::EmptyPath)
        );
        assert!(Urn::agent("x.org", Vec::<String>::new()).is_err());
    }

    #[test]
    fn rejects_bad_segment() {
        assert!(matches!(
            "ajn://x.org/agent/a//b".parse::<Urn>(),
            Err(NameError::BadSegment(_))
        ));
        assert!(matches!(
            "ajn://x.org/agent/A".parse::<Urn>(),
            Err(NameError::BadSegment(_))
        ));
        assert!(matches!(
            "ajn://x.org/agent/a b".parse::<Urn>(),
            Err(NameError::BadSegment(_))
        ));
    }

    #[test]
    fn child_extends_path() {
        let parent = Urn::agent("x.org", ["tour"]).unwrap();
        let child = parent.child("leg-1").unwrap();
        assert_eq!(child.to_string(), "ajn://x.org/agent/tour/leg-1");
        assert!(child.is_within(&parent));
        assert!(!parent.is_within(&child));
    }

    #[test]
    fn child_rejects_bad_segment() {
        let parent = Urn::agent("x.org", ["tour"]).unwrap();
        assert!(parent.child("Bad Seg").is_err());
    }

    #[test]
    fn is_within_requires_same_kind_and_authority() {
        let a = Urn::agent("x.org", ["t"]).unwrap();
        let r = Urn::resource("x.org", ["t"]).unwrap();
        let other = Urn::agent("y.org", ["t"]).unwrap();
        assert!(a.is_within(&a));
        assert!(!a.is_within(&r));
        assert!(!a.is_within(&other));
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut names: Vec<Urn> = [
            "ajn://b.org/agent/a",
            "ajn://a.org/server/s",
            "ajn://a.org/agent/b",
            "ajn://a.org/agent/a",
        ]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
        names.sort();
        let rendered: Vec<String> = names.iter().map(|n| n.to_string()).collect();
        assert_eq!(
            rendered,
            [
                "ajn://a.org/agent/a",
                "ajn://a.org/agent/b",
                "ajn://a.org/server/s",
                "ajn://b.org/agent/a",
            ]
        );
    }
}
