//! Global, location-independent naming for the Ajanta reproduction.
//!
//! The paper (Section 4) requires that *"all agents, agent servers, and
//! resources are assigned global, location-independent names"*. This crate
//! provides that name space:
//!
//! * [`Urn`] — a parsed, canonical `ajn:` name such as
//!   `ajn://umn.edu/agent/shopper/42`.
//! * [`NameKind`] — the kind tag embedded in every name (agent, server,
//!   resource, group, owner).
//! * [`NameRegistry`] — an ownership-checked name registry, the naming
//!   substrate used by the resource registry and the domain database in
//!   `ajanta-core`.
//!
//! Names are deliberately *location independent*: the authority component
//! identifies the registering organization, not a network address. Mapping
//! names to current locations is the job of higher layers (the domain
//! database tracks where an agent currently runs).
//!
//! # Example
//!
//! ```
//! use ajanta_naming::{Urn, NameKind};
//!
//! let n: Urn = "ajn://umn.edu/resource/stock-quotes".parse().unwrap();
//! assert_eq!(n.kind(), NameKind::Resource);
//! assert_eq!(n.authority(), "umn.edu");
//! assert_eq!(n.to_string(), "ajn://umn.edu/resource/stock-quotes");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod registry;
mod urn;
mod wire_impls;

pub use error::NameError;
pub use registry::{NameRecord, NameRegistry, RegistryError};
pub use urn::{NameKind, Urn};
