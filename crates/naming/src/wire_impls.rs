//! Canonical wire encoding for names.
//!
//! A [`Urn`] travels as its canonical text form; decoding re-runs the full
//! grammar validation, so a forged frame cannot smuggle a malformed name
//! past the parser.

use ajanta_wire::{Decoder, Encoder, Wire, WireError};

use crate::Urn;

impl Wire for Urn {
    fn encode(&self, e: &mut Encoder) {
        // The same bytes `put_str(&self.to_string())` would write, built
        // without the intermediate String: the socket send path encodes
        // two names per frame and must stay allocation-free at steady
        // state (its encoder buffers are grow-only and reused).
        let kind = self.kind().as_str();
        let mut len = "ajn://".len() + self.authority().len() + 1 + kind.len();
        for seg in self.path() {
            len += 1 + seg.len();
        }
        e.put_varint(len as u64);
        e.put_raw(b"ajn://");
        e.put_raw(self.authority().as_bytes());
        e.put_raw(b"/");
        e.put_raw(kind.as_bytes());
        for seg in self.path() {
            e.put_raw(b"/");
            e.put_raw(seg.as_bytes());
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        d.get_str()?
            .parse()
            .map_err(|_| WireError::Invalid("malformed urn"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NameKind;

    #[test]
    fn urn_roundtrips() {
        for text in [
            "ajn://umn.edu/agent/shopper/42",
            "ajn://a.b.c/resource/x",
            "ajn://x.org/owner/alice",
        ] {
            let u: Urn = text.parse().unwrap();
            assert_eq!(Urn::from_bytes(&u.to_bytes()).unwrap(), u);
        }
    }

    #[test]
    fn encode_matches_the_text_form_byte_for_byte() {
        for text in [
            "ajn://umn.edu/agent/shopper/42",
            "ajn://a.b.c/resource/x/y/z",
            "ajn://x.org/owner/alice",
        ] {
            let u: Urn = text.parse().unwrap();
            let mut via_string = Encoder::new();
            via_string.put_str(&u.to_string());
            assert_eq!(u.to_bytes(), via_string.finish(), "{text}");
        }
    }

    #[test]
    fn malformed_names_rejected_on_decode() {
        let mut e = Encoder::new();
        e.put_str("not-a-urn");
        assert_eq!(
            Urn::from_bytes(&e.finish()),
            Err(WireError::Invalid("malformed urn"))
        );
        let mut e = Encoder::new();
        e.put_str("ajn://UPPER/agent/a");
        assert!(Urn::from_bytes(&e.finish()).is_err());
    }

    #[test]
    fn all_kinds_roundtrip() {
        for kind in NameKind::ALL {
            let u = Urn::new("x.org", kind, ["leaf"]).unwrap();
            assert_eq!(Urn::from_bytes(&u.to_bytes()).unwrap(), u);
        }
    }
}
