//! Canonical wire encoding for names.
//!
//! A [`Urn`] travels as its canonical text form; decoding re-runs the full
//! grammar validation, so a forged frame cannot smuggle a malformed name
//! past the parser.

use ajanta_wire::{Decoder, Encoder, Wire, WireError};

use crate::Urn;

impl Wire for Urn {
    fn encode(&self, e: &mut Encoder) {
        e.put_str(&self.to_string());
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        d.get_str()?
            .parse()
            .map_err(|_| WireError::Invalid("malformed urn"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NameKind;

    #[test]
    fn urn_roundtrips() {
        for text in [
            "ajn://umn.edu/agent/shopper/42",
            "ajn://a.b.c/resource/x",
            "ajn://x.org/owner/alice",
        ] {
            let u: Urn = text.parse().unwrap();
            assert_eq!(Urn::from_bytes(&u.to_bytes()).unwrap(), u);
        }
    }

    #[test]
    fn malformed_names_rejected_on_decode() {
        let mut e = Encoder::new();
        e.put_str("not-a-urn");
        assert_eq!(
            Urn::from_bytes(&e.finish()),
            Err(WireError::Invalid("malformed urn"))
        );
        let mut e = Encoder::new();
        e.put_str("ajn://UPPER/agent/a");
        assert!(Urn::from_bytes(&e.finish()).is_err());
    }

    #[test]
    fn all_kinds_roundtrip() {
        for kind in NameKind::ALL {
            let u = Urn::new("x.org", kind, ["leaf"]).unwrap();
            assert_eq!(Urn::from_bytes(&u.to_bytes()).unwrap(), u);
        }
    }
}
