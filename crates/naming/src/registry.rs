//! An ownership-checked name registry.
//!
//! The paper's resource registry (Fig. 6, step 1) records *"ownership
//! information, which is used to prevent any unauthorized modifications to
//! the registry entries"*. This module provides that discipline generically:
//! a map from [`Urn`] to a [`NameRecord`] whose mutation requires presenting
//! the owner recorded at registration time.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::Urn;

/// What the registry knows about one registered name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NameRecord {
    /// The principal that registered the name and may modify/remove it.
    pub owner: Urn,
    /// Free-form description shown in directory listings.
    pub description: String,
    /// Registration sequence number (monotone per registry).
    pub serial: u64,
}

/// Errors from registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The name is already registered.
    AlreadyRegistered(Urn),
    /// The name is not registered.
    NotFound(Urn),
    /// The caller is not the recorded owner of the entry.
    NotOwner {
        /// Name whose entry was targeted.
        name: Urn,
        /// Principal that attempted the modification.
        caller: Urn,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::AlreadyRegistered(n) => write!(f, "name already registered: {n}"),
            RegistryError::NotFound(n) => write!(f, "name not registered: {n}"),
            RegistryError::NotOwner { name, caller } => {
                write!(f, "{caller} does not own registry entry {name}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// A directory of names with owner-gated mutation.
///
/// The registry is a plain data structure (no interior locking); callers
/// that share it across threads wrap it in their own lock, as
/// `ajanta-core`'s resource registry does.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct NameRegistry {
    entries: BTreeMap<Urn, NameRecord>,
    next_serial: u64,
}

impl NameRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `name` under `owner`. Fails if the name is taken.
    pub fn register(
        &mut self,
        name: Urn,
        owner: Urn,
        description: impl Into<String>,
    ) -> Result<&NameRecord, RegistryError> {
        if self.entries.contains_key(&name) {
            return Err(RegistryError::AlreadyRegistered(name));
        }
        let serial = self.next_serial;
        self.next_serial += 1;
        let record = NameRecord {
            owner,
            description: description.into(),
            serial,
        };
        Ok(self.entries.entry(name).or_insert(record))
    }

    /// Looks up a name.
    pub fn lookup(&self, name: &Urn) -> Option<&NameRecord> {
        self.entries.get(name)
    }

    /// Removes `name`; only its recorded owner may do so.
    pub fn unregister(&mut self, name: &Urn, caller: &Urn) -> Result<NameRecord, RegistryError> {
        let record = self
            .entries
            .get(name)
            .ok_or_else(|| RegistryError::NotFound(name.clone()))?;
        if &record.owner != caller {
            return Err(RegistryError::NotOwner {
                name: name.clone(),
                caller: caller.clone(),
            });
        }
        Ok(self.entries.remove(name).expect("checked present"))
    }

    /// Replaces the description of an entry; owner-gated like removal.
    pub fn update_description(
        &mut self,
        name: &Urn,
        caller: &Urn,
        description: impl Into<String>,
    ) -> Result<(), RegistryError> {
        let record = self
            .entries
            .get_mut(name)
            .ok_or_else(|| RegistryError::NotFound(name.clone()))?;
        if &record.owner != caller {
            return Err(RegistryError::NotOwner {
                name: name.clone(),
                caller: caller.clone(),
            });
        }
        record.description = description.into();
        Ok(())
    }

    /// Iterates entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&Urn, &NameRecord)> {
        self.entries.iter()
    }

    /// All names inside `prefix`'s subtree (see [`Urn::is_within`]).
    pub fn find_within<'a>(&'a self, prefix: &'a Urn) -> impl Iterator<Item = &'a Urn> + 'a {
        self.entries.keys().filter(move |n| n.is_within(prefix))
    }

    /// Number of registered names.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owner(tag: &str) -> Urn {
        Urn::owner("umn.edu", [tag]).unwrap()
    }

    fn res(tag: &str) -> Urn {
        Urn::resource("umn.edu", [tag]).unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let mut reg = NameRegistry::new();
        reg.register(res("buffer"), owner("alice"), "bounded buffer")
            .unwrap();
        let rec = reg.lookup(&res("buffer")).unwrap();
        assert_eq!(rec.owner, owner("alice"));
        assert_eq!(rec.description, "bounded buffer");
        assert_eq!(rec.serial, 0);
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut reg = NameRegistry::new();
        reg.register(res("b"), owner("alice"), "").unwrap();
        assert_eq!(
            reg.register(res("b"), owner("bob"), ""),
            Err(RegistryError::AlreadyRegistered(res("b")))
        );
        // Original entry untouched.
        assert_eq!(reg.lookup(&res("b")).unwrap().owner, owner("alice"));
    }

    #[test]
    fn serials_are_monotone() {
        let mut reg = NameRegistry::new();
        reg.register(res("a"), owner("o"), "").unwrap();
        reg.register(res("b"), owner("o"), "").unwrap();
        reg.unregister(&res("a"), &owner("o")).unwrap();
        reg.register(res("c"), owner("o"), "").unwrap();
        assert_eq!(reg.lookup(&res("c")).unwrap().serial, 2);
    }

    #[test]
    fn only_owner_may_unregister() {
        let mut reg = NameRegistry::new();
        reg.register(res("b"), owner("alice"), "").unwrap();
        let err = reg.unregister(&res("b"), &owner("mallory")).unwrap_err();
        assert_eq!(
            err,
            RegistryError::NotOwner {
                name: res("b"),
                caller: owner("mallory")
            }
        );
        assert!(reg.lookup(&res("b")).is_some());
        reg.unregister(&res("b"), &owner("alice")).unwrap();
        assert!(reg.lookup(&res("b")).is_none());
    }

    #[test]
    fn only_owner_may_update_description() {
        let mut reg = NameRegistry::new();
        reg.register(res("b"), owner("alice"), "v1").unwrap();
        assert!(reg
            .update_description(&res("b"), &owner("eve"), "v2")
            .is_err());
        reg.update_description(&res("b"), &owner("alice"), "v2")
            .unwrap();
        assert_eq!(reg.lookup(&res("b")).unwrap().description, "v2");
    }

    #[test]
    fn missing_names_report_not_found() {
        let mut reg = NameRegistry::new();
        assert_eq!(
            reg.unregister(&res("ghost"), &owner("o")),
            Err(RegistryError::NotFound(res("ghost")))
        );
        assert_eq!(
            reg.update_description(&res("ghost"), &owner("o"), ""),
            Err(RegistryError::NotFound(res("ghost")))
        );
    }

    #[test]
    fn find_within_filters_subtree() {
        let mut reg = NameRegistry::new();
        let root = Urn::resource("umn.edu", ["catalog"]).unwrap();
        reg.register(root.child("books").unwrap(), owner("o"), "")
            .unwrap();
        reg.register(root.child("music").unwrap(), owner("o"), "")
            .unwrap();
        reg.register(res("unrelated"), owner("o"), "").unwrap();
        let found: Vec<_> = reg.find_within(&root).collect();
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|n| n.is_within(&root)));
    }

    #[test]
    fn len_and_is_empty_track_contents() {
        let mut reg = NameRegistry::new();
        assert!(reg.is_empty());
        reg.register(res("a"), owner("o"), "").unwrap();
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
    }
}
