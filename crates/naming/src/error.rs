//! Errors produced while parsing or validating names.

use std::fmt;

/// Reasons a string fails to parse as a canonical [`crate::Urn`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// The name does not begin with the `ajn://` scheme prefix.
    BadScheme,
    /// The authority (organization) component is empty or malformed.
    BadAuthority(String),
    /// The kind segment is not one of the recognized [`crate::NameKind`]s.
    BadKind(String),
    /// The path is empty — every name must identify a concrete object.
    EmptyPath,
    /// A path segment is empty or contains a character outside the
    /// canonical set (`[a-z0-9._-]`).
    BadSegment(String),
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::BadScheme => write!(f, "name must start with `ajn://`"),
            NameError::BadAuthority(a) => write!(f, "bad authority component: {a:?}"),
            NameError::BadKind(k) => write!(f, "unknown name kind: {k:?}"),
            NameError::EmptyPath => write!(f, "name has an empty path"),
            NameError::BadSegment(s) => write!(f, "bad path segment: {s:?}"),
        }
    }
}

impl std::error::Error for NameError {}
