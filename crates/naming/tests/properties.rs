//! Property-based tests for the name grammar and registry.

use ajanta_naming::{NameKind, NameRegistry, Urn};
use proptest::prelude::*;

/// Strategy for canonical authority strings.
fn authority() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z0-9][a-z0-9]{0,8}", 1..4).prop_map(|labels| labels.join("."))
}

/// Strategy for canonical path segments.
fn segment() -> impl Strategy<Value = String> {
    "[a-z0-9._-]{1,12}".prop_map(|s| s)
}

fn kind() -> impl Strategy<Value = NameKind> {
    prop::sample::select(NameKind::ALL.to_vec())
}

fn urn() -> impl Strategy<Value = Urn> {
    (
        authority(),
        kind(),
        proptest::collection::vec(segment(), 1..5),
    )
        .prop_map(|(a, k, p)| Urn::new(a, k, p).expect("strategy emits canonical components"))
}

proptest! {
    /// print → parse is the identity for every canonical name.
    #[test]
    fn display_parse_roundtrip(u in urn()) {
        let text = u.to_string();
        let back: Urn = text.parse().unwrap();
        prop_assert_eq!(back, u);
    }

    /// Parsing is injective on canonical forms: distinct names render
    /// distinctly.
    #[test]
    fn display_is_injective(a in urn(), b in urn()) {
        prop_assert_eq!(a == b, a.to_string() == b.to_string());
    }

    /// A child is always within its parent; siblings are not ancestors.
    #[test]
    fn child_within_parent(u in urn(), seg in segment()) {
        let child = u.child(&seg).unwrap();
        prop_assert!(child.is_within(&u));
        prop_assert!(child.is_within(&child));
        // The parent is within the child only if they are equal, which
        // cannot happen since the child has a strictly longer path.
        prop_assert!(!u.is_within(&child));
    }

    /// `is_within` is transitive along chains of children.
    #[test]
    fn within_is_transitive(u in urn(), s1 in segment(), s2 in segment()) {
        let c1 = u.child(&s1).unwrap();
        let c2 = c1.child(&s2).unwrap();
        prop_assert!(c2.is_within(&c1));
        prop_assert!(c1.is_within(&u));
        prop_assert!(c2.is_within(&u));
    }

    /// Ordering agrees with equality and is antisymmetric.
    #[test]
    fn ordering_consistent(a in urn(), b in urn()) {
        use std::cmp::Ordering;
        match a.cmp(&b) {
            Ordering::Equal => prop_assert_eq!(&a, &b),
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
        }
    }

    /// Registry: after a register, lookup returns the record; after an
    /// owner-authorized unregister, it does not; a wrong caller never
    /// changes the registry.
    #[test]
    fn registry_owner_gating(name in urn(), owner in urn(), thief in urn()) {
        prop_assume!(owner != thief);
        let mut reg = NameRegistry::new();
        reg.register(name.clone(), owner.clone(), "d").unwrap();
        prop_assert!(reg.lookup(&name).is_some());
        prop_assert!(reg.unregister(&name, &thief).is_err());
        prop_assert!(reg.lookup(&name).is_some());
        reg.unregister(&name, &owner).unwrap();
        prop_assert!(reg.lookup(&name).is_none());
    }

    /// Registry `find_within` returns exactly the subtree members.
    #[test]
    fn registry_find_within_exact(
        root in urn(),
        inside in proptest::collection::vec(segment(), 1..4),
        outside in urn(),
    ) {
        prop_assume!(!outside.is_within(&root));
        let mut reg = NameRegistry::new();
        let owner = Urn::owner("o.org", ["o"]).unwrap();
        let mut expected = 0usize;
        let mut n = root.clone();
        for seg in &inside {
            n = n.child(seg).unwrap();
            if reg.register(n.clone(), owner.clone(), "").is_ok() {
                expected += 1;
            }
        }
        let _ = reg.register(outside.clone(), owner.clone(), "");
        prop_assert_eq!(reg.find_within(&root).count(), expected);
    }
}
