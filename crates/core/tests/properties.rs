//! Property tests for the rights algebra, credentials, and proxy
//! invariants — the security laws the paper's design depends on.

use std::collections::BTreeSet;
use std::sync::Arc;

use ajanta_core::credentials::CredentialsBuilder;
use ajanta_core::proxy::{Meter, ProxyControl};
use ajanta_core::rights::{MethodPattern, Rights, Scope};
use ajanta_core::{DomainId, MethodTable};
use ajanta_crypto::cert::Certificate;
use ajanta_crypto::{DetRng, KeyPair, RootOfTrust};
use ajanta_naming::Urn;
use ajanta_wire::Wire;
use proptest::prelude::*;

/// Strategy over resource names in a small universe, so scopes overlap
/// often enough to exercise the interesting cases.
fn resource() -> impl Strategy<Value = Urn> {
    proptest::collection::vec(prop::sample::select(vec!["a", "b", "c"]), 1..4)
        .prop_map(|segs| Urn::resource("x.org", segs).unwrap())
}

fn method() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["get", "put", "query", "buy"]).prop_map(String::from)
}

fn scope() -> impl Strategy<Value = Scope> {
    prop_oneof![
        resource().prop_map(Scope::Exact),
        resource().prop_map(Scope::Subtree),
    ]
}

fn pattern() -> impl Strategy<Value = MethodPattern> {
    prop_oneof![
        Just(MethodPattern::Any),
        method().prop_map(MethodPattern::Exact),
    ]
}

fn rights() -> impl Strategy<Value = Rights> {
    prop_oneof![
        1 => Just(Rights::all()),
        1 => Just(Rights::none()),
        6 => proptest::collection::vec((scope(), pattern()), 0..5).prop_map(|gs| {
            let mut r = Rights::none();
            for (s, m) in gs {
                r = r.grant(s, m);
            }
            r
        }),
    ]
}

proptest! {
    /// THE delegation-safety law: intersection permits exactly what both
    /// sides permit. Sound (never amplifies) and complete (never loses a
    /// mutually-permitted action).
    #[test]
    fn intersection_is_conjunction(a in rights(), b in rights(),
                                   r in resource(), m in method()) {
        let i = a.intersect(&b);
        prop_assert_eq!(i.permits(&r, &m), a.permits(&r, &m) && b.permits(&r, &m));
    }

    /// Union permits exactly what either side permits.
    #[test]
    fn union_is_disjunction(a in rights(), b in rights(),
                            r in resource(), m in method()) {
        let u = a.union(&b);
        prop_assert_eq!(u.permits(&r, &m), a.permits(&r, &m) || b.permits(&r, &m));
    }

    /// A delegation chain is monotonically non-increasing: adding any
    /// restriction never enables a previously-denied action.
    #[test]
    fn delegation_chains_never_amplify(chain in proptest::collection::vec(rights(), 1..5),
                                       r in resource(), m in method()) {
        let mut effective = Rights::all();
        let mut prev_permitted = true;
        for link in &chain {
            effective = effective.intersect(link);
            let now_permitted = effective.permits(&r, &m);
            prop_assert!(!now_permitted || prev_permitted,
                "a link re-enabled a denied action");
            prev_permitted = now_permitted;
        }
    }

    /// Intersection is commutative and associative observationally.
    #[test]
    fn intersection_laws(a in rights(), b in rights(), c in rights(),
                         r in resource(), m in method()) {
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        prop_assert_eq!(ab.permits(&r, &m), ba.permits(&r, &m));
        let left = a.intersect(&b).intersect(&c);
        let right = a.intersect(&b.intersect(&c));
        prop_assert_eq!(left.permits(&r, &m), right.permits(&r, &m));
    }

    /// Rights wire-encoding round-trips.
    #[test]
    fn rights_wire_roundtrip(a in rights()) {
        prop_assert_eq!(Rights::from_bytes(&a.to_bytes()).unwrap(), a);
    }

    /// Credentials tamper-evidence under arbitrary single-byte corruption
    /// (randomized complement of the exhaustive unit test).
    #[test]
    fn credentials_random_corruption_detected(seed in any::<u64>(),
                                              idx in any::<prop::sample::Index>(),
                                              flip in 1u8..=255) {
        let mut rng = DetRng::new(seed);
        let ca = KeyPair::generate(&mut rng);
        let mut roots = RootOfTrust::new();
        roots.trust("ca", ca.public);
        let owner = Urn::owner("x.org", ["alice"]).unwrap();
        let keys = KeyPair::generate(&mut rng);
        let cert = Certificate::issue(owner.to_string(), keys.public, "ca", &ca, u64::MAX, 1, &mut rng);
        let creds = CredentialsBuilder::new(Urn::agent("x.org", ["a"]).unwrap(), owner)
            .owner_chain(vec![cert])
            .delegate(Rights::on_resource(Urn::resource("x.org", ["r"]).unwrap()))
            .sign(&keys, &mut rng);
        creds.verify(&roots, 0).unwrap();

        let mut bytes = creds.to_bytes();
        let i = idx.index(bytes.len());
        bytes[i] ^= flip;
        match ajanta_core::Credentials::from_bytes(&bytes) {
            Err(_) => {}
            Ok(c) => prop_assert!(c.verify(&roots, 0).is_err(),
                "corruption at byte {i} went undetected"),
        }
    }

    /// Proxy confinement: only the holder domain ever passes the check,
    /// regardless of the enabled set.
    #[test]
    fn proxy_confinement_total(holder in 1u64..50, caller in 1u64..50,
                               methods in proptest::collection::vec(method(), 0..4),
                               probe in method()) {
        let table = MethodTable::new(["get", "put", "query", "buy"]);
        let control = ProxyControl::new_named(
            DomainId(holder),
            [],
            table,
            methods.iter().map(String::as_str),
            None,
            Meter::off(),
        );
        let outcome = control.check(DomainId(caller), &probe, 0);
        if caller != holder {
            prop_assert!(outcome.is_err());
        } else {
            prop_assert_eq!(outcome.is_ok(), methods.contains(&probe));
        }
    }

    /// Expiry is a strict threshold: allowed at `t <= not_after`, denied
    /// after.
    #[test]
    fn proxy_expiry_threshold(not_after in 0u64..1_000, probe_at in 0u64..2_000) {
        let control = ProxyControl::new_named(
            DomainId(1),
            [],
            MethodTable::new(["m"]),
            ["m"],
            Some(not_after),
            Meter::off(),
        );
        let ok = control.check(DomainId(1), "m", probe_at).is_ok();
        prop_assert_eq!(ok, probe_at <= not_after);
    }

    /// Revocation wins over everything and is irreversible.
    #[test]
    fn revocation_is_absorbing(ops in proptest::collection::vec(0u8..3, 0..8)) {
        let control = ProxyControl::new_named(
            DomainId(1),
            [],
            MethodTable::new(["m"]),
            ["m"],
            None,
            Meter::off(),
        );
        control.revoke(DomainId::SERVER).unwrap();
        for op in ops {
            match op {
                0 => { let _ = control.enable_method(DomainId::SERVER, "m"); }
                1 => { let _ = control.set_expiry(DomainId::SERVER, None); }
                _ => { let _ = control.disable_method(DomainId::SERVER, "m"); }
            }
        }
        prop_assert!(control.check(DomainId(1), "m", 0).is_err());
        prop_assert!(control.is_revoked());
    }

    /// The interned enabled set (64-bit atomic mask + spill set for wide
    /// interfaces) is observationally identical to the old
    /// `BTreeSet<String>` model: same enable/disable return values, same
    /// check outcomes, same `enabled_methods()` listing — over random
    /// method universes both narrower and wider than the 64-bit mask.
    #[test]
    fn bitmask_enabled_set_matches_set_model(
        width in 1usize..100,
        seed in proptest::collection::vec(any::<prop::sample::Index>(), 0..20),
        ops in proptest::collection::vec((any::<bool>(), any::<prop::sample::Index>()), 0..30),
    ) {
        let names: Vec<String> = (0..width).map(|i| format!("m{i}")).collect();
        let table = MethodTable::new(names.iter().cloned());
        let initial: Vec<&str> =
            seed.iter().map(|ix| names[ix.index(width)].as_str()).collect();
        let mut model: BTreeSet<String> =
            initial.iter().map(|s| s.to_string()).collect();
        let control = ProxyControl::new_named(
            DomainId(1),
            [],
            Arc::clone(&table),
            initial.iter().copied(),
            None,
            Meter::off(),
        );
        for (enable, ix) in ops {
            let name = &names[ix.index(width)];
            if enable {
                let newly = control.enable_method(DomainId::SERVER, name.clone()).unwrap();
                prop_assert_eq!(newly, model.insert(name.clone()));
            } else {
                let was = control.disable_method(DomainId::SERVER, name).unwrap();
                prop_assert_eq!(was, model.remove(name));
            }
        }
        // BTreeSet iterates lexicographically, matching enabled_methods().
        let expect: Vec<String> = model.iter().cloned().collect();
        prop_assert_eq!(control.enabled_methods(), expect);
        for name in &names {
            let ok = control.check(DomainId(1), name, 0).is_ok();
            prop_assert_eq!(ok, model.contains(name));
        }
    }
}
