//! Property tests for the rights algebra, credentials, and proxy
//! invariants — the security laws the paper's design depends on.

use ajanta_core::credentials::CredentialsBuilder;
use ajanta_core::proxy::{Meter, ProxyControl};
use ajanta_core::rights::{MethodPattern, Rights, Scope};
use ajanta_core::DomainId;
use ajanta_crypto::cert::Certificate;
use ajanta_crypto::{DetRng, KeyPair, RootOfTrust};
use ajanta_naming::Urn;
use ajanta_wire::Wire;
use proptest::prelude::*;

/// Strategy over resource names in a small universe, so scopes overlap
/// often enough to exercise the interesting cases.
fn resource() -> impl Strategy<Value = Urn> {
    proptest::collection::vec(prop::sample::select(vec!["a", "b", "c"]), 1..4)
        .prop_map(|segs| Urn::resource("x.org", segs).unwrap())
}

fn method() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["get", "put", "query", "buy"]).prop_map(String::from)
}

fn scope() -> impl Strategy<Value = Scope> {
    prop_oneof![
        resource().prop_map(Scope::Exact),
        resource().prop_map(Scope::Subtree),
    ]
}

fn pattern() -> impl Strategy<Value = MethodPattern> {
    prop_oneof![
        Just(MethodPattern::Any),
        method().prop_map(MethodPattern::Exact),
    ]
}

fn rights() -> impl Strategy<Value = Rights> {
    prop_oneof![
        1 => Just(Rights::all()),
        1 => Just(Rights::none()),
        6 => proptest::collection::vec((scope(), pattern()), 0..5).prop_map(|gs| {
            let mut r = Rights::none();
            for (s, m) in gs {
                r = r.grant(s, m);
            }
            r
        }),
    ]
}

proptest! {
    /// THE delegation-safety law: intersection permits exactly what both
    /// sides permit. Sound (never amplifies) and complete (never loses a
    /// mutually-permitted action).
    #[test]
    fn intersection_is_conjunction(a in rights(), b in rights(),
                                   r in resource(), m in method()) {
        let i = a.intersect(&b);
        prop_assert_eq!(i.permits(&r, &m), a.permits(&r, &m) && b.permits(&r, &m));
    }

    /// Union permits exactly what either side permits.
    #[test]
    fn union_is_disjunction(a in rights(), b in rights(),
                            r in resource(), m in method()) {
        let u = a.union(&b);
        prop_assert_eq!(u.permits(&r, &m), a.permits(&r, &m) || b.permits(&r, &m));
    }

    /// A delegation chain is monotonically non-increasing: adding any
    /// restriction never enables a previously-denied action.
    #[test]
    fn delegation_chains_never_amplify(chain in proptest::collection::vec(rights(), 1..5),
                                       r in resource(), m in method()) {
        let mut effective = Rights::all();
        let mut prev_permitted = true;
        for link in &chain {
            effective = effective.intersect(link);
            let now_permitted = effective.permits(&r, &m);
            prop_assert!(!now_permitted || prev_permitted,
                "a link re-enabled a denied action");
            prev_permitted = now_permitted;
        }
    }

    /// Intersection is commutative and associative observationally.
    #[test]
    fn intersection_laws(a in rights(), b in rights(), c in rights(),
                         r in resource(), m in method()) {
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        prop_assert_eq!(ab.permits(&r, &m), ba.permits(&r, &m));
        let left = a.intersect(&b).intersect(&c);
        let right = a.intersect(&b.intersect(&c));
        prop_assert_eq!(left.permits(&r, &m), right.permits(&r, &m));
    }

    /// Rights wire-encoding round-trips.
    #[test]
    fn rights_wire_roundtrip(a in rights()) {
        prop_assert_eq!(Rights::from_bytes(&a.to_bytes()).unwrap(), a);
    }

    /// Credentials tamper-evidence under arbitrary single-byte corruption
    /// (randomized complement of the exhaustive unit test).
    #[test]
    fn credentials_random_corruption_detected(seed in any::<u64>(),
                                              idx in any::<prop::sample::Index>(),
                                              flip in 1u8..=255) {
        let mut rng = DetRng::new(seed);
        let ca = KeyPair::generate(&mut rng);
        let mut roots = RootOfTrust::new();
        roots.trust("ca", ca.public);
        let owner = Urn::owner("x.org", ["alice"]).unwrap();
        let keys = KeyPair::generate(&mut rng);
        let cert = Certificate::issue(owner.to_string(), keys.public, "ca", &ca, u64::MAX, 1, &mut rng);
        let creds = CredentialsBuilder::new(Urn::agent("x.org", ["a"]).unwrap(), owner)
            .owner_chain(vec![cert])
            .delegate(Rights::on_resource(Urn::resource("x.org", ["r"]).unwrap()))
            .sign(&keys, &mut rng);
        creds.verify(&roots, 0).unwrap();

        let mut bytes = creds.to_bytes();
        let i = idx.index(bytes.len());
        bytes[i] ^= flip;
        match ajanta_core::Credentials::from_bytes(&bytes) {
            Err(_) => {}
            Ok(c) => prop_assert!(c.verify(&roots, 0).is_err(),
                "corruption at byte {i} went undetected"),
        }
    }

    /// Proxy confinement: only the holder domain ever passes the check,
    /// regardless of the enabled set.
    #[test]
    fn proxy_confinement_total(holder in 1u64..50, caller in 1u64..50,
                               methods in proptest::collection::vec(method(), 0..4),
                               probe in method()) {
        let control = ProxyControl::new(
            DomainId(holder),
            [],
            methods.clone(),
            None,
            Meter::off(),
        );
        let outcome = control.check(DomainId(caller), &probe, 0);
        if caller != holder {
            prop_assert!(outcome.is_err());
        } else {
            prop_assert_eq!(outcome.is_ok(), methods.contains(&probe));
        }
    }

    /// Expiry is a strict threshold: allowed at `t <= not_after`, denied
    /// after.
    #[test]
    fn proxy_expiry_threshold(not_after in 0u64..1_000, probe_at in 0u64..2_000) {
        let control = ProxyControl::new(
            DomainId(1),
            [],
            ["m".to_string()],
            Some(not_after),
            Meter::off(),
        );
        let ok = control.check(DomainId(1), "m", probe_at).is_ok();
        prop_assert_eq!(ok, probe_at <= not_after);
    }

    /// Revocation wins over everything and is irreversible.
    #[test]
    fn revocation_is_absorbing(ops in proptest::collection::vec(0u8..3, 0..8)) {
        let control = ProxyControl::new(DomainId(1), [], ["m".to_string()], None, Meter::off());
        control.revoke(DomainId::SERVER).unwrap();
        for op in ops {
            match op {
                0 => { let _ = control.enable_method(DomainId::SERVER, "m"); }
                1 => { let _ = control.set_expiry(DomainId::SERVER, None); }
                _ => { let _ = control.disable_method(DomainId::SERVER, "m"); }
            }
        }
        prop_assert!(control.check(DomainId(1), "m", 0).is_err());
        prop_assert!(control.is_revoked());
    }
}
