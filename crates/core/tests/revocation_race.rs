//! Revocation under contention — the paper's "a resource manager can
//! invalidate any of its currently active proxies at any time it wishes"
//! (Section 5.5), exercised as a cross-thread race.
//!
//! The contract under test: the instant `revoke` (or `disable_method`)
//! **returns** to the manager, no invocation observed to start afterwards
//! may succeed — on any thread, with no cooperation from the agent — and
//! the lock-free check path must neither panic nor deadlock while the
//! enabled set is being churned underneath it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use ajanta_core::{
    BoundedBuffer, BufferProxy, DomainId, Meter, MethodId, MethodTable, ProxyControl, Resource,
};
use ajanta_naming::Urn;

const AGENT: DomainId = DomainId(9);

fn buffer_proxy() -> (Arc<ProxyControl>, BufferProxy) {
    let buf = BoundedBuffer::new(
        Urn::resource("x.org", ["race-buffer"]).unwrap(),
        Urn::owner("x.org", ["admin"]).unwrap(),
        64,
    );
    let control = ProxyControl::new_named(
        AGENT,
        [],
        buf.method_table(),
        ["get", "put", "size"],
        None,
        Meter::off(),
    );
    let proxy = BufferProxy::new(Arc::clone(&buf), Arc::clone(&control));
    (control, proxy)
}

/// One thread spins invocations while the manager revokes the proxy.
/// Every invocation that starts after `revoke` returned must fail.
#[test]
fn no_call_succeeds_after_revoke_returns() {
    let (control, proxy) = buffer_proxy();
    let revoke_returned = Arc::new(AtomicBool::new(false));

    thread::scope(|s| {
        let flag = Arc::clone(&revoke_returned);
        let invoker = s.spawn(move || {
            let mut late_successes = 0u64;
            loop {
                // Sample the flag BEFORE invoking: if the manager's
                // revoke had already returned at that point, this call
                // (and all later ones) must be rejected.
                let after_revoke = flag.load(Ordering::SeqCst);
                let outcome = proxy.size(0);
                if after_revoke {
                    late_successes += u64::from(outcome.is_ok());
                    // Revocation is permanent: a burst of further calls
                    // must all fail too.
                    for _ in 0..256 {
                        late_successes += u64::from(proxy.size(0).is_ok());
                    }
                    return late_successes;
                }
            }
        });

        // Let the invoker get some successful calls in first.
        thread::sleep(Duration::from_millis(5));
        control.revoke(DomainId::SERVER).unwrap();
        revoke_returned.store(true, Ordering::SeqCst);

        assert_eq!(
            invoker.join().expect("invoker must not panic"),
            0,
            "invocations succeeded after revoke() had returned"
        );
    });
    assert!(control.is_revoked());
}

/// Selective revocation has the same fence: after `disable_method`
/// returns, the disabled method never passes, while other methods keep
/// working.
#[test]
fn no_call_succeeds_after_disable_returns() {
    let (control, proxy) = buffer_proxy();
    let disable_returned = Arc::new(AtomicBool::new(false));

    thread::scope(|s| {
        let flag = Arc::clone(&disable_returned);
        let invoker = s.spawn(move || {
            let mut late_successes = 0u64;
            loop {
                let after_disable = flag.load(Ordering::SeqCst);
                let outcome = proxy.size(0);
                if after_disable {
                    late_successes += u64::from(outcome.is_ok());
                    for _ in 0..256 {
                        late_successes += u64::from(proxy.size(0).is_ok());
                    }
                    // The untouched method still passes the whole chain.
                    assert!(proxy.put(ajanta_vm::Value::Int(1), 0).is_ok());
                    return late_successes;
                }
            }
        });

        thread::sleep(Duration::from_millis(5));
        assert!(control.disable_method(DomainId::SERVER, "size").unwrap());
        disable_returned.store(true, Ordering::SeqCst);

        assert_eq!(
            invoker.join().expect("invoker must not panic"),
            0,
            "invocations of a disabled method succeeded after disable_method() had returned"
        );
    });
}

/// Continuous enable/disable churn across the mask/spill seam of a wide
/// (100-method) interface while checker threads spin: no panic, no
/// deadlock, and the final revocation still fences every id.
#[test]
fn enabled_set_churn_is_panic_and_deadlock_free() {
    let table = MethodTable::new((0..100).map(|i| format!("m{i}")));
    let control = ProxyControl::new(
        AGENT,
        [],
        Arc::clone(&table),
        (0..100).map(MethodId),
        None,
        Meter::off(),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let started = Arc::new(std::sync::atomic::AtomicU64::new(0));

    thread::scope(|s| {
        // Checkers spin over ids on both sides of the 64-bit mask.
        let mut checkers = Vec::new();
        for lane in [3u16, 63, 64, 99] {
            let control = Arc::clone(&control);
            let stop = Arc::clone(&stop);
            let started = Arc::clone(&started);
            checkers.push(s.spawn(move || {
                // One guaranteed check before signalling readiness, so
                // every lane contributes at least one call no matter how
                // the scheduler treats it afterwards.
                let _ = control.check_id(AGENT, MethodId(lane), 0);
                let mut calls = 1u64;
                started.fetch_add(1, Ordering::SeqCst);
                while !stop.load(Ordering::Relaxed) {
                    // Either outcome is fine mid-churn; it just must not
                    // wedge or panic.
                    let _ = control.check_id(AGENT, MethodId(lane), 0);
                    calls += 1;
                }
                calls
            }));
        }
        // On a loaded machine the checker threads may take a while to be
        // scheduled; start churning only once they are all spinning, so
        // the no-livelock assertion below cannot be starved trivially.
        while started.load(Ordering::SeqCst) < 4 {
            std::thread::yield_now();
        }
        // Churner toggles ids straddling the seam.
        for round in 0..2_000u16 {
            let id = MethodId(56 + round % 16); // 56..72: crosses bit 63/64
            if round % 2 == 0 {
                let _ = control.disable_id(DomainId::SERVER, id);
            } else {
                let _ = control.enable_id(DomainId::SERVER, id);
            }
        }
        control.revoke(DomainId::SERVER).unwrap();
        stop.store(true, Ordering::SeqCst);
        let total: u64 = checkers
            .into_iter()
            .map(|c| c.join().expect("checker must not panic"))
            .sum();
        // Scheduling may starve an individual lane, but the pool as a
        // whole must have made progress (no livelock).
        assert!(total > 0);
    });

    // Post-revocation, every id is fenced regardless of its enabled bit.
    for id in 0..100u16 {
        assert!(control.check_id(AGENT, MethodId(id), 0).is_err());
    }
}
