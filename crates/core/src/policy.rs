//! The server's security policy (paper Sections 5.2, 5.5).
//!
//! Authorization — *"mechanisms to agent servers for specifying restricted
//! access rights for agents"* — is a function from the authenticated facts
//! about a principal to [`Rights`]. The policy here grants by:
//!
//! * exact principal name (the agent's owner, or the agent itself);
//! * **group** membership — *"a set of principals may be aggregated
//!   together in a group to represent a common role"* (Section 2);
//! * name subtree (e.g. every owner at `umn.edu`);
//! * a default for anybody who authenticates.
//!
//! The effective authorization handed to the domain database is
//! `policy_rights(owner ∪ agent ∪ groups) ∩ delegated` — the server's view
//! intersected with what the owner delegated, so neither side alone can
//! grant more than both agree on.

use std::collections::BTreeMap;

use ajanta_naming::Urn;

use crate::rights::Rights;

/// Who a policy rule applies to.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum PrincipalPattern {
    /// Exactly this principal (owner or agent name).
    Exact(Urn),
    /// Members of this group.
    Group(Urn),
    /// Any principal within this name subtree.
    Subtree(Urn),
    /// Every authenticated principal.
    Anyone,
}

/// Group membership directory.
///
/// Groups contain principals; membership is consulted at authorization
/// time, so changing a group immediately affects future `get_proxy`
/// decisions (but not proxies already issued — revoke those explicitly).
#[derive(Debug, Default, Clone)]
pub struct Groups {
    members: BTreeMap<Urn, Vec<Urn>>,
}

impl Groups {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `member` to `group` (creating the group as needed).
    pub fn add(&mut self, group: Urn, member: Urn) {
        let members = self.members.entry(group).or_default();
        if !members.contains(&member) {
            members.push(member);
        }
    }

    /// Removes `member` from `group`. Returns whether it was present.
    pub fn remove(&mut self, group: &Urn, member: &Urn) -> bool {
        match self.members.get_mut(group) {
            Some(ms) => {
                let before = ms.len();
                ms.retain(|m| m != member);
                ms.len() != before
            }
            None => false,
        }
    }

    /// Whether `member` is in `group`.
    pub fn contains(&self, group: &Urn, member: &Urn) -> bool {
        self.members
            .get(group)
            .is_some_and(|ms| ms.contains(member))
    }

    /// All groups `member` belongs to.
    pub fn groups_of<'a>(&'a self, member: &'a Urn) -> impl Iterator<Item = &'a Urn> + 'a {
        self.members
            .iter()
            .filter(move |(_, ms)| ms.contains(member))
            .map(|(g, _)| g)
    }
}

/// A server's authorization policy.
#[derive(Debug, Default)]
pub struct SecurityPolicy {
    rules: Vec<(PrincipalPattern, Rights)>,
    groups: Groups,
}

impl SecurityPolicy {
    /// An empty policy: authenticated principals get no rights (deny by
    /// default).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rule (builder-style).
    pub fn allow(mut self, who: PrincipalPattern, rights: Rights) -> Self {
        self.add_rule(who, rights);
        self
    }

    /// Adds a rule in place (for policies that change at runtime —
    /// Section 5.1: "security policies of such resources can be
    /// dynamically modified by their owners").
    pub fn add_rule(&mut self, who: PrincipalPattern, rights: Rights) {
        self.rules.push((who, rights));
    }

    /// Removes all rules matching a pattern; returns how many were
    /// removed.
    pub fn remove_rules(&mut self, who: &PrincipalPattern) -> usize {
        let before = self.rules.len();
        self.rules.retain(|(w, _)| w != who);
        before - self.rules.len()
    }

    /// Mutable access to the group directory.
    pub fn groups_mut(&mut self) -> &mut Groups {
        &mut self.groups
    }

    /// The group directory.
    pub fn groups(&self) -> &Groups {
        &self.groups
    }

    /// Rights this policy grants to an agent with the given (verified)
    /// identities. The union over all matching rules, for any of the
    /// presented principals (agent name and owner).
    pub fn rights_for(&self, agent: &Urn, owner: &Urn) -> Rights {
        let mut acc = Rights::none();
        for (pattern, rights) in &self.rules {
            let matches = match pattern {
                PrincipalPattern::Exact(p) => p == agent || p == owner,
                PrincipalPattern::Group(g) => {
                    self.groups.contains(g, agent) || self.groups.contains(g, owner)
                }
                PrincipalPattern::Subtree(root) => agent.is_within(root) || owner.is_within(root),
                PrincipalPattern::Anyone => true,
            };
            if matches {
                acc = acc.union(rights);
            }
        }
        acc
    }

    /// The full authorization pipeline: server policy ∩ owner delegation.
    pub fn authorize(&self, agent: &Urn, owner: &Urn, delegated: &Rights) -> Rights {
        self.rights_for(agent, owner).intersect(delegated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owner(n: &str) -> Urn {
        Urn::owner("umn.edu", [n]).unwrap()
    }
    fn agent(n: &str) -> Urn {
        Urn::agent("umn.edu", ["tour", n]).unwrap()
    }
    fn res(n: &str) -> Urn {
        Urn::resource("acme.com", [n]).unwrap()
    }
    fn group(n: &str) -> Urn {
        Urn::group("acme.com", [n]).unwrap()
    }

    #[test]
    fn deny_by_default() {
        let p = SecurityPolicy::new();
        assert!(p.rights_for(&agent("a"), &owner("alice")).is_none());
    }

    #[test]
    fn exact_rule_matches_owner_or_agent() {
        let p = SecurityPolicy::new().allow(
            PrincipalPattern::Exact(owner("alice")),
            Rights::on_resource(res("db")),
        );
        let r = p.rights_for(&agent("a"), &owner("alice"));
        assert!(r.permits(&res("db"), "query"));
        assert!(p.rights_for(&agent("a"), &owner("bob")).is_none());

        let p2 = SecurityPolicy::new().allow(
            PrincipalPattern::Exact(agent("a")),
            Rights::on_resource(res("db")),
        );
        assert!(p2
            .rights_for(&agent("a"), &owner("bob"))
            .permits(&res("db"), "query"));
    }

    #[test]
    fn group_rule_follows_membership() {
        let mut p = SecurityPolicy::new().allow(
            PrincipalPattern::Group(group("customers")),
            Rights::on_resource(res("catalog")),
        );
        p.groups_mut().add(group("customers"), owner("alice"));
        assert!(p
            .rights_for(&agent("a"), &owner("alice"))
            .permits(&res("catalog"), "query"));
        assert!(p.rights_for(&agent("a"), &owner("eve")).is_none());

        // Membership changes take effect immediately.
        p.groups_mut().remove(&group("customers"), &owner("alice"));
        assert!(p.rights_for(&agent("a"), &owner("alice")).is_none());
    }

    #[test]
    fn subtree_rule_covers_organization() {
        let root = Urn::owner("umn.edu", ["staff"]).unwrap();
        let p = SecurityPolicy::new().allow(
            PrincipalPattern::Subtree(root.clone()),
            Rights::on_resource(res("db")),
        );
        let staff_member = root.child("carol").unwrap();
        assert!(p
            .rights_for(&agent("a"), &staff_member)
            .permits(&res("db"), "q"));
        assert!(p.rights_for(&agent("a"), &owner("outsider")).is_none());
    }

    #[test]
    fn anyone_rule_is_a_floor() {
        let p = SecurityPolicy::new().allow(
            PrincipalPattern::Anyone,
            Rights::none().grant_method(res("catalog"), "query"),
        );
        let r = p.rights_for(&agent("x"), &owner("stranger"));
        assert!(r.permits(&res("catalog"), "query"));
        assert!(!r.permits(&res("catalog"), "buy"));
    }

    #[test]
    fn rules_union() {
        let mut p = SecurityPolicy::new()
            .allow(PrincipalPattern::Anyone, Rights::on_resource(res("a")))
            .allow(
                PrincipalPattern::Exact(owner("alice")),
                Rights::on_resource(res("b")),
            );
        let r = p.rights_for(&agent("x"), &owner("alice"));
        assert!(r.permits(&res("a"), "m") && r.permits(&res("b"), "m"));
        // Removing the alice rule removes resource b.
        assert_eq!(p.remove_rules(&PrincipalPattern::Exact(owner("alice"))), 1);
        let r = p.rights_for(&agent("x"), &owner("alice"));
        assert!(r.permits(&res("a"), "m") && !r.permits(&res("b"), "m"));
    }

    #[test]
    fn authorize_intersects_delegation() {
        let p = SecurityPolicy::new().allow(
            PrincipalPattern::Exact(owner("alice")),
            Rights::on_subtree(Urn::resource("acme.com", ["catalog"]).unwrap()),
        );
        // Owner delegated only query on one sub-resource.
        let delegated = Rights::none().grant_method(
            Urn::resource("acme.com", ["catalog", "books"]).unwrap(),
            "query",
        );
        let eff = p.authorize(&agent("a"), &owner("alice"), &delegated);
        assert!(eff.permits(
            &Urn::resource("acme.com", ["catalog", "books"]).unwrap(),
            "query"
        ));
        // Server would have allowed "buy", but the owner did not delegate it.
        assert!(!eff.permits(
            &Urn::resource("acme.com", ["catalog", "books"]).unwrap(),
            "buy"
        ));
        // The owner delegated nothing outside the server's grant either.
        assert!(!eff.permits(&res("other"), "query"));
    }

    #[test]
    fn groups_of_lists_memberships() {
        let mut g = Groups::new();
        g.add(group("a"), owner("x"));
        g.add(group("b"), owner("x"));
        g.add(group("a"), owner("x")); // idempotent
        let x = owner("x");
        let gs: Vec<_> = g.groups_of(&x).collect();
        assert_eq!(gs.len(), 2);
        assert!(!g.remove(&group("zzz"), &owner("x")));
    }
}
